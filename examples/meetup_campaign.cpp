/// Meetup campaign: the full paper pipeline as a downstream user would
/// run it — synthesize (or load) a Meetup-like dataset, persist it to
/// disk, rebuild the paper's Section IV-A workload, and compare every
/// registered solver.
///
///   ./meetup_campaign [--users=6000] [--k=40] [--data-dir=DIR]
///                     [--save-data] [--seed=5]
///
/// When --data-dir points at a previously saved dataset it is loaded
/// from CSV instead of regenerated, demonstrating dataset persistence.

#include <cstdio>
#include <filesystem>

#include "api/scheduler.h"
#include "core/validate.h"
#include "ebsn/dataset.h"
#include "ebsn/dataset_stats.h"
#include "ebsn/generator.h"
#include "exp/workload.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace ses;

  int64_t users = 6000;
  int64_t k = 40;
  int64_t seed = 5;
  std::string data_dir;
  bool save_data = false;
  util::FlagSet flags("meetup_campaign");
  flags.AddInt("users", &users, "synthetic audience size");
  flags.AddInt("k", &k, "events to schedule");
  flags.AddInt("seed", &seed, "random seed");
  flags.AddString("data-dir", &data_dir, "dataset directory (load/save)");
  flags.AddBool("save-data", &save_data, "persist the dataset as CSV");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }

  // --- Data: load if available, otherwise synthesize (and maybe save).
  ebsn::EbsnDataset dataset;
  if (!data_dir.empty() &&
      std::filesystem::exists(data_dir + "/users.csv")) {
    std::printf("loading dataset from %s ...\n", data_dir.c_str());
    auto loaded = ebsn::EbsnDataset::Load(data_dir);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded).value();
  } else {
    ebsn::SyntheticMeetupConfig config;
    config.num_users = static_cast<uint32_t>(users);
    config.num_events = static_cast<uint32_t>(users / 3);
    config.num_groups = static_cast<uint32_t>(users / 40 + 10);
    config.num_tags = 300;
    config.seed = static_cast<uint64_t>(seed);
    dataset = ebsn::GenerateSyntheticMeetup(config);
    if (save_data && !data_dir.empty()) {
      std::filesystem::create_directories(data_dir);
      auto status = dataset.Save(data_dir);
      std::printf("saved dataset to %s: %s\n", data_dir.c_str(),
                  status.ToString().c_str());
    }
  }

  std::printf("dataset summary:\n%s\n",
              ebsn::ComputeDatasetStats(dataset).ToString().c_str());

  // --- Workload per Section IV-A.
  exp::WorkloadFactory factory(dataset);
  exp::PaperWorkloadConfig config;
  config.k = k;
  config.seed = static_cast<uint64_t>(seed);
  auto instance = factory.Build(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "SES instance: |U|=%u |E|=%u |T|=%u |C|=%u theta=%.0f\n\n",
      instance->num_users(), instance->num_events(),
      instance->num_intervals(), instance->num_competing(),
      instance->theta());

  // --- Every registered heuristic solver (exact would blow up here),
  // submitted asynchronously: the scheduler fans the runs across its
  // pool while this thread collects responses in submission order.
  api::Scheduler scheduler;
  std::vector<api::PendingSolve> pending;
  std::vector<std::string> names;
  for (const std::string& name : api::ListSolvers()) {
    if (name == "exact") continue;
    api::SolveRequest request;
    request.solver = name;
    request.options.k = k;
    request.options.seed = static_cast<uint64_t>(seed);
    request.options.max_iterations = 5000;
    pending.push_back(scheduler.Submit(*instance, std::move(request)));
    names.push_back(name);
  }

  std::printf("%8s %14s %10s %14s\n", "solver", "utility", "seconds",
              "assignments");
  for (size_t i = 0; i < pending.size(); ++i) {
    const api::SolveResponse response = pending[i].Get();
    if (!response.status.ok()) {
      std::fprintf(stderr, "%s: %s\n", names[i].c_str(),
                   response.status.ToString().c_str());
      continue;
    }
    SES_CHECK(
        core::ValidateAssignments(*instance, response.schedule).ok());
    std::printf("%8s %14.2f %10.3f %14zu\n", names[i].c_str(),
                response.utility, response.wall_seconds,
                response.schedule.size());
  }
  return 0;
}
