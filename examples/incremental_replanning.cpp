/// Incremental re-planning: a season planner that commits events in
/// waves. Wave 1 was booked hastily (random placements — deadlines!).
/// When the budget grows, the planner extends the committed program to
/// the full size with GRD via SolveRequest's warm_start options, never
/// moving anything already announced. Comparing against (a) a
/// from-scratch GRD plan and (b) a careful GRD wave 1 shows the price of
/// early sloppy commitment — and that extending a *greedy* wave 1 is
/// free, because GRD's selection sequence is prefix-consistent.
///
///   ./incremental_replanning [--k1=15] [--k2=40] [--seed=2]

#include <cstdio>

#include "api/scheduler.h"
#include "core/validate.h"
#include "ebsn/generator.h"
#include "exp/workload.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace ses;

  int64_t k1 = 15;
  int64_t k2 = 40;
  int64_t seed = 2;
  util::FlagSet flags("incremental_replanning");
  flags.AddInt("k1", &k1, "early-bird batch size");
  flags.AddInt("k2", &k2, "final program size");
  flags.AddInt("seed", &seed, "random seed");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (k1 >= k2) {
    std::fprintf(stderr, "k1 must be smaller than k2\n");
    return 2;
  }

  ebsn::SyntheticMeetupConfig dataset_config;
  dataset_config.num_users = 5000;
  dataset_config.num_events = 1500;
  dataset_config.num_groups = 200;
  dataset_config.num_tags = 200;
  dataset_config.seed = static_cast<uint64_t>(seed);
  const ebsn::EbsnDataset dataset =
      ebsn::GenerateSyntheticMeetup(dataset_config);
  exp::WorkloadFactory factory(dataset);
  exp::PaperWorkloadConfig config;
  config.k = k2;  // sizes |E| and |T| for the final program
  config.seed = static_cast<uint64_t>(seed);
  auto instance = factory.Build(config);
  if (!instance.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  // One scheduler serves every planning round of the session.
  api::Scheduler scheduler;

  // Wave 1: a hasty (random) early-bird batch.
  api::SolveRequest wave1;
  wave1.solver = "rand";
  wave1.options.k = k1;
  wave1.options.seed = static_cast<uint64_t>(seed);
  const api::SolveResponse committed = scheduler.Solve(*instance, wave1);
  if (!committed.status.ok()) {
    std::fprintf(stderr, "wave 1: %s\n",
                 committed.status.ToString().c_str());
    return 1;
  }
  std::printf("wave 1 (hasty) committed %zu events, attendance %.1f\n",
              committed.schedule.size(), committed.utility);

  // What a careful wave 1 would have looked like.
  api::SolveRequest careful = wave1;
  careful.solver = "grd";
  const api::SolveResponse careful_wave1 =
      scheduler.Solve(*instance, careful);
  SES_CHECK(careful_wave1.status.ok());
  std::printf("wave 1 (careful GRD alternative):           %.1f\n",
              careful_wave1.utility);

  // Wave 2: extend to k2 keeping wave 1 untouched.
  api::SolveRequest wave2;
  wave2.solver = "grd";
  wave2.options.k = k2;
  wave2.options.seed = static_cast<uint64_t>(seed);
  wave2.options.warm_start = committed.schedule;
  const api::SolveResponse extended = scheduler.Solve(*instance, wave2);
  if (!extended.status.ok()) {
    std::fprintf(stderr, "wave 2: %s\n",
                 extended.status.ToString().c_str());
    return 1;
  }
  SES_CHECK(
      core::ValidateAssignments(*instance, extended.schedule, k2).ok());

  // Hypothetical: what if we could re-plan everything from scratch?
  api::SolveRequest scratch = wave2;
  scratch.options.warm_start.clear();
  const api::SolveResponse replanned = scheduler.Solve(*instance, scratch);
  SES_CHECK(replanned.status.ok());

  std::printf("wave 2 extended to %zu events, expected attendance %.1f\n",
              extended.schedule.size(), extended.utility);
  std::printf("from-scratch GRD plan of %lld events:          %.1f\n",
              static_cast<long long>(k2), replanned.utility);
  const double price =
      (replanned.utility - extended.utility) / replanned.utility;
  std::printf("price of the hasty commitment: %.2f%%\n", 100.0 * price);

  // A greedy prefix costs nothing: GRD extended by GRD equals GRD.
  api::SolveRequest greedy_prefix = wave2;
  greedy_prefix.options.warm_start = careful_wave1.schedule;
  const api::SolveResponse greedy_extended =
      scheduler.Solve(*instance, greedy_prefix);
  SES_CHECK(greedy_extended.status.ok());
  std::printf("extending a careful GRD wave 1 instead:        %.1f "
              "(prefix-consistent)\n",
              greedy_extended.utility);
  return 0;
}
