/// Venue competition study: how much attendance does third-party
/// competition cost an organizer? Sweeps the competing-events-per-
/// interval mean (the paper fixes it to 8.1, measured on Meetup data)
/// and reports GRD's achievable utility at each level.
///
///   ./venue_competition [--k=30] [--seed=4]
///
/// Expected shape: utility decreases monotonically (in expectation) as
/// competition intensifies, because every competing event inflates the
/// Luce denominators of the users it attracts.

#include <cstdio>

#include "api/scheduler.h"
#include "core/validate.h"
#include "ebsn/generator.h"
#include "exp/workload.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace ses;

  int64_t k = 30;
  int64_t seed = 4;
  util::FlagSet flags("venue_competition");
  flags.AddInt("k", &k, "events to schedule");
  flags.AddInt("seed", &seed, "random seed");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }

  ebsn::SyntheticMeetupConfig dataset_config;
  dataset_config.num_users = 6000;
  dataset_config.num_events = 2000;
  dataset_config.num_groups = 250;
  dataset_config.num_tags = 250;
  dataset_config.seed = static_cast<uint64_t>(seed);
  const ebsn::EbsnDataset dataset =
      ebsn::GenerateSyntheticMeetup(dataset_config);
  const exp::WorkloadFactory factory(dataset);

  std::printf("Competition study (k=%lld, %u users)\n",
              static_cast<long long>(k), dataset_config.num_users);
  std::printf("%22s %14s %14s\n", "competing-per-interval", "grd-utility",
              "rand-utility");

  // One scheduler across the whole sweep; each competition level batches
  // its two solvers and reads responses in request order.
  api::Scheduler scheduler;
  for (const double mean : {0.0, 2.0, 4.0, 8.1, 16.0, 32.0}) {
    exp::PaperWorkloadConfig config;
    config.k = k;
    config.competing_mean = mean;
    config.competing_spread = mean > 0 ? mean / 2 : 0.0;
    config.seed = static_cast<uint64_t>(seed);
    auto instance = factory.Build(config);
    if (!instance.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   instance.status().ToString().c_str());
      return 1;
    }
    std::vector<api::SolveRequest> requests(2);
    requests[0].solver = "grd";
    requests[1].solver = "rand";
    for (api::SolveRequest& request : requests) {
      request.options.k = k;
      request.options.seed = static_cast<uint64_t>(seed);
    }
    const std::vector<api::SolveResponse> responses =
        scheduler.SolveBatch(*instance, requests);
    for (const api::SolveResponse& response : responses) {
      SES_CHECK(response.status.ok()) << response.status.ToString();
      SES_CHECK(
          core::ValidateAssignments(*instance, response.schedule).ok());
    }
    std::printf("%22.1f %14.2f %14.2f\n", mean, responses[0].utility,
                responses[1].utility);
  }
  return 0;
}
