/// Festival planner: the Summerfest scenario from the paper's
/// introduction at a realistic scale. An 11-day festival with 11 stages
/// and 4 evening slots per day (44 intervals) must pick k events from a
/// larger candidate pool while nearby venues run their own program.
///
///   ./festival_planner [--k=30] [--candidates=90] [--seed=1]
///
/// Demonstrates: synthetic EBSN data, the Jaccard interest model, the
/// check-in-driven sigma (instead of the uniform one), and a comparison
/// of GRD against TOP/RAND on the final program.

#include <cstdio>
#include <memory>

#include "api/scheduler.h"
#include "core/validate.h"
#include "ebsn/activity.h"
#include "ebsn/generator.h"
#include "ebsn/interest.h"
#include "exp/checkin_sigma.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/random.h"

namespace {

using namespace ses;

constexpr int kDays = 11;
constexpr int kSlotsPerDay = 4;
constexpr int kStages = 11;

}  // namespace

int main(int argc, char** argv) {
  int64_t k = 30;
  int64_t candidates = 90;
  int64_t seed = 1;
  util::FlagSet flags("festival_planner");
  flags.AddInt("k", &k, "events to schedule");
  flags.AddInt("candidates", &candidates, "candidate pool size");
  flags.AddInt("seed", &seed, "random seed");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }

  // Audience: a city-scale EBSN crowd with check-in history.
  ebsn::SyntheticMeetupConfig dataset_config;
  dataset_config.num_users = 8000;
  dataset_config.num_events = 2000;
  dataset_config.num_groups = 300;
  dataset_config.num_tags = 250;
  dataset_config.num_slots = kDays * kSlotsPerDay;
  dataset_config.seed = static_cast<uint64_t>(seed);
  const ebsn::EbsnDataset dataset =
      ebsn::GenerateSyntheticMeetup(dataset_config);
  const ebsn::InterestModel interest(dataset);
  const ebsn::ActivityModel activity(dataset);

  std::printf("Summerfest: %d days x %d slots, %d stages, %zu fans\n",
              kDays, kSlotsPerDay, kStages, dataset.users().size());

  // Build the SES instance: 44 intervals, candidate events drawn from
  // the catalog, plus 2-4 competing shows per interval from rival venues.
  util::Rng rng(static_cast<uint64_t>(seed) * 31 + 7);
  core::InstanceBuilder builder;
  auto sigma = std::make_shared<exp::CheckinSigma>(activity);
  builder.SetNumUsers(static_cast<uint32_t>(dataset.users().size()))
      .SetNumIntervals(kDays * kSlotsPerDay)
      .SetTheta(20.0)
      .SetSigma(sigma);

  const auto candidate_ids = util::SampleWithoutReplacement(
      rng, static_cast<uint32_t>(dataset.events().size()),
      static_cast<uint32_t>(candidates));
  for (uint32_t id : candidate_ids) {
    const auto& record = dataset.events()[id];
    std::vector<std::pair<core::UserIndex, float>> row;
    for (const ebsn::UserInterest& ui :
         interest.EventInterests(record.tags, 0.05f)) {
      row.push_back({ui.user, ui.interest});
    }
    builder.AddEvent(static_cast<core::LocationId>(rng.NextBounded(kStages)),
                     rng.UniformDouble(1.0, 20.0 / 3.0), std::move(row));
  }
  for (core::IntervalIndex t = 0; t < kDays * kSlotsPerDay; ++t) {
    const int rivals = static_cast<int>(rng.UniformInt(2, 4));
    for (int c = 0; c < rivals; ++c) {
      const auto& record =
          dataset.events()[rng.NextBounded(dataset.events().size())];
      std::vector<std::pair<core::UserIndex, float>> row;
      for (const ebsn::UserInterest& ui :
           interest.EventInterests(record.tags, 0.05f)) {
        row.push_back({ui.user, ui.interest});
      }
      builder.AddCompetingEvent(t, std::move(row));
    }
  }

  auto instance = builder.Build();
  if (!instance.ok()) {
    std::fprintf(stderr, "instance: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  // Compare the paper's three methods on the festival program: one
  // batch, fanned across the scheduler's pool, responses in request
  // order.
  api::Scheduler scheduler;
  std::vector<api::SolveRequest> requests;
  for (const char* name : {"grd", "top", "rand"}) {
    api::SolveRequest request;
    request.solver = name;
    request.options.k = k;
    request.options.seed = static_cast<uint64_t>(seed);
    requests.push_back(std::move(request));
  }
  const std::vector<api::SolveResponse> responses =
      scheduler.SolveBatch(*instance, requests);

  std::printf("\n%8s %16s %10s\n", "method", "expected-fans", "seconds");
  std::vector<core::Assignment> best_program;
  for (const api::SolveResponse& response : responses) {
    if (!response.status.ok()) {
      std::fprintf(stderr, "%s: %s\n", response.solver.c_str(),
                   response.status.ToString().c_str());
      return 1;
    }
    SES_CHECK(
        core::ValidateAssignments(*instance, response.schedule).ok());
    std::printf("%8s %16.1f %10.3f\n", response.solver.c_str(),
                response.utility, response.wall_seconds);
    if (response.solver == "grd") best_program = response.schedule;
  }

  // Print the GRD program grouped by day.
  std::printf("\nGRD program (event -> day/slot/stage):\n");
  int shown = 0;
  for (const core::Assignment& a : best_program) {
    const int day = static_cast<int>(a.interval) / kSlotsPerDay + 1;
    const int slot = static_cast<int>(a.interval) % kSlotsPerDay + 1;
    std::printf("  event#%-4u day %2d slot %d stage %2u (staff %.1f)\n",
                a.event, day, slot, instance->event(a.event).location,
                instance->event(a.event).required_resources);
    if (++shown >= 12) {
      std::printf("  ... (%zu more)\n", best_program.size() - 12);
      break;
    }
  }
  return 0;
}
