/// Quickstart: build a tiny SES instance by hand, solve it through the
/// library's request/response API, and inspect the resulting schedule.
///
///   ./quickstart
///
/// The scenario is the paper's introduction in miniature: a festival
/// wants to place three candidate events (a pop concert, a fashion show,
/// a theater play) into two evening slots while a competing venue runs a
/// pop gig in slot 0.
///
/// This file is the canonical ses::api snippet referenced from the
/// README: construct a Scheduler once, describe each run as a
/// SolveRequest, and read the typed SolveResponse.

#include <cstdio>
#include <memory>

#include "api/scheduler.h"
#include "core/instance.h"
#include "core/validate.h"

int main() {
  using namespace ses;

  // Three users: Alice loves pop + fashion, Bob loves pop, Carol loves
  // theater.
  constexpr core::UserIndex kAlice = 0;
  constexpr core::UserIndex kBob = 1;
  constexpr core::UserIndex kCarol = 2;

  core::InstanceBuilder builder;
  builder.SetNumUsers(3)
      .SetNumIntervals(2)  // Monday evening, Tuesday evening
      .SetTheta(10.0)      // staff available per slot
      .SetSigma(std::make_shared<core::ConstSigma>(0.9));

  // Candidate events: (location/stage, required staff, interested users).
  builder.AddEvent(0, 4.0, {{kAlice, 0.9f}, {kBob, 0.8f}});  // pop concert
  builder.AddEvent(1, 3.0, {{kAlice, 0.7f}});                // fashion show
  builder.AddEvent(0, 5.0, {{kCarol, 0.8f}});                // theater play

  // A competing venue hosts a pop gig during slot 0; it pulls on Alice
  // and Bob if our events land in the same slot.
  builder.AddCompetingEvent(0, {{kAlice, 0.6f}, {kBob, 0.6f}});

  auto instance = builder.Build();
  if (!instance.ok()) {
    std::fprintf(stderr, "failed to build instance: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }

  // The Scheduler is the library's front door: it validates requests,
  // owns a worker pool for async/batch submission, and never throws.
  api::Scheduler scheduler;

  // Schedule k = 2 of the 3 candidates with the paper's GRD.
  api::SolveRequest request;
  request.solver = "grd";
  request.options.k = 2;
  // Optional run bounds (both default to "none"):
  //   request.deadline = core::Deadline::After(0.050);  // 50 ms budget
  //   request.cancel = std::make_shared<core::CancelToken>();
  const api::SolveResponse response = scheduler.Solve(*instance, request);
  if (!response.has_schedule()) {
    std::fprintf(stderr, "solve failed: %s\n",
                 response.status.ToString().c_str());
    return 1;
  }

  const char* names[] = {"pop-concert", "fashion-show", "theater-play"};
  std::printf("GRD schedule (k=2):\n");
  for (const core::Assignment& a : response.schedule) {
    std::printf("  slot %u <- %s\n", a.interval, names[a.event]);
  }
  std::printf("expected attendance (Omega): %.3f people\n",
              response.utility);

  // The result is guaranteed feasible; double-check like a downstream
  // consumer would.
  auto valid = core::ValidateAssignments(*instance, response.schedule, 2);
  std::printf("validation: %s\n", valid.ToString().c_str());
  return valid.ok() ? 0 : 1;
}
