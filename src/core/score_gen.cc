#include "core/score_gen.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "core/attendance.h"
#include "util/hot_annotations.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace ses::core {

namespace {

/// Scores intervals [lo, hi) on \p model, writing into the dense grid.
/// Returns the number of evaluations; sets \p termination and stops at
/// an interval boundary when the context says so.
///
/// SES_HOT: this is the per-shard fill of the O(|E|·|T|) generation
/// pass — every cell funnels through MarginalGain with no per-cell
/// allocation, locking, or IO.
SES_HOT uint64_t ScoreRange(const SesInstance& instance,
                            AttendanceModel& model,
                            const SolveContext& context, size_t lo, size_t hi,
                            std::vector<double>& scores,
                            util::Status* termination) {
  const size_t num_events = instance.num_events();
  uint64_t evaluations = 0;
  for (size_t t = lo; t < hi; ++t) {
    // Deliberate boundary poll: one deadline/cancellation check per
    // interval row (a clock read), amortized over |E| gain evaluations.
    if (context.CheckStop(termination)) break;  // ses-lint: allow(hot-path) boundary poll, once per |E|-cell row
    // Hoisted restrict row pointer: shards own disjoint [lo, hi) rows,
    // so nothing else aliases this row while we fill it, and the
    // compiler may keep the base address in a register across the row.
    double* SES_RESTRICT row = scores.data() + t * num_events;
    for (EventIndex e = 0; e < num_events; ++e) {
      if (model.schedule().IsAssigned(e)) continue;  // warm-started
      row[e] = model.MarginalGain(e, static_cast<IntervalIndex>(t));
      ++evaluations;
    }
  }
  return evaluations;
}

}  // namespace

ScoreGenResult GenerateAssignmentScores(const SesInstance& instance,
                                        const SolverOptions& options,
                                        const SolveContext& context,
                                        std::vector<double>& scores) {
  const size_t num_intervals = instance.num_intervals();
  SES_CHECK_EQ(scores.size(),
               num_intervals * static_cast<size_t>(instance.num_events()));

  ScoreGenResult result;

  // Resolve the shard budget: 1 = serial, 0 = every available lane.
  size_t max_shards;
  if (options.threads == 1) {
    max_shards = 1;
  } else if (options.threads == 0) {
    max_shards = 0;  // ParallelForShards: workers + caller
  } else {
    max_shards = static_cast<size_t>(options.threads);
  }

  if (max_shards == 1 || num_intervals <= 1) {
    // Serial reference path: one model, no pool.
    AttendanceModel model(instance, options.sigma_cache_capacity);
    SES_CHECK(ApplyWarmStart(model, options.warm_start).ok())
        << "warm start must be validated before score generation";
    result.gain_evaluations = ScoreRange(instance, model, context, 0,
                                         num_intervals, scores,
                                         &result.termination);
    return result;
  }

  util::ThreadPool* pool = options.pool;
  std::unique_ptr<util::ThreadPool> local_pool;
  if (pool == nullptr) {
    // Transient pool for direct Solver::Solve callers without one; the
    // caller participates in shard execution, hence the -1 (also for
    // threads == 0, where "all lanes" means hardware_concurrency lanes
    // total, not hardware_concurrency workers plus the caller). Lanes
    // are capped at the core count: more shards than cores only adds
    // thread-spawn cost, never speed, and an absurd threads value must
    // not translate into that many OS threads.
    const size_t hw = std::max<size_t>(2, std::thread::hardware_concurrency());
    const size_t lanes =
        max_shards == 0 ? hw : std::min<size_t>(max_shards, hw);
    local_pool =
        std::make_unique<util::ThreadPool>(std::max<size_t>(1, lanes - 1));
    pool = local_pool.get();
  }

  std::atomic<uint64_t> evaluations{0};
  /// Cross-shard stop aggregation; a named struct so the guarded-by
  /// relation is annotation-checkable (locals cannot carry
  /// SES_GUARDED_BY on their own).
  struct StopState {
    util::Mutex mutex;
    util::Status first_stop SES_GUARDED_BY(mutex);
  } stop;
  pool->ParallelForShards(
      0, num_intervals, max_shards, [&](size_t lo, size_t hi) {
        // One private model per shard: AttendanceModel keeps per-interval
        // scratch and is not shareable across threads. Replaying the
        // validated warm start puts every model in the exact schedule
        // state the serial pass scores under.
        AttendanceModel model(instance, options.sigma_cache_capacity);
        SES_CHECK(ApplyWarmStart(model, options.warm_start).ok())
            << "warm start must be validated before score generation";
        util::Status termination;
        evaluations.fetch_add(ScoreRange(instance, model, context, lo, hi,
                                         scores, &termination),
                              std::memory_order_relaxed);
        if (!termination.ok()) {
          util::MutexLock lock(stop.mutex);
          if (stop.first_stop.ok()) stop.first_stop = std::move(termination);
        }
      });
  result.gain_evaluations = evaluations.load();
  {
    // ParallelForShards is a barrier, but take the lock for the fan-in
    // read anyway: it is what lets the analysis prove the access, and
    // an uncontended lock here is free next to the sharded loop above.
    util::MutexLock lock(stop.mutex);
    result.termination = std::move(stop.first_stop);
  }
  return result;
}

ScoreGenResult GenerateScoredAssignments(const SesInstance& instance,
                                         const SolverOptions& options,
                                         const SolveContext& context,
                                         AttendanceModel& model,
                                         const ScoreEmit& emit) {
  ScoreGenResult result;
  const size_t num_events = instance.num_events();

  if (options.threads == 1) {
    // Serial reference path: score in place on the caller's model (which
    // counts the evaluations itself — result.gain_evaluations stays 0).
    for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
      if (context.CheckStop(&result.termination)) break;
      for (EventIndex e = 0; e < num_events; ++e) {
        if (model.schedule().IsAssigned(e)) continue;  // warm-started
        emit(e, t, model.MarginalGain(e, t));
      }
    }
    return result;
  }

  std::vector<double> scores(
      static_cast<size_t>(instance.num_intervals()) * num_events);
  result = GenerateAssignmentScores(instance, options, context, scores);
  for (IntervalIndex t = 0;
       result.termination.ok() && t < instance.num_intervals(); ++t) {
    // Assembly is O(|E|·|T|) too; keep polling at interval boundaries so
    // cancellation stays responsive between generation and selection.
    if (context.CheckStop(&result.termination)) break;
    for (EventIndex e = 0; e < num_events; ++e) {
      if (model.schedule().IsAssigned(e)) continue;  // warm-started
      emit(e, t, scores[static_cast<size_t>(t) * num_events + e]);
    }
  }
  return result;
}

}  // namespace ses::core
