#include "core/local_search.h"

#include <functional>

#include "core/greedy.h"
#include "core/objective.h"
#include "core/random_schedule.h"
#include "util/timer.h"

namespace ses::core {

MoveEngine::MoveEngine(const SesInstance& instance, AttendanceModel& model,
                       util::Rng& rng)
    : instance_(&instance), model_(&model), rng_(&rng) {}

bool MoveEngine::PickAssigned(EventIndex* event) {
  const Schedule& schedule = model_->schedule();
  if (schedule.size() == 0) return false;
  // Reservoir-free pick: scan events and keep the n-th assigned one.
  const size_t target = rng_->NextBounded(schedule.size());
  size_t seen = 0;
  for (EventIndex e = 0; e < instance_->num_events(); ++e) {
    if (!schedule.IsAssigned(e)) continue;
    if (seen == target) {
      *event = e;
      return true;
    }
    ++seen;
  }
  return false;
}

bool MoveEngine::PickUnassigned(EventIndex* event) {
  const Schedule& schedule = model_->schedule();
  const size_t unassigned =
      instance_->num_events() - schedule.size();
  if (unassigned == 0) return false;
  const size_t target = rng_->NextBounded(unassigned);
  size_t seen = 0;
  for (EventIndex e = 0; e < instance_->num_events(); ++e) {
    if (schedule.IsAssigned(e)) continue;
    if (seen == target) {
      *event = e;
      return true;
    }
    ++seen;
  }
  return false;
}

bool MoveEngine::TryRelocate(const std::function<bool(double)>& accept,
                             bool* accepted) {
  *accepted = false;
  EventIndex e;
  if (!PickAssigned(&e)) return false;
  if (instance_->num_intervals() < 2) return false;
  const IntervalIndex t0 = model_->schedule().IntervalOf(e);
  IntervalIndex t1 = static_cast<IntervalIndex>(
      rng_->NextBounded(instance_->num_intervals()));
  if (t1 == t0) t1 = (t1 + 1) % instance_->num_intervals();

  const double before = model_->total_utility();
  model_->Unapply(e);
  if (!model_->CanAssign(e, t1)) {
    model_->Apply(e, t0);  // revert
    return true;
  }
  model_->Apply(e, t1);
  const double delta = model_->total_utility() - before;
  if (accept(delta)) {
    *accepted = true;
    return true;
  }
  model_->Unapply(e);
  model_->Apply(e, t0);
  return true;
}

bool MoveEngine::TrySwap(const std::function<bool(double)>& accept,
                         bool* accepted) {
  *accepted = false;
  EventIndex out_event;
  EventIndex in_event;
  if (!PickAssigned(&out_event) || !PickUnassigned(&in_event)) return false;
  const IntervalIndex t0 = model_->schedule().IntervalOf(out_event);
  const IntervalIndex t1 = static_cast<IntervalIndex>(
      rng_->NextBounded(instance_->num_intervals()));

  const double before = model_->total_utility();
  model_->Unapply(out_event);
  if (!model_->CanAssign(in_event, t1)) {
    model_->Apply(out_event, t0);  // revert
    return true;
  }
  model_->Apply(in_event, t1);
  const double delta = model_->total_utility() - before;
  if (accept(delta)) {
    *accepted = true;
    return true;
  }
  model_->Unapply(in_event);
  model_->Apply(out_event, t0);
  return true;
}

bool MoveEngine::TryRandomMove(
    const std::function<bool(double delta)>& accept, bool* accepted) {
  if (rng_->Bernoulli(0.5)) {
    return TryRelocate(accept, accepted);
  }
  return TrySwap(accept, accepted);
}

util::Result<SolverResult> LocalSearchSolver::DoSolve(
    const SesInstance& instance, const SolverOptions& options,
    const SolveContext& context) {
  util::WallTimer timer;

  // Seed schedule. The context is threaded through, so an expiring
  // deadline leaves a partial (still feasible) seed to improve on.
  SolverResult base;
  if (options.base_solver == BaseSolver::kGreedy) {
    GreedySolver greedy;
    auto seeded = greedy.Solve(instance, options, context);
    if (!seeded.ok()) return seeded.status();
    base = std::move(seeded).value();
  } else {
    RandomSolver random;
    auto seeded = random.Solve(instance, options, context);
    if (!seeded.ok()) return seeded.status();
    base = std::move(seeded).value();
  }

  AttendanceModel model(instance, options.sigma_cache_capacity);
  for (const Assignment& a : base.assignments) {
    model.Apply(a.event, a.interval);
  }

  util::Rng rng(options.seed ^ 0x10ca15ea5c4ed01eULL);
  MoveEngine engine(instance, model, rng);
  SolverStats stats;
  util::Status termination = base.termination;
  const auto accept_improving = [](double delta) { return delta > 1e-12; };
  for (int64_t i = 0; termination.ok() && i < options.max_iterations; ++i) {
    if (context.CheckStop(&termination)) break;
    context.CountWork(1);
    bool accepted = false;
    if (!engine.TryRandomMove(accept_improving, &accepted)) break;
    ++stats.moves_tried;
    if (accepted) ++stats.moves_accepted;
  }
  stats.gain_evaluations = model.gain_evaluations();

  SolverResult result;
  result.assignments = model.schedule().Assignments();
  result.utility = TotalUtility(instance, model.schedule());
  result.wall_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  result.solver = std::string(name());
  result.termination = std::move(termination);
  return result;
}

}  // namespace ses::core
