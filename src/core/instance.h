#ifndef SES_CORE_INSTANCE_H_
#define SES_CORE_INSTANCE_H_

/// \file
/// The SES problem instance: candidate events E, disjoint time intervals
/// T, competing events C, users U, interest function mu, activity
/// probabilities sigma, organizer resources theta (paper Section II).
///
/// Interests are stored as CSR sparse rows (event -> sorted (user, mu)
/// pairs); virtually all users have zero interest in any given event, and
/// every algorithm in this library only ever iterates the non-zero
/// entries.

#include <memory>
#include <span>
#include <vector>

#include "core/sigma.h"
#include "core/types.h"
#include "util/status.h"

namespace ses::core {

/// Static properties of a candidate event.
struct CandidateEventInfo {
  /// The place (stage) hosting the event; unique per interval.
  LocationId location = 0;
  /// Resources xi_e required to organize the event.
  double required_resources = 0.0;
};

/// Static properties of a competing (third-party, pre-scheduled) event.
struct CompetingEventInfo {
  /// The interval the third party scheduled it at.
  IntervalIndex interval = kInvalidIndex;
};

/// CSR container of sparse per-event interest rows.
class InterestRows {
 public:
  /// Appends a row; \p entries must be sorted by user and hold mu in
  /// (0, 1]. Returns the row id.
  uint32_t AddRow(std::span<const std::pair<UserIndex, float>> entries);

  /// Number of rows.
  size_t num_rows() const { return offsets_.size() - 1; }

  /// Total non-zero entries.
  size_t num_entries() const { return users_.size(); }

  /// Sorted user ids of row \p row.
  std::span<const UserIndex> RowUsers(uint32_t row) const;

  /// Interest values parallel to RowUsers(row).
  std::span<const float> RowValues(uint32_t row) const;

  /// Looks up mu(user, row); 0 when absent.
  float ValueAt(uint32_t row, UserIndex user) const;

 private:
  std::vector<uint64_t> offsets_{0};
  std::vector<UserIndex> users_;
  std::vector<float> values_;
};

/// An immutable SES instance. Build through InstanceBuilder.
class SesInstance {
 public:
  /// Number of users |U|.
  uint32_t num_users() const { return num_users_; }

  /// Number of candidate events |E|.
  uint32_t num_events() const {
    return static_cast<uint32_t>(events_.size());
  }

  /// Number of disjoint time intervals |T|.
  uint32_t num_intervals() const { return num_intervals_; }

  /// Number of competing events |C|.
  uint32_t num_competing() const {
    return static_cast<uint32_t>(competing_.size());
  }

  /// Organizer resources theta available within any single interval.
  double theta() const { return theta_; }

  /// Candidate event metadata.
  const CandidateEventInfo& event(EventIndex e) const;

  /// Competing event metadata.
  const CompetingEventInfo& competing(CompetingIndex c) const;

  /// Competing events pre-scheduled at interval \p t (C_t).
  std::span<const CompetingIndex> CompetingAt(IntervalIndex t) const;

  /// Sparse interest row of candidate event \p e.
  std::span<const UserIndex> EventUsers(EventIndex e) const {
    return event_interest_.RowUsers(e);
  }
  std::span<const float> EventValues(EventIndex e) const {
    return event_interest_.RowValues(e);
  }

  /// mu(user, candidate event); 0 when the user is uninterested.
  float EventInterest(EventIndex e, UserIndex u) const {
    return event_interest_.ValueAt(e, u);
  }

  /// Sparse interest row of competing event \p c.
  std::span<const UserIndex> CompetingUsers(CompetingIndex c) const {
    return competing_interest_.RowUsers(c);
  }
  std::span<const float> CompetingValues(CompetingIndex c) const {
    return competing_interest_.RowValues(c);
  }

  /// mu(user, competing event); 0 when the user is uninterested.
  float CompetingInterest(CompetingIndex c, UserIndex u) const {
    return competing_interest_.ValueAt(c, u);
  }

  /// The activity-probability provider sigma.
  const SigmaProvider& sigma() const { return *sigma_; }

  /// Total non-zero candidate interest entries (for reporting).
  size_t num_interest_entries() const {
    return event_interest_.num_entries();
  }

 private:
  friend class InstanceBuilder;
  SesInstance() = default;

  uint32_t num_users_ = 0;
  uint32_t num_intervals_ = 0;
  double theta_ = 0.0;
  std::vector<CandidateEventInfo> events_;
  std::vector<CompetingEventInfo> competing_;
  std::vector<std::vector<CompetingIndex>> interval_competing_;
  InterestRows event_interest_;
  InterestRows competing_interest_;
  std::shared_ptr<const SigmaProvider> sigma_;
};

/// Step-by-step construction and validation of a SesInstance.
class InstanceBuilder {
 public:
  InstanceBuilder& SetNumUsers(uint32_t n);
  InstanceBuilder& SetNumIntervals(uint32_t n);
  InstanceBuilder& SetTheta(double theta);
  InstanceBuilder& SetSigma(std::shared_ptr<const SigmaProvider> sigma);

  /// Adds a candidate event. \p interests: sorted by user, mu in (0, 1].
  /// Returns its EventIndex.
  EventIndex AddEvent(LocationId location, double required_resources,
                      std::vector<std::pair<UserIndex, float>> interests);

  /// Adds a competing event pre-scheduled at \p interval.
  CompetingIndex AddCompetingEvent(
      IntervalIndex interval,
      std::vector<std::pair<UserIndex, float>> interests);

  /// Validates and produces the instance. The builder is left in a
  /// moved-from state on success.
  [[nodiscard]] util::Result<SesInstance> Build();

 private:
  struct PendingRow {
    std::vector<std::pair<UserIndex, float>> entries;
  };

  [[nodiscard]] util::Status ValidateRow(
      const std::vector<std::pair<UserIndex, float>>& row,
      const char* what, size_t index) const;

  uint32_t num_users_ = 0;
  uint32_t num_intervals_ = 0;
  double theta_ = 0.0;
  std::shared_ptr<const SigmaProvider> sigma_;
  std::vector<CandidateEventInfo> events_;
  std::vector<PendingRow> event_rows_;
  std::vector<CompetingEventInfo> competing_;
  std::vector<PendingRow> competing_rows_;
};

}  // namespace ses::core

#endif  // SES_CORE_INSTANCE_H_
