#include "core/greedy.h"

#include <algorithm>

#include "core/attendance.h"
#include "core/objective.h"
#include "core/score_gen.h"
#include "util/timer.h"

namespace ses::core {

namespace {

/// One entry of the assignment list L.
struct ScoredAssignment {
  EventIndex event;
  IntervalIndex interval;
  double score;
};

}  // namespace

util::Result<SolverResult> GreedySolver::DoSolve(
    const SesInstance& instance, const SolverOptions& options,
    const SolveContext& context) {
  util::WallTimer timer;

  AttendanceModel model(instance, options.sigma_cache_capacity);
  SES_RETURN_IF_ERROR(ApplyWarmStart(model, options.warm_start));
  SolverStats stats;
  util::Status termination;

  // Algorithm 1, lines 2-4: generate all assignments with their scores.
  // GenerateScoredAssignments emits in serial t-major order at every
  // SolverOptions::threads value (in place on `model` when serial,
  // sharded engines into a grid otherwise), so L is byte-identical
  // across thread counts (tests/core_parallel_solve_test.cc pins this).
  std::vector<ScoredAssignment> list;
  list.reserve(static_cast<size_t>(instance.num_events()) *
               instance.num_intervals());
  const ScoreGenResult generated = GenerateScoredAssignments(
      instance, options, context, model,
      [&list](EventIndex e, IntervalIndex t, double score) {
        list.push_back({e, t, score});
      });
  termination = generated.termination;

  const size_t k = static_cast<size_t>(options.k);
  // Algorithm 1, lines 5-13. Skipped entirely when generation was cut
  // short: selecting from a partial list would bias toward low intervals.
  while (termination.ok() && model.schedule().size() < k && !list.empty()) {
    if (context.CheckStop(&termination)) break;
    context.CountWork(1);
    // popTopAssgn: find and remove the largest-score assignment.
    size_t best = 0;
    for (size_t i = 1; i < list.size(); ++i) {
      if (list[i].score > list[best].score) best = i;
    }
    ++stats.pops;
    const ScoredAssignment top = list[best];
    list[best] = list.back();
    list.pop_back();

    if (!model.CanAssign(top.event, top.interval)) continue;
    model.Apply(top.event, top.interval);

    if (model.schedule().size() >= k) break;

    // Update pass: recompute scores of valid assignments referring to the
    // chosen interval; remove invalid assignments from L.
    size_t write = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      ScoredAssignment a = list[i];
      if (!model.CanAssign(a.event, a.interval)) continue;  // drop
      if (a.interval == top.interval) {
        a.score = model.MarginalGain(a.event, a.interval);
        ++stats.updates;
      }
      list[write++] = a;
    }
    list.resize(write);
  }

  // Sharded generation ran on shard-private engines; fold their
  // evaluation count into the main model's so the total matches the
  // serial single-model accounting exactly (zero on the serial path,
  // where the main model scored everything itself).
  stats.gain_evaluations =
      model.gain_evaluations() + generated.gain_evaluations;

  SolverResult result;
  result.assignments = model.schedule().Assignments();
  result.utility = TotalUtility(instance, model.schedule());
  result.wall_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  result.solver = std::string(name());
  result.termination = std::move(termination);
  return result;
}

}  // namespace ses::core
