#include "core/kernels.h"

#include <algorithm>

namespace ses::core::kernels {

// Each kernel body is the scalar loop it replaced, verbatim in
// operation order — the differential harness asserts bit-identity, so
// any "obvious" algebraic cleanup here is a test failure. What changed
// is the calling convention: restrict-qualified raw pointers and no
// virtual dispatch, so the compiler vectorizes instead of assuming
// aliasing.

void FillSigmaConst(float value, std::span<float> out) {
  std::fill(out.begin(), out.end(), value);
}

void FillSigmaHash(uint64_t seed, IntervalIndex t, std::span<float> out) {
  float* SES_RESTRICT dst = out.data();
  const size_t n = out.size();
  for (size_t u = 0; u < n; ++u) {
    dst[u] = static_cast<float>(
        HashSigma(seed, static_cast<UserIndex>(u), t));
  }
}

void CopySigmaRow(std::span<const float> row, std::span<float> out) {
  std::copy(row.begin(), row.begin() + out.size(), out.begin());
}

void ClearTouched(const UserIndex* SES_RESTRICT touched, size_t n,
                  double* SES_RESTRICT denom,
                  double* SES_RESTRICT sched_mass,
                  uint8_t* SES_RESTRICT in_touched) {
  for (size_t i = 0; i < n; ++i) {
    const UserIndex u = touched[i];
    denom[u] = 0.0;
    sched_mass[u] = 0.0;
    in_touched[u] = 0;
  }
}

size_t ScatterMasses(const UserIndex* SES_RESTRICT users,
                     const double* SES_RESTRICT masses, size_t n,
                     double* SES_RESTRICT denom,
                     UserIndex* SES_RESTRICT touched,
                     uint8_t* SES_RESTRICT in_touched) {
  for (size_t i = 0; i < n; ++i) {
    const UserIndex u = users[i];
    touched[i] = u;
    in_touched[u] = 1;
    denom[u] = masses[i];
  }
  return n;
}

size_t AccumulateMass(const UserIndex* SES_RESTRICT users,
                      const float* SES_RESTRICT values, size_t n,
                      double* SES_RESTRICT denom,
                      double* SES_RESTRICT sched_mass,
                      UserIndex* SES_RESTRICT touched,
                      uint8_t* SES_RESTRICT in_touched,
                      size_t num_touched) {
  if (sched_mass == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      const UserIndex u = users[i];
      if (denom[u] == 0.0 && in_touched[u] == 0) {
        in_touched[u] = 1;
        touched[num_touched++] = u;
      }
      denom[u] += static_cast<double>(values[i]);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const UserIndex u = users[i];
      if (denom[u] == 0.0 && in_touched[u] == 0) {
        in_touched[u] = 1;
        touched[num_touched++] = u;
      }
      denom[u] += static_cast<double>(values[i]);
      sched_mass[u] += static_cast<double>(values[i]);
    }
  }
  return num_touched;
}

size_t TouchMass(const UserIndex* SES_RESTRICT users,
                 const float* SES_RESTRICT values, size_t n, double sign,
                 double* SES_RESTRICT denom,
                 double* SES_RESTRICT sched_mass,
                 UserIndex* SES_RESTRICT touched,
                 uint8_t* SES_RESTRICT in_touched, size_t num_touched) {
  for (size_t i = 0; i < n; ++i) {
    const UserIndex u = users[i];
    const double mu = sign * static_cast<double>(values[i]);
    if (denom[u] == 0.0 && mu > 0.0 && in_touched[u] == 0) {
      in_touched[u] = 1;
      touched[num_touched++] = u;
    }
    denom[u] += mu;
    sched_mass[u] += mu;
    // Guard against negative residue from floating-point cancellation.
    if (denom[u] < 0.0) denom[u] = 0.0;
    if (sched_mass[u] < 0.0) sched_mass[u] = 0.0;
  }
  return num_touched;
}

double LuceGain(const UserIndex* SES_RESTRICT users,
                const float* SES_RESTRICT values, size_t n,
                const double* SES_RESTRICT denom,
                const double* SES_RESTRICT sched_mass,
                const float* SES_RESTRICT sigma) {
  double gain = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const UserIndex u = users[i];
    const double x = static_cast<double>(values[i]);
    const double d = denom[u];
    const double m = sched_mass[u];
    // (M + x) / (D + x) - M / D; the old term vanishes when D == 0
    // (then M == 0 as well and the new term is x / x = 1).
    const double term_new = (m + x) / (d + x);
    const double term_old = d > 0.0 ? m / d : 0.0;
    gain += static_cast<double>(sigma[u]) * (term_new - term_old);
  }
  return gain;
}

double LuceLoss(const UserIndex* SES_RESTRICT users,
                const float* SES_RESTRICT values, size_t n,
                const double* SES_RESTRICT denom,
                const double* SES_RESTRICT sched_mass,
                const float* SES_RESTRICT sigma) {
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const UserIndex u = users[i];
    const double x = static_cast<double>(values[i]);
    const double d = denom[u];
    const double m = sched_mass[u];
    const double term_with = d > 0.0 ? m / d : 0.0;
    const double d_without = d - x;
    const double m_without = m - x;
    const double term_without =
        d_without > 1e-12 ? (m_without > 0.0 ? m_without / d_without : 0.0)
                          : 0.0;
    loss += static_cast<double>(sigma[u]) * (term_with - term_without);
  }
  return loss;
}

}  // namespace ses::core::kernels
