#ifndef SES_CORE_EXACT_H_
#define SES_CORE_EXACT_H_

/// \file
/// Exact branch-and-bound solver for small SES instances.
///
/// SES is strongly NP-hard (paper Theorem 1), so this solver is strictly
/// a quality yardstick: tests compare GRD/TOP/RAND utilities against the
/// optimum on instances with a handful of events and intervals.
///
/// Search space: schedules are *sets* of assignments, so the search
/// enumerates events in increasing index order (combination enumeration,
/// no permutations) and tries every interval — plus "skip" — for each.
/// Bound: a marginal gain can never exceed the empty-schedule score of
/// the same assignment (gains are non-increasing in the scheduled mass,
/// see core/attendance.h), so
///
///   Omega(S extended by k' more events) <= Omega(S) + sum of the k'
///     largest empty-schedule event scores among remaining events.
///
/// Nodes whose bound cannot beat the incumbent are pruned.

#include "core/solver.h"

namespace ses::core {

/// Exhaustive branch-and-bound; fails with ResourceExhausted when the
/// node budget (options.max_nodes) is hit.
class ExactSolver final : public Solver {
 public:
  std::string_view name() const override { return "exact"; }

 protected:
  [[nodiscard]] util::Result<SolverResult> DoSolve(const SesInstance& instance,
                                     const SolverOptions& options,
                                     const SolveContext& context) override;
};

}  // namespace ses::core

#endif  // SES_CORE_EXACT_H_
