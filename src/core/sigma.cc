#include "core/sigma.h"

namespace ses::core {

namespace {

/// SplitMix64-style finalizer over the packed (seed, u, t) key.
inline uint64_t MixKey(uint64_t seed, UserIndex u, IntervalIndex t) {
  uint64_t z = seed ^ (static_cast<uint64_t>(u) * 0x9e3779b97f4a7c15ULL) ^
               (static_cast<uint64_t>(t) + 0xbf58476d1ce4e5b9ULL) *
                   0x94d049bb133111ebULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void SigmaProvider::FillInterval(IntervalIndex t,
                                 std::span<float> out) const {
  for (size_t u = 0; u < out.size(); ++u) {
    out[u] = static_cast<float>(At(static_cast<UserIndex>(u), t));
  }
}

void ConstSigma::FillInterval(IntervalIndex, std::span<float> out) const {
  std::fill(out.begin(), out.end(), static_cast<float>(value_));
}

DenseSigma::DenseSigma(std::vector<std::vector<float>> rows)
    : rows_(std::move(rows)) {
  for (size_t t = 1; t < rows_.size(); ++t) {
    SES_CHECK_EQ(rows_[t].size(), rows_[0].size());
  }
  for (const auto& row : rows_) {
    for (float v : row) {
      SES_CHECK_GE(v, 0.0f);
      SES_CHECK_LE(v, 1.0f);
    }
  }
}

double DenseSigma::At(UserIndex u, IntervalIndex t) const {
  SES_CHECK_LT(t, rows_.size());
  SES_CHECK_LT(u, rows_[t].size());
  return rows_[t][u];
}

void DenseSigma::FillInterval(IntervalIndex t, std::span<float> out) const {
  SES_CHECK_LT(t, rows_.size());
  SES_CHECK_LE(out.size(), rows_[t].size());
  std::copy(rows_[t].begin(), rows_[t].begin() + out.size(), out.begin());
}

double HashUniformSigma::At(UserIndex u, IntervalIndex t) const {
  return static_cast<double>(MixKey(seed_, u, t) >> 11) * 0x1.0p-53;
}

void HashUniformSigma::FillInterval(IntervalIndex t,
                                    std::span<float> out) const {
  for (size_t u = 0; u < out.size(); ++u) {
    out[u] = static_cast<float>(At(static_cast<UserIndex>(u), t));
  }
}

}  // namespace ses::core
