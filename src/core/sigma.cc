#include "core/sigma.h"

#include "core/kernels.h"

namespace ses::core {

void SigmaProvider::FillInterval(IntervalIndex t,
                                 std::span<float> out) const {
  for (size_t u = 0; u < out.size(); ++u) {
    out[u] = static_cast<float>(At(static_cast<UserIndex>(u), t));
  }
}

void ConstSigma::FillInterval(IntervalIndex, std::span<float> out) const {
  kernels::FillSigmaConst(static_cast<float>(value_), out);
}

DenseSigma::DenseSigma(std::vector<std::vector<float>> rows)
    : rows_(std::move(rows)) {
  for (size_t t = 1; t < rows_.size(); ++t) {
    SES_CHECK_EQ(rows_[t].size(), rows_[0].size());
  }
  for (const auto& row : rows_) {
    for (float v : row) {
      SES_CHECK_GE(v, 0.0f);
      SES_CHECK_LE(v, 1.0f);
    }
  }
}

double DenseSigma::At(UserIndex u, IntervalIndex t) const {
  SES_CHECK_LT(t, rows_.size());
  SES_CHECK_LT(u, rows_[t].size());
  return rows_[t][u];
}

void DenseSigma::FillInterval(IntervalIndex t, std::span<float> out) const {
  SES_CHECK_LT(t, rows_.size());
  SES_CHECK_LE(out.size(), rows_[t].size());
  kernels::CopySigmaRow(rows_[t], out);
}

double HashUniformSigma::At(UserIndex u, IntervalIndex t) const {
  return kernels::HashSigma(seed_, u, t);
}

void HashUniformSigma::FillInterval(IntervalIndex t,
                                    std::span<float> out) const {
  kernels::FillSigmaHash(seed_, t, out);
}

}  // namespace ses::core
