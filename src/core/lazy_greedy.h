#ifndef SES_CORE_LAZY_GREEDY_H_
#define SES_CORE_LAZY_GREEDY_H_

/// \file
/// Lazy greedy (CELF-style) — an optimized variant of GRD, an extension
/// beyond the paper.
///
/// GRD recomputes the score of every remaining assignment that refers to
/// the chosen interval after each selection. But per-user marginal gains
/// are *non-increasing* in the interval's scheduled interest mass (see
/// core/attendance.h), so a stale score is always an upper bound on the
/// true current score. That is precisely the invariant CELF
/// (cost-effective lazy forward selection, Leskovec et al. KDD'07)
/// exploits: keep assignments in a max-heap keyed by (possibly stale)
/// scores; on pop, if the score was computed before the interval last
/// changed, recompute and push back; otherwise the entry is both fresh
/// and maximal, so select it.
///
/// The result matches GRD's selection sequence whenever scores are
/// distinct; the ablation bench quantifies how many Eq. 4 evaluations the
/// laziness avoids.

#include "core/solver.h"

namespace ses::core {

/// Lazy (heap-based) greedy.
class LazyGreedySolver final : public Solver {
 public:
  std::string_view name() const override { return "lazy"; }

 protected:
  [[nodiscard]] util::Result<SolverResult> DoSolve(const SesInstance& instance,
                                     const SolverOptions& options,
                                     const SolveContext& context) override;
};

}  // namespace ses::core

#endif  // SES_CORE_LAZY_GREEDY_H_
