#ifndef SES_CORE_GREEDY_H_
#define SES_CORE_GREEDY_H_

/// \file
/// GRD — the paper's greedy approximation algorithm (Algorithm 1).
///
/// GRD first computes the assignment score (Eq. 4) of every (event,
/// interval) pair and stores them in a list L. It then repeats k times:
/// pop the top-scoring assignment from L; if it is valid (event not yet
/// assigned + feasible) insert it into the schedule and recompute the
/// scores of the remaining assignments that refer to the chosen interval
/// (scores of other intervals are unaffected — Eq. 4 only depends on the
/// events co-located in the assignment's interval). Invalid assignments
/// encountered during the update pass are dropped from L (Algorithm 1,
/// line 13).

#include "core/solver.h"

namespace ses::core {

/// The paper's GRD, faithful to Algorithm 1: L is a flat list, pop-top is
/// a linear scan, and updates rewrite scores in place.
class GreedySolver final : public Solver {
 public:
  std::string_view name() const override { return "grd"; }

 protected:
  [[nodiscard]] util::Result<SolverResult> DoSolve(const SesInstance& instance,
                                     const SolverOptions& options,
                                     const SolveContext& context) override;
};

}  // namespace ses::core

#endif  // SES_CORE_GREEDY_H_
