#include "core/schedule.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace ses::core {

Schedule::Schedule(const SesInstance& instance)
    : instance_(&instance),
      event_interval_(instance.num_events(), kInvalidIndex),
      interval_events_(instance.num_intervals()),
      interval_resources_(instance.num_intervals(), 0.0) {}

bool Schedule::IsAssigned(EventIndex e) const {
  SES_CHECK_LT(e, event_interval_.size());
  return event_interval_[e] != kInvalidIndex;
}

IntervalIndex Schedule::IntervalOf(EventIndex e) const {
  SES_CHECK_LT(e, event_interval_.size());
  return event_interval_[e];
}

const std::vector<EventIndex>& Schedule::EventsAt(IntervalIndex t) const {
  SES_CHECK_LT(t, interval_events_.size());
  return interval_events_[t];
}

double Schedule::UsedResources(IntervalIndex t) const {
  SES_CHECK_LT(t, interval_resources_.size());
  return interval_resources_[t];
}

bool Schedule::CanAssign(EventIndex e, IntervalIndex t) const {
  if (e >= event_interval_.size() || t >= interval_events_.size()) {
    return false;
  }
  if (event_interval_[e] != kInvalidIndex) return false;
  const CandidateEventInfo& info = instance_->event(e);
  if (interval_resources_[t] + info.required_resources >
      instance_->theta()) {
    return false;
  }
  for (EventIndex other : interval_events_[t]) {
    if (instance_->event(other).location == info.location) return false;
  }
  return true;
}

util::Status Schedule::Assign(EventIndex e, IntervalIndex t) {
  if (e >= event_interval_.size()) {
    return util::Status::OutOfRange(
        util::StrFormat("event %u out of range", e));
  }
  if (t >= interval_events_.size()) {
    return util::Status::OutOfRange(
        util::StrFormat("interval %u out of range", t));
  }
  if (event_interval_[e] != kInvalidIndex) {
    return util::Status::FailedPrecondition(
        util::StrFormat("event %u already assigned", e));
  }
  if (!CanAssign(e, t)) {
    return util::Status::Infeasible(util::StrFormat(
        "assignment of event %u to interval %u violates a constraint", e,
        t));
  }
  event_interval_[e] = t;
  interval_events_[t].push_back(e);
  interval_resources_[t] += instance_->event(e).required_resources;
  ++size_;
  return util::Status::Ok();
}

util::Status Schedule::Unassign(EventIndex e) {
  if (e >= event_interval_.size()) {
    return util::Status::OutOfRange(
        util::StrFormat("event %u out of range", e));
  }
  const IntervalIndex t = event_interval_[e];
  if (t == kInvalidIndex) {
    return util::Status::FailedPrecondition(
        util::StrFormat("event %u not assigned", e));
  }
  auto& events = interval_events_[t];
  events.erase(std::find(events.begin(), events.end(), e));
  interval_resources_[t] -= instance_->event(e).required_resources;
  if (interval_resources_[t] < 0.0) interval_resources_[t] = 0.0;
  event_interval_[e] = kInvalidIndex;
  --size_;
  return util::Status::Ok();
}

std::vector<Assignment> Schedule::Assignments() const {
  std::vector<Assignment> out;
  out.reserve(size_);
  for (EventIndex e = 0; e < event_interval_.size(); ++e) {
    if (event_interval_[e] != kInvalidIndex) {
      out.push_back({e, event_interval_[e]});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Schedule::Clear() {
  std::fill(event_interval_.begin(), event_interval_.end(), kInvalidIndex);
  for (auto& events : interval_events_) events.clear();
  std::fill(interval_resources_.begin(), interval_resources_.end(), 0.0);
  size_ = 0;
}

util::Status ApplyWarmStart(Schedule& schedule,
                            std::span<const Assignment> warm_start) {
  for (const Assignment& a : warm_start) {
    if (auto status = schedule.Assign(a.event, a.interval); !status.ok()) {
      return util::Status::InvalidArgument(util::StrFormat(
          "warm-start assignment of event %u to interval %u is "
          "infeasible: %s",
          a.event, a.interval, status.message().c_str()));
    }
  }
  return util::Status::Ok();
}

}  // namespace ses::core
