#ifndef SES_CORE_VALIDATE_H_
#define SES_CORE_VALIDATE_H_

/// \file
/// Standalone schedule validation, independent of the Schedule class's
/// own bookkeeping — used to double-check every solver result in tests
/// and benches.

#include <span>

#include "core/instance.h"
#include "core/types.h"
#include "util/status.h"

namespace ses::core {

/// Checks that \p assignments form a feasible schedule of \p instance:
/// in-range indices, no event assigned twice, per-interval location
/// uniqueness, and per-interval resource totals within theta. When
/// \p expected_k >= 0 the assignment count must equal it.
[[nodiscard]] util::Status ValidateAssignments(const SesInstance& instance,
                                 std::span<const Assignment> assignments,
                                 int64_t expected_k = -1);

}  // namespace ses::core

#endif  // SES_CORE_VALIDATE_H_
