#ifndef SES_CORE_SCORE_GEN_H_
#define SES_CORE_SCORE_GEN_H_

/// \file
/// Assignment-score generation shared by the constructive solvers
/// (Algorithm 1, lines 2-4 of the paper): the marginal gain of every
/// (event, interval) pair under the warm-start-only schedule. This
/// O(|E|·|T|) sweep dominates GRD/lazy runtime on paper-scale instances
/// and is embarrassingly parallel — no pair's score depends on another —
/// so it shards interval-contiguously across a util::ThreadPool with one
/// private AttendanceModel per shard.
///
/// Determinism contract: the score of (e, t) is a pure function of the
/// instance and the warm start (each shard model replays the warm start
/// in request order and accumulates the same doubles in the same order
/// the serial pass does), so the filled score grid is bit-identical for
/// every shard count, including the serial reference path. Solvers that
/// assemble their candidate list from the grid in serial (t-major,
/// e-minor) order therefore produce byte-identical results at any
/// SolverOptions::threads value.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/attendance.h"
#include "core/instance.h"
#include "core/solve_context.h"
#include "core/solver.h"
#include "util/status.h"

namespace ses::core {

/// Outcome of one generation pass.
struct ScoreGenResult {
  /// Eq. 4 evaluations performed on shard-private engines — i.e. the
  /// evaluations *not* already counted by the caller's own model. Zero
  /// on the serial path (where the caller's model scores everything);
  /// on a completed sharded pass, the number of unassigned
  /// (event, interval) pairs. Solvers report
  /// model.gain_evaluations() + this, which equals the serial
  /// single-model count at every shard count.
  uint64_t gain_evaluations = 0;

  /// OK on a completed pass; the stop status (kDeadlineExceeded /
  /// kCancelled) when \p context interrupted generation. On interruption
  /// the emitted scores cover only a prefix and callers must not select
  /// from them (both GRD variants fall back to returning the warm start).
  util::Status termination;
};

/// Receives one scored pair during assembly: emit(e, t, score).
using ScoreEmit =
    std::function<void(EventIndex, IntervalIndex, double)>;

/// Fills scores[t * instance.num_events() + e] with the marginal gain of
/// assigning event \p e to interval \p t under the warm-start-only
/// schedule, for every unassigned event and every interval. Entries of
/// warm-started events are left untouched. \p scores must be pre-sized
/// to num_intervals() * num_events().
///
/// options.threads selects the shard count (see SolverOptions); shards
/// run on options.pool when set, else on a transient local pool. The
/// warm start must already be validated (the caller applied it to its
/// own model) — shard models replay it and treat failure as a
/// programming error.
ScoreGenResult GenerateAssignmentScores(const SesInstance& instance,
                                        const SolverOptions& options,
                                        const SolveContext& context,
                                        std::vector<double>& scores);

/// The full generation + assembly stage shared by GRD and lazy greedy:
/// scores every unassigned (e, t) pair under \p model's current
/// (warm-start-only) schedule and invokes \p emit in serial t-major,
/// e-minor order — the order both solvers build their candidate
/// structures in, so the emitted sequence is bit-identical at every
/// SolverOptions::threads value.
///
/// threads == 1 scores directly on \p model (the original in-place loop:
/// no grid, no second engine); otherwise the sharded grid pass above
/// runs first and assembly replays it. Both paths poll \p context at
/// interval boundaries; on a stop the emitted sequence is a prefix and
/// result.termination is the stop status.
ScoreGenResult GenerateScoredAssignments(const SesInstance& instance,
                                         const SolverOptions& options,
                                         const SolveContext& context,
                                         AttendanceModel& model,
                                         const ScoreEmit& emit);

}  // namespace ses::core

#endif  // SES_CORE_SCORE_GEN_H_
