#ifndef SES_CORE_ATTENDANCE_H_
#define SES_CORE_ATTENDANCE_H_

/// \file
/// Incremental Luce-choice attendance engine.
///
/// The assignment score of Eq. 4 telescopes into a per-user closed form.
/// Let, for user u at interval t,
///
///   C = sum of u's interest over competing events C_t,
///   M = sum of u's interest over already-scheduled events E_t(S),
///   D = C + M,
///   x = mu(u, r) for the event r being placed.
///
/// Then the change in the interval's utility contributed by u is
///
///   gain_u = sigma(u,t) * [ (M + x) / (D + x)  -  (D > 0 ? M / D : 0) ].
///
/// Two facts drive the algorithms built on top (proofs inline in the
/// implementation; property-tested in tests/core_attendance_test.cc):
///
///   (1) gain_u >= 0, so greedy progress never decreases utility;
///   (2) d(gain_u)/dM < 0 whenever C > 0, i.e. marginal gains only shrink
///       as the interval fills up — which is what justifies both GRD's
///       "only update the chosen interval" rule and the lazy (CELF-style)
///       greedy variant.
///
/// The engine keeps its dense per-user scratch for a single "loaded"
/// interval at a time as a structure-of-arrays bundle (core::IntervalSoA:
/// D, M, sigma row, touched list — contiguous 64-byte-aligned spans),
/// and every inner loop over that scratch is a batched span kernel from
/// core/kernels.h rather than an open-coded scalar loop. GRD's access
/// pattern (interval-major initial sweep, then one interval per
/// iteration) makes this the right trade: marginal gains cost
/// O(nnz(row)) with pure array reads, now through restrict-qualified
/// pointers the compiler can vectorize.
///
/// Reloading an interval used to recompute its schedule-independent
/// state from scratch every time: the aggregated competing-event
/// interest mass (the C part of D) and the full sigma row — for the
/// hash-based sigma provider that is |U| hash evaluations per reload,
/// the dominant cost of move-based solvers that hop between intervals
/// thousands of times. Both are now cached per interval. The cache is
/// populated on an interval's *second* load, so one-shot sweeps (GRD's
/// generation pass touches each interval exactly once) pay no extra
/// memory, while reload-heavy callers (local search, annealing, GRD's
/// update passes) hit pure array reads. Cached masses are stored as the
/// same doubles the uncached path accumulates, so results are
/// bit-for-bit identical with and without the cache
/// (tests/core_sigma_cache_test.cc pins this).
///
/// On paper-scale instances a materialized entry holds up to |U| floats
/// plus the competing masses, per interval — |T|·|U| worst case per
/// model. The optional `sigma_cache_capacity` constructor knob
/// (surfaced as SolverOptions::sigma_cache_capacity) bounds that: at
/// most `capacity` intervals keep materialized entries, with
/// least-recently-loaded eviction. An evicted interval falls back to
/// the uncached scratch path until it again proves reload-heavy, so
/// the cap is a pure memory/speed trade — results stay bit-identical
/// at any capacity.

#include <cstdint>
#include <span>
#include <vector>

#include "core/instance.h"
#include "core/kernels.h"
#include "core/schedule.h"
#include "core/types.h"
#include "util/aligned.h"
#include "util/hot_annotations.h"
#include "util/status.h"

namespace ses::core {

/// Incremental schedule + utility tracker.
class AttendanceModel {
 public:
  /// \param sigma_cache_capacity max intervals with materialized cache
  /// entries (LRU-evicted beyond that); 0 = unlimited.
  explicit AttendanceModel(const SesInstance& instance,
                           size_t sigma_cache_capacity = 0);

  // sigma_row_ points into this object's own buffers (scratch or the
  // interval cache); a copied or moved model would silently dangle.
  AttendanceModel(const AttendanceModel&) = delete;
  AttendanceModel& operator=(const AttendanceModel&) = delete;

  /// The evolving schedule.
  const Schedule& schedule() const { return schedule_; }

  /// Validity check: unassigned event + feasibility (delegates to
  /// Schedule::CanAssign).
  bool CanAssign(EventIndex e, IntervalIndex t) const {
    return schedule_.CanAssign(e, t);
  }

  /// Eq. 4: utility gain of assigning unassigned event \p e to \p t under
  /// the current schedule. Does not modify the schedule. The sum itself
  /// is kernels::LuceGain over the loaded SoA spans.
  ///
  /// SES_HOT: the O(|E|·|T|) score-generation loop (Algorithm 1 lines
  /// 2–4) funnels through here — the hot-path lint proves this call
  /// tree allocation-, lock-, and IO-free, and
  /// tests/core_hot_path_alloc_test.cc re-proves it at runtime.
  SES_HOT double MarginalGain(EventIndex e, IntervalIndex t);

  /// Assigns e to t (must be valid) and updates the tracked utility by
  /// the exact gain.
  void Apply(EventIndex e, IntervalIndex t);

  /// Removes assigned event \p e, updating the tracked utility.
  void Unapply(EventIndex e);

  /// Utility tracked incrementally across Apply/Unapply calls.
  double total_utility() const { return total_utility_; }

  /// Number of Eq. 4 evaluations performed so far (for complexity
  /// accounting in the experiments).
  uint64_t gain_evaluations() const { return gain_evaluations_; }

 private:
  /// Rebuilds the SoA scratch (denominators, scheduled mass, sigma row)
  /// for interval \p t unless already loaded, via the scatter kernels
  /// in core/kernels.h. Steady-state loads (cache replay or scratch
  /// accumulate) are allocation-free: every SoA span is sized to its
  /// instance-dimension bound at construction, and the one
  /// materializing path is split into MaterializeCache below.
  SES_HOT void LoadInterval(IntervalIndex t);

  /// Adds (sign=+1) or removes (sign=-1) event \p e's interest row from
  /// the loaded scratch (kernels::TouchMass).
  SES_HOT void TouchLoaded(EventIndex e, double sign);

  /// Schedule-independent per-interval state, cached on second load.
  /// Stored structure-of-arrays (parallel user/mass vectors) so cache
  /// replay is a contiguous two-span scatter (kernels::ScatterMasses)
  /// instead of a pair-walk.
  struct IntervalCache {
    /// Saturating load counter; the cache materializes at 2. Reset on
    /// eviction, so an evicted interval must prove itself reload-heavy
    /// again before re-materializing — a cyclic working set larger
    /// than the capacity degrades toward the scratch path instead of
    /// re-materializing (and re-evicting) on every single load.
    uint8_t loads = 0;
    bool ready = false;
    /// LRU stamp: value of lru_clock_ at the last load of this entry.
    uint64_t last_used = 0;
    /// Users with non-zero competing mass, parallel to competing_mass.
    std::vector<UserIndex> competing_users;
    /// Aggregated competing-event interest mass per user (C), doubles to
    /// keep cached reloads bitwise identical to the uncached path.
    util::AlignedVector<double> competing_mass;
    /// Dense sigma(u, t) row, kernel-aligned like the scratch row it
    /// substitutes for.
    util::AlignedVector<float> sigma;
  };

  /// The deliberately cold half of LoadInterval: snapshots interval
  /// \p t's competing masses and sigma row into its cache entry
  /// (allocating) on the interval's second load. Runs at most once per
  /// interval per eviction cycle — its call edge carries the hot-path
  /// suppression so the allocations stay quarantined here.
  void MaterializeCache(IntervalIndex t, IntervalCache& cache);

  /// Frees the least-recently-loaded ready entry (capacity reached).
  void EvictLeastRecent();

  const SesInstance* instance_;
  Schedule schedule_;

  IntervalIndex loaded_ = kInvalidIndex;
  /// D / M / sigma scratch + touched list for the loaded interval, as
  /// contiguous aligned spans (see core/kernels.h for the layout and
  /// the bit-identity contract of the kernels that walk it).
  IntervalSoA soa_;
  const float* sigma_row_ = nullptr;  ///< sigma(u, loaded interval)
  std::vector<IntervalCache> interval_cache_;  ///< one slot per interval
  size_t cache_capacity_ = 0;  ///< max ready entries; 0 = unlimited
  uint64_t lru_clock_ = 0;     ///< monotonic load stamp source
  /// Intervals with a ready cache entry, maintained only under a
  /// capacity bound (size <= cache_capacity_) so eviction scans
  /// O(capacity) candidates, not all |T| slots.
  std::vector<IntervalIndex> ready_intervals_;

  double total_utility_ = 0.0;
  uint64_t gain_evaluations_ = 0;
};

/// Applies a warm start to a freshly constructed model. Returns
/// InvalidArgument (instead of aborting) when an assignment is not
/// applicable — the typed-error counterpart of the api::Scheduler
/// validation path for solvers invoked directly through Solver::Solve.
/// Warm-start Apply calls do not count as gain evaluations.
[[nodiscard]] util::Status ApplyWarmStart(AttendanceModel& model,
                            std::span<const Assignment> warm_start);

}  // namespace ses::core

#endif  // SES_CORE_ATTENDANCE_H_
