#ifndef SES_CORE_MKPI_H_
#define SES_CORE_MKPI_H_

/// \file
/// Multiple Knapsack with Identical capacities (MKPI) — the strongly
/// NP-hard problem the paper reduces from in Theorem 1 (Martello & Toth,
/// "Knapsack Problems", 1990).
///
/// Items with weights and profits must be packed into a number of bins of
/// equal capacity; the goal is to maximize the packed profit. The exact
/// solver here is a plain branch-and-bound intended for the small
/// instances used to verify the reduction numerically.

#include <cstdint>
#include <optional>
#include <vector>

#include "util/status.h"

namespace ses::core {

/// An MKPI instance.
struct MkpiInstance {
  /// Identical capacity of every bin.
  double capacity = 0.0;
  /// Number of bins.
  int num_bins = 0;
  /// Item weights; weights[i] >= 0.
  std::vector<double> weights;
  /// Item profits, parallel to weights; profits[i] > 0.
  std::vector<double> profits;

  /// Structural validation.
  [[nodiscard]] util::Status Validate() const;
};

/// A packing: bin_of_item[i] in [0, num_bins) or -1 when unpacked.
struct MkpiSolution {
  std::vector<int> bin_of_item;
  double profit = 0.0;
};

/// Exact MKPI via branch-and-bound with bin-symmetry breaking.
///
/// \param exactly_k_items when set, only packings with exactly that many
///        items are admissible (this matches SES's |S| = k constraint and
///        is what the reduction test needs).
/// Returns Infeasible when no admissible packing exists.
[[nodiscard]] util::Result<MkpiSolution> SolveMkpiExact(
    const MkpiInstance& instance,
    std::optional<int> exactly_k_items = std::nullopt);

}  // namespace ses::core

#endif  // SES_CORE_MKPI_H_
