#ifndef SES_CORE_KERNELS_H_
#define SES_CORE_KERNELS_H_

/// \file
/// Structure-of-arrays interval state + the batched span kernels of the
/// O(|E|·|T|) score loop (Algorithm 1 lines 2–4).
///
/// The attendance engine's per-user scratch used to live in three
/// independently allocated vectors walked by scalar loops spread across
/// attendance.cc. This header centralizes both halves of that design:
///
///   - IntervalSoA: one bundle of contiguous, 64-byte-aligned spans per
///     loaded interval — denominators D, scheduled mass M, the sigma
///     row, and the touched-user list. Dense, index-addressed, built
///     once per AttendanceModel::LoadInterval.
///   - kernels::*: the inner loops as free functions over
///     restrict-qualified pointers. No per-element virtual dispatch, no
///     branches the compiler cannot if-convert, no aliasing it has to
///     assume — the shape auto-vectorizers want.
///
/// Numerics contract (pinned by tests/core_kernel_diff_test.cc): every
/// kernel preserves the evaluation order of the scalar code it
/// replaced, element i strictly after element i-1 into a single
/// accumulator, so results are BIT-IDENTICAL to the reference loops —
/// the speed comes from devirtualization, aliasing guarantees, and
/// lane-parallel arithmetic inside one element, never from
/// re-association. Kernels compared against the from-scratch
/// objective.h references (different association by construction) are
/// instead held to a documented 1e-6 relative tolerance. Both pins
/// assume strict IEEE semantics, hence the fast-math guard below; the
/// lint CI job additionally greps the build flags.

#if defined(__FAST_MATH__)
#error \
    "core/kernels.h requires strict IEEE float semantics: the differential \
kernel pins (tests/core_kernel_diff_test.cc) assert bit-identity and tight \
tolerances that -ffast-math breaks. Build without -ffast-math."
#endif

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/types.h"
#include "util/aligned.h"
#include "util/hot_annotations.h"

namespace ses::core {

/// Structure-of-arrays per-user state for one loaded interval. All
/// spans are |U| long, contiguous, and util::kKernelAlignment-aligned;
/// `touched` lists the users with non-zero mass (first `num_touched`
/// entries), pre-sized to |U| so steady-state loads never allocate.
///
/// D and M are doubles: the incremental engine accumulates interest
/// mass across Apply/Unapply and cache replays, and the bit-identity
/// contract between cached and uncached loads
/// (tests/core_sigma_cache_test.cc) requires the replayed masses to be
/// the exact doubles the scratch path accumulated. Sigma stays float —
/// it is read-only within a load, so no precision compounds.
struct IntervalSoA {
  explicit IntervalSoA(size_t num_users)
      : denom(num_users, 0.0),
        sched_mass(num_users, 0.0),
        sigma(num_users, 0.0f),
        touched(num_users, 0),
        in_touched(num_users, 0) {}

  util::AlignedVector<double> denom;       ///< D = C + M per user
  util::AlignedVector<double> sched_mass;  ///< M per user
  util::AlignedVector<float> sigma;        ///< sigma(u, t) scratch row
  util::AlignedVector<UserIndex> touched;  ///< users with non-zero scratch
  /// Byte mask deduplicating `touched`: in_touched[u] != 0 iff u is in
  /// the valid prefix. Apply/Unapply churn can clamp a user's mass back
  /// to exactly zero and later re-touch it; the mask keeps such users
  /// from being recorded twice, which is what makes the fixed |U|
  /// bound on `touched` strict (the pre-SoA growable vector simply
  /// accepted duplicates and reallocated past its reserve).
  util::AlignedVector<uint8_t> in_touched;
  size_t num_touched = 0;  ///< valid prefix of `touched`
};

namespace kernels {

/// `double* SES_RESTRICT p`: no other pointer in the kernel aliases p.
/// Every IntervalSoA span and every CSR row is a distinct allocation,
/// so the promise holds by construction; it is what licenses the
/// compiler to keep D/M/sigma lanes in registers across the loop.
#if defined(__GNUC__) || defined(__clang__)
#define SES_RESTRICT __restrict__
#else
#define SES_RESTRICT
#endif

/// SplitMix64-style finalizer over the packed (seed, u, t) key, scaled
/// to a double in [0, 1). The storage-free Uniform sigma of the paper's
/// experimental setting (HashUniformSigma delegates here).
SES_HOT inline double HashSigma(uint64_t seed, UserIndex u,
                                IntervalIndex t) {
  uint64_t z = seed ^ (static_cast<uint64_t>(u) * 0x9e3779b97f4a7c15ULL) ^
               (static_cast<uint64_t>(t) + 0xbf58476d1ce4e5b9ULL) *
                   0x94d049bb133111ebULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

/// out[u] = value for all u (ConstSigma's bulk row).
SES_HOT void FillSigmaConst(float value, std::span<float> out);

/// out[u] = HashSigma(seed, u, t) for all u (HashUniformSigma's bulk
/// row): pure integer mixing per lane, the textbook vectorizable loop.
SES_HOT void FillSigmaHash(uint64_t seed, IntervalIndex t,
                           std::span<float> out);

/// out = row[0 .. out.size()) (DenseSigma's bulk row).
SES_HOT void CopySigmaRow(std::span<const float> row, std::span<float> out);

/// Zeroes D, M, and the dedup mask at the `n` touched indices
/// (interval unload).
SES_HOT void ClearTouched(const UserIndex* SES_RESTRICT touched, size_t n,
                          double* SES_RESTRICT denom,
                          double* SES_RESTRICT sched_mass,
                          uint8_t* SES_RESTRICT in_touched);

/// Cache replay: denom[users[i]] = masses[i], recording each user in
/// `touched` + the mask. Returns the touched count (== n; cache
/// entries are mask-deduplicated at materialization). The masses are
/// the exact doubles AccumulateMass produced when the entry
/// materialized, so a replayed load is bit-identical to the scratch
/// load it skips.
SES_HOT size_t ScatterMasses(const UserIndex* SES_RESTRICT users,
                             const double* SES_RESTRICT masses, size_t n,
                             double* SES_RESTRICT denom,
                             UserIndex* SES_RESTRICT touched,
                             uint8_t* SES_RESTRICT in_touched);

/// Scatter-adds one sparse interest row: denom[u] += values[i], and
/// sched_mass[u] likewise when sched_mass is non-null (scheduled-event
/// rows; null for competing rows, whose mass is not removable).
/// First-touched users (denom exactly 0 pre-add, not yet in the mask)
/// are appended to `touched` at `num_touched`; returns the new count.
/// `touched` must have capacity |U| — the mask makes that bound
/// strict; the kernel stores, never grows.
SES_HOT size_t AccumulateMass(const UserIndex* SES_RESTRICT users,
                              const float* SES_RESTRICT values, size_t n,
                              double* SES_RESTRICT denom,
                              double* SES_RESTRICT sched_mass,
                              UserIndex* SES_RESTRICT touched,
                              uint8_t* SES_RESTRICT in_touched,
                              size_t num_touched);

/// Signed variant for Apply/Unapply: adds sign * values[i] to D and M,
/// clamping tiny negative cancellation residue to zero, appending
/// first-touched users exactly like AccumulateMass. Returns the new
/// touched count.
SES_HOT size_t TouchMass(const UserIndex* SES_RESTRICT users,
                         const float* SES_RESTRICT values, size_t n,
                         double sign, double* SES_RESTRICT denom,
                         double* SES_RESTRICT sched_mass,
                         UserIndex* SES_RESTRICT touched,
                         uint8_t* SES_RESTRICT in_touched,
                         size_t num_touched);

/// Eq. 4 (the Luce-choice gain): sum over the event's sparse interest
/// row of sigma[u] * ((M + x) / (D + x) - (D > 0 ? M / D : 0)).
/// Sequential single-accumulator sum — bit-identical to the scalar
/// reference.
SES_HOT double LuceGain(const UserIndex* SES_RESTRICT users,
                        const float* SES_RESTRICT values, size_t n,
                        const double* SES_RESTRICT denom,
                        const double* SES_RESTRICT sched_mass,
                        const float* SES_RESTRICT sigma);

/// Removal mirror of LuceGain for an event already folded into D and M:
/// sum of sigma[u] * (M / D - (M - x) / (D - x)), with the emptied
/// denominator guarded at 1e-12 exactly as the scalar code did.
SES_HOT double LuceLoss(const UserIndex* SES_RESTRICT users,
                        const float* SES_RESTRICT values, size_t n,
                        const double* SES_RESTRICT denom,
                        const double* SES_RESTRICT sched_mass,
                        const float* SES_RESTRICT sigma);

}  // namespace kernels
}  // namespace ses::core

#endif  // SES_CORE_KERNELS_H_
