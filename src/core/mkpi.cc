#include "core/mkpi.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace ses::core {

util::Status MkpiInstance::Validate() const {
  if (capacity < 0.0) {
    return util::Status::InvalidArgument("capacity must be non-negative");
  }
  if (num_bins <= 0) {
    return util::Status::InvalidArgument("num_bins must be positive");
  }
  if (weights.size() != profits.size()) {
    return util::Status::InvalidArgument(
        "weights/profits size mismatch");
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) {
      return util::Status::InvalidArgument(
          util::StrFormat("item %zu: negative weight", i));
    }
    if (profits[i] <= 0.0) {
      return util::Status::InvalidArgument(
          util::StrFormat("item %zu: profit must be positive", i));
    }
  }
  return util::Status::Ok();
}

namespace {

struct MkpiSearch {
  const MkpiInstance* instance;
  std::optional<int> exactly_k;
  std::vector<double> bin_load;
  std::vector<int> assignment;
  std::vector<double> suffix_profit;  // sum of profits of items >= i
  double current_profit = 0.0;
  int packed = 0;

  double best_profit = -1.0;
  std::vector<int> best_assignment;

  void Dfs(size_t item) {
    const size_t n = instance->weights.size();
    if (item == n) {
      if (exactly_k.has_value() && packed != *exactly_k) return;
      if (current_profit > best_profit) {
        best_profit = current_profit;
        best_assignment = assignment;
      }
      return;
    }
    // Bound: even packing every remaining item cannot beat the incumbent.
    if (current_profit + suffix_profit[item] <= best_profit) return;
    // Cardinality pruning.
    if (exactly_k.has_value()) {
      const int remaining = static_cast<int>(n - item);
      if (packed + remaining < *exactly_k) return;
      if (packed > *exactly_k) return;
    }

    // Try each bin; identical capacities make bins interchangeable, so an
    // item may only open the single next empty bin (symmetry breaking).
    bool tried_empty = false;
    for (int b = 0; b < instance->num_bins; ++b) {
      const bool empty = bin_load[b] == 0.0;
      if (empty && tried_empty) break;
      if (empty) tried_empty = true;
      if (bin_load[b] + instance->weights[item] > instance->capacity + 1e-12) {
        continue;
      }
      bin_load[b] += instance->weights[item];
      assignment[item] = b;
      current_profit += instance->profits[item];
      ++packed;
      Dfs(item + 1);
      --packed;
      current_profit -= instance->profits[item];
      assignment[item] = -1;
      bin_load[b] -= instance->weights[item];
    }

    // Skip the item.
    Dfs(item + 1);
  }
};

}  // namespace

util::Result<MkpiSolution> SolveMkpiExact(
    const MkpiInstance& instance, std::optional<int> exactly_k_items) {
  SES_RETURN_IF_ERROR(instance.Validate());
  const size_t n = instance.weights.size();

  MkpiSearch search;
  search.instance = &instance;
  search.exactly_k = exactly_k_items;
  search.bin_load.assign(static_cast<size_t>(instance.num_bins), 0.0);
  search.assignment.assign(n, -1);
  search.suffix_profit.assign(n + 1, 0.0);
  for (size_t i = n; i-- > 0;) {
    search.suffix_profit[i] =
        search.suffix_profit[i + 1] + instance.profits[i];
  }
  search.Dfs(0);

  if (search.best_profit < 0.0) {
    return util::Status::Infeasible("no admissible MKPI packing");
  }
  MkpiSolution solution;
  solution.bin_of_item = std::move(search.best_assignment);
  solution.profit = search.best_profit;
  return solution;
}

}  // namespace ses::core
