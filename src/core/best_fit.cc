#include "core/best_fit.h"

#include <algorithm>
#include <numeric>

#include "core/attendance.h"
#include "core/objective.h"
#include "util/timer.h"

namespace ses::core {

util::Result<SolverResult> BestFitSolver::DoSolve(
    const SesInstance& instance, const SolverOptions& options,
    const SolveContext& context) {
  util::WallTimer timer;

  AttendanceModel model(instance, options.sigma_cache_capacity);
  SES_RETURN_IF_ERROR(ApplyWarmStart(model, options.warm_start));
  SolverStats stats;
  util::Status termination;

  // Pass 1: optimistic per-event priority = best empty-schedule score.
  std::vector<double> priority(instance.num_events(), 0.0);
  for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
    if (context.CheckStop(&termination)) break;
    for (EventIndex e = 0; e < instance.num_events(); ++e) {
      if (model.schedule().IsAssigned(e)) continue;  // warm-started
      priority[e] = std::max(priority[e], model.MarginalGain(e, t));
    }
  }
  std::vector<EventIndex> order(instance.num_events());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&priority](EventIndex a, EventIndex b) {
              return priority[a] > priority[b];
            });

  // Pass 2: each event takes its currently-best feasible interval.
  // Skipped when pass 1 was cut short (priorities would be truncated).
  const size_t k = static_cast<size_t>(options.k);
  for (EventIndex e : order) {
    if (!termination.ok() || context.CheckStop(&termination)) break;
    context.CountWork(1);
    if (model.schedule().size() >= k) break;
    if (model.schedule().IsAssigned(e)) continue;  // warm-started
    double best_gain = -1.0;
    IntervalIndex best_interval = kInvalidIndex;
    for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
      if (!model.CanAssign(e, t)) continue;
      const double gain = model.MarginalGain(e, t);
      ++stats.updates;
      if (gain > best_gain) {
        best_gain = gain;
        best_interval = t;
      }
    }
    if (best_interval == kInvalidIndex) continue;  // nowhere to place it
    model.Apply(e, best_interval);
    ++stats.pops;
  }

  stats.gain_evaluations = model.gain_evaluations();

  SolverResult result;
  result.assignments = model.schedule().Assignments();
  result.utility = TotalUtility(instance, model.schedule());
  result.wall_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  result.solver = std::string(name());
  result.termination = std::move(termination);
  return result;
}

}  // namespace ses::core
