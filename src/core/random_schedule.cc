#include "core/random_schedule.h"

#include "core/objective.h"
#include "core/schedule.h"
#include "util/random.h"
#include "util/timer.h"

namespace ses::core {

util::Result<SolverResult> RandomSolver::DoSolve(
    const SesInstance& instance, const SolverOptions& options,
    const SolveContext& context) {
  util::WallTimer timer;
  util::Rng rng(options.seed);

  Schedule schedule(instance);
  SES_RETURN_IF_ERROR(ApplyWarmStart(schedule, options.warm_start));
  SolverStats stats;
  util::Status termination;
  // Both loops below are tight (no gain evaluations), so the context is
  // polled on a stride rather than every draw.
  uint64_t polls = 0;
  const size_t k = static_cast<size_t>(options.k);

  // A random permutation of all (event, interval) pairs, materialized
  // lazily: pick random pairs with rejection first (cheap when the pair
  // space is much larger than k), then fall back to an exhaustive shuffled
  // sweep to guarantee termination.
  const uint64_t pair_space = static_cast<uint64_t>(instance.num_events()) *
                              instance.num_intervals();
  uint64_t rejections = 0;
  const uint64_t rejection_budget = 16 * (pair_space + 1);
  while (schedule.size() < k && rejections < rejection_budget) {
    if ((polls++ & 63) == 0 && context.CheckStop(&termination)) break;
    context.CountWork(1);
    const uint64_t pick = rng.NextBounded(pair_space);
    const EventIndex e = static_cast<EventIndex>(pick % instance.num_events());
    const IntervalIndex t =
        static_cast<IntervalIndex>(pick / instance.num_events());
    ++stats.moves_tried;
    if (schedule.CanAssign(e, t)) {
      SES_CHECK(schedule.Assign(e, t).ok());
    } else {
      ++rejections;
    }
  }
  if (termination.ok() && schedule.size() < k) {
    // Exhaustive fallback: visit every pair in random order.
    std::vector<uint64_t> pairs(pair_space);
    for (uint64_t i = 0; i < pair_space; ++i) pairs[i] = i;
    util::Shuffle(pairs, rng);
    for (uint64_t pick : pairs) {
      if ((polls++ & 63) == 0 && context.CheckStop(&termination)) break;
      context.CountWork(1);
      if (schedule.size() >= k) break;
      const EventIndex e =
          static_cast<EventIndex>(pick % instance.num_events());
      const IntervalIndex t =
          static_cast<IntervalIndex>(pick / instance.num_events());
      ++stats.moves_tried;
      if (schedule.CanAssign(e, t)) {
        SES_CHECK(schedule.Assign(e, t).ok());
      }
    }
  }

  SolverResult result;
  result.assignments = schedule.Assignments();
  result.utility = TotalUtility(instance, schedule);
  result.wall_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  result.solver = std::string(name());
  result.termination = std::move(termination);
  return result;
}

}  // namespace ses::core
