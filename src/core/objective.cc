#include "core/objective.h"

#include <unordered_map>

#include "util/logging.h"

namespace ses::core {

namespace {

/// Builds the per-user denominator of Eq. 1 for interval \p t:
/// sum of competing interest plus sum of scheduled interest.
std::unordered_map<UserIndex, double> IntervalDenominators(
    const SesInstance& instance, const Schedule& schedule,
    IntervalIndex t) {
  std::unordered_map<UserIndex, double> denom;
  for (CompetingIndex c : instance.CompetingAt(t)) {
    auto users = instance.CompetingUsers(c);
    auto values = instance.CompetingValues(c);
    for (size_t i = 0; i < users.size(); ++i) {
      denom[users[i]] += values[i];
    }
  }
  for (EventIndex p : schedule.EventsAt(t)) {
    auto users = instance.EventUsers(p);
    auto values = instance.EventValues(p);
    for (size_t i = 0; i < users.size(); ++i) {
      denom[users[i]] += values[i];
    }
  }
  return denom;
}

}  // namespace

double AttendanceProbability(const SesInstance& instance,
                             const Schedule& schedule, UserIndex u,
                             EventIndex e) {
  const IntervalIndex t = schedule.IntervalOf(e);
  SES_CHECK_NE(t, kInvalidIndex) << "event must be assigned";
  const double mu = instance.EventInterest(e, u);
  if (mu <= 0.0) return 0.0;

  double denominator = 0.0;
  for (CompetingIndex c : instance.CompetingAt(t)) {
    denominator += instance.CompetingInterest(c, u);
  }
  for (EventIndex p : schedule.EventsAt(t)) {
    denominator += instance.EventInterest(p, u);
  }
  if (denominator <= 0.0) return 0.0;
  // SigmaProvider is the one sanctioned extension point on this path;
  // a single per-call virtual At is the reference semantics here (the
  // incremental engine amortizes it away via FillInterval instead).
  return instance.sigma().At(u, t) * mu / denominator;  // ses-lint: allow(hot-path) sanctioned SigmaProvider dispatch
}

double ExpectedAttendance(const SesInstance& instance,
                          const Schedule& schedule, EventIndex e) {
  const IntervalIndex t = schedule.IntervalOf(e);
  SES_CHECK_NE(t, kInvalidIndex) << "event must be assigned";
  const auto denom = IntervalDenominators(instance, schedule, t);

  double omega = 0.0;
  auto users = instance.EventUsers(e);
  auto values = instance.EventValues(e);
  for (size_t i = 0; i < users.size(); ++i) {
    const auto it = denom.find(users[i]);
    SES_CHECK(it != denom.end());
    if (it->second <= 0.0) continue;
    omega += instance.sigma().At(users[i], t) *
             static_cast<double>(values[i]) / it->second;
  }
  return omega;
}

double TotalUtility(const SesInstance& instance, const Schedule& schedule) {
  double total = 0.0;
  for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
    const auto& events = schedule.EventsAt(t);
    if (events.empty()) continue;
    const auto denom = IntervalDenominators(instance, schedule, t);
    for (EventIndex e : events) {
      auto users = instance.EventUsers(e);
      auto values = instance.EventValues(e);
      for (size_t i = 0; i < users.size(); ++i) {
        const double d = denom.at(users[i]);
        if (d <= 0.0) continue;
        total += instance.sigma().At(users[i], t) *
                 static_cast<double>(values[i]) / d;
      }
    }
  }
  return total;
}

double AssignmentScore(const SesInstance& instance, const Schedule& schedule,
                       EventIndex e, IntervalIndex t) {
  SES_CHECK(!schedule.IsAssigned(e)) << "score is defined for new events";
  // Eq. 4 is defined for every (event, interval) pair, independent of the
  // feasibility constraints (GRD prices infeasible assignments too and
  // only filters them at selection time), so the hypothetical interval
  // content is evaluated directly rather than through Schedule::Assign.
  auto contribution = [&instance, &schedule, t](bool include_e,
                                                EventIndex extra) {
    auto denom = IntervalDenominators(instance, schedule, t);
    if (include_e) {
      auto users = instance.EventUsers(extra);
      auto values = instance.EventValues(extra);
      for (size_t i = 0; i < users.size(); ++i) {
        denom[users[i]] += values[i];
      }
    }
    double total = 0.0;
    auto add_event = [&](EventIndex p) {
      auto users = instance.EventUsers(p);
      auto values = instance.EventValues(p);
      for (size_t i = 0; i < users.size(); ++i) {
        const double d = denom.at(users[i]);
        if (d <= 0.0) continue;
        total += instance.sigma().At(users[i], t) *
                 static_cast<double>(values[i]) / d;
      }
    };
    for (EventIndex p : schedule.EventsAt(t)) add_event(p);
    if (include_e) add_event(extra);
    return total;
  };

  return contribution(true, e) - contribution(false, e);
}

}  // namespace ses::core
