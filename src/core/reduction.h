#ifndef SES_CORE_REDUCTION_H_
#define SES_CORE_REDUCTION_H_

/// \file
/// The Theorem 1 construction: a polynomial reduction from MKPI to SES,
/// made executable so the hardness proof can be verified numerically.
///
/// Associations (paper proof sketch):
///   bins            -> time intervals
///   bin capacity    -> available resources theta
///   items           -> candidate events
///   item weight     -> required resources xi
///   item profit p   -> interest mu = p * K / (1 - p)
///   total profit    -> expected attendance
///
/// Restricted instance: |U| = |E| (one user per item); each interval has
/// exactly one competing event in which every user has the same interest
/// K; user i is interested only in event i; sigma is one constant; every
/// event gets a distinct location so only the resource constraint binds.
///
/// With that construction, when user i's event is scheduled anywhere, the
/// attendance probability is sigma * mu_i / (K + mu_i) = sigma * p_i
/// (events of other users contribute nothing to user i's denominator), so
///
///   Omega(S) = sigma * sum of profits of scheduled items,
///
/// and a size-k SES optimum corresponds exactly to a k-item MKPI optimum.

#include "core/instance.h"
#include "core/mkpi.h"
#include "util/status.h"

namespace ses::core {

/// Parameters of the reduction.
struct ReductionParams {
  /// The common interest K of every user in each interval's competing
  /// event. Must satisfy p*K/(1-p) <= 1 for all profits p.
  double competing_interest = 0.2;
  /// The constant social-activity probability.
  double sigma = 1.0;
};

/// Builds the SES instance encoding \p mkpi. Profits must lie in (0, 1)
/// (use NormalizeMkpiProfits first when needed); fails with
/// InvalidArgument when a derived interest leaves (0, 1].
[[nodiscard]] util::Result<SesInstance> ReduceMkpiToSes(
    const MkpiInstance& mkpi, const ReductionParams& params);

/// Rescales profits into (0, 1) by dividing by (max profit * slack); the
/// argmax packing is unchanged. \p slack must exceed 1.
MkpiInstance NormalizeMkpiProfits(MkpiInstance mkpi, double slack = 1.25);

/// The utility that the reduced SES instance yields for a packing with
/// total profit \p mkpi_profit (namely sigma * profit).
double ExpectedSesUtility(const ReductionParams& params, double mkpi_profit);

}  // namespace ses::core

#endif  // SES_CORE_REDUCTION_H_
