#ifndef SES_CORE_SOLVER_H_
#define SES_CORE_SOLVER_H_

/// \file
/// Common interface of all SES solvers (the paper's GRD, TOP, RAND plus
/// this library's extensions).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/instance.h"
#include "core/solve_context.h"
#include "core/types.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ses::core {

/// Which solver seeds an improvement heuristic (local search, annealing).
enum class BaseSolver {
  kRandom,
  kGreedy,
};

/// Tuning knobs shared by every solver. Unused fields are ignored.
struct SolverOptions {
  /// Number of assignments to schedule (the paper's k).
  int64_t k = 100;
  /// PRNG seed for randomized solvers.
  uint64_t seed = 1;

  /// Pre-committed assignments (incremental re-planning): the solver
  /// starts from this partial schedule and extends it to k assignments.
  /// Must be feasible and hold at most k assignments. Constructive
  /// solvers (grd/lazy/bestfit/top/rand) never move committed
  /// assignments; the improvement heuristics (ls/anneal) receive them
  /// only as the seed of their base solver and may relocate them. Use
  /// case: the organizer already announced some events and the budget k
  /// grew, or a new planning round starts from last week's program.
  std::vector<Assignment> warm_start;

  /// Local search / annealing: maximum number of candidate moves.
  int64_t max_iterations = 20000;
  /// Local search / annealing: schedule that seeds the improvement.
  BaseSolver base_solver = BaseSolver::kRandom;

  /// Simulated annealing: starting temperature and geometric cooling.
  double initial_temperature = 1.0;
  double cooling = 0.995;

  /// Exact solver: node budget before giving up with ResourceExhausted.
  uint64_t max_nodes = 50000000;

  /// Intra-solver parallelism for assignment-score generation (GRD and
  /// lazy greedy): the maximum number of generation shards. 1 (default)
  /// is the serial reference path; 0 means one shard per available lane
  /// (pool workers plus the calling thread); N > 1 caps the shard count
  /// at N. Results are bit-identical to the serial path regardless of
  /// this value — only wall-clock time changes.
  int64_t threads = 1;

  /// Memory bound for AttendanceModel's per-interval sigma/competing
  /// cache: at most this many intervals keep materialized cache entries
  /// (least-recently-loaded evicted beyond that). 0 = unlimited, the
  /// historical behavior. A materialized entry costs up to |U| floats
  /// plus the interval's competing masses, so move-based solvers on
  /// paper-scale instances can hold |T|·|U| floats per model without a
  /// cap. Purely a memory/speed trade: results are bit-identical at any
  /// capacity (tests/core_sigma_cache_test.cc pins capacity 2).
  size_t sigma_cache_capacity = 0;

  /// Borrowed pool for score-generation shards; not owned, may be null.
  /// api::Scheduler fills this in with its own pool for requests that
  /// ask for threads != 1 (ThreadPool::ParallelFor is safe to call from
  /// a pool worker, so fan-out solvers and intra-solver shards share one
  /// pool). When null and threads != 1, solvers spin up a transient pool
  /// for the generation pass.
  util::ThreadPool* pool = nullptr;
};

/// Work counters reported by solvers for the paper's complexity analysis.
struct SolverStats {
  /// Eq. 4 evaluations (initial scores + updates + probes).
  uint64_t gain_evaluations = 0;
  /// popTopAssgn operations (GRD) / heap pops (lazy greedy).
  uint64_t pops = 0;
  /// Score-update recomputations after a selection.
  uint64_t updates = 0;
  /// Branch-and-bound nodes (exact solver).
  uint64_t nodes = 0;
  /// Moves tried / accepted (local search, annealing).
  uint64_t moves_tried = 0;
  uint64_t moves_accepted = 0;
};

/// Outcome of one solver run.
struct SolverResult {
  /// The chosen assignments, sorted by (interval, event). May hold fewer
  /// than k entries when no more valid assignments existed — or when the
  /// run stopped early (see `termination`).
  std::vector<Assignment> assignments;
  /// Total utility Omega of the schedule, recomputed with the reference
  /// objective (not the solver's internal tracker).
  double utility = 0.0;
  /// Wall-clock seconds spent inside Solve().
  double wall_seconds = 0.0;
  /// Work counters.
  SolverStats stats;
  /// Name of the producing solver ("grd", "top", ...).
  std::string solver;
  /// OK when the solver ran to completion. kDeadlineExceeded / kCancelled
  /// when the SolveContext stopped it early; `assignments` then holds the
  /// best feasible schedule found so far (possibly empty).
  util::Status termination;
};

/// Abstract solver.
///
/// Callers use the non-virtual Solve(), which validates options and then
/// dispatches to the implementation. Passing a SolveContext bounds the
/// run: every solver polls it at iteration boundaries and, on expiry or
/// cancellation, returns the best feasible schedule found so far with
/// SolverResult::termination set (the Result itself stays OK).
class Solver {
 public:
  virtual ~Solver() = default;

  /// Stable lowercase identifier ("grd", "top", "rand", ...).
  virtual std::string_view name() const = 0;

  /// Computes a feasible schedule with (up to) options.k assignments,
  /// honoring \p context's deadline and cancellation token.
  [[nodiscard]] util::Result<SolverResult> Solve(
      const SesInstance& instance, const SolverOptions& options,
      const SolveContext& context = SolveContext());

 protected:
  /// Implementation hook; options are already validated.
  [[nodiscard]] virtual util::Result<SolverResult> DoSolve(
      const SesInstance& instance, const SolverOptions& options,
      const SolveContext& context) = 0;
};

/// Shared helper: validates options against the instance (k positive and
/// not above |E|).
[[nodiscard]] util::Status ValidateSolverOptions(const SesInstance& instance,
                                   const SolverOptions& options);

}  // namespace ses::core

#endif  // SES_CORE_SOLVER_H_
