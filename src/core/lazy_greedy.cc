#include "core/lazy_greedy.h"

#include <queue>

#include "core/attendance.h"
#include "core/objective.h"
#include "core/score_gen.h"
#include "util/timer.h"

namespace ses::core {

namespace {

struct HeapEntry {
  double score;
  EventIndex event;
  IntervalIndex interval;
  /// Version of the interval when the score was computed.
  uint32_t version;
};

struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return a.score < b.score;
  }
};

}  // namespace

util::Result<SolverResult> LazyGreedySolver::DoSolve(
    const SesInstance& instance, const SolverOptions& options,
    const SolveContext& context) {
  util::WallTimer timer;

  AttendanceModel model(instance, options.sigma_cache_capacity);
  SES_RETURN_IF_ERROR(ApplyWarmStart(model, options.warm_start));
  SolverStats stats;
  util::Status termination;

  // Initial scores via the stage shared with GRD (score_gen.h): emitted
  // in serial t-major order at every SolverOptions::threads value, so
  // heap construction — and every pop after it — is identical across
  // thread counts.
  std::vector<uint32_t> interval_version(instance.num_intervals(), 0);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap;
  ScoreGenResult generated;
  {
    std::vector<HeapEntry> init;
    init.reserve(static_cast<size_t>(instance.num_events()) *
                 instance.num_intervals());
    generated = GenerateScoredAssignments(
        instance, options, context, model,
        [&init](EventIndex e, IntervalIndex t, double score) {
          init.push_back({score, e, t, 0});
        });
    termination = generated.termination;
    heap = std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess>(
        HeapLess{}, std::move(init));
  }

  const size_t k = static_cast<size_t>(options.k);
  // A partially generated heap would miss high intervals, so selection
  // only runs when generation completed.
  while (termination.ok() && model.schedule().size() < k && !heap.empty()) {
    if (context.CheckStop(&termination)) break;
    context.CountWork(1);
    HeapEntry top = heap.top();
    heap.pop();
    ++stats.pops;

    if (!model.CanAssign(top.event, top.interval)) continue;  // drop

    if (top.version != interval_version[top.interval]) {
      // Stale: the interval changed since this score was computed. The
      // stale score upper-bounds the fresh one, so recompute and re-queue.
      top.score = model.MarginalGain(top.event, top.interval);
      top.version = interval_version[top.interval];
      ++stats.updates;
      heap.push(top);
      continue;
    }

    model.Apply(top.event, top.interval);
    ++interval_version[top.interval];
  }

  // Shard-private generation engines + the selection-phase model add up
  // to the serial single-model evaluation count (the shard term is zero
  // on the serial path, where the main model scored everything itself).
  stats.gain_evaluations =
      model.gain_evaluations() + generated.gain_evaluations;

  SolverResult result;
  result.assignments = model.schedule().Assignments();
  result.utility = TotalUtility(instance, model.schedule());
  result.wall_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  result.solver = std::string(name());
  result.termination = std::move(termination);
  return result;
}

}  // namespace ses::core
