#ifndef SES_CORE_INSTANCE_IO_H_
#define SES_CORE_INSTANCE_IO_H_

/// \file
/// SES instance persistence: save/load a SesInstance as a directory of
/// CSV files, so instances can be generated once, shipped, inspected with
/// standard tooling, and re-solved elsewhere.
///
/// Layout (all files written by SaveInstance):
///   meta.csv                key,value rows: users, intervals, theta,
///                           sigma kind + parameter
///   events.csv              event_id,location,required_resources
///   event_interests.csv     event_id,user_id,mu  (sparse triplets)
///   competing.csv           competing_id,interval
///   competing_interests.csv competing_id,user_id,mu
///
/// Sigma providers serialize by kind: "const" (value) and "hash" (seed).
/// Dense matrices are not persisted — instances built from explicit
/// matrices fail to save with Unimplemented.

#include <string>

#include "core/instance.h"
#include "util/status.h"

namespace ses::core {

/// Serializable description of a sigma provider.
struct SigmaSpec {
  enum class Kind { kConst, kHash };
  Kind kind = Kind::kHash;
  /// kConst: the constant probability.
  double const_value = 0.5;
  /// kHash: the hash seed.
  uint64_t seed = 0;

  /// Instantiates the provider this spec describes.
  std::shared_ptr<const SigmaProvider> Instantiate() const;
};

/// Writes \p instance under directory \p dir (which must exist).
/// \p sigma_spec must describe the provider the instance was built with —
/// the provider object itself cannot be introspected.
[[nodiscard]] util::Status SaveInstance(const SesInstance& instance,
                          const SigmaSpec& sigma_spec,
                          const std::string& dir);

/// Reads an instance previously written by SaveInstance.
[[nodiscard]] util::Result<SesInstance> LoadInstance(const std::string& dir);

}  // namespace ses::core

#endif  // SES_CORE_INSTANCE_IO_H_
