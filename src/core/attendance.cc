#include "core/attendance.h"

#include "core/kernels.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ses::core {

AttendanceModel::AttendanceModel(const SesInstance& instance,
                                 size_t sigma_cache_capacity)
    : instance_(&instance),
      schedule_(instance),
      // The constructor down-payment for the hot-path contract: every
      // SoA span (D, M, sigma, touched) is sized to |U| here, so
      // steady-state LoadInterval/TouchLoaded kernels only ever store
      // through pre-sized spans — no growth, no allocation (re-proven
      // at runtime by tests/core_hot_path_alloc_test.cc).
      soa_(instance.num_users()),
      interval_cache_(instance.num_intervals()),
      cache_capacity_(sigma_cache_capacity) {
  if (cache_capacity_ > 0) ready_intervals_.reserve(cache_capacity_);
}

void AttendanceModel::EvictLeastRecent() {
  SES_CHECK(!ready_intervals_.empty()) << "eviction with no ready entry";
  size_t victim_slot = 0;
  for (size_t i = 1; i < ready_intervals_.size(); ++i) {
    if (interval_cache_[ready_intervals_[i]].last_used <
        interval_cache_[ready_intervals_[victim_slot]].last_used) {
      victim_slot = i;
    }
  }
  IntervalCache& victim = interval_cache_[ready_intervals_[victim_slot]];
  victim.ready = false;
  // Reset the load counter: an evicted interval must prove itself
  // reload-heavy again, so cyclic working sets larger than the
  // capacity stop re-materializing on every load.
  victim.loads = 0;
  // Swap-with-empty actually releases the memory — the whole point of
  // the capacity bound.
  std::vector<UserIndex>().swap(victim.competing_users);
  util::AlignedVector<double>().swap(victim.competing_mass);
  util::AlignedVector<float>().swap(victim.sigma);
  ready_intervals_[victim_slot] = ready_intervals_.back();
  ready_intervals_.pop_back();
}

void AttendanceModel::MaterializeCache(IntervalIndex t,
                                       IntervalCache& cache) {
  // Snapshot the interval's competing masses (soa_.denom holds exactly
  // C here — scheduled events are folded in after this returns) and its
  // sigma row for every future reload. Under a capacity bound, make
  // room first (LRU): the cache is pure memoization, so eviction can
  // never change a result bit.
  if (cache_capacity_ > 0) {
    if (ready_intervals_.size() >= cache_capacity_) EvictLeastRecent();
    ready_intervals_.push_back(t);
  }
  cache.last_used = ++lru_clock_;
  cache.competing_users.reserve(soa_.num_touched);
  cache.competing_mass.reserve(soa_.num_touched);
  for (size_t i = 0; i < soa_.num_touched; ++i) {
    const UserIndex u = soa_.touched[i];
    cache.competing_users.push_back(u);
    cache.competing_mass.push_back(soa_.denom[u]);
  }
  cache.sigma.resize(instance_->num_users());
  instance_->sigma().FillInterval(
      t, std::span<float>(cache.sigma.data(), cache.sigma.size()));
  cache.ready = true;
  sigma_row_ = cache.sigma.data();
}

void AttendanceModel::LoadInterval(IntervalIndex t) {
  if (loaded_ == t) return;
  // Reset only the entries touched by the previously loaded interval.
  kernels::ClearTouched(soa_.touched.data(), soa_.num_touched,
                        soa_.denom.data(), soa_.sched_mass.data(),
                        soa_.in_touched.data());
  soa_.num_touched = 0;
  loaded_ = t;

  IntervalCache& cache = interval_cache_[t];
  if (cache.ready) {
    // Fast path: replay the schedule-independent state from the cache
    // — two contiguous span reads, one scatter.
    cache.last_used = ++lru_clock_;
    soa_.num_touched = kernels::ScatterMasses(
        cache.competing_users.data(), cache.competing_mass.data(),
        cache.competing_users.size(), soa_.denom.data(),
        soa_.touched.data(), soa_.in_touched.data());
    sigma_row_ = cache.sigma.data();
  } else {
    for (CompetingIndex c : instance_->CompetingAt(t)) {
      auto users = instance_->CompetingUsers(c);
      auto values = instance_->CompetingValues(c);
      // Competing mass is never removed, so M stays untouched (null).
      soa_.num_touched = kernels::AccumulateMass(
          users.data(), values.data(), users.size(), soa_.denom.data(),
          nullptr, soa_.touched.data(), soa_.in_touched.data(),
          soa_.num_touched);
    }
    if (cache.loads < 2) ++cache.loads;
    if (cache.loads >= 2) {
      // Second load: the interval proved reload-heavy, so pay the
      // (allocating) materialization once. The edge suppression
      // quarantines that cost: it fires at most once per interval per
      // eviction cycle, never in the steady state this function is hot
      // for.
      MaterializeCache(t, cache);  // ses-lint: allow(hot-path) cold: at most once per interval per eviction cycle
    } else {
      // One virtual bulk fill per interval load, amortized over the
      // |U|-entry row it produces — the sanctioned exception to the
      // no-virtual-dispatch rule (SigmaProvider is the extension
      // point; per-entry At() calls are what the rule exists to stop).
      instance_->sigma().FillInterval(t, soa_.sigma);  // ses-lint: allow(hot-path) one virtual bulk fill amortized over |U| entries
      sigma_row_ = soa_.sigma.data();
    }
  }

  for (EventIndex p : schedule_.EventsAt(t)) {
    auto users = instance_->EventUsers(p);
    auto values = instance_->EventValues(p);
    soa_.num_touched = kernels::AccumulateMass(
        users.data(), values.data(), users.size(), soa_.denom.data(),
        soa_.sched_mass.data(), soa_.touched.data(),
        soa_.in_touched.data(), soa_.num_touched);
  }
}

void AttendanceModel::TouchLoaded(EventIndex e, double sign) {
  auto users = instance_->EventUsers(e);
  auto values = instance_->EventValues(e);
  soa_.num_touched = kernels::TouchMass(
      users.data(), values.data(), users.size(), sign, soa_.denom.data(),
      soa_.sched_mass.data(), soa_.touched.data(), soa_.in_touched.data(),
      soa_.num_touched);
}

double AttendanceModel::MarginalGain(EventIndex e, IntervalIndex t) {
  SES_CHECK(!schedule_.IsAssigned(e)) << "gain is defined for new events";
  LoadInterval(t);
  ++gain_evaluations_;

  auto users = instance_->EventUsers(e);
  auto values = instance_->EventValues(e);
  return kernels::LuceGain(users.data(), values.data(), users.size(),
                           soa_.denom.data(), soa_.sched_mass.data(),
                           sigma_row_);
}

void AttendanceModel::Apply(EventIndex e, IntervalIndex t) {
  const double gain = MarginalGain(e, t);
  --gain_evaluations_;  // internal bookkeeping, not a solver evaluation
  SES_CHECK(schedule_.Assign(e, t).ok())
      << "Apply requires a valid assignment";
  TouchLoaded(e, +1.0);
  total_utility_ += gain;
}

void AttendanceModel::Unapply(EventIndex e) {
  const IntervalIndex t = schedule_.IntervalOf(e);
  SES_CHECK_NE(t, kInvalidIndex) << "Unapply requires an assigned event";
  LoadInterval(t);

  // Loss mirrors the gain formula: contribution of the interval with e
  // minus the contribution without it. D and M already include e, so
  // the kernel subtracts x back out per user (kernels::LuceLoss).
  auto users = instance_->EventUsers(e);
  auto values = instance_->EventValues(e);
  const double loss = kernels::LuceLoss(
      users.data(), values.data(), users.size(), soa_.denom.data(),
      soa_.sched_mass.data(), sigma_row_);

  SES_CHECK(schedule_.Unassign(e).ok());
  TouchLoaded(e, -1.0);
  total_utility_ -= loss;
}

util::Status ApplyWarmStart(AttendanceModel& model,
                            std::span<const Assignment> warm_start) {
  for (const Assignment& a : warm_start) {
    if (!model.CanAssign(a.event, a.interval)) {
      return util::Status::InvalidArgument(util::StrFormat(
          "warm-start assignment of event %u to interval %u is infeasible",
          a.event, a.interval));
    }
    model.Apply(a.event, a.interval);
  }
  return util::Status::Ok();
}

}  // namespace ses::core
