#include "core/attendance.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace ses::core {

AttendanceModel::AttendanceModel(const SesInstance& instance,
                                 size_t sigma_cache_capacity)
    : instance_(&instance),
      schedule_(instance),
      denom_(instance.num_users(), 0.0),
      sched_mass_(instance.num_users(), 0.0),
      sigma_scratch_(instance.num_users(), 0.0f),
      interval_cache_(instance.num_intervals()),
      cache_capacity_(sigma_cache_capacity) {
  // The constructor down-payment for the hot-path contract: touched_
  // holds at most one entry per user, so reserving |U| up front makes
  // every steady-state LoadInterval/TouchLoaded push_back
  // allocation-free (the amortized-capacity escape in the hot-path
  // lint; re-proven at runtime by tests/core_hot_path_alloc_test.cc).
  touched_.reserve(instance.num_users());
  if (cache_capacity_ > 0) ready_intervals_.reserve(cache_capacity_);
}

void AttendanceModel::EvictLeastRecent() {
  SES_CHECK(!ready_intervals_.empty()) << "eviction with no ready entry";
  size_t victim_slot = 0;
  for (size_t i = 1; i < ready_intervals_.size(); ++i) {
    if (interval_cache_[ready_intervals_[i]].last_used <
        interval_cache_[ready_intervals_[victim_slot]].last_used) {
      victim_slot = i;
    }
  }
  IntervalCache& victim = interval_cache_[ready_intervals_[victim_slot]];
  victim.ready = false;
  // Reset the load counter: an evicted interval must prove itself
  // reload-heavy again, so cyclic working sets larger than the
  // capacity stop re-materializing on every load.
  victim.loads = 0;
  // Swap-with-empty actually releases the memory — the whole point of
  // the capacity bound.
  std::vector<std::pair<UserIndex, double>>().swap(victim.competing);
  std::vector<float>().swap(victim.sigma);
  ready_intervals_[victim_slot] = ready_intervals_.back();
  ready_intervals_.pop_back();
}

void AttendanceModel::MaterializeCache(IntervalIndex t,
                                       IntervalCache& cache) {
  // Snapshot the interval's competing masses (denom_ holds exactly C
  // here — scheduled events are folded in after this returns) and its
  // sigma row for every future reload. Under a capacity bound, make
  // room first (LRU): the cache is pure memoization, so eviction can
  // never change a result bit.
  if (cache_capacity_ > 0) {
    if (ready_intervals_.size() >= cache_capacity_) EvictLeastRecent();
    ready_intervals_.push_back(t);
  }
  cache.last_used = ++lru_clock_;
  cache.competing.reserve(touched_.size());
  for (UserIndex u : touched_) {
    cache.competing.emplace_back(u, denom_[u]);
  }
  cache.sigma.resize(instance_->num_users());
  instance_->sigma().FillInterval(t, cache.sigma);
  cache.ready = true;
  sigma_row_ = cache.sigma.data();
}

void AttendanceModel::LoadInterval(IntervalIndex t) {
  if (loaded_ == t) return;
  // Reset only the entries touched by the previously loaded interval.
  for (UserIndex u : touched_) {
    denom_[u] = 0.0;
    sched_mass_[u] = 0.0;
  }
  touched_.clear();
  loaded_ = t;

  IntervalCache& cache = interval_cache_[t];
  if (cache.ready) {
    // Fast path: replay the schedule-independent state from the cache.
    cache.last_used = ++lru_clock_;
    for (const auto& [u, mass] : cache.competing) {
      touched_.push_back(u);
      denom_[u] = mass;
    }
    sigma_row_ = cache.sigma.data();
  } else {
    for (CompetingIndex c : instance_->CompetingAt(t)) {
      auto users = instance_->CompetingUsers(c);
      auto values = instance_->CompetingValues(c);
      for (size_t i = 0; i < users.size(); ++i) {
        const UserIndex u = users[i];
        if (denom_[u] == 0.0) touched_.push_back(u);
        denom_[u] += static_cast<double>(values[i]);
      }
    }
    if (cache.loads < 2) ++cache.loads;
    if (cache.loads >= 2) {
      // Second load: the interval proved reload-heavy, so pay the
      // (allocating) materialization once. The edge suppression
      // quarantines that cost: it fires at most once per interval per
      // eviction cycle, never in the steady state this function is hot
      // for.
      MaterializeCache(t, cache);  // ses-lint: allow(hot-path) cold: at most once per interval per eviction cycle
    } else {
      // One virtual bulk fill per interval load, amortized over the
      // |U|-entry row it produces — the sanctioned exception to the
      // no-virtual-dispatch rule (SigmaProvider is the extension
      // point; per-entry At() calls are what the rule exists to stop).
      instance_->sigma().FillInterval(t, sigma_scratch_);  // ses-lint: allow(hot-path) one virtual bulk fill amortized over |U| entries
      sigma_row_ = sigma_scratch_.data();
    }
  }

  for (EventIndex p : schedule_.EventsAt(t)) {
    auto users = instance_->EventUsers(p);
    auto values = instance_->EventValues(p);
    for (size_t i = 0; i < users.size(); ++i) {
      const UserIndex u = users[i];
      if (denom_[u] == 0.0) touched_.push_back(u);
      denom_[u] += static_cast<double>(values[i]);
      sched_mass_[u] += static_cast<double>(values[i]);
    }
  }
}

void AttendanceModel::TouchLoaded(EventIndex e, double sign) {
  auto users = instance_->EventUsers(e);
  auto values = instance_->EventValues(e);
  for (size_t i = 0; i < users.size(); ++i) {
    const UserIndex u = users[i];
    const double mu = sign * static_cast<double>(values[i]);
    if (denom_[u] == 0.0 && mu > 0.0) touched_.push_back(u);
    denom_[u] += mu;
    sched_mass_[u] += mu;
    // Guard against negative residue from floating-point cancellation.
    if (denom_[u] < 0.0) denom_[u] = 0.0;
    if (sched_mass_[u] < 0.0) sched_mass_[u] = 0.0;
  }
}

double AttendanceModel::MarginalGain(EventIndex e, IntervalIndex t) {
  SES_CHECK(!schedule_.IsAssigned(e)) << "gain is defined for new events";
  LoadInterval(t);
  ++gain_evaluations_;

  auto users = instance_->EventUsers(e);
  auto values = instance_->EventValues(e);
  double gain = 0.0;
  for (size_t i = 0; i < users.size(); ++i) {
    const UserIndex u = users[i];
    const double x = static_cast<double>(values[i]);
    const double d = denom_[u];
    const double m = sched_mass_[u];
    // (M + x) / (D + x) - M / D; the old term vanishes when D == 0
    // (then M == 0 as well and the new term is x / x = 1).
    const double term_new = (m + x) / (d + x);
    const double term_old = d > 0.0 ? m / d : 0.0;
    gain += static_cast<double>(sigma_row_[u]) * (term_new - term_old);
  }
  return gain;
}

void AttendanceModel::Apply(EventIndex e, IntervalIndex t) {
  const double gain = MarginalGain(e, t);
  --gain_evaluations_;  // internal bookkeeping, not a solver evaluation
  SES_CHECK(schedule_.Assign(e, t).ok())
      << "Apply requires a valid assignment";
  TouchLoaded(e, +1.0);
  total_utility_ += gain;
}

void AttendanceModel::Unapply(EventIndex e) {
  const IntervalIndex t = schedule_.IntervalOf(e);
  SES_CHECK_NE(t, kInvalidIndex) << "Unapply requires an assigned event";
  LoadInterval(t);

  // Loss mirrors the gain formula: contribution of the interval with e
  // minus the contribution without it. Here D and M already include e.
  auto users = instance_->EventUsers(e);
  auto values = instance_->EventValues(e);
  double loss = 0.0;
  for (size_t i = 0; i < users.size(); ++i) {
    const UserIndex u = users[i];
    const double x = static_cast<double>(values[i]);
    const double d = denom_[u];
    const double m = sched_mass_[u];
    const double term_with = d > 0.0 ? m / d : 0.0;
    const double d_without = d - x;
    const double m_without = m - x;
    const double term_without =
        d_without > 1e-12 ? (m_without > 0.0 ? m_without / d_without : 0.0)
                          : 0.0;
    loss += static_cast<double>(sigma_row_[u]) * (term_with - term_without);
  }

  SES_CHECK(schedule_.Unassign(e).ok());
  TouchLoaded(e, -1.0);
  total_utility_ -= loss;
}

util::Status ApplyWarmStart(AttendanceModel& model,
                            std::span<const Assignment> warm_start) {
  for (const Assignment& a : warm_start) {
    if (!model.CanAssign(a.event, a.interval)) {
      return util::Status::InvalidArgument(util::StrFormat(
          "warm-start assignment of event %u to interval %u is infeasible",
          a.event, a.interval));
    }
    model.Apply(a.event, a.interval);
  }
  return util::Status::Ok();
}

}  // namespace ses::core
