#include "core/exact.h"

#include <algorithm>

#include "core/attendance.h"
#include "core/objective.h"
#include "util/timer.h"

namespace ses::core {

namespace {

/// DFS state shared across the recursion.
struct SearchContext {
  SearchContext(const SesInstance& inst, size_t sigma_cache_capacity)
      : instance(&inst), model(inst, sigma_cache_capacity) {}

  const SesInstance* instance;
  AttendanceModel model;
  const SolveContext* context = nullptr;
  size_t k = 0;
  uint64_t max_nodes = 0;
  uint64_t nodes = 0;
  bool budget_exhausted = false;
  /// Set when the SolveContext stopped the search early.
  util::Status termination;

  /// upper_bound[e] = max over t of the empty-schedule score of (e, t).
  std::vector<double> event_upper_bound;
  /// suffix_top_[e][j]: sum of the j largest upper bounds among events
  /// >= e. Stored flattened; see SuffixBound().
  std::vector<std::vector<double>> suffix_top;

  double best_utility = -1.0;
  std::vector<Assignment> best_assignments;
};

/// Sum of the \p need largest event upper bounds among events >= from.
double SuffixBound(const SearchContext& ctx, EventIndex from, size_t need) {
  if (need == 0) return 0.0;
  if (from >= ctx.suffix_top.size()) return 0.0;
  const auto& sums = ctx.suffix_top[from];
  if (sums.empty()) return 0.0;
  const size_t idx = std::min(need, sums.size() - 1);
  return sums[idx];
}

void Dfs(SearchContext& ctx, EventIndex next_event, size_t chosen) {
  if (ctx.budget_exhausted || !ctx.termination.ok()) return;
  if (++ctx.nodes > ctx.max_nodes) {
    ctx.budget_exhausted = true;
    return;
  }
  // Nodes are cheap relative to a clock read, so poll on a stride. The
  // first node (nodes == 1) polls too, making a ~0 deadline return
  // before any search work.
  if ((ctx.nodes & 255) == 1 &&
      ctx.context->CheckStop(&ctx.termination)) {
    return;
  }
  ctx.context->CountWork(1);

  if (chosen == ctx.k) {
    const double utility = ctx.model.total_utility();
    if (utility > ctx.best_utility) {
      ctx.best_utility = utility;
      ctx.best_assignments = ctx.model.schedule().Assignments();
    }
    return;
  }

  const size_t remaining_needed = ctx.k - chosen;
  const uint32_t num_events = ctx.instance->num_events();
  // Not enough events left to reach k.
  if (next_event >= num_events ||
      num_events - next_event < remaining_needed) {
    return;
  }

  // Bound check.
  const double bound =
      ctx.model.total_utility() + SuffixBound(ctx, next_event, remaining_needed);
  if (bound <= ctx.best_utility + 1e-12) return;

  // Branch 1..|T|: place next_event at each feasible interval.
  for (IntervalIndex t = 0; t < ctx.instance->num_intervals(); ++t) {
    if (!ctx.model.CanAssign(next_event, t)) continue;
    ctx.model.Apply(next_event, t);
    Dfs(ctx, next_event + 1, chosen + 1);
    ctx.model.Unapply(next_event);
    if (ctx.budget_exhausted || !ctx.termination.ok()) return;
  }

  // Branch 0: skip next_event entirely.
  Dfs(ctx, next_event + 1, chosen);
}

}  // namespace

util::Result<SolverResult> ExactSolver::DoSolve(const SesInstance& instance,
                                                const SolverOptions& options,
                                                const SolveContext& context) {
  util::WallTimer timer;

  SearchContext ctx(instance, options.sigma_cache_capacity);
  ctx.context = &context;
  ctx.k = static_cast<size_t>(options.k);
  ctx.max_nodes = options.max_nodes;

  // Per-event optimistic scores on the empty schedule. The probe alone
  // is O(|E|·|T|) gain evaluations, so it polls the context too — a ~0
  // deadline must return before any of the precompute, not just before
  // the first search node.
  ctx.event_upper_bound.assign(instance.num_events(), 0.0);
  {
    AttendanceModel probe(instance, options.sigma_cache_capacity);
    for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
      if (context.CheckStop(&ctx.termination)) break;
      for (EventIndex e = 0; e < instance.num_events(); ++e) {
        ctx.event_upper_bound[e] =
            std::max(ctx.event_upper_bound[e], probe.MarginalGain(e, t));
      }
    }
  }

  // suffix_top[e][j] = sum of j largest upper bounds among events >= e.
  // O(|E|^2 log |E|) worst case — also interruptible.
  if (ctx.termination.ok()) {
    ctx.suffix_top.resize(instance.num_events() + 1);
    ctx.suffix_top[instance.num_events()] = {0.0};
    for (EventIndex e = instance.num_events(); e-- > 0;) {
      if (context.CheckStop(&ctx.termination)) break;
      std::vector<double> tail(ctx.event_upper_bound.begin() + e,
                               ctx.event_upper_bound.end());
      std::sort(tail.begin(), tail.end(), std::greater<double>());
      const size_t cap = std::min(tail.size(), ctx.k);
      std::vector<double> sums(cap + 1, 0.0);
      for (size_t j = 0; j < cap; ++j) sums[j + 1] = sums[j] + tail[j];
      ctx.suffix_top[e] = std::move(sums);
    }
  }

  if (ctx.termination.ok()) Dfs(ctx, 0, 0);

  if (ctx.termination.ok()) {
    if (ctx.budget_exhausted) {
      return util::Status::ResourceExhausted(
          "exact solver exceeded its node budget; instance too large");
    }
    if (ctx.best_utility < 0.0) {
      // No feasible size-k schedule exists.
      return util::Status::Infeasible(
          "no feasible schedule with k assignments");
    }
  }
  // On early termination the incumbent (possibly empty) is the best
  // feasible schedule certified so far — return it rather than erroring.

  SolverResult result;
  result.assignments = std::move(ctx.best_assignments);
  // Recompute the utility through the reference objective.
  Schedule schedule(instance);
  for (const Assignment& a : result.assignments) {
    SES_CHECK(schedule.Assign(a.event, a.interval).ok());
  }
  result.utility = TotalUtility(instance, schedule);
  result.wall_seconds = timer.ElapsedSeconds();
  result.stats.nodes = ctx.nodes;
  result.stats.gain_evaluations = ctx.model.gain_evaluations();
  result.solver = std::string(name());
  result.termination = std::move(ctx.termination);
  return result;
}

}  // namespace ses::core
