#ifndef SES_CORE_LOCAL_SEARCH_H_
#define SES_CORE_LOCAL_SEARCH_H_

/// \file
/// Randomized hill-climbing on top of a seed schedule (extension beyond
/// the paper; the natural "can we do better than greedy" follow-up).
///
/// Two cardinality-preserving move kinds:
///   - relocate: move one scheduled event to a different interval;
///   - swap: replace one scheduled event with an unscheduled candidate.
/// First-improvement acceptance; runs until options.max_iterations moves
/// have been tried.

#include <functional>

#include "core/attendance.h"
#include "core/solver.h"
#include "util/random.h"

namespace ses::core {

/// Shared move engine (also used by SimulatedAnnealingSolver).
///
/// Tries one random move on \p model and returns its utility delta.
/// When \p accept returns false the move is rolled back. The bool result
/// is false when no move could be generated (degenerate instance).
class MoveEngine {
 public:
  MoveEngine(const SesInstance& instance, AttendanceModel& model,
             util::Rng& rng);

  /// Attempts one random move; \p accept decides based on the delta.
  /// Returns true when a move was generated (regardless of acceptance).
  bool TryRandomMove(const std::function<bool(double delta)>& accept,
                     bool* accepted);

 private:
  bool TryRelocate(const std::function<bool(double)>& accept,
                   bool* accepted);
  bool TrySwap(const std::function<bool(double)>& accept, bool* accepted);

  /// Picks a uniformly random assigned event; false when none.
  bool PickAssigned(EventIndex* event);
  /// Picks a uniformly random unassigned event; false when all assigned.
  bool PickUnassigned(EventIndex* event);

  const SesInstance* instance_;
  AttendanceModel* model_;
  util::Rng* rng_;
};

/// Hill-climbing solver; seeds from options.base_solver (RAND or GRD).
class LocalSearchSolver final : public Solver {
 public:
  std::string_view name() const override { return "ls"; }

 protected:
  [[nodiscard]] util::Result<SolverResult> DoSolve(const SesInstance& instance,
                                     const SolverOptions& options,
                                     const SolveContext& context) override;
};

}  // namespace ses::core

#endif  // SES_CORE_LOCAL_SEARCH_H_
