#include "core/reduction.h"

#include <memory>

#include "util/string_util.h"

namespace ses::core {

util::Result<SesInstance> ReduceMkpiToSes(const MkpiInstance& mkpi,
                                          const ReductionParams& params) {
  SES_RETURN_IF_ERROR(mkpi.Validate());
  if (params.competing_interest <= 0.0 || params.competing_interest > 1.0) {
    return util::Status::InvalidArgument(
        "competing_interest must be in (0,1]");
  }
  if (params.sigma <= 0.0 || params.sigma > 1.0) {
    return util::Status::InvalidArgument("sigma must be in (0,1]");
  }

  const size_t n = mkpi.weights.size();
  InstanceBuilder builder;
  builder.SetNumUsers(static_cast<uint32_t>(n))
      .SetNumIntervals(static_cast<uint32_t>(mkpi.num_bins))
      .SetTheta(mkpi.capacity)
      .SetSigma(std::make_shared<ConstSigma>(params.sigma));

  // Items -> events. User i likes only event i with mu = p*K/(1-p).
  for (size_t i = 0; i < n; ++i) {
    const double p = mkpi.profits[i];
    if (p <= 0.0 || p >= 1.0) {
      return util::Status::InvalidArgument(util::StrFormat(
          "item %zu: profit %f outside (0,1); normalize first", i, p));
    }
    const double mu = p * params.competing_interest / (1.0 - p);
    if (mu <= 0.0 || mu > 1.0) {
      return util::Status::InvalidArgument(util::StrFormat(
          "item %zu: derived interest %f outside (0,1]; lower "
          "competing_interest",
          i, mu));
    }
    builder.AddEvent(
        /*location=*/static_cast<LocationId>(i),  // distinct locations:
                                                  // no location conflicts
        /*required_resources=*/mkpi.weights[i],
        {{static_cast<UserIndex>(i), static_cast<float>(mu)}});
  }

  // One competing event per interval; all users share interest K.
  std::vector<std::pair<UserIndex, float>> everyone;
  everyone.reserve(n);
  for (size_t u = 0; u < n; ++u) {
    everyone.push_back({static_cast<UserIndex>(u),
                        static_cast<float>(params.competing_interest)});
  }
  for (int b = 0; b < mkpi.num_bins; ++b) {
    builder.AddCompetingEvent(static_cast<IntervalIndex>(b), everyone);
  }

  return builder.Build();
}

MkpiInstance NormalizeMkpiProfits(MkpiInstance mkpi, double slack) {
  SES_CHECK_GT(slack, 1.0);
  double max_profit = 0.0;
  for (double p : mkpi.profits) max_profit = std::max(max_profit, p);
  if (max_profit <= 0.0) return mkpi;
  const double scale = 1.0 / (max_profit * slack);
  for (double& p : mkpi.profits) p *= scale;
  return mkpi;
}

double ExpectedSesUtility(const ReductionParams& params,
                          double mkpi_profit) {
  return params.sigma * mkpi_profit;
}

}  // namespace ses::core
