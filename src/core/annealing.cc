#include "core/annealing.h"

#include <cmath>

#include "core/local_search.h"
#include "core/objective.h"
#include "core/random_schedule.h"
#include "core/greedy.h"
#include "util/timer.h"

namespace ses::core {

util::Result<SolverResult> SimulatedAnnealingSolver::DoSolve(
    const SesInstance& instance, const SolverOptions& options,
    const SolveContext& context) {
  if (options.initial_temperature <= 0.0) {
    return util::Status::InvalidArgument(
        "initial_temperature must be positive");
  }
  if (options.cooling <= 0.0 || options.cooling >= 1.0) {
    return util::Status::InvalidArgument("cooling must be in (0,1)");
  }
  util::WallTimer timer;

  SolverResult base;
  if (options.base_solver == BaseSolver::kGreedy) {
    GreedySolver greedy;
    auto seeded = greedy.Solve(instance, options, context);
    if (!seeded.ok()) return seeded.status();
    base = std::move(seeded).value();
  } else {
    RandomSolver random;
    auto seeded = random.Solve(instance, options, context);
    if (!seeded.ok()) return seeded.status();
    base = std::move(seeded).value();
  }

  AttendanceModel model(instance, options.sigma_cache_capacity);
  for (const Assignment& a : base.assignments) {
    model.Apply(a.event, a.interval);
  }

  util::Rng rng(options.seed ^ 0x5adc0ffee1234567ULL);
  MoveEngine engine(instance, model, rng);
  SolverStats stats;
  util::Status termination = base.termination;

  double temperature = options.initial_temperature;
  double best_utility = model.total_utility();
  std::vector<Assignment> best = model.schedule().Assignments();

  for (int64_t i = 0; termination.ok() && i < options.max_iterations; ++i) {
    if (context.CheckStop(&termination)) break;
    context.CountWork(1);
    const auto accept = [&](double delta) {
      if (delta > 0.0) return true;
      if (temperature <= 1e-12) return false;
      return rng.NextDouble() < std::exp(delta / temperature);
    };
    bool accepted = false;
    if (!engine.TryRandomMove(accept, &accepted)) break;
    ++stats.moves_tried;
    if (accepted) {
      ++stats.moves_accepted;
      if (model.total_utility() > best_utility) {
        best_utility = model.total_utility();
        best = model.schedule().Assignments();
      }
    }
    temperature *= options.cooling;
  }
  stats.gain_evaluations = model.gain_evaluations();

  // Report the best schedule visited, re-evaluated exactly.
  Schedule schedule(instance);
  for (const Assignment& a : best) {
    SES_CHECK(schedule.Assign(a.event, a.interval).ok());
  }

  SolverResult result;
  result.assignments = std::move(best);
  result.utility = TotalUtility(instance, schedule);
  result.wall_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  result.solver = std::string(name());
  result.termination = std::move(termination);
  return result;
}

}  // namespace ses::core
