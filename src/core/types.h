#ifndef SES_CORE_TYPES_H_
#define SES_CORE_TYPES_H_

/// \file
/// Core identifier types of the Social Event Scheduling (SES) problem.
///
/// All entities are referenced by dense indices into the owning
/// SesInstance, which keeps hot loops branch-light and cache-friendly.

#include <cstdint>

namespace ses::core {

/// Index of a user in the instance's user universe U.
using UserIndex = uint32_t;

/// Index of a candidate event in E.
using EventIndex = uint32_t;

/// Index of a (disjoint) time interval in T.
using IntervalIndex = uint32_t;

/// Index of a competing event in C.
using CompetingIndex = uint32_t;

/// Identifier of an event location (stage/venue); two events with equal
/// location cannot share a time interval.
using LocationId = uint32_t;

/// Sentinel for "no index".
inline constexpr uint32_t kInvalidIndex = 0xffffffffu;

/// One event-to-interval assignment alpha_e^t.
struct Assignment {
  EventIndex event = kInvalidIndex;
  IntervalIndex interval = kInvalidIndex;

  friend bool operator==(const Assignment& a, const Assignment& b) {
    return a.event == b.event && a.interval == b.interval;
  }
  friend bool operator<(const Assignment& a, const Assignment& b) {
    if (a.interval != b.interval) return a.interval < b.interval;
    return a.event < b.event;
  }
};

}  // namespace ses::core

#endif  // SES_CORE_TYPES_H_
