#ifndef SES_CORE_BEST_FIT_H_
#define SES_CORE_BEST_FIT_H_

/// \file
/// BESTFIT — an event-major greedy variant (extension beyond the paper).
///
/// GRD is pair-major: it maintains scores for all |E| x |T| assignments
/// and repeatedly takes the global top, paying for score updates across
/// the chosen interval. BESTFIT instead fixes the *order of events* up
/// front (by their best empty-schedule score, an optimistic priority) and
/// then gives each event in turn its currently-best feasible interval,
/// refreshing only that event's |T| scores at selection time.
///
/// Cost: |E||T| initial evaluations + k|T| fresh evaluations — the same
/// initial pass as TOP plus a linear-in-k refresh, strictly cheaper than
/// GRD's update regime. Quality sits between TOP and GRD: event order is
/// decided on stale information, but interval choice is always fresh.
/// The ablation bench quantifies that trade.

#include "core/solver.h"

namespace ses::core {

/// Event-major greedy.
class BestFitSolver final : public Solver {
 public:
  std::string_view name() const override { return "bestfit"; }

 protected:
  [[nodiscard]] util::Result<SolverResult> DoSolve(const SesInstance& instance,
                                     const SolverOptions& options,
                                     const SolveContext& context) override;
};

}  // namespace ses::core

#endif  // SES_CORE_BEST_FIT_H_
