#ifndef SES_CORE_REGISTRY_H_
#define SES_CORE_REGISTRY_H_

/// \file
/// Name-based solver factory used by benches, examples and tests.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver.h"
#include "util/status.h"

namespace ses::core {

/// Creates a solver by name: "grd", "lazy", "top", "rand", "exact", "ls",
/// "anneal". NotFound for anything else.
[[nodiscard]] util::Result<std::unique_ptr<Solver>> MakeSolver(
    std::string_view name);

/// All registered solver names, in presentation order.
std::vector<std::string> ListSolvers();

}  // namespace ses::core

#endif  // SES_CORE_REGISTRY_H_
