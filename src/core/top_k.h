#ifndef SES_CORE_TOP_K_H_
#define SES_CORE_TOP_K_H_

/// \file
/// TOP — the paper's first baseline: compute the initial assignment
/// scores of all (event, interval) pairs once, then walk them in
/// descending score order taking every valid assignment until k are
/// placed. No score updates are ever performed, which is exactly why TOP
/// is fast but inaccurate: it prices every assignment as if its interval
/// were empty.

#include "core/solver.h"

namespace ses::core {

/// The TOP baseline.
class TopKSolver final : public Solver {
 public:
  std::string_view name() const override { return "top"; }

 protected:
  [[nodiscard]] util::Result<SolverResult> DoSolve(const SesInstance& instance,
                                     const SolverOptions& options,
                                     const SolveContext& context) override;
};

}  // namespace ses::core

#endif  // SES_CORE_TOP_K_H_
