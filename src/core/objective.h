#ifndef SES_CORE_OBJECTIVE_H_
#define SES_CORE_OBJECTIVE_H_

/// \file
/// Reference (non-incremental) implementations of the paper's equations:
///
///   Eq. 1  rho_{u,e}^t = sigma_u^t * mu(u,e) /
///            ( sum_{c in C_t} mu(u,c) + sum_{p in E_t(S)} mu(u,p) )
///   Eq. 2  omega_e^t   = sum_{u in U} rho_{u,e}^t
///   Eq. 3  Omega(S)    = sum_{e in E(S)} omega_e^{t_e(S)}
///
/// These functions recompute everything from scratch. They are the ground
/// truth that the incremental AttendanceModel is tested against, and the
/// final-answer evaluator used when reporting solver results.
///
/// They are also the independent oracle for the kernel layer
/// (core/kernels.h): tests/core_kernel_diff_test.cc pins
/// kernels::LuceGain-backed MarginalGain against AssignmentScore to a
/// 1e-6 relative tolerance — tolerance rather than bit-identity because
/// these references sum in a different association (per-user map walk)
/// than the incremental engine's single accumulator.

#include "core/instance.h"
#include "core/schedule.h"
#include "util/hot_annotations.h"

namespace ses::core {

/// Eq. 1: probability that \p u attends event \p e under \p schedule.
/// \p e must be assigned. Returns 0 when the denominator is empty (the
/// user is interested in nothing happening at that interval).
///
/// SES_HOT: evaluators sweep this over every (user, event) pair when
/// reporting per-user probabilities, so the per-call body must stay
/// allocation-free (the aggregate helpers below build scratch maps and
/// are deliberately not hot).
SES_HOT double AttendanceProbability(const SesInstance& instance,
                                     const Schedule& schedule, UserIndex u,
                                     EventIndex e);

/// Eq. 2: expected attendance of assigned event \p e under \p schedule.
double ExpectedAttendance(const SesInstance& instance,
                          const Schedule& schedule, EventIndex e);

/// Eq. 3: total utility of \p schedule.
double TotalUtility(const SesInstance& instance, const Schedule& schedule);

/// Eq. 4: the assignment score of placing unassigned event \p e at
/// interval \p t — the gain in total utility. Reference implementation
/// that copies the schedule; O(interval work), intended for tests.
double AssignmentScore(const SesInstance& instance, const Schedule& schedule,
                       EventIndex e, IntervalIndex t);

}  // namespace ses::core

#endif  // SES_CORE_OBJECTIVE_H_
