#ifndef SES_CORE_SOLVE_CONTEXT_H_
#define SES_CORE_SOLVE_CONTEXT_H_

/// \file
/// Execution context threaded through every Solver::Solve call: a
/// wall-clock deadline, a cooperative cancellation token, and an optional
/// work-counter hook for external progress accounting.
///
/// Solvers poll the context at their iteration boundaries (list pops,
/// heap pops, branch-and-bound nodes, local-search moves). When the
/// context says stop, the solver returns normally with the best feasible
/// schedule found so far and marks SolverResult::termination with
/// kDeadlineExceeded or kCancelled — budgeted best-effort answers instead
/// of all-or-nothing runs, which is what the ses::api serving layer needs.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "util/status.h"

namespace ses::core {

/// A wall-clock budget. Default-constructed deadlines never expire.
class Deadline {
 public:
  /// No limit.
  Deadline() = default;

  /// Never expires.
  static Deadline Unlimited() { return Deadline(); }

  /// Expires \p seconds from now. Non-positive budgets are already
  /// expired — useful for "validate + give me anything feasible" probes.
  static Deadline After(double seconds) {
    Deadline deadline;
    deadline.limited_ = true;
    deadline.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(seconds));
    return deadline;
  }

  /// True when this deadline can never expire.
  bool unlimited() const { return !limited_; }

  /// True once the budget has elapsed. Unlimited deadlines never expire.
  bool Expired() const { return limited_ && Clock::now() >= at_; }

 private:
  using Clock = std::chrono::steady_clock;
  bool limited_ = false;
  Clock::time_point at_{};
};

/// Cooperative cancellation flag, shared between the caller (who cancels)
/// and the running solver (which polls). Thread-safe.
class CancelToken {
 public:
  /// Requests cancellation; the solve returns at its next poll.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once Cancel() was called.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Why a solver should stop early (kNone = keep going).
enum class StopReason {
  kNone,
  kCancelled,
  kDeadlineExceeded,
};

/// Per-solve execution context. Cheap to copy; default state imposes no
/// limits, so `Solve(instance, options)` behaves exactly as before.
struct SolveContext {
  /// Wall-clock budget; unlimited by default.
  Deadline deadline;

  /// Optional cancellation token; null means not cancellable.
  std::shared_ptr<const CancelToken> cancel;

  /// Optional externally-owned counter that solvers bump at iteration
  /// boundaries, so a caller can watch progress of an in-flight solve.
  std::atomic<uint64_t>* work_counter = nullptr;

  /// Polls cancellation first (explicit intent wins), then the deadline.
  /// Allocation-free: safe to call on hot paths.
  StopReason ShouldStop() const {
    if (cancel && cancel->cancelled()) return StopReason::kCancelled;
    if (deadline.Expired()) return StopReason::kDeadlineExceeded;
    return StopReason::kNone;
  }

  /// Polls ShouldStop(); on a stop fills \p termination with the typed
  /// status and returns true. The common solver idiom is
  ///   if (context.CheckStop(&termination)) break;
  bool CheckStop(util::Status* termination) const {
    const StopReason reason = ShouldStop();
    if (reason == StopReason::kNone) return false;
    *termination = StopStatus(reason);
    return true;
  }

  /// Adds \p units to the work counter, if one is attached.
  void CountWork(uint64_t units) const {
    if (work_counter != nullptr) {
      work_counter->fetch_add(units, std::memory_order_relaxed);
    }
  }

  /// Status for a stop reason; OK for kNone.
  [[nodiscard]] static util::Status StopStatus(StopReason reason) {
    switch (reason) {
      case StopReason::kNone:
        return util::Status::Ok();
      case StopReason::kCancelled:
        return util::Status::Cancelled("solve cancelled by caller");
      case StopReason::kDeadlineExceeded:
        return util::Status::DeadlineExceeded("solve deadline exceeded");
    }
    return util::Status::Internal("unknown stop reason");
  }
};

}  // namespace ses::core

#endif  // SES_CORE_SOLVE_CONTEXT_H_
