#ifndef SES_CORE_SIGMA_H_
#define SES_CORE_SIGMA_H_

/// \file
/// Social-activity probability providers: sigma(u, t) in [0, 1], the
/// probability that user u participates in *some* social activity during
/// interval t (paper Section II, "Users").
///
/// Providers are pluggable so experiments can use the paper's Uniform
/// sigma (HashUniformSigma — storage-free, deterministic from a seed)
/// while tests use explicit dense matrices and EBSN-driven models adapt
/// check-in histories.
///
/// Every `final` provider's FillInterval override delegates its row
/// math to a batched span kernel in core/kernels.h (FillSigmaConst /
/// CopySigmaRow / FillSigmaHash): one virtual call per interval load,
/// zero per element, and the kernel body is restrict-qualified so the
/// compiler vectorizes it. Bulk fills are pinned bit-identical to
/// per-element At by tests/core_sigma_test.cc and
/// tests/core_kernel_diff_test.cc.

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.h"
#include "util/hot_annotations.h"
#include "util/logging.h"

namespace ses::core {

/// Interface: per-(user, interval) activity probability.
class SigmaProvider {
 public:
  virtual ~SigmaProvider() = default;

  /// sigma(u, t) in [0, 1].
  virtual double At(UserIndex u, IntervalIndex t) const = 0;

  /// Fills out[u] = sigma(u, t) for u in [0, out.size()). The default
  /// implementation loops over At; providers may override with a faster
  /// bulk fill.
  ///
  /// The concrete providers' overrides are SES_HOT (AttendanceModel
  /// bulk-fills a row on every interval load); this generic fallback
  /// is deliberately not — its per-entry virtual At loop is exactly
  /// what the hot-path rule exists to flag, so a provider that wants
  /// on the hot path must bring its own fill.
  virtual void FillInterval(IntervalIndex t, std::span<float> out) const;
};

/// The same probability for every user and interval.
class ConstSigma final : public SigmaProvider {
 public:
  explicit ConstSigma(double value) : value_(value) {
    SES_CHECK_GE(value, 0.0);
    SES_CHECK_LE(value, 1.0);
  }

  SES_HOT double At(UserIndex, IntervalIndex) const override {
    return value_;
  }
  SES_HOT void FillInterval(IntervalIndex t,
                            std::span<float> out) const override;

 private:
  double value_;
};

/// Explicit matrix sigma, rows indexed by interval. Intended for tests and
/// small instances.
class DenseSigma final : public SigmaProvider {
 public:
  /// \param rows rows[t][u] = sigma(u, t); all rows must share a size.
  explicit DenseSigma(std::vector<std::vector<float>> rows);

  SES_HOT double At(UserIndex u, IntervalIndex t) const override;
  SES_HOT void FillInterval(IntervalIndex t,
                            std::span<float> out) const override;

 private:
  std::vector<std::vector<float>> rows_;
};

/// Storage-free Uniform[0,1) sigma: the value is a deterministic hash of
/// (seed, u, t). This realizes the paper's experimental setting ("the
/// social activity probability sigma is defined using a Uniform
/// distribution") without materializing a |U| x |T| matrix.
class HashUniformSigma final : public SigmaProvider {
 public:
  explicit HashUniformSigma(uint64_t seed) : seed_(seed) {}

  SES_HOT double At(UserIndex u, IntervalIndex t) const override;
  SES_HOT void FillInterval(IntervalIndex t,
                            std::span<float> out) const override;

 private:
  uint64_t seed_;
};

}  // namespace ses::core

#endif  // SES_CORE_SIGMA_H_
