#include "core/registry.h"

#include "core/annealing.h"
#include "core/best_fit.h"
#include "core/exact.h"
#include "core/greedy.h"
#include "core/lazy_greedy.h"
#include "core/local_search.h"
#include "core/random_schedule.h"
#include "core/top_k.h"

namespace ses::core {

util::Result<std::unique_ptr<Solver>> MakeSolver(std::string_view name) {
  if (name == "grd") return std::unique_ptr<Solver>(new GreedySolver());
  if (name == "lazy") return std::unique_ptr<Solver>(new LazyGreedySolver());
  if (name == "bestfit") {
    return std::unique_ptr<Solver>(new BestFitSolver());
  }
  if (name == "top") return std::unique_ptr<Solver>(new TopKSolver());
  if (name == "rand") return std::unique_ptr<Solver>(new RandomSolver());
  if (name == "exact") return std::unique_ptr<Solver>(new ExactSolver());
  if (name == "ls") return std::unique_ptr<Solver>(new LocalSearchSolver());
  if (name == "anneal") {
    return std::unique_ptr<Solver>(new SimulatedAnnealingSolver());
  }
  return util::Status::NotFound("unknown solver: " + std::string(name));
}

std::vector<std::string> ListSolvers() {
  return {"grd", "lazy", "bestfit", "top", "rand", "exact", "ls", "anneal"};
}

}  // namespace ses::core
