#ifndef SES_CORE_RANDOM_SCHEDULE_H_
#define SES_CORE_RANDOM_SCHEDULE_H_

/// \file
/// RAND — the paper's second baseline: assign events to intervals
/// uniformly at random, keeping every valid assignment, until k events
/// are scheduled (or the pair space is exhausted).

#include "core/solver.h"

namespace ses::core {

/// The RAND baseline.
class RandomSolver final : public Solver {
 public:
  std::string_view name() const override { return "rand"; }

 protected:
  [[nodiscard]] util::Result<SolverResult> DoSolve(const SesInstance& instance,
                                     const SolverOptions& options,
                                     const SolveContext& context) override;
};

}  // namespace ses::core

#endif  // SES_CORE_RANDOM_SCHEDULE_H_
