#include "core/instance_io.h"

#include <cstring>
#include <map>

#include "util/csv.h"
#include "util/string_util.h"

namespace ses::core {

namespace {

using util::CsvRow;
using util::Result;
using util::Status;

Result<int64_t> RequireInt(const std::map<std::string, std::string>& meta,
                           const std::string& key) {
  auto it = meta.find(key);
  if (it == meta.end()) {
    return Status::ParseError("meta.csv missing key: " + key);
  }
  return util::ParseInt64(it->second);
}

Result<double> RequireDouble(const std::map<std::string, std::string>& meta,
                             const std::string& key) {
  auto it = meta.find(key);
  if (it == meta.end()) {
    return Status::ParseError("meta.csv missing key: " + key);
  }
  return util::ParseDouble(it->second);
}

}  // namespace

std::shared_ptr<const SigmaProvider> SigmaSpec::Instantiate() const {
  switch (kind) {
    case Kind::kConst:
      return std::make_shared<ConstSigma>(const_value);
    case Kind::kHash:
      return std::make_shared<HashUniformSigma>(seed);
  }
  return nullptr;
}

Status SaveInstance(const SesInstance& instance, const SigmaSpec& sigma_spec,
                    const std::string& dir) {
  {
    std::vector<CsvRow> rows;
    rows.push_back({"users", std::to_string(instance.num_users())});
    rows.push_back({"intervals", std::to_string(instance.num_intervals())});
    rows.push_back({"theta", util::StrFormat("%.17g", instance.theta())});
    rows.push_back({"sigma_kind", sigma_spec.kind == SigmaSpec::Kind::kConst
                                      ? "const"
                                      : "hash"});
    rows.push_back({"sigma_value",
                    util::StrFormat("%.17g", sigma_spec.const_value)});
    rows.push_back({"sigma_seed", std::to_string(sigma_spec.seed)});
    SES_RETURN_IF_ERROR(
        util::WriteCsvFile(dir + "/meta.csv", {"key", "value"}, rows));
  }
  {
    std::vector<CsvRow> rows;
    rows.reserve(instance.num_events());
    for (EventIndex e = 0; e < instance.num_events(); ++e) {
      rows.push_back({std::to_string(e),
                      std::to_string(instance.event(e).location),
                      util::StrFormat("%.17g",
                                      instance.event(e).required_resources)});
    }
    SES_RETURN_IF_ERROR(util::WriteCsvFile(
        dir + "/events.csv", {"event_id", "location", "required_resources"},
        rows));
  }
  {
    std::vector<CsvRow> rows;
    for (EventIndex e = 0; e < instance.num_events(); ++e) {
      auto users = instance.EventUsers(e);
      auto values = instance.EventValues(e);
      for (size_t i = 0; i < users.size(); ++i) {
        rows.push_back({std::to_string(e), std::to_string(users[i]),
                        util::StrFormat("%.9g",
                                        static_cast<double>(values[i]))});
      }
    }
    SES_RETURN_IF_ERROR(util::WriteCsvFile(dir + "/event_interests.csv",
                                           {"event_id", "user_id", "mu"},
                                           rows));
  }
  {
    std::vector<CsvRow> rows;
    rows.reserve(instance.num_competing());
    for (CompetingIndex c = 0; c < instance.num_competing(); ++c) {
      rows.push_back({std::to_string(c),
                      std::to_string(instance.competing(c).interval)});
    }
    SES_RETURN_IF_ERROR(util::WriteCsvFile(
        dir + "/competing.csv", {"competing_id", "interval"}, rows));
  }
  {
    std::vector<CsvRow> rows;
    for (CompetingIndex c = 0; c < instance.num_competing(); ++c) {
      auto users = instance.CompetingUsers(c);
      auto values = instance.CompetingValues(c);
      for (size_t i = 0; i < users.size(); ++i) {
        rows.push_back({std::to_string(c), std::to_string(users[i]),
                        util::StrFormat("%.9g",
                                        static_cast<double>(values[i]))});
      }
    }
    SES_RETURN_IF_ERROR(util::WriteCsvFile(dir + "/competing_interests.csv",
                                           {"competing_id", "user_id", "mu"},
                                           rows));
  }
  return Status::Ok();
}

Result<SesInstance> LoadInstance(const std::string& dir) {
  // --- meta ---------------------------------------------------------------
  std::map<std::string, std::string> meta;
  {
    CsvRow header;
    auto rows = util::ReadCsvFile(dir + "/meta.csv", true, &header);
    if (!rows.ok()) return rows.status();
    for (const CsvRow& row : rows.value()) {
      if (row.size() != 2) return Status::ParseError("meta.csv: bad row");
      meta[row[0]] = row[1];
    }
  }
  auto users = RequireInt(meta, "users");
  if (!users.ok()) return users.status();
  auto intervals = RequireInt(meta, "intervals");
  if (!intervals.ok()) return intervals.status();
  auto theta = RequireDouble(meta, "theta");
  if (!theta.ok()) return theta.status();
  auto sigma_value = RequireDouble(meta, "sigma_value");
  if (!sigma_value.ok()) return sigma_value.status();
  auto sigma_seed = RequireInt(meta, "sigma_seed");
  if (!sigma_seed.ok()) return sigma_seed.status();

  SigmaSpec spec;
  spec.const_value = sigma_value.value();
  spec.seed = static_cast<uint64_t>(sigma_seed.value());
  const std::string kind = meta.count("sigma_kind") ? meta["sigma_kind"] : "";
  if (kind == "const") {
    spec.kind = SigmaSpec::Kind::kConst;
  } else if (kind == "hash") {
    spec.kind = SigmaSpec::Kind::kHash;
  } else {
    return Status::ParseError("meta.csv: unknown sigma_kind: " + kind);
  }

  // --- interest triplets, grouped by row id ------------------------------
  auto load_triplets =
      [&dir](const std::string& file, size_t num_rows,
             std::vector<std::vector<std::pair<UserIndex, float>>>* out)
      -> Status {
    out->assign(num_rows, {});
    CsvRow header;
    auto rows = util::ReadCsvFile(dir + "/" + file, true, &header);
    if (!rows.ok()) return rows.status();
    for (const CsvRow& row : rows.value()) {
      if (row.size() != 3) return Status::ParseError(file + ": bad row");
      auto id = util::ParseInt64(row[0]);
      if (!id.ok()) return id.status();
      auto user = util::ParseInt64(row[1]);
      if (!user.ok()) return user.status();
      auto mu = util::ParseDouble(row[2]);
      if (!mu.ok()) return mu.status();
      if (id.value() < 0 || static_cast<size_t>(id.value()) >= num_rows) {
        return Status::OutOfRange(file + ": row id out of range");
      }
      (*out)[static_cast<size_t>(id.value())].push_back(
          {static_cast<UserIndex>(user.value()),
           static_cast<float>(mu.value())});
    }
    return Status::Ok();
  };

  // --- events -------------------------------------------------------------
  struct EventRow {
    LocationId location;
    double resources;
  };
  std::vector<EventRow> events;
  {
    CsvRow header;
    auto rows = util::ReadCsvFile(dir + "/events.csv", true, &header);
    if (!rows.ok()) return rows.status();
    for (const CsvRow& row : rows.value()) {
      if (row.size() != 3) return Status::ParseError("events.csv: bad row");
      auto location = util::ParseInt64(row[1]);
      if (!location.ok()) return location.status();
      auto resources = util::ParseDouble(row[2]);
      if (!resources.ok()) return resources.status();
      events.push_back({static_cast<LocationId>(location.value()),
                        resources.value()});
    }
  }
  std::vector<std::vector<std::pair<UserIndex, float>>> event_rows;
  SES_RETURN_IF_ERROR(
      load_triplets("event_interests.csv", events.size(), &event_rows));

  // --- competing events ---------------------------------------------------
  std::vector<IntervalIndex> competing;
  {
    CsvRow header;
    auto rows = util::ReadCsvFile(dir + "/competing.csv", true, &header);
    if (!rows.ok()) return rows.status();
    for (const CsvRow& row : rows.value()) {
      if (row.size() != 2) {
        return Status::ParseError("competing.csv: bad row");
      }
      auto interval = util::ParseInt64(row[1]);
      if (!interval.ok()) return interval.status();
      competing.push_back(static_cast<IntervalIndex>(interval.value()));
    }
  }
  std::vector<std::vector<std::pair<UserIndex, float>>> competing_rows;
  SES_RETURN_IF_ERROR(load_triplets("competing_interests.csv",
                                    competing.size(), &competing_rows));

  // --- assemble -----------------------------------------------------------
  InstanceBuilder builder;
  builder.SetNumUsers(static_cast<uint32_t>(users.value()))
      .SetNumIntervals(static_cast<uint32_t>(intervals.value()))
      .SetTheta(theta.value())
      .SetSigma(spec.Instantiate());
  for (size_t e = 0; e < events.size(); ++e) {
    builder.AddEvent(events[e].location, events[e].resources,
                     std::move(event_rows[e]));
  }
  for (size_t c = 0; c < competing.size(); ++c) {
    builder.AddCompetingEvent(competing[c], std::move(competing_rows[c]));
  }
  return builder.Build();
}

}  // namespace ses::core
