#ifndef SES_CORE_SCHEDULE_H_
#define SES_CORE_SCHEDULE_H_

/// \file
/// A schedule S: a set of event-to-interval assignments with at most one
/// assignment per event, maintained together with the paper's two
/// feasibility constraints (Section II):
///
///   1. Location constraint: no two events at the same location within
///      one interval.
///   2. Resources constraint: the events of one interval require at most
///      theta resources in total.

#include <span>
#include <vector>

#include "core/instance.h"
#include "core/types.h"
#include "util/status.h"

namespace ses::core {

/// Mutable schedule over a fixed instance (which must outlive it).
class Schedule {
 public:
  explicit Schedule(const SesInstance& instance);

  /// True iff event \p e currently has an assignment.
  bool IsAssigned(EventIndex e) const;

  /// The interval of event \p e, or kInvalidIndex when unassigned.
  IntervalIndex IntervalOf(EventIndex e) const;

  /// Events assigned to interval \p t (E_t(S)), in assignment order.
  const std::vector<EventIndex>& EventsAt(IntervalIndex t) const;

  /// Total resources required by the events of interval \p t.
  double UsedResources(IntervalIndex t) const;

  /// True iff assigning e to t would be *valid*: e unassigned, and both
  /// feasibility constraints hold after the assignment.
  bool CanAssign(EventIndex e, IntervalIndex t) const;

  /// Performs the assignment; Infeasible/FailedPrecondition when
  /// CanAssign(e, t) is false.
  [[nodiscard]] util::Status Assign(EventIndex e, IntervalIndex t);

  /// Removes event \p e's assignment; FailedPrecondition when unassigned.
  [[nodiscard]] util::Status Unassign(EventIndex e);

  /// Number of assignments |S|.
  size_t size() const { return size_; }

  /// All assignments sorted by (interval, event).
  std::vector<Assignment> Assignments() const;

  /// Removes every assignment.
  void Clear();

  /// The instance this schedule refers to.
  const SesInstance& instance() const { return *instance_; }

 private:
  const SesInstance* instance_;
  std::vector<IntervalIndex> event_interval_;
  std::vector<std::vector<EventIndex>> interval_events_;
  std::vector<double> interval_resources_;
  size_t size_ = 0;
};

/// Applies a warm start to an empty schedule. Returns InvalidArgument —
/// the same typed rejection the api::Scheduler validation path produces —
/// when an assignment cannot be applied, e.g. a warm start handed
/// directly to Solver::Solve that slips past the tolerance-based
/// validator but fails the schedule's strict feasibility check. Solvers
/// call this instead of SES_CHECKing so a bad warm start is a typed
/// error, never a process abort.
[[nodiscard]] util::Status ApplyWarmStart(Schedule& schedule,
                            std::span<const Assignment> warm_start);

}  // namespace ses::core

#endif  // SES_CORE_SCHEDULE_H_
