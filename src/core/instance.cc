#include "core/instance.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace ses::core {

uint32_t InterestRows::AddRow(
    std::span<const std::pair<UserIndex, float>> entries) {
  for (const auto& [user, value] : entries) {
    users_.push_back(user);
    values_.push_back(value);
  }
  offsets_.push_back(users_.size());
  return static_cast<uint32_t>(offsets_.size() - 2);
}

std::span<const UserIndex> InterestRows::RowUsers(uint32_t row) const {
  SES_CHECK_LT(row, num_rows());
  return {users_.data() + offsets_[row],
          static_cast<size_t>(offsets_[row + 1] - offsets_[row])};
}

std::span<const float> InterestRows::RowValues(uint32_t row) const {
  SES_CHECK_LT(row, num_rows());
  return {values_.data() + offsets_[row],
          static_cast<size_t>(offsets_[row + 1] - offsets_[row])};
}

float InterestRows::ValueAt(uint32_t row, UserIndex user) const {
  auto users = RowUsers(row);
  auto it = std::lower_bound(users.begin(), users.end(), user);
  if (it == users.end() || *it != user) return 0.0f;
  return RowValues(row)[static_cast<size_t>(it - users.begin())];
}

const CandidateEventInfo& SesInstance::event(EventIndex e) const {
  SES_CHECK_LT(e, events_.size());
  return events_[e];
}

const CompetingEventInfo& SesInstance::competing(CompetingIndex c) const {
  SES_CHECK_LT(c, competing_.size());
  return competing_[c];
}

std::span<const CompetingIndex> SesInstance::CompetingAt(
    IntervalIndex t) const {
  SES_CHECK_LT(t, interval_competing_.size());
  return interval_competing_[t];
}

InstanceBuilder& InstanceBuilder::SetNumUsers(uint32_t n) {
  num_users_ = n;
  return *this;
}

InstanceBuilder& InstanceBuilder::SetNumIntervals(uint32_t n) {
  num_intervals_ = n;
  return *this;
}

InstanceBuilder& InstanceBuilder::SetTheta(double theta) {
  theta_ = theta;
  return *this;
}

InstanceBuilder& InstanceBuilder::SetSigma(
    std::shared_ptr<const SigmaProvider> sigma) {
  sigma_ = std::move(sigma);
  return *this;
}

EventIndex InstanceBuilder::AddEvent(
    LocationId location, double required_resources,
    std::vector<std::pair<UserIndex, float>> interests) {
  events_.push_back({location, required_resources});
  event_rows_.push_back({std::move(interests)});
  return static_cast<EventIndex>(events_.size() - 1);
}

CompetingIndex InstanceBuilder::AddCompetingEvent(
    IntervalIndex interval,
    std::vector<std::pair<UserIndex, float>> interests) {
  competing_.push_back({interval});
  competing_rows_.push_back({std::move(interests)});
  return static_cast<CompetingIndex>(competing_.size() - 1);
}

util::Status InstanceBuilder::ValidateRow(
    const std::vector<std::pair<UserIndex, float>>& row, const char* what,
    size_t index) const {
  for (size_t i = 0; i < row.size(); ++i) {
    const auto& [user, value] = row[i];
    if (user >= num_users_) {
      return util::Status::OutOfRange(util::StrFormat(
          "%s %zu: user %u out of range (|U|=%u)", what, index, user,
          num_users_));
    }
    if (!(value > 0.0f) || value > 1.0f) {
      return util::Status::InvalidArgument(util::StrFormat(
          "%s %zu: interest %f outside (0,1]", what, index,
          static_cast<double>(value)));
    }
    if (i > 0 && row[i - 1].first >= user) {
      return util::Status::FailedPrecondition(util::StrFormat(
          "%s %zu: interest row not sorted/unique by user", what, index));
    }
  }
  return util::Status::Ok();
}

util::Result<SesInstance> InstanceBuilder::Build() {
  if (num_users_ == 0) {
    return util::Status::InvalidArgument("instance needs at least one user");
  }
  if (num_intervals_ == 0) {
    return util::Status::InvalidArgument(
        "instance needs at least one interval");
  }
  if (theta_ < 0.0) {
    return util::Status::InvalidArgument("theta must be non-negative");
  }
  if (sigma_ == nullptr) {
    return util::Status::InvalidArgument("sigma provider not set");
  }
  for (size_t e = 0; e < events_.size(); ++e) {
    if (events_[e].required_resources < 0.0) {
      return util::Status::InvalidArgument(
          util::StrFormat("event %zu: negative required resources", e));
    }
    SES_RETURN_IF_ERROR(ValidateRow(event_rows_[e].entries, "event", e));
  }
  for (size_t c = 0; c < competing_.size(); ++c) {
    if (competing_[c].interval >= num_intervals_) {
      return util::Status::OutOfRange(util::StrFormat(
          "competing event %zu: interval %u out of range", c,
          competing_[c].interval));
    }
    SES_RETURN_IF_ERROR(
        ValidateRow(competing_rows_[c].entries, "competing event", c));
  }

  SesInstance instance;
  instance.num_users_ = num_users_;
  instance.num_intervals_ = num_intervals_;
  instance.theta_ = theta_;
  instance.sigma_ = std::move(sigma_);
  instance.events_ = std::move(events_);
  instance.competing_ = std::move(competing_);
  instance.interval_competing_.resize(num_intervals_);
  for (size_t c = 0; c < instance.competing_.size(); ++c) {
    instance.interval_competing_[instance.competing_[c].interval].push_back(
        static_cast<CompetingIndex>(c));
  }
  for (auto& row : event_rows_) {
    instance.event_interest_.AddRow(row.entries);
  }
  for (auto& row : competing_rows_) {
    instance.competing_interest_.AddRow(row.entries);
  }
  return instance;
}

}  // namespace ses::core
