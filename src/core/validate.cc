#include "core/validate.h"

#include <set>
#include <vector>

#include "util/string_util.h"

namespace ses::core {

util::Status ValidateAssignments(const SesInstance& instance,
                                 std::span<const Assignment> assignments,
                                 int64_t expected_k) {
  if (expected_k >= 0 &&
      assignments.size() != static_cast<size_t>(expected_k)) {
    return util::Status::FailedPrecondition(util::StrFormat(
        "expected %lld assignments, got %zu",
        static_cast<long long>(expected_k), assignments.size()));
  }

  std::set<EventIndex> seen_events;
  std::vector<double> interval_resources(instance.num_intervals(), 0.0);
  std::set<std::pair<IntervalIndex, LocationId>> taken_locations;

  for (const Assignment& a : assignments) {
    if (a.event >= instance.num_events()) {
      return util::Status::OutOfRange(
          util::StrFormat("event %u out of range", a.event));
    }
    if (a.interval >= instance.num_intervals()) {
      return util::Status::OutOfRange(
          util::StrFormat("interval %u out of range", a.interval));
    }
    if (!seen_events.insert(a.event).second) {
      return util::Status::FailedPrecondition(
          util::StrFormat("event %u assigned more than once", a.event));
    }
    const CandidateEventInfo& info = instance.event(a.event);
    if (!taken_locations.insert({a.interval, info.location}).second) {
      return util::Status::Infeasible(util::StrFormat(
          "location %u double-booked at interval %u", info.location,
          a.interval));
    }
    interval_resources[a.interval] += info.required_resources;
    if (interval_resources[a.interval] > instance.theta() + 1e-9) {
      return util::Status::Infeasible(util::StrFormat(
          "interval %u exceeds theta (%.3f > %.3f)", a.interval,
          interval_resources[a.interval], instance.theta()));
    }
  }
  return util::Status::Ok();
}

}  // namespace ses::core
