#include "core/top_k.h"

#include <algorithm>

#include "core/attendance.h"
#include "core/objective.h"
#include "util/timer.h"

namespace ses::core {

util::Result<SolverResult> TopKSolver::DoSolve(const SesInstance& instance,
                                               const SolverOptions& options,
                                               const SolveContext& context) {
  util::WallTimer timer;

  AttendanceModel model(instance, options.sigma_cache_capacity);
  SES_RETURN_IF_ERROR(ApplyWarmStart(model, options.warm_start));
  SolverStats stats;
  util::Status termination;

  struct Entry {
    EventIndex event;
    IntervalIndex interval;
    double score;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<size_t>(instance.num_events()) *
                  instance.num_intervals());
  for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
    if (context.CheckStop(&termination)) break;
    for (EventIndex e = 0; e < instance.num_events(); ++e) {
      if (model.schedule().IsAssigned(e)) continue;  // warm-started
      entries.push_back({e, t, model.MarginalGain(e, t)});
    }
  }
  // Sorting and walking only happen on a complete ranking (a truncated
  // one would be biased toward low intervals, and sorting it after the
  // budget expired would be pure wasted work).
  if (termination.ok()) {
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.score > b.score;
              });
  }

  // Entries are cheap to skip, so the context is polled on a stride.
  const size_t k = static_cast<size_t>(options.k);
  uint64_t polls = 0;
  for (const Entry& entry : entries) {
    if (!termination.ok()) break;
    if ((polls++ & 63) == 0 && context.CheckStop(&termination)) break;
    context.CountWork(1);
    if (model.schedule().size() >= k) break;
    ++stats.pops;
    if (!model.CanAssign(entry.event, entry.interval)) continue;
    model.Apply(entry.event, entry.interval);
  }

  stats.gain_evaluations = model.gain_evaluations();

  SolverResult result;
  result.assignments = model.schedule().Assignments();
  result.utility = TotalUtility(instance, model.schedule());
  result.wall_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  result.solver = std::string(name());
  result.termination = std::move(termination);
  return result;
}

}  // namespace ses::core
