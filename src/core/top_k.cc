#include "core/top_k.h"

#include <algorithm>

#include "core/attendance.h"
#include "core/objective.h"
#include "util/timer.h"

namespace ses::core {

util::Result<SolverResult> TopKSolver::Solve(const SesInstance& instance,
                                             const SolverOptions& options) {
  SES_RETURN_IF_ERROR(ValidateSolverOptions(instance, options));
  util::WallTimer timer;

  AttendanceModel model(instance);
  for (const Assignment& a : options.warm_start) {
    SES_CHECK(model.CanAssign(a.event, a.interval))
        << "warm-start assignment infeasible";
    model.Apply(a.event, a.interval);
  }
  SolverStats stats;

  struct Entry {
    EventIndex event;
    IntervalIndex interval;
    double score;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<size_t>(instance.num_events()) *
                  instance.num_intervals());
  for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
    for (EventIndex e = 0; e < instance.num_events(); ++e) {
      if (model.schedule().IsAssigned(e)) continue;  // warm-started
      entries.push_back({e, t, model.MarginalGain(e, t)});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.score > b.score; });

  const size_t k = static_cast<size_t>(options.k);
  for (const Entry& entry : entries) {
    if (model.schedule().size() >= k) break;
    ++stats.pops;
    if (!model.CanAssign(entry.event, entry.interval)) continue;
    model.Apply(entry.event, entry.interval);
  }

  stats.gain_evaluations = model.gain_evaluations();

  SolverResult result;
  result.assignments = model.schedule().Assignments();
  result.utility = TotalUtility(instance, model.schedule());
  result.wall_seconds = timer.ElapsedSeconds();
  result.stats = stats;
  result.solver = std::string(name());
  return result;
}

}  // namespace ses::core
