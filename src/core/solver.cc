#include "core/solver.h"

#include "core/validate.h"
#include "util/string_util.h"

namespace ses::core {

util::Result<SolverResult> Solver::Solve(const SesInstance& instance,
                                         const SolverOptions& options,
                                         const SolveContext& context) {
  SES_RETURN_IF_ERROR(ValidateSolverOptions(instance, options));
  return DoSolve(instance, options, context);
}

util::Status ValidateSolverOptions(const SesInstance& instance,
                                   const SolverOptions& options) {
  if (options.k <= 0) {
    return util::Status::InvalidArgument(
        util::StrFormat("k must be positive, got %lld",
                        static_cast<long long>(options.k)));
  }
  if (options.k > instance.num_events()) {
    return util::Status::InvalidArgument(util::StrFormat(
        "k=%lld exceeds the number of candidate events (%u)",
        static_cast<long long>(options.k), instance.num_events()));
  }
  if (options.threads < 0) {
    return util::Status::InvalidArgument(util::StrFormat(
        "threads must be >= 0, got %lld",
        static_cast<long long>(options.threads)));
  }
  if (!options.warm_start.empty()) {
    if (options.warm_start.size() > static_cast<size_t>(options.k)) {
      return util::Status::InvalidArgument(util::StrFormat(
          "warm start holds %zu assignments but k is only %lld",
          options.warm_start.size(), static_cast<long long>(options.k)));
    }
    SES_RETURN_IF_ERROR(
        ValidateAssignments(instance, options.warm_start));
  }
  return util::Status::Ok();
}

}  // namespace ses::core
