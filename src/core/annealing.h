#ifndef SES_CORE_ANNEALING_H_
#define SES_CORE_ANNEALING_H_

/// \file
/// Simulated annealing over the same move neighborhood as local search
/// (extension beyond the paper). Accepts worsening moves with probability
/// exp(delta / temperature) under a geometric cooling schedule, and
/// returns the best schedule visited.

#include "core/solver.h"

namespace ses::core {

/// Simulated-annealing solver; seeds from options.base_solver.
class SimulatedAnnealingSolver final : public Solver {
 public:
  std::string_view name() const override { return "anneal"; }

 protected:
  [[nodiscard]] util::Result<SolverResult> DoSolve(const SesInstance& instance,
                                     const SolverOptions& options,
                                     const SolveContext& context) override;
};

}  // namespace ses::core

#endif  // SES_CORE_ANNEALING_H_
