#ifndef SES_UTIL_THREAD_POOL_H_
#define SES_UTIL_THREAD_POOL_H_

/// \file
/// Fixed-size worker pool with a blocking ParallelFor, used to parallelize
/// initial assignment-score generation on multi-core machines. On a single
/// core machine the pool degrades gracefully to near-serial execution.
///
/// ParallelFor is re-entrant: it may be called from inside a pool task.
/// Each call tracks its own shards on a per-call completion latch (never
/// the pool-wide in-flight count), and the calling thread claims and
/// executes shards alongside the workers. A call issued from a saturated
/// or fully-parked pool therefore still completes — worst case the caller
/// runs every shard itself — instead of deadlocking on helpers that can
/// never be scheduled, and it never waits on unrelated Submit() work.

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ses::util {

/// A fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues \p task for asynchronous execution.
  void Submit(std::function<void()> task) SES_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished.
  void Wait() SES_EXCLUDES(mutex_);

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for every i in [begin, end), partitioned into contiguous
  /// shards across the pool plus the calling thread, and blocks until all
  /// shards complete. Safe to call from inside a pool task (see \file).
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

  /// Shard-granular variant: partitions [begin, end) into at most
  /// min(num_threads() + 1, max_shards) contiguous shards whose sizes
  /// differ by at most one, and runs fn(lo, hi) once per shard.
  /// \p max_shards == 0 means one shard per available lane (workers plus
  /// the calling thread). Use this when each shard needs its own scratch
  /// state (e.g. one AttendanceModel per shard in score generation).
  void ParallelForShards(size_t begin, size_t end, size_t max_shards,
                         const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop() SES_EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar task_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ SES_GUARDED_BY(mutex_);
  /// Written only by the constructor, before any worker can observe it;
  /// immutable afterwards, so reads (num_threads) need no lock.
  std::vector<std::thread> workers_;
  size_t in_flight_ SES_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ SES_GUARDED_BY(mutex_) = false;
};

}  // namespace ses::util

#endif  // SES_UTIL_THREAD_POOL_H_
