#ifndef SES_UTIL_THREAD_POOL_H_
#define SES_UTIL_THREAD_POOL_H_

/// \file
/// Fixed-size worker pool with a blocking ParallelFor, used to parallelize
/// initial assignment-score generation on multi-core machines. On a single
/// core machine the pool degrades gracefully to near-serial execution.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ses::util {

/// A fixed set of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// \param num_threads worker count; 0 means hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues \p task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for every i in [begin, end), partitioned into contiguous
  /// shards across the pool, and blocks until all shards complete.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace ses::util

#endif  // SES_UTIL_THREAD_POOL_H_
