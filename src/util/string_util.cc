#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ses::util {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::ParseError("empty integer");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: " + buf);
  }
  if (end == nullptr || *end != '\0') {
    return Status::ParseError("not an integer: " + buf);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::ParseError("empty double");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::ParseError("double out of range: " + buf);
  }
  if (end == nullptr || *end != '\0') {
    return Status::ParseError("not a double: " + buf);
  }
  return value;
}

Result<bool> ParseBool(std::string_view s) {
  const std::string lower = ToLower(Trim(s));
  if (lower == "true" || lower == "1" || lower == "yes") return true;
  if (lower == "false" || lower == "0" || lower == "no") return false;
  return Status::ParseError("not a bool: " + lower);
}

std::string WithThousandsSep(int64_t value) {
  const bool negative = value < 0;
  uint64_t magnitude =
      negative ? (~static_cast<uint64_t>(value) + 1) : static_cast<uint64_t>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  const size_t first_group = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  out.append(digits, 0, first_group);
  for (size_t i = first_group; i < digits.size(); i += 3) {
    out.push_back(',');
    out.append(digits, i, 3);
  }
  if (negative) out.insert(out.begin(), '-');
  return out;
}

}  // namespace ses::util
