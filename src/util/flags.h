#ifndef SES_UTIL_FLAGS_H_
#define SES_UTIL_FLAGS_H_

/// \file
/// Tiny command-line flag parser for examples and bench binaries.
///
/// Usage:
///   FlagSet flags("my_tool");
///   int k = 100;
///   flags.AddInt("k", &k, "number of scheduled events");
///   auto status = flags.Parse(argc, argv);
///
/// Accepted forms: --name=value, --name value, and --name for bools.

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace ses::util {

/// A set of named command-line flags bound to caller-owned storage.
///
/// Flag names must be unique within a set; registering the same name
/// twice aborts (SES_CHECK) — the second registration would otherwise be
/// silently unreachable.
class FlagSet {
 public:
  /// \param program name shown in Usage().
  explicit FlagSet(std::string program) : program_(std::move(program)) {}

  /// Registers an int64 flag bound to \p target (holds its default).
  void AddInt(const std::string& name, int64_t* target,
              const std::string& help);

  /// Registers a double flag bound to \p target.
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);

  /// Registers a string flag bound to \p target.
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);

  /// Registers a bool flag bound to \p target. "--name" sets it true;
  /// "--name=false" is also accepted.
  void AddBool(const std::string& name, bool* target,
               const std::string& help);

  /// Parses argv, writing values into the bound targets. Unknown flags are
  /// errors; non-flag arguments are collected into positional().
  [[nodiscard]] Status Parse(int argc, const char* const* argv);

  /// Non-flag arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Help text describing all registered flags and their defaults.
  std::string Usage() const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };

  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_value;
  };

  /// Appends \p flag; aborts on a duplicate name (programming error).
  void Register(Flag flag);
  Flag* Find(const std::string& name);
  [[nodiscard]] Status Assign(Flag& flag, const std::string& value);

  std::string program_;
  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ses::util

#endif  // SES_UTIL_FLAGS_H_
