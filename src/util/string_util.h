#ifndef SES_UTIL_STRING_UTIL_H_
#define SES_UTIL_STRING_UTIL_H_

/// \file
/// Small string helpers shared by the CSV layer, flag parser and reports.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace ses::util {

/// Splits \p s on \p sep. Keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins \p parts with \p sep between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True iff \p s begins with \p prefix.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff \p s ends with \p suffix.
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Strict string->int64 parse (whole string must be consumed).
[[nodiscard]] Result<int64_t> ParseInt64(std::string_view s);

/// Strict string->double parse (whole string must be consumed).
[[nodiscard]] Result<double> ParseDouble(std::string_view s);

/// Strict string->bool parse; accepts true/false/1/0/yes/no (any case).
[[nodiscard]] Result<bool> ParseBool(std::string_view s);

/// Renders a count with thousands separators, e.g. 1234567 -> "1,234,567".
std::string WithThousandsSep(int64_t value);

}  // namespace ses::util

#endif  // SES_UTIL_STRING_UTIL_H_
