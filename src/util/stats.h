#ifndef SES_UTIL_STATS_H_
#define SES_UTIL_STATS_H_

/// \file
/// Streaming and batch summary statistics used by dataset analysis and the
/// experiment harness.

#include <cstddef>
#include <string>
#include <vector>

namespace ses::util {

/// Welford-style streaming accumulator for mean and variance.
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations so far.
  size_t count() const { return count_; }

  /// Mean of the observations (0 when empty).
  double mean() const { return mean_; }

  /// Unbiased sample variance (0 with fewer than two observations).
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest observation (+inf when empty).
  double min() const { return min_; }

  /// Largest observation (-inf when empty).
  double max() const { return max_; }

  /// Sum of all observations.
  double sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const RunningStat& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Batch summary of a sample: moments plus selected percentiles.
///
/// For an empty sample, count is 0, mean/stddev are 0, and the order
/// statistics (min/max/p50/p90/p99) are NaN — never a process abort, so
/// summarizing a metrics window in which nothing was observed is safe.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  /// Human-readable one-liner.
  std::string ToString() const;
};

/// Computes a Summary over \p values (copied; input order preserved).
Summary Summarize(const std::vector<double>& values);

/// Linear-interpolation percentile over a *sorted* sample. \p q in
/// [0,1]. Returns NaN for an empty sample.
double PercentileSorted(const std::vector<double>& sorted, double q);

}  // namespace ses::util

#endif  // SES_UTIL_STATS_H_
