#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace ses::util {

uint64_t Rng::NextBounded(uint64_t bound) {
  SES_CHECK_GT(bound, 0u);
  // Lemire's method: multiply-shift with rejection on the low word.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SES_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::UniformDouble(double lo, double hi) {
  SES_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  SES_CHECK_GE(n, 1u);
  SES_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), s);
    cdf_[i - 1] = acc;
  }
  for (auto& value : cdf_) value /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  SES_CHECK(!weights.empty()) << "DiscreteSampler needs weights";
  cdf_.resize(weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    SES_CHECK_GE(weights[i], 0.0);
    acc += weights[i];
    cdf_[i] = acc;
  }
  SES_CHECK_GT(acc, 0.0) << "DiscreteSampler needs a positive total weight";
  for (auto& value : cdf_) value /= acc;
  cdf_.back() = 1.0;
}

size_t DiscreteSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

int PoissonSample(Rng& rng, double lambda) {
  SES_CHECK_GE(lambda, 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 64.0) {
    // Knuth: multiply uniforms until the product drops below e^-lambda.
    const double limit = std::exp(-lambda);
    double product = 1.0;
    int count = -1;
    do {
      product *= rng.NextDouble();
      ++count;
    } while (product > limit);
    return count;
  }
  // Normal approximation with continuity correction for large lambda.
  double u1 = rng.NextDouble();
  double u2 = rng.NextDouble();
  if (u1 <= 0.0) u1 = 1e-300;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double value = lambda + std::sqrt(lambda) * z + 0.5;
  return value < 0.0 ? 0 : static_cast<int>(value);
}

std::vector<uint32_t> SampleWithoutReplacement(Rng& rng, uint32_t n,
                                               uint32_t k) {
  std::vector<uint32_t> out;
  if (n == 0) return out;
  if (k >= n) {
    out.resize(n);
    std::iota(out.begin(), out.end(), 0u);
    Shuffle(out, rng);
    return out;
  }
  out.reserve(k);
  if (static_cast<uint64_t>(k) * 3 >= n) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<uint32_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0u);
    for (uint32_t i = 0; i < k; ++i) {
      uint32_t j = i + static_cast<uint32_t>(rng.NextBounded(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling with a hash set.
  std::unordered_set<uint32_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    uint32_t candidate = static_cast<uint32_t>(rng.NextBounded(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace ses::util
