#ifndef SES_UTIL_HOT_ANNOTATIONS_H_
#define SES_UTIL_HOT_ANNOTATIONS_H_

/// \file
/// SES_HOT: the hot-path purity contract.
///
/// Marking a function `SES_HOT` declares that it — and everything it
/// can transitively reach — is free of
///
///   (a) heap allocation (`new`, `make_unique`/`make_shared`,
///       `push_back`/`emplace`/`resize`, string construction), with an
///       amortized-capacity escape: growth calls whose receiver has a
///       matching `reserve` earlier in the same body, or in another
///       member of the same class (the constructor down-payment
///       pattern), are allowed;
///   (b) mutex acquisition (scoped locks, manual `Lock()`, calls into
///       `SES_ACQUIRE`-declared functions) and condition-variable
///       waits;
///   (c) logging, IO, and clock reads (`SES_LOG`, printf/fopen family,
///       `std::chrono::*_clock::now`);
///   (d) map-shaped lookups (`.at`/`.find`/`operator[]` on
///       `std::map`/`std::unordered_map` receivers) — hot state lives
///       in dense, index-addressed scratch;
///   (e) virtual dispatch through a receiver whose static class is not
///       `final`.
///
/// The contract is checked twice, so the claim and the behavior cannot
/// drift apart:
///
///   - statically by `tools/ses_lint.py` (`hot-path` rule): every
///     `SES_HOT` function is a root of a transitive call-graph walk;
///     violations are reported with the full witness call chain, and
///     calls to functions the analysis cannot see are errors unless
///     listed in `tools/hot_whitelist.txt` (pure leaves: span/container
///     reads, `<algorithm>` scans, math);
///   - dynamically by the `SES_ALLOC_GUARD` counting allocator
///     (`util/alloc_guard.h`): `tests/core_hot_path_alloc_test.cc`
///     asserts zero allocations inside the annotated kernels on a
///     medium instance.
///
/// `SES_CHECK` is explicitly permitted in hot regions: a passing check
/// costs one predictable branch, and the failure path aborts the
/// process — it never returns to the hot loop.
///
/// Deliberate, justified exceptions (a cold-path call that runs at
/// most twice per interval, a single virtual bulk fill amortized over
/// |U| entries of work) are suppressed at the witness edge with a
/// same-line `// ses-lint: allow(hot-path) <justification>`.
///
/// Place the macro before the return type, on the declaration:
///
///   SES_HOT double MarginalGain(EventIndex e, IntervalIndex t);
///
/// To the compiler it is `[[gnu::hot]]` (optimize-for-speed hint)
/// where supported and a no-op elsewhere; ses_lint recognizes the
/// token syntactically.

#if defined(__GNUC__) || defined(__clang__)
#define SES_HOT __attribute__((hot))
#else
#define SES_HOT
#endif

#endif  // SES_UTIL_HOT_ANNOTATIONS_H_
