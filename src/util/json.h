#ifndef SES_UTIL_JSON_H_
#define SES_UTIL_JSON_H_

/// \file
/// Minimal JSON value model + recursive-descent parser, standard
/// library only — the substrate for declarative descriptors such as the
/// bench trace files under bench/traces/ (exp::TraceSpec).
///
/// Scope is deliberately small: parse a complete UTF-8 document into an
/// immutable JsonValue tree and let callers walk it with typed
/// accessors. Objects keep their members in a std::map, so iteration
/// (and anything derived from it, e.g. "unknown key" diagnostics) is
/// deterministic regardless of document order. Numbers are doubles —
/// the descriptors this backs never need 64-bit-exact integers beyond
/// 2^53. Writing JSON stays with the callers (report emission is a
/// handful of StrFormat lines, not worth a serializer API).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace ses::util {

/// One node of a parsed JSON document.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed payload accessors. Calling the wrong one for the node's kind
  /// returns the type's empty/zero value — callers are expected to
  /// check kind() (or use the Find/Get helpers) first.
  bool AsBool() const { return is_bool() && bool_; }
  double AsNumber() const { return is_number() ? number_ : 0.0; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const {
    return object_;
  }

  /// Object member lookup; null when this is not an object or the key
  /// is absent. The pointer is valid for this value's lifetime.
  const JsonValue* Find(const std::string& key) const;

  /// Parses one complete JSON document (trailing whitespace allowed,
  /// trailing garbage is an error). Errors are kParseError and name the
  /// line/column of the offending byte.
  static Result<JsonValue> Parse(const std::string& text);

  /// Named constructors (used by the parser; handy for tests).
  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double n);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::map<std::string, JsonValue> members);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace ses::util

#endif  // SES_UTIL_JSON_H_
