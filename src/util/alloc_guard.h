#ifndef SES_UTIL_ALLOC_GUARD_H_
#define SES_UTIL_ALLOC_GUARD_H_

/// \file
/// Thread-local allocation counting — the dynamic half of the SES_HOT
/// contract (util/hot_annotations.h).
///
/// When the build enables `-DSES_ALLOC_GUARD=ON`, alloc_guard.cc
/// replaces the global `operator new` / `operator delete` family with
/// forwarding versions that bump a thread-local counter on every
/// allocation (sanitizer-style interposition: AddressSanitizer still
/// sees the underlying malloc, so the two compose). Tests wrap a hot
/// region in a `ScopedAllocCheck` and assert `allocations() == 0`; see
/// tests/core_hot_path_alloc_test.cc for the kernels this pins.
///
/// Off by default: in a normal build these functions compile to a
/// constant 0 and the global allocator is untouched. The counter is
/// strictly per-thread — allocations on other threads never leak into
/// a check, so the guard is usable under the parallel solver.

#include <cstdint>

namespace ses::util {

// Number of heap allocations this thread has performed since it
// started. Constant 0 when the interposer is compiled out.
uint64_t ThreadAllocCount();

// True when the counting interposer is linked in (SES_ALLOC_GUARD=ON).
// Tests use this to GTEST_SKIP instead of vacuously passing.
bool AllocGuardEnabled();

// Snapshot-on-construction window over ThreadAllocCount(). Nests
// freely: each instance measures from its own construction point.
//
//   util::ScopedAllocCheck check;
//   HotKernel();
//   EXPECT_EQ(check.allocations(), 0u);
class ScopedAllocCheck {
 public:
  ScopedAllocCheck() : start_(ThreadAllocCount()) {}

  // Allocations made by this thread since construction.
  uint64_t allocations() const { return ThreadAllocCount() - start_; }

 private:
  uint64_t start_;
};

}  // namespace ses::util

#endif  // SES_UTIL_ALLOC_GUARD_H_
