#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace ses::util {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = new_mean;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double PercentileSorted(const std::vector<double>& sorted, double q) {
  // An empty sample has no percentiles; NaN (not an abort) lets callers
  // summarize windows where nothing was observed — e.g. a bench trace
  // lane that saw zero requests — and render the gap explicitly.
  if (sorted.empty()) return std::nan("");
  SES_CHECK_GE(q, 0.0);
  SES_CHECK_LE(q, 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) {
    // count = 0 is the machine-readable emptiness marker; the order
    // statistics are NaN so an empty window can never be mistaken for
    // an all-zero latency sample.
    s.min = s.max = s.p50 = s.p90 = s.p99 = std::nan("");
    return s;
  }
  RunningStat rs;
  for (double v : values) rs.Add(v);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p50 = PercentileSorted(sorted, 0.50);
  s.p90 = PercentileSorted(sorted, 0.90);
  s.p99 = PercentileSorted(sorted, 0.99);
  return s;
}

std::string Summary::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4g sd=%.4g min=%.4g p50=%.4g p90=%.4g "
                "p99=%.4g max=%.4g",
                count, mean, stddev, min, p50, p90, p99, max);
  return buf;
}

}  // namespace ses::util
