#ifndef SES_UTIL_LOGGING_H_
#define SES_UTIL_LOGGING_H_

/// \file
/// Minimal leveled logging plus SES_CHECK assertion macros.
///
/// Logging is stderr-based and synchronized per message. The active level
/// is process-global; benches set it to kWarning to keep figure output
/// clean.

#include <cstdint>
#include <sstream>
#include <string>

namespace ses::util {

/// Severity of a log message, ordered from most to least verbose.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum level that will be emitted (default kInfo).
void SetLogLevel(LogLevel level);

/// Returns the current minimum emitted level.
LogLevel GetLogLevel();

/// Internal: one in-flight log message; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Internal: swallows the stream when the message is below the active
/// level.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace ses::util

#define SES_LOG_IS_ON(level) \
  (::ses::util::LogLevel::level >= ::ses::util::GetLogLevel())

/// Usage: SES_LOG(kInfo) << "built " << n << " assignments";
#define SES_LOG(level)                                               \
  if (!SES_LOG_IS_ON(level))                                         \
    ;                                                                \
  else                                                               \
    ::ses::util::LogMessage(::ses::util::LogLevel::level, __FILE__,  \
                            __LINE__)                                \
        .stream()

/// Aborts with a message when \p cond is false. Active in all build modes;
/// reserved for programming errors (API misuse), not data errors.
#define SES_CHECK(cond)                                              \
  if (cond)                                                          \
    ;                                                                \
  else                                                               \
    ::ses::util::LogMessage(::ses::util::LogLevel::kFatal, __FILE__, \
                            __LINE__)                                \
            .stream()                                                \
        << "Check failed: " #cond " "

#define SES_CHECK_EQ(a, b) SES_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define SES_CHECK_NE(a, b) SES_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define SES_CHECK_LT(a, b) SES_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define SES_CHECK_LE(a, b) SES_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define SES_CHECK_GT(a, b) SES_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define SES_CHECK_GE(a, b) SES_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // SES_UTIL_LOGGING_H_
