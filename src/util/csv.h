#ifndef SES_UTIL_CSV_H_
#define SES_UTIL_CSV_H_

/// \file
/// Minimal CSV reading/writing with RFC-4180 quoting, used for dataset
/// persistence and experiment reports.

#include <string>
#include <vector>

#include "util/status.h"

namespace ses::util {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parses a single CSV line (no trailing newline) honoring double-quote
/// escaping. Returns ParseError on unbalanced quotes.
[[nodiscard]] Result<CsvRow> ParseCsvLine(const std::string& line);

/// Serializes \p row, quoting fields that contain separators, quotes or
/// newlines.
std::string FormatCsvRow(const CsvRow& row);

/// Reads a whole CSV file. When \p expect_header is true the first row is
/// returned separately in \p header (may be nullptr to discard).
[[nodiscard]] Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path,
                                        bool expect_header,
                                        CsvRow* header);

/// Writes \p rows (with optional \p header) to \p path, overwriting.
[[nodiscard]] Status WriteCsvFile(const std::string& path, const CsvRow& header,
                    const std::vector<CsvRow>& rows);

}  // namespace ses::util

#endif  // SES_UTIL_CSV_H_
