#ifndef SES_UTIL_STATUS_H_
#define SES_UTIL_STATUS_H_

/// \file
/// Lightweight error-propagation primitives used across the whole library.
///
/// Fallible operations return util::Status (or util::Result<T> when they
/// also produce a value) instead of throwing exceptions; this keeps the
/// public API exception-free per the project style rules.

#include <optional>
#include <string>
#include <utility>

namespace ses::util {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kIoError,
  kParseError,
  kInfeasible,
  kCancelled,
  kDeadlineExceeded,
};

/// Returns a stable, human-readable name for \p code ("OK",
/// "INVALID_ARGUMENT", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy and
/// compare; the message is only meaningful for non-OK codes.
///
/// [[nodiscard]]: dropping a returned Status on the floor is a compile
/// error under -Werror; consume it, propagate it
/// (SES_RETURN_IF_ERROR), or discard explicitly with `(void)` plus a
/// same-line `// ses-lint: allow(discarded-status)` justification.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with \p code and a diagnostic \p message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff this status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status category.
  StatusCode code() const { return code_; }

  /// Diagnostic message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "CODE: message" rendering for logs.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. Mirrors absl::StatusOr in spirit.
///
/// Accessing value() on an error Result aborts (programming error), so
/// callers must check ok() first or use value_or().
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {}

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Must only be called when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// Returns the value, or \p fallback when this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// Pointer-style access; must only be used when ok().
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }
  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ses::util

/// Propagates a non-OK Status out of the current function.
#define SES_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::ses::util::Status ses_status_ = (expr);    \
    if (!ses_status_.ok()) return ses_status_;   \
  } while (0)

// Two-level concatenation so __LINE__ expands to the line number before
// pasting; direct `a##__LINE__` would paste the token "__LINE__" itself
// and every use in a scope would collide on one name.
#define SES_STATUS_CONCAT_IMPL(a, b) a##b
#define SES_STATUS_CONCAT(a, b) SES_STATUS_CONCAT_IMPL(a, b)

/// Assigns the value of a Result to `lhs` or returns its error.
#define SES_ASSIGN_OR_RETURN(lhs, expr) \
  SES_ASSIGN_OR_RETURN_IMPL(SES_STATUS_CONCAT(ses_result_, __LINE__), \
                            lhs, expr)
#define SES_ASSIGN_OR_RETURN_IMPL(result, lhs, expr) \
  auto result = (expr);                              \
  if (!result.ok()) return result.status();          \
  lhs = std::move(result).value()

#endif  // SES_UTIL_STATUS_H_
