#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/mutex.h"

namespace ses::util {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
/// Serializes whole-message writes to stderr (no guarded data — the
/// capability covers the stream interleaving).
Mutex g_log_mutex;

char LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarning:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kFatal:
      return 'F';
  }
  return '?';
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    MutexLock lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace ses::util
