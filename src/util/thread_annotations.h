#ifndef SES_UTIL_THREAD_ANNOTATIONS_H_
#define SES_UTIL_THREAD_ANNOTATIONS_H_

/// \file
/// Clang Thread Safety Analysis annotations, compiled away on every
/// other compiler.
///
/// These macros let the concurrency contracts that ARCHITECTURE.md
/// states in prose — which mutex guards which member, which private
/// helpers assume the lock is already held — be written directly on the
/// declarations, where `clang -Wthread-safety` turns every violation
/// into a compile error instead of a TSan flake. GCC (the default local
/// toolchain) sees empty macros; the `clang-thread-safety` CI job is the
/// enforcing build.
///
/// Usage pattern (see util/mutex.h for the annotated lock types):
///
///   class Queue {
///    public:
///     void Push(Item item) SES_EXCLUDES(mutex_);
///    private:
///     Item PopLocked() SES_REQUIRES(mutex_);
///     util::Mutex mutex_;
///     std::deque<Item> items_ SES_GUARDED_BY(mutex_);
///   };
///
/// Naming follows the capability-based vocabulary of the analysis
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), mirroring
/// abseil's base/thread_annotations.h so the idiom is recognizable.
///
/// `ses_lint` enforces the escape-hatch policy: outside util/mutex.h
/// (whose wrappers hide unannotated std primitives by construction),
/// SES_NO_THREAD_SAFETY_ANALYSIS is forbidden — fix the annotation,
/// don't mute the analysis.

#if defined(__clang__) && (!defined(SWIG))
#define SES_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SES_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Declares a class to be a capability (a lockable type). The string
/// names the capability kind in diagnostics ("mutex", "shared_mutex").
#define SES_CAPABILITY(x) SES_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class whose constructor acquires a capability and
/// whose destructor releases it (MutexLock and friends).
#define SES_SCOPED_CAPABILITY SES_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Member data that may only be read or written while holding \p x.
#define SES_GUARDED_BY(x) SES_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by \p x (the pointer itself
/// may be read freely).
#define SES_PT_GUARDED_BY(x) SES_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function that must be called with the listed capabilities held
/// exclusively — the annotation for private *Locked() helpers.
#define SES_REQUIRES(...) \
  SES_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function that must be called with the listed capabilities held at
/// least shared (read locks suffice).
#define SES_REQUIRES_SHARED(...) \
  SES_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the capability and holds it on return.
#define SES_ACQUIRE(...) \
  SES_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Shared (reader) variant of SES_ACQUIRE.
#define SES_ACQUIRE_SHARED(...) \
  SES_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function that releases an exclusively held capability.
#define SES_RELEASE(...) \
  SES_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Shared (reader) variant of SES_RELEASE.
#define SES_RELEASE_SHARED(...) \
  SES_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Releases a capability regardless of whether it is held exclusively
/// or shared — the right annotation for a scoped lock's destructor that
/// serves both reader and writer guards.
#define SES_RELEASE_GENERIC(...) \
  SES_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Function that acquires the capability only when it returns \p v
/// (TryLock-shaped APIs).
#define SES_TRY_ACQUIRE(...) \
  SES_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be called with the listed capabilities held
/// (it acquires them itself; calling with them held would deadlock).
#define SES_EXCLUDES(...) \
  SES_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the capability that guards its
/// result, letting callers lock through accessors.
#define SES_RETURN_CAPABILITY(x) \
  SES_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Reserved for
/// the util/mutex.h wrappers themselves (which adapt unannotated std
/// primitives); `ses_lint` rejects it anywhere else in src/.
#define SES_NO_THREAD_SAFETY_ANALYSIS \
  SES_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // SES_UTIL_THREAD_ANNOTATIONS_H_
