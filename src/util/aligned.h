#ifndef SES_UTIL_ALIGNED_H_
#define SES_UTIL_ALIGNED_H_

/// \file
/// Cache-line-aligned storage for the kernel layer's structure-of-arrays
/// state (core/kernels.h).
///
/// util::AlignedVector<T> is a std::vector whose backing store is
/// 64-byte aligned. Alignment matters twice on the hot path: a span
/// that starts on a cache-line boundary never splits its first vector
/// lane across lines, and a compiler that can prove (or be told via
/// std::assume_aligned) the alignment emits aligned SIMD loads without
/// a scalar prologue. The allocator routes through the ordinary
/// aligned global operator new, so SES_ALLOC_GUARD still counts every
/// allocation and sanitizers still see the full object.

#include <cstddef>
#include <new>  // ses-lint: allow(naked-new) header include, not an allocation
#include <vector>

namespace ses::util {

/// Cache line / AVX-512 friendly alignment for kernel spans.
inline constexpr std::size_t kKernelAlignment = 64;

/// Minimal aligned allocator over the global aligned operator new.
template <typename T, std::size_t Alignment = kKernelAlignment>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T),
                                          std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// The kernel layer's backing-store type: contiguous, 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace ses::util

#endif  // SES_UTIL_ALIGNED_H_
