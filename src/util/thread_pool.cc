#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace ses::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SES_CHECK(!shutting_down_) << "Submit after shutdown";
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t total = end - begin;
  const size_t shards = std::min(total, num_threads());
  const size_t chunk = (total + shards - 1) / shards;
  for (size_t s = 0; s < shards; ++s) {
    const size_t lo = begin + s * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  Wait();
}

}  // namespace ses::util
