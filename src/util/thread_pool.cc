#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/logging.h"
#include "util/mutex.h"

namespace ses::util {

namespace {

/// State of one ParallelFor call, shared between the caller and its
/// helper tasks. Shards are claimed through an atomic cursor rather than
/// pre-assigned to tasks, so progress never depends on any helper being
/// scheduled: whoever shows up first (usually the caller) takes the next
/// shard. Completion is a per-call latch counting *shards*, not helper
/// tasks — a helper dequeued after the shards ran out exits without
/// touching fn, which is what makes the call safe to issue from inside a
/// pool worker and independent of unrelated Submit() traffic.
struct ParallelForCall {
  /// The partition parameters are written once, before the first helper
  /// is submitted (Submit's lock publishes them), and read-only after —
  /// deliberately unguarded.
  std::function<void(size_t, size_t)> fn;
  size_t begin = 0;
  size_t shards = 0;
  size_t base = 0;   ///< items in every shard
  size_t extra = 0;  ///< first `extra` shards carry one item more

  std::atomic<size_t> next_shard{0};
  Mutex mutex;
  CondVar done;
  size_t completed SES_GUARDED_BY(mutex) = 0;

  /// Claims and executes one shard; false when none are left.
  bool RunOneShard() {
    const size_t s = next_shard.fetch_add(1, std::memory_order_relaxed);
    if (s >= shards) return false;
    // Balanced partition: sizes differ by at most one, shard s starts
    // after s full shards plus one extra item for each oversized
    // predecessor.
    const size_t lo = begin + s * base + std::min(s, extra);
    const size_t hi = lo + base + (s < extra ? 1 : 0);
    fn(lo, hi);
    {
      MutexLock lock(mutex);
      if (++completed == shards) done.NotifyAll();
    }
    return true;
  }

  /// Blocks until every shard has finished executing.
  void WaitShards() SES_EXCLUDES(mutex) {
    mutex.Lock();
    while (completed != shards) done.Wait(mutex);
    mutex.Unlock();
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    SES_CHECK(!shutting_down_) << "Submit after shutdown";
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  mutex_.Lock();
  while (in_flight_ != 0) all_done_.Wait(mutex_);
  mutex_.Unlock();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      mutex_.Lock();
      while (!shutting_down_ && tasks_.empty()) task_available_.Wait(mutex_);
      if (tasks_.empty()) {  // shutting down
        mutex_.Unlock();
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      mutex_.Unlock();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& fn) {
  ParallelForShards(begin, end, /*max_shards=*/0,
                    [&fn](size_t lo, size_t hi) {
                      for (size_t i = lo; i < hi; ++i) fn(i);
                    });
}

void ThreadPool::ParallelForShards(
    size_t begin, size_t end, size_t max_shards,
    const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  const size_t total = end - begin;
  // One lane per worker plus the calling thread; the caller always
  // participates, so a pool whose workers are busy (or a call made from
  // the last free worker) still makes progress.
  size_t lanes = num_threads() + 1;
  if (max_shards > 0) lanes = std::min(lanes, max_shards);
  const size_t shards = std::min(total, lanes);
  if (shards <= 1) {
    fn(begin, end);
    return;
  }

  auto call = std::make_shared<ParallelForCall>();
  call->fn = fn;
  call->begin = begin;
  call->shards = shards;
  call->base = total / shards;
  call->extra = total % shards;

  // Helpers for the other lanes. Each holds the call state alive; one
  // that runs after the caller already finished every shard is a no-op.
  for (size_t h = 1; h < shards; ++h) {
    Submit([call] {
      while (call->RunOneShard()) {
      }
    });
  }
  while (call->RunOneShard()) {
  }
  // Only shards already claimed by helpers can still be running; they
  // finish without any further scheduling, so this cannot deadlock.
  call->WaitShards();
}

}  // namespace ses::util
