#ifndef SES_UTIL_METRICS_H_
#define SES_UTIL_METRICS_H_

/// \file
/// Process-local metrics: named counters, gauges, and fixed-bucket
/// latency histograms behind a MetricRegistry.
///
/// Design goals, in order:
///
///  1. **Lock-cheap increments.** Counter::Increment, Gauge::Set, and
///     Histogram::Observe are single relaxed atomic operations — safe to
///     call from any thread on a serving hot path. The registry mutex is
///     taken only at registration (name lookup) and snapshot time, never
///     per increment: callers look a metric up once and keep the
///     reference, which stays valid for the registry's lifetime.
///  2. **Consistent snapshots.** Snapshot() returns a self-contained,
///     name-sorted copy of every registered metric. Per-histogram
///     consistency under concurrent Observe calls is "bucket first":
///     an Observe increments its bucket before the total count, so any
///     snapshot satisfies `count() <= sum(buckets)`; once writers have
///     quiesced the two are equal. (See tests/util_metrics_test.cc.)
///  3. **Renderable.** RenderMetricsText / RenderMetricsCsv turn a
///     snapshot into the operator-facing dump behind `ses_cli metrics`;
///     docs/METRICS.md documents every name the scheduler registers.
///
/// Metrics are owned by the registry and never deleted: a registry is
/// meant to live as long as the component it instruments (e.g. one per
/// api::Scheduler), so handles can be cached without lifetime ceremony.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace ses::util {

/// Monotonically increasing event count. Thread-safe.
class Counter {
 public:
  /// Adds \p n (default 1).
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Current total.
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, loaded instances).
/// Thread-safe.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Decrement(int64_t n = 1) {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram with upper-inclusive bounds (Prometheus "le"
/// convention): bucket i counts observations v with v <= bounds[i]; one
/// implicit overflow bucket counts everything above the last bound.
/// Bounds are fixed at registration; Observe is two relaxed atomic adds
/// plus a branch-free upper_bound over a handful of doubles.
class Histogram {
 public:
  /// Records one observation.
  void Observe(double value);

  /// Upper bounds, ascending (the overflow bucket is implicit).
  const std::vector<double>& bounds() const { return bounds_; }

  /// Count in bucket \p i; i == bounds().size() is the overflow bucket.
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Total observations. May momentarily trail the bucket sum while
  /// concurrent Observe calls are in flight (never exceeds it: the
  /// acquire pairs with Observe's release so every counted
  /// observation's bucket increment is visible to later bucket reads).
  uint64_t count() const { return count_.load(std::memory_order_acquire); }

  /// Sum of all observed values.
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  explicit Histogram(std::vector<double> bounds);

  const std::vector<double> bounds_;
  /// bounds_.size() + 1 entries; the last is the overflow bucket.
  const std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One counter in a snapshot.
struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

/// One gauge in a snapshot.
struct GaugeSample {
  std::string name;
  int64_t value = 0;
};

/// One histogram in a snapshot. `buckets` has bounds.size() + 1 entries
/// (the last is the overflow bucket).
struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0.0;

  /// Mean observation (0 when empty).
  double mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Estimated \p q quantile (q in [0,1]) from the bucket counts,
  /// Prometheus histogram_quantile style: find the bucket where the
  /// cumulative count crosses q * count and interpolate linearly within
  /// it (the first bucket interpolates from 0, the overflow bucket
  /// reports the last finite bound — the estimate saturates there).
  /// NaN when the histogram is empty: an empty window has no
  /// percentiles, and NaN can never be mistaken for a real latency.
  double Quantile(double q) const;
};

/// Point-in-time copy of a registry, each section sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Lookup helpers for tests and typed accessors; null when absent.
  const CounterSample* FindCounter(std::string_view name) const;
  const GaugeSample* FindGauge(std::string_view name) const;
  const HistogramSample* FindHistogram(std::string_view name) const;

  /// Counter value by name; 0 when the counter is absent.
  uint64_t CounterValue(std::string_view name) const;

  /// Gauge value by name; 0 when the gauge is absent.
  int64_t GaugeValue(std::string_view name) const;

  /// Every metric name, sorted, across all three kinds.
  std::vector<std::string> Names() const;
};

/// Named metric owner. Registration and Snapshot take a mutex; the
/// returned references are valid for the registry's lifetime and their
/// increments are lock-free. A name identifies exactly one metric kind —
/// re-registering it as a different kind aborts (programming error).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the counter registered under \p name, creating it on first
  /// use.
  Counter& GetCounter(const std::string& name) SES_EXCLUDES(mutex_);

  /// Returns the gauge registered under \p name, creating it on first
  /// use.
  Gauge& GetGauge(const std::string& name) SES_EXCLUDES(mutex_);

  /// Returns the histogram registered under \p name, creating it with
  /// \p bounds (ascending upper bounds, non-empty) on first use.
  /// Subsequent calls ignore \p bounds — the first registration wins.
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>& bounds)
      SES_EXCLUDES(mutex_);

  /// Consistent, name-sorted copy of every registered metric.
  MetricsSnapshot Snapshot() const SES_EXCLUDES(mutex_);

  /// Shared default bucket bounds for wall-clock latencies, in seconds:
  /// 1ms .. ~100s in roughly 3x steps. Small enough to scan per
  /// Observe, wide enough for queue waits and solver runs alike.
  static const std::vector<double>& LatencyBounds();

 private:
  mutable Mutex mutex_;
  // std::map: deterministic iteration gives name-sorted snapshots for
  // free; registration is far off any hot path. The unique_ptr values
  // are the guarded state (map shape); the pointees are lock-free
  // metrics whose references outlive any critical section by design.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SES_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      SES_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SES_GUARDED_BY(mutex_);
};

/// The activity between two snapshots of the *same* registry: counter
/// values and histogram bucket counts/sums become end minus start;
/// gauges keep their end (instantaneous) value. Metrics absent from
/// \p start are treated as starting at zero; metrics absent from \p end
/// are dropped. This is how interval measurements (e.g. one bench trace
/// run) are separated from process-lifetime totals — see
/// api::Scheduler::SnapshotDelta.
MetricsSnapshot DiffSnapshots(const MetricsSnapshot& start,
                              const MetricsSnapshot& end);

/// Human-readable dump: one line per counter/gauge, a two-line block per
/// histogram (totals, then per-bucket counts).
std::string RenderMetricsText(const MetricsSnapshot& snapshot);

/// Machine-readable dump: header `kind,name,field,value`, one row per
/// counter/gauge value and per histogram bucket/count/sum.
std::string RenderMetricsCsv(const MetricsSnapshot& snapshot);

}  // namespace ses::util

#endif  // SES_UTIL_METRICS_H_
