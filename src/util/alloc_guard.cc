#include "util/alloc_guard.h"

#include <cstdlib>
#include <new>

// The one sanctioned home for a hand-rolled operator new in this tree:
// the whole point of the file is to interpose on the global allocator,
// so the naked-new lint rule exempts it (ALLOC_GUARD_EXEMPT in
// tools/ses_lint.py).

namespace ses::util {
namespace {

// Per-thread, monotonically increasing. Reads race with nothing: only
// the owning thread ever writes it.
thread_local uint64_t t_alloc_count = 0;

}  // namespace

uint64_t ThreadAllocCount() { return t_alloc_count; }

bool AllocGuardEnabled() {
#if defined(SES_ALLOC_GUARD)
  return true;
#else
  return false;
#endif
}

namespace alloc_guard_internal {

// Out-of-line so the global operator new replacements below stay
// trivial; no logging or anything else that could itself allocate.
inline void* CountedAlloc(std::size_t size) {
  ++t_alloc_count;
  // malloc(0) may return nullptr legitimately; operator new must
  // return a unique pointer instead.
  return std::malloc(size != 0 ? size : 1);
}

inline void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  ++t_alloc_count;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded != 0 ? rounded : align);
}

}  // namespace alloc_guard_internal
}  // namespace ses::util

#if defined(SES_ALLOC_GUARD)

// Global replacements (C++20 [new.delete]): throwing, nothrow, array,
// and aligned forms all funnel through the counted helpers; every
// delete form releases with free, matching the malloc-backed news.
// AddressSanitizer intercepts the malloc/free underneath, so the guard
// and ASan compose in the sanitizer CI job.

void* operator new(std::size_t size) {
  void* p = ses::util::alloc_guard_internal::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return ses::util::alloc_guard_internal::CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ses::util::alloc_guard_internal::CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = ses::util::alloc_guard_internal::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return ses::util::alloc_guard_internal::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return ses::util::alloc_guard_internal::CountedAlignedAlloc(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}

#endif  // SES_ALLOC_GUARD
