#include "util/csv.h"

#include <fstream>

namespace ses::util {

Result<CsvRow> ParseCsvLine(const std::string& line) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      if (!field.empty()) {
        return Status::ParseError("quote in unquoted field: " + line);
      }
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
      ++i;
      continue;
    }
    field.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quote: " + line);
  }
  row.push_back(std::move(field));
  return row;
}

std::string FormatCsvRow(const CsvRow& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    const std::string& field = row[i];
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes) {
      out.append(field);
      continue;
    }
    out.push_back('"');
    for (char c : field) {
      if (c == '"') out.push_back('"');
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path,
                                        bool expect_header, CsvRow* header) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::vector<CsvRow> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto parsed = ParseCsvLine(line);
    if (!parsed.ok()) return parsed.status();
    if (first && expect_header) {
      if (header != nullptr) *header = std::move(parsed).value();
      first = false;
      continue;
    }
    first = false;
    rows.push_back(std::move(parsed).value());
  }
  return rows;
}

Status WriteCsvFile(const std::string& path, const CsvRow& header,
                    const std::vector<CsvRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  if (!header.empty()) out << FormatCsvRow(header) << "\n";
  for (const CsvRow& row : rows) out << FormatCsvRow(row) << "\n";
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace ses::util
