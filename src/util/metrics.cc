#include "util/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace ses::util {

namespace {

/// Renders a bucket bound for text/CSV output: trailing-zero-trimmed
/// decimal ("0.001", "2.5"), so names stay stable across locales and
/// printf quirks.
std::string BoundLabel(double bound) {
  std::string label = StrFormat("%.6f", bound);
  while (!label.empty() && label.back() == '0') label.pop_back();
  if (!label.empty() && label.back() == '.') label.pop_back();
  return label;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      // Owned by the unique_ptr member this expression initializes.
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {  // ses-lint: allow(naked-new)
  SES_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  SES_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::Observe(double value) {
  // Upper-inclusive buckets: first bound >= value; everything above the
  // last bound lands in the overflow bucket.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  // Bucket before count, with the count release-published: a concurrent
  // Snapshot that acquire-reads `count_` first and the buckets after is
  // then guaranteed to see the bucket increment of every observation it
  // counted — count <= sum(buckets), never the reverse (the consistency
  // contract in the header; relaxed-only would allow the reorder on
  // weakly-ordered hardware).
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_release);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mutex_);
  SES_CHECK(gauges_.find(name) == gauges_.end() &&
            histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with another kind";
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mutex_);
  SES_CHECK(counters_.find(name) == counters_.end() &&
            histograms_.find(name) == histograms_.end())
      << "metric '" << name << "' already registered with another kind";
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge())).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name,
                                        const std::vector<double>& bounds) {
  MutexLock lock(mutex_);
  SES_CHECK(counters_.find(name) == counters_.end() &&
            gauges_.find(name) == gauges_.end())
      << "metric '" << name << "' already registered with another kind";
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::unique_ptr<Histogram>(new Histogram(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mutex_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.bounds = histogram->bounds();
    // Count before buckets (the mirror of Observe's bucket-then-count):
    // guarantees sample.count <= sum(sample.buckets) under concurrency.
    sample.count = histogram->count();
    sample.buckets.reserve(sample.bounds.size() + 1);
    for (size_t i = 0; i <= sample.bounds.size(); ++i) {
      sample.buckets.push_back(histogram->bucket_count(i));
    }
    sample.sum = histogram->sum();
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

const std::vector<double>& MetricRegistry::LatencyBounds() {
  // Intentionally leaked function-local static: immune to shutdown-order
  // issues, and the process exit reclaims it.
  static const std::vector<double>* bounds = new std::vector<double>{  // ses-lint: allow(naked-new)
      0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0};
  return *bounds;
}

double HistogramSample::Quantile(double q) const {
  SES_CHECK_GE(q, 0.0);
  SES_CHECK_LE(q, 1.0);
  if (count == 0) return std::nan("");
  // Rank of the target observation under the cumulative bucket counts.
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    if (i == bounds.size()) {
      // Overflow bucket: all we know is "above the last bound", so the
      // estimate saturates there rather than inventing an upper edge.
      return bounds.empty() ? std::nan("") : bounds.back();
    }
    // Linear interpolation within the bucket, from its lower edge (the
    // previous bound, or 0 for the first bucket — latencies are
    // non-negative) to its upper-inclusive bound.
    const double upper = bounds[i];
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const uint64_t below = cumulative - buckets[i];
    const double within =
        buckets[i] == 0
            ? 1.0
            : (rank - static_cast<double>(below)) /
                  static_cast<double>(buckets[i]);
    return lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
  }
  // count exceeded the bucket sum — only possible mid-Observe; report
  // the conservative top edge.
  return bounds.empty() ? std::nan("") : bounds.back();
}

MetricsSnapshot DiffSnapshots(const MetricsSnapshot& start,
                              const MetricsSnapshot& end) {
  MetricsSnapshot delta;
  delta.counters.reserve(end.counters.size());
  for (const CounterSample& sample : end.counters) {
    const CounterSample* before = start.FindCounter(sample.name);
    const uint64_t base = before == nullptr ? 0 : before->value;
    // Counters are monotone within one registry; a "negative" delta
    // means the snapshots came from different registries — clamp to 0
    // rather than wrap.
    delta.counters.push_back(
        {sample.name, sample.value >= base ? sample.value - base : 0});
  }
  // Gauges are instantaneous levels: the end value *is* the state at the
  // end of the window.
  delta.gauges = end.gauges;
  delta.histograms.reserve(end.histograms.size());
  for (const HistogramSample& sample : end.histograms) {
    const HistogramSample* before = start.FindHistogram(sample.name);
    HistogramSample diff = sample;
    if (before != nullptr && before->bounds == sample.bounds) {
      for (size_t i = 0;
           i < diff.buckets.size() && i < before->buckets.size(); ++i) {
        diff.buckets[i] = diff.buckets[i] >= before->buckets[i]
                              ? diff.buckets[i] - before->buckets[i]
                              : 0;
      }
      diff.count = diff.count >= before->count ? diff.count - before->count : 0;
      diff.sum -= before->sum;
    }
    delta.histograms.push_back(std::move(diff));
  }
  return delta;
}

const CounterSample* MetricsSnapshot::FindCounter(
    std::string_view name) const {
  for (const CounterSample& sample : counters) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const GaugeSample* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const GaugeSample& sample : gauges) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

const HistogramSample* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSample& sample : histograms) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  const CounterSample* sample = FindCounter(name);
  return sample == nullptr ? 0 : sample->value;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name) const {
  const GaugeSample* sample = FindGauge(name);
  return sample == nullptr ? 0 : sample->value;
}

std::vector<std::string> MetricsSnapshot::Names() const {
  std::vector<std::string> names;
  names.reserve(counters.size() + gauges.size() + histograms.size());
  for (const CounterSample& sample : counters) names.push_back(sample.name);
  for (const GaugeSample& sample : gauges) names.push_back(sample.name);
  for (const HistogramSample& sample : histograms) {
    names.push_back(sample.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string RenderMetricsText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSample& sample : snapshot.counters) {
    out += StrFormat("counter   %-44s %llu\n", sample.name.c_str(),
                     static_cast<unsigned long long>(sample.value));
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    out += StrFormat("gauge     %-44s %lld\n", sample.name.c_str(),
                     static_cast<long long>(sample.value));
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    out += StrFormat("histogram %-44s count=%llu sum=%.6f mean=%.6f\n",
                     sample.name.c_str(),
                     static_cast<unsigned long long>(sample.count),
                     sample.sum, sample.mean());
    out += "          buckets:";
    for (size_t i = 0; i < sample.buckets.size(); ++i) {
      const std::string label = i < sample.bounds.size()
                                    ? "le_" + BoundLabel(sample.bounds[i])
                                    : std::string("inf");
      out += StrFormat(" %s=%llu", label.c_str(),
                       static_cast<unsigned long long>(sample.buckets[i]));
    }
    out += "\n";
  }
  return out;
}

std::string RenderMetricsCsv(const MetricsSnapshot& snapshot) {
  std::string out = "kind,name,field,value\n";
  for (const CounterSample& sample : snapshot.counters) {
    out += StrFormat("counter,%s,value,%llu\n", sample.name.c_str(),
                     static_cast<unsigned long long>(sample.value));
  }
  for (const GaugeSample& sample : snapshot.gauges) {
    out += StrFormat("gauge,%s,value,%lld\n", sample.name.c_str(),
                     static_cast<long long>(sample.value));
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    for (size_t i = 0; i < sample.buckets.size(); ++i) {
      const std::string label = i < sample.bounds.size()
                                    ? "le_" + BoundLabel(sample.bounds[i])
                                    : std::string("inf");
      out += StrFormat("histogram,%s,%s,%llu\n", sample.name.c_str(),
                       label.c_str(),
                       static_cast<unsigned long long>(sample.buckets[i]));
    }
    out += StrFormat("histogram,%s,count,%llu\n", sample.name.c_str(),
                     static_cast<unsigned long long>(sample.count));
    out += StrFormat("histogram,%s,sum,%.6f\n", sample.name.c_str(),
                     sample.sum);
  }
  return out;
}

}  // namespace ses::util
