#ifndef SES_UTIL_MUTEX_H_
#define SES_UTIL_MUTEX_H_

/// \file
/// Annotated lock types: thin wrappers over std::mutex /
/// std::shared_mutex / std::condition_variable that carry the Clang
/// Thread Safety capability annotations (util/thread_annotations.h), so
/// `clang -Wthread-safety -Werror` can prove lock discipline at compile
/// time. Zero-cost over the std primitives: every method is an inline
/// forward.
///
/// The std types themselves are unannotated in libstdc++, which is why
/// these wrappers exist — a `std::mutex` member gives the analysis
/// nothing to check. `ses_lint` (rule `raw-mutex`) keeps new code on the
/// wrappers.
///
/// Idioms:
///
///   util::Mutex mutex_;
///   int depth_ SES_GUARDED_BY(mutex_);
///
///   {
///     util::MutexLock lock(mutex_);          // scoped, exclusive
///     ++depth_;
///   }
///
///   util::SharedMutex smutex_;
///   util::ReaderMutexLock lock(smutex_);     // scoped, shared
///   util::WriterMutexLock lock(smutex_);     // scoped, exclusive
///
/// Condition waits take the Mutex directly — the CondVar re-wraps the
/// native handle internally, so the analysis sees the lock held across
/// the wait (which matches the runtime contract: Wait returns with the
/// lock re-acquired):
///
///   mutex_.Lock();
///   while (!ready_) cv_.Wait(mutex_);        // TSA-visible wait loop
///   mutex_.Unlock();

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace ses::util {

class CondVar;

/// Exclusive capability over std::mutex.
class SES_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SES_ACQUIRE() { mutex_.lock(); }
  void Unlock() SES_RELEASE() { mutex_.unlock(); }
  bool TryLock() SES_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// Reader/writer capability over std::shared_mutex.
class SES_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() SES_ACQUIRE() { mutex_.lock(); }
  void Unlock() SES_RELEASE() { mutex_.unlock(); }
  void LockShared() SES_ACQUIRE_SHARED() { mutex_.lock_shared(); }
  void UnlockShared() SES_RELEASE_SHARED() { mutex_.unlock_shared(); }

 private:
  std::shared_mutex mutex_;
};

/// Scoped exclusive lock on a Mutex.
class SES_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SES_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.Lock();
  }
  ~MutexLock() SES_RELEASE_GENERIC() { mutex_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class SES_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mutex) SES_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.Lock();
  }
  ~WriterMutexLock() SES_RELEASE_GENERIC() { mutex_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class SES_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mutex) SES_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.LockShared();
  }
  ~ReaderMutexLock() SES_RELEASE_GENERIC() { mutex_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Condition variable bound to util::Mutex. Wait/WaitFor require the
/// mutex held (and return with it held), which is exactly what the
/// analysis assumes — guarded state read in a TSA-visible wait loop
/// around these calls checks out without escape hatches.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases \p mutex, blocks until notified, re-acquires.
  /// Spurious wakeups happen; always wait in a predicate loop.
  void Wait(Mutex& mutex) SES_REQUIRES(mutex) {
    // Adopt the caller's hold for the wait, then release the wrapper so
    // ownership stays (logically and analytically) with the caller.
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Timed Wait: returns false on timeout, true when notified (either
  /// way the mutex is held again on return).
  bool WaitFor(Mutex& mutex, double seconds) SES_REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const std::cv_status status =
        cv_.wait_for(lock, std::chrono::duration<double>(seconds));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ses::util

#endif  // SES_UTIL_MUTEX_H_
