#include "util/flags.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace ses::util {

void FlagSet::Register(Flag flag) {
  // A second Add* with the same name would be dead code: Parse() assigns
  // through the first match. Registration is programmer-controlled, so a
  // duplicate is a programming error worth failing loudly for.
  SES_CHECK(Find(flag.name) == nullptr)
      << "duplicate flag --" << flag.name << " registered";
  flags_.push_back(std::move(flag));
}

void FlagSet::AddInt(const std::string& name, int64_t* target,
                     const std::string& help) {
  Register({name, Type::kInt, target, help, std::to_string(*target)});
}

void FlagSet::AddDouble(const std::string& name, double* target,
                        const std::string& help) {
  Register({name, Type::kDouble, target, help, StrFormat("%g", *target)});
}

void FlagSet::AddString(const std::string& name, std::string* target,
                        const std::string& help) {
  Register({name, Type::kString, target, help, *target});
}

void FlagSet::AddBool(const std::string& name, bool* target,
                      const std::string& help) {
  Register({name, Type::kBool, target, help, *target ? "true" : "false"});
}

FlagSet::Flag* FlagSet::Find(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

Status FlagSet::Assign(Flag& flag, const std::string& value) {
  switch (flag.type) {
    case Type::kInt: {
      auto parsed = ParseInt64(value);
      if (!parsed.ok()) return parsed.status();
      *static_cast<int64_t*>(flag.target) = parsed.value();
      return Status::Ok();
    }
    case Type::kDouble: {
      auto parsed = ParseDouble(value);
      if (!parsed.ok()) return parsed.status();
      *static_cast<double*>(flag.target) = parsed.value();
      return Status::Ok();
    }
    case Type::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::Ok();
    case Type::kBool: {
      auto parsed = ParseBool(value);
      if (!parsed.ok()) return parsed.status();
      *static_cast<bool*>(flag.target) = parsed.value();
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable flag type");
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!has_value) {
      if (flag->type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
    }
    SES_RETURN_IF_ERROR(Assign(*flag, value));
  }
  return Status::Ok();
}

std::string FlagSet::Usage() const {
  std::string out = "Usage: " + program_ + " [flags]\n";
  for (const Flag& flag : flags_) {
    out += StrFormat("  --%-24s %s (default: %s)\n", flag.name.c_str(),
                     flag.help.c_str(), flag.default_value.c_str());
  }
  return out;
}

}  // namespace ses::util
