#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "util/string_util.h"

namespace ses::util {

namespace {

/// Cursor over the document with line/column tracking for diagnostics.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    SkipWhitespace();
    JsonValue value;
    SES_RETURN_IF_ERROR(ParseValue(&value, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  /// Nesting bound: a descriptor is a few levels deep; anything past
  /// this is malformed input, not a real document, and must not be able
  /// to overflow the parser's stack.
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    size_t line = 1;
    size_t column = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return Status::ParseError(StrFormat("JSON parse error at line %zu "
                                        "column %zu: %s",
                                        line, column, message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        SES_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::MakeString(std::move(s));
        return Status::Ok();
      }
      case 't':
        return ParseLiteral("true", JsonValue::MakeBool(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue::MakeBool(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue::MakeNull(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(const char* literal, JsonValue value,
                      JsonValue* out) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (!Consume(*p)) {
        return Error(std::string("invalid literal; expected '") + literal +
                     "'");
      }
    }
    *out = std::move(value);
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(value)) {
      pos_ = start;
      return Error("malformed number '" + token + "'");
    }
    *out = JsonValue::MakeNumber(value);
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    std::string result;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        *out = std::move(result);
        return Status::Ok();
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': result += '"'; break;
          case '\\': result += '\\'; break;
          case '/': result += '/'; break;
          case 'b': result += '\b'; break;
          case 'f': result += '\f'; break;
          case 'n': result += '\n'; break;
          case 'r': result += '\r'; break;
          case 't': result += '\t'; break;
          case 'u': {
            // Basic-multilingual-plane escapes only; descriptors are
            // ASCII identifiers in practice.
            if (pos_ + 4 > text_.size()) {
              return Error("truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape digit");
              }
            }
            // UTF-8 encode.
            if (code < 0x80) {
              result += static_cast<char>(code);
            } else if (code < 0x800) {
              result += static_cast<char>(0xC0 | (code >> 6));
              result += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              result += static_cast<char>(0xE0 | (code >> 12));
              result += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              result += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error(std::string("invalid escape '\\") + escape + "'");
        }
        continue;
      }
      result += c;
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out, int depth) {
    if (!Consume('[')) return Error("expected '['");
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::MakeArray(std::move(items));
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      JsonValue item;
      SES_RETURN_IF_ERROR(ParseValue(&item, depth + 1));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) break;
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
    *out = JsonValue::MakeArray(std::move(items));
    return Status::Ok();
  }

  Status ParseObject(JsonValue* out, int depth) {
    if (!Consume('{')) return Error("expected '{'");
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status::Ok();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      SES_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      JsonValue value;
      SES_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      if (!members.emplace(std::move(key), std::move(value)).second) {
        return Error("duplicate object key");
      }
      SkipWhitespace();
      if (Consume('}')) break;
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

}  // namespace ses::util
