#ifndef SES_UTIL_RANDOM_H_
#define SES_UTIL_RANDOM_H_

/// \file
/// Deterministic pseudo-random toolkit.
///
/// Everything in the library that needs randomness takes an explicit Rng so
/// experiments are reproducible bit-for-bit from a seed. The engine is
/// xoshiro256++ seeded via SplitMix64; sampling helpers cover the
/// distributions the paper's workload needs (uniform, Zipf, discrete,
/// Poisson, sampling without replacement).

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace ses::util {

/// SplitMix64: used to expand a single 64-bit seed into engine state.
/// Reference: Sebastiano Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> if ever needed, but the helpers below avoid
/// <random> for cross-platform determinism.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the engine deterministically from \p seed.
  explicit Rng(uint64_t seed = 0x5e5e5e5eULL) { Seed(seed); }

  /// Re-seeds the engine.
  void Seed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64 bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint64_t operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). \p bound must be positive. Uses
  /// Lemire's unbiased multiply-shift rejection method.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double UniformDouble(double lo, double hi);

  /// True with probability \p p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

/// Samples from a Zipf distribution over {1, ..., n} with exponent \p s,
/// i.e. P(X = i) proportional to 1 / i^s. Uses precomputed CDF with binary
/// search; suitable for the catalog sizes used here (n up to ~1e6).
class ZipfSampler {
 public:
  /// \param n support size (>= 1). \param s exponent (>= 0; 0 = uniform).
  ZipfSampler(size_t n, double s);

  /// Draws a value in [1, n].
  size_t Sample(Rng& rng) const;

  /// Support size.
  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Samples indices proportionally to caller-supplied non-negative weights.
class DiscreteSampler {
 public:
  /// \param weights non-negative, at least one strictly positive.
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Draws an index in [0, weights.size()).
  size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Poisson sample with mean \p lambda (Knuth's method for small lambda,
/// normal approximation above 64). Good enough for group-size synthesis.
int PoissonSample(Rng& rng, double lambda);

/// In-place Fisher-Yates shuffle.
template <typename T>
void Shuffle(std::vector<T>& v, Rng& rng) {
  if (v.empty()) return;
  for (size_t i = v.size() - 1; i > 0; --i) {
    size_t j = rng.NextBounded(i + 1);
    using std::swap;
    swap(v[i], v[j]);
  }
}

/// Samples \p k distinct values uniformly from [0, n). Returns fewer than
/// \p k values only when k > n (then it returns all of [0, n) shuffled).
std::vector<uint32_t> SampleWithoutReplacement(Rng& rng, uint32_t n,
                                               uint32_t k);

}  // namespace ses::util

#endif  // SES_UTIL_RANDOM_H_
