#include "exp/runner.h"

#include "core/registry.h"
#include "core/validate.h"
#include "util/logging.h"

namespace ses::exp {

util::Result<std::vector<RunRecord>> RunSolvers(
    const core::SesInstance& instance,
    const std::vector<std::string>& solver_names,
    const core::SolverOptions& options, int64_t x) {
  std::vector<RunRecord> records;
  records.reserve(solver_names.size());
  for (const std::string& name : solver_names) {
    auto solver = core::MakeSolver(name);
    if (!solver.ok()) return solver.status();
    auto result = solver.value()->Solve(instance, options);
    if (!result.ok()) return result.status();

    // Every schedule a solver returns must be feasible; fail loudly
    // otherwise rather than reporting a bogus utility.
    SES_RETURN_IF_ERROR(
        core::ValidateAssignments(instance, result.value().assignments));

    RunRecord record;
    record.solver = name;
    record.x = x;
    record.utility = result.value().utility;
    record.seconds = result.value().wall_seconds;
    record.gain_evaluations = result.value().stats.gain_evaluations;
    record.assignments = result.value().assignments.size();
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace ses::exp
