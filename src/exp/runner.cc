#include "exp/runner.h"

#include <atomic>
#include <memory>

#include "api/scheduler.h"
#include "core/validate.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace ses::exp {

namespace {

/// One scheduler for the whole process: RunSolvers is called from many
/// sweep workers at once, and they should share one solver pool instead
/// of each spawning their own. Leaked on purpose so worker shutdown
/// never races static destruction at exit.
api::Scheduler& SharedScheduler() {
  static api::Scheduler* scheduler = new api::Scheduler();  // ses-lint: allow(naked-new)
  return *scheduler;
}

/// Scoped session-cache registration of one sweep point's instance:
/// loads under a process-unique name on construction, drops on
/// destruction. The load is a non-owning borrow — the instance outlives
/// the (synchronous) batch below — and makes concurrent sweep workers
/// exercise the scheduler's multi-instance surface instead of each
/// threading `const SesInstance&` through the fan-out.
class ScopedSession {
 public:
  explicit ScopedSession(const core::SesInstance& instance) {
    static std::atomic<uint64_t> counter{0};
    name_ = "exp/point-" + std::to_string(counter.fetch_add(1));
    const util::Status loaded =
        SharedScheduler().LoadInstance(name_, api::BorrowInstance(instance));
    SES_CHECK(loaded.ok()) << loaded.ToString();
  }
  ~ScopedSession() {
    SES_CHECK(SharedScheduler().Drop(name_).ok());
  }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace

std::string SharedSchedulerMetricsSummary() {
  const api::SchedulerMetrics metrics = SharedScheduler().Metrics();
  return util::StrFormat(
      "admitted=%llu completed=%llu refused=%llu cancelled=%llu "
      "deadline_expired=%llu expired_in_queue=%llu "
      "queue_depth=%lld/%lld/%lld (high/normal/batch) "
      "session_hits=%llu session_misses=%llu loaded=%lld",
      static_cast<unsigned long long>(metrics.admitted),
      static_cast<unsigned long long>(metrics.completed),
      static_cast<unsigned long long>(metrics.refused),
      static_cast<unsigned long long>(metrics.cancelled),
      static_cast<unsigned long long>(metrics.deadline_expired),
      static_cast<unsigned long long>(metrics.deadline_expired_in_queue),
      static_cast<long long>(metrics.queue_depth[0]),
      static_cast<long long>(metrics.queue_depth[1]),
      static_cast<long long>(metrics.queue_depth[2]),
      static_cast<unsigned long long>(metrics.session_hits),
      static_cast<unsigned long long>(metrics.session_misses),
      static_cast<long long>(metrics.loaded_instances));
}

util::Result<std::vector<RunRecord>> RunSolvers(
    const core::SesInstance& instance,
    const std::vector<std::string>& solver_names,
    const core::SolverOptions& options, int64_t x,
    SolverExecution execution) {
  std::vector<api::SolveRequest> requests;
  requests.reserve(solver_names.size());
  for (const std::string& name : solver_names) {
    api::SolveRequest request;
    request.solver = name;
    request.options = options;
    // Sweep work is throughput traffic: it must never delay a
    // latency-sensitive request sharing the process-wide scheduler.
    request.priority = api::Priority::kBatch;
    requests.push_back(std::move(request));
  }

  std::vector<api::SolveResponse> responses;
  if (execution == SolverExecution::kParallel) {
    const ScopedSession session(instance);
    responses = SharedScheduler().SolveBatch(session.name(), requests);
  } else {
    // Timing-clean reference: inline on this thread, no pool involved.
    responses.reserve(requests.size());
    for (const api::SolveRequest& request : requests) {
      responses.push_back(SharedScheduler().Solve(instance, request));
    }
  }

  std::vector<RunRecord> records;
  records.reserve(responses.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    api::SolveResponse& response = responses[i];
    // Experiment requests carry no deadline or token, so any non-OK
    // status is a hard failure, never an interrupted run.
    if (!response.status.ok()) return response.status;

    // Every schedule a solver returns must be feasible; fail loudly
    // otherwise rather than reporting a bogus utility.
    SES_RETURN_IF_ERROR(
        core::ValidateAssignments(instance, response.schedule));

    RunRecord record;
    record.solver = solver_names[i];
    record.x = x;
    record.utility = response.utility;
    record.gain_evaluations = response.stats.gain_evaluations;
    record.assignments = response.schedule.size();
    record.measurement.seconds = response.wall_seconds;
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace ses::exp
