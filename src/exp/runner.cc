#include "exp/runner.h"

#include "api/scheduler.h"
#include "core/validate.h"
#include "util/logging.h"

namespace ses::exp {

namespace {

/// One scheduler for the whole process: RunSolvers is called from many
/// sweep workers at once, and they should share one solver pool instead
/// of each spawning their own. Leaked on purpose so worker shutdown
/// never races static destruction at exit.
api::Scheduler& SharedScheduler() {
  static api::Scheduler* scheduler = new api::Scheduler();
  return *scheduler;
}

}  // namespace

util::Result<std::vector<RunRecord>> RunSolvers(
    const core::SesInstance& instance,
    const std::vector<std::string>& solver_names,
    const core::SolverOptions& options, int64_t x,
    SolverExecution execution) {
  std::vector<api::SolveRequest> requests;
  requests.reserve(solver_names.size());
  for (const std::string& name : solver_names) {
    api::SolveRequest request;
    request.solver = name;
    request.options = options;
    requests.push_back(std::move(request));
  }

  std::vector<api::SolveResponse> responses;
  if (execution == SolverExecution::kParallel) {
    responses = SharedScheduler().SolveBatch(instance, requests);
  } else {
    // Timing-clean reference: inline on this thread, no pool involved.
    responses.reserve(requests.size());
    for (const api::SolveRequest& request : requests) {
      responses.push_back(SharedScheduler().Solve(instance, request));
    }
  }

  std::vector<RunRecord> records;
  records.reserve(responses.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    api::SolveResponse& response = responses[i];
    // Experiment requests carry no deadline or token, so any non-OK
    // status is a hard failure, never an interrupted run.
    if (!response.status.ok()) return response.status;

    // Every schedule a solver returns must be feasible; fail loudly
    // otherwise rather than reporting a bogus utility.
    SES_RETURN_IF_ERROR(
        core::ValidateAssignments(instance, response.schedule));

    RunRecord record;
    record.solver = solver_names[i];
    record.x = x;
    record.utility = response.utility;
    record.gain_evaluations = response.stats.gain_evaluations;
    record.assignments = response.schedule.size();
    record.measurement.seconds = response.wall_seconds;
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace ses::exp
