#ifndef SES_EXP_PARALLEL_SWEEP_H_
#define SES_EXP_PARALLEL_SWEEP_H_

/// \file
/// Multi-core sweep execution: fans independent RunSolvers calls across
/// sweep points on a util::ThreadPool.
///
/// Determinism contract: for a fixed point list, Run() returns exactly
/// the records a serial loop over RunSolvers would produce, in the same
/// order, regardless of worker count. Every comparable RunRecord field
/// is reproducible; only the wall-clock `measurement` differs.
/// Each point carries its own workload seed and solver seed, so no state
/// leaks between points; WorkloadFactory::Build is thread-safe (per-
/// thread interest scratch), so instance construction and solver runs
/// all proceed concurrently across sweep points.

#include <cstddef>
#include <string>
#include <vector>

#include "core/solver.h"
#include "exp/runner.h"
#include "exp/workload.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ses::exp {

/// One independent unit of sweep work: a workload to build and the solver
/// options to run on it, tagged with the sweep coordinate \p x.
struct SweepPoint {
  PaperWorkloadConfig config;
  core::SolverOptions options;
  int64_t x = 0;
};

/// Runs sweep points concurrently on a fixed-size thread pool.
///
/// The pool is owned by the runner and reused across Run() calls, so one
/// runner can serve several sweeps (e.g. a k sweep then a |T| sweep)
/// without re-spawning workers.
class ParallelSweepRunner {
 public:
  /// \param num_threads worker count; 0 means hardware_concurrency().
  explicit ParallelSweepRunner(size_t num_threads = 0)
      : pool_(num_threads) {}

  /// Builds each point's instance via \p factory and runs \p solvers on
  /// it, concatenating per-point records in point order (within a point,
  /// records follow \p solvers order). On error, returns the
  /// lowest-index recorded failure; a failure also cancels queued
  /// points, and which of several doomed points records its error first
  /// can depend on timing, so treat the returned status as diagnostic
  /// rather than byte-deterministic (the success path stays
  /// reproducible).
  [[nodiscard]] util::Result<std::vector<RunRecord>> Run(
      const WorkloadFactory& factory, const std::vector<SweepPoint>& points,
      const std::vector<std::string>& solvers);

  size_t num_threads() const { return pool_.num_threads(); }

 private:
  util::ThreadPool pool_;
};

/// Reference serial implementation of ParallelSweepRunner::Run — a plain
/// loop over RunSolvers. Used by benches on request (--jobs=1 avoids
/// spawning a pool) and by tests as the determinism oracle.
[[nodiscard]] util::Result<std::vector<RunRecord>> RunSweepSerial(
    const WorkloadFactory& factory, const std::vector<SweepPoint>& points,
    const std::vector<std::string>& solvers);

/// Single dispatch point for the serial/parallel choice: \p num_threads
/// == 1 runs RunSweepSerial (no pool spawned), anything else runs a
/// ParallelSweepRunner with that many workers (0 = hardware
/// concurrency). Both paths return identical records (modulo the
/// wall-clock `seconds` field) in point order.
[[nodiscard]] util::Result<std::vector<RunRecord>> RunSweep(
    const WorkloadFactory& factory, const std::vector<SweepPoint>& points,
    const std::vector<std::string>& solvers, size_t num_threads);

}  // namespace ses::exp

#endif  // SES_EXP_PARALLEL_SWEEP_H_
