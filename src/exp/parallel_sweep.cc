#include "exp/parallel_sweep.h"

#include <atomic>
#include <optional>
#include <utility>

#include "util/logging.h"

namespace ses::exp {

util::Result<std::vector<RunRecord>> ParallelSweepRunner::Run(
    const WorkloadFactory& factory, const std::vector<SweepPoint>& points,
    const std::vector<std::string>& solvers) {
  // One result slot per point keeps output order independent of
  // completion order.
  std::vector<std::optional<util::Result<std::vector<RunRecord>>>> slots(
      points.size());
  // First failure cancels points that have not started yet. The
  // pre-task check races with other workers' stores, so a skipped slot
  // is not guaranteed a lower-index failed predecessor — the scan below
  // therefore returns the lowest-index *recorded* error, which under
  // cancellation may differ from the serial path's first failure.
  std::atomic<bool> failed{false};
  // One task per point (rather than ParallelFor's contiguous shards):
  // sweep points have very uneven cost — k=500 dwarfs k=100 — and FIFO
  // task pickup balances that across workers.
  for (size_t i = 0; i < points.size(); ++i) {
    pool_.Submit([&factory, &points, &solvers, &slots, &failed, i] {
      if (failed.load(std::memory_order_relaxed)) return;  // cancelled
      const SweepPoint& point = points[i];
      // WorkloadFactory::Build is thread-safe (per-thread interest
      // scratch), so instance construction overlaps with other points'
      // builds and solver runs.
      util::Result<core::SesInstance> instance = factory.Build(point.config);
      if (!instance.ok()) {
        slots[i] = instance.status();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      auto rows = RunSolvers(*instance, solvers, point.options, point.x);
      if (!rows.ok()) {
        failed.store(true, std::memory_order_relaxed);
      } else {
        SES_LOG(kInfo) << "sweep x=" << point.x << " done";
      }
      slots[i] = std::move(rows);
    });
  }
  pool_.Wait();

  std::vector<RunRecord> records;
  records.reserve(points.size() * solvers.size());
  for (auto& slot : slots) {
    // Empty slots were cancelled by some recorded failure.
    if (!slot.has_value()) continue;
    if (!slot->ok()) return slot->status();
    records.insert(records.end(),
                   std::make_move_iterator(slot->value().begin()),
                   std::make_move_iterator(slot->value().end()));
  }
  if (records.size() != points.size() * solvers.size()) {
    return util::Status::Internal(
        "sweep point cancelled without a recorded error");
  }
  SES_LOG(kInfo) << "sweep scheduler metrics: "
                 << SharedSchedulerMetricsSummary();
  return records;
}

util::Result<std::vector<RunRecord>> RunSweep(
    const WorkloadFactory& factory, const std::vector<SweepPoint>& points,
    const std::vector<std::string>& solvers, size_t num_threads) {
  if (num_threads == 1) return RunSweepSerial(factory, points, solvers);
  ParallelSweepRunner runner(num_threads);
  return runner.Run(factory, points, solvers);
}

util::Result<std::vector<RunRecord>> RunSweepSerial(
    const WorkloadFactory& factory, const std::vector<SweepPoint>& points,
    const std::vector<std::string>& solvers) {
  std::vector<RunRecord> records;
  records.reserve(points.size() * solvers.size());
  for (const SweepPoint& point : points) {
    auto instance = factory.Build(point.config);
    if (!instance.ok()) return instance.status();
    // Fully serial — the point loop above and the solvers within each
    // point — so --jobs=1 timings stay uncontended.
    auto rows = RunSolvers(*instance, solvers, point.options, point.x,
                           SolverExecution::kSequential);
    if (!rows.ok()) return rows.status();
    records.insert(records.end(), std::make_move_iterator(rows->begin()),
                   std::make_move_iterator(rows->end()));
    SES_LOG(kInfo) << "sweep x=" << point.x << " done";
  }
  SES_LOG(kInfo) << "sweep scheduler metrics: "
                 << SharedSchedulerMetricsSummary();
  return records;
}

}  // namespace ses::exp
