#include "exp/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "core/registry.h"
#include "util/string_util.h"

namespace ses::exp {

namespace {

using util::JsonValue;
using util::Result;
using util::Status;

std::string KeyPath(const std::string& prefix, const std::string& key) {
  return prefix.empty() ? key : prefix + "." + key;
}

/// Strict-schema guard: every member of \p object must be in
/// \p allowed. Misspelled knobs must fail the load, not silently run
/// the default scenario.
Status RejectUnknownKeys(const JsonValue& object, const std::string& prefix,
                         const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : object.AsObject()) {
    (void)value;
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      return Status::InvalidArgument(util::StrFormat(
          "trace descriptor: unknown key '%s'", KeyPath(prefix, key).c_str()));
    }
  }
  return Status::Ok();
}

Result<double> RequireNumber(const JsonValue& object,
                             const std::string& prefix,
                             const std::string& key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) {
    return Status::InvalidArgument(
        util::StrFormat("trace descriptor: required key '%s' is missing",
                        KeyPath(prefix, key).c_str()));
  }
  if (!value->is_number()) {
    return Status::InvalidArgument(
        util::StrFormat("trace descriptor: '%s' must be a number",
                        KeyPath(prefix, key).c_str()));
  }
  return value->AsNumber();
}

/// Optional number with a default; present-but-wrong-kind is an error.
Result<double> OptionalNumber(const JsonValue& object,
                              const std::string& prefix,
                              const std::string& key, double fallback) {
  if (object.Find(key) == nullptr) return fallback;
  return RequireNumber(object, prefix, key);
}

Status CheckPositive(double value, const std::string& path) {
  if (!(value > 0.0)) {
    return Status::InvalidArgument(
        util::StrFormat("trace descriptor: '%s' must be positive (got %g)",
                        path.c_str(), value));
  }
  return Status::Ok();
}

Status CheckFraction(double value, const std::string& path) {
  if (!(value >= 0.0 && value <= 1.0)) {
    return Status::InvalidArgument(util::StrFormat(
        "trace descriptor: '%s' must be in [0, 1] (got %g)", path.c_str(),
        value));
  }
  return Status::Ok();
}

Status ParseArrival(const JsonValue& arrival, TraceSpec& spec) {
  SES_RETURN_IF_ERROR(
      RejectUnknownKeys(arrival, "arrival", {"rate_hz", "bursts"}));
  SES_ASSIGN_OR_RETURN(spec.rate_hz,
                       RequireNumber(arrival, "arrival", "rate_hz"));
  SES_RETURN_IF_ERROR(CheckPositive(spec.rate_hz, "arrival.rate_hz"));
  const JsonValue* bursts = arrival.Find("bursts");
  if (bursts == nullptr) return Status::Ok();
  if (!bursts->is_array()) {
    return Status::InvalidArgument(
        "trace descriptor: 'arrival.bursts' must be an array");
  }
  for (size_t i = 0; i < bursts->AsArray().size(); ++i) {
    const JsonValue& window = bursts->AsArray()[i];
    const std::string prefix = util::StrFormat("arrival.bursts[%zu]", i);
    if (!window.is_object()) {
      return Status::InvalidArgument(util::StrFormat(
          "trace descriptor: '%s' must be an object", prefix.c_str()));
    }
    SES_RETURN_IF_ERROR(RejectUnknownKeys(
        window, prefix, {"at_fraction", "duration_fraction", "multiplier"}));
    BurstSpec burst;
    SES_ASSIGN_OR_RETURN(burst.at_fraction,
                         RequireNumber(window, prefix, "at_fraction"));
    SES_ASSIGN_OR_RETURN(burst.duration_fraction,
                         RequireNumber(window, prefix, "duration_fraction"));
    SES_ASSIGN_OR_RETURN(burst.multiplier,
                         RequireNumber(window, prefix, "multiplier"));
    SES_RETURN_IF_ERROR(
        CheckFraction(burst.at_fraction, prefix + ".at_fraction"));
    SES_RETURN_IF_ERROR(CheckPositive(burst.duration_fraction,
                                      prefix + ".duration_fraction"));
    SES_RETURN_IF_ERROR(
        CheckFraction(burst.duration_fraction, prefix + ".duration_fraction"));
    SES_RETURN_IF_ERROR(
        CheckPositive(burst.multiplier, prefix + ".multiplier"));
    spec.bursts.push_back(burst);
  }
  return Status::Ok();
}

Status ParsePriorityMix(const JsonValue& mix, TraceSpec& spec) {
  SES_RETURN_IF_ERROR(
      RejectUnknownKeys(mix, "priority_mix", {"high", "normal", "batch"}));
  spec.priority_weights = {0.0, 0.0, 0.0};
  double total = 0.0;
  for (size_t lane = 0; lane < api::kNumPriorityLanes; ++lane) {
    const std::string key =
        api::PriorityToString(static_cast<api::Priority>(lane));
    double weight = 0.0;
    SES_ASSIGN_OR_RETURN(weight,
                         OptionalNumber(mix, "priority_mix", key, 0.0));
    if (weight < 0.0) {
      return Status::InvalidArgument(util::StrFormat(
          "trace descriptor: 'priority_mix.%s' must be non-negative "
          "(got %g)",
          key.c_str(), weight));
    }
    spec.priority_weights[lane] = weight;
    total += weight;
  }
  if (!(total > 0.0)) {
    return Status::InvalidArgument(
        "trace descriptor: 'priority_mix' weights must sum to a positive "
        "value");
  }
  return Status::Ok();
}

Status ParseSolverMix(const JsonValue& mix, TraceSpec& spec) {
  const std::vector<std::string> known = core::ListSolvers();
  std::string known_joined;
  for (const std::string& solver : known) {
    if (!known_joined.empty()) known_joined += ", ";
    known_joined += solver;
  }
  double total = 0.0;
  for (const auto& [solver, weight] : mix.AsObject()) {
    if (std::find(known.begin(), known.end(), solver) == known.end()) {
      return Status::InvalidArgument(util::StrFormat(
          "trace descriptor: 'solver_mix.%s' names an unknown solver "
          "(known: %s)",
          solver.c_str(), known_joined.c_str()));
    }
    if (!weight.is_number() || weight.AsNumber() < 0.0) {
      return Status::InvalidArgument(util::StrFormat(
          "trace descriptor: 'solver_mix.%s' must be a non-negative number",
          solver.c_str()));
    }
    spec.solver_mix[solver] = weight.AsNumber();
    total += weight.AsNumber();
  }
  if (spec.solver_mix.empty() || !(total > 0.0)) {
    return Status::InvalidArgument(
        "trace descriptor: 'solver_mix' must name at least one solver with "
        "positive weight");
  }
  return Status::Ok();
}

Status ParseDeadline(const JsonValue& deadline, TraceSpec& spec) {
  SES_RETURN_IF_ERROR(RejectUnknownKeys(
      deadline, "deadline", {"fraction", "min_seconds", "max_seconds"}));
  SES_ASSIGN_OR_RETURN(spec.deadline.fraction,
                       OptionalNumber(deadline, "deadline", "fraction", 0.0));
  SES_RETURN_IF_ERROR(
      CheckFraction(spec.deadline.fraction, "deadline.fraction"));
  SES_ASSIGN_OR_RETURN(
      spec.deadline.min_seconds,
      OptionalNumber(deadline, "deadline", "min_seconds", 0.0));
  SES_ASSIGN_OR_RETURN(
      spec.deadline.max_seconds,
      OptionalNumber(deadline, "deadline", "max_seconds",
                     spec.deadline.min_seconds));
  if (spec.deadline.min_seconds < 0.0 ||
      spec.deadline.max_seconds < spec.deadline.min_seconds) {
    return Status::InvalidArgument(
        "trace descriptor: 'deadline' needs 0 <= min_seconds <= "
        "max_seconds");
  }
  if (spec.deadline.fraction > 0.0 && !(spec.deadline.max_seconds > 0.0)) {
    return Status::InvalidArgument(
        "trace descriptor: 'deadline.max_seconds' must be positive when "
        "'deadline.fraction' is");
  }
  return Status::Ok();
}

Status ParseInstance(const JsonValue& instance, TraceSpec& spec) {
  SES_RETURN_IF_ERROR(RejectUnknownKeys(
      instance, "instance",
      {"k", "intervals", "candidate_events", "users", "events", "groups",
       "tags", "theta", "min_interest", "seed"}));
  double value = 0.0;
  SES_ASSIGN_OR_RETURN(
      value, OptionalNumber(instance, "instance", "k",
                            static_cast<double>(spec.workload.k)));
  SES_RETURN_IF_ERROR(CheckPositive(value, "instance.k"));
  spec.workload.k = static_cast<int64_t>(value);
  SES_ASSIGN_OR_RETURN(
      value, OptionalNumber(instance, "instance", "intervals",
                            static_cast<double>(spec.workload.num_intervals)));
  spec.workload.num_intervals = static_cast<int64_t>(value);
  SES_ASSIGN_OR_RETURN(
      value,
      OptionalNumber(instance, "instance", "candidate_events",
                     static_cast<double>(spec.workload.num_candidate_events)));
  spec.workload.num_candidate_events = static_cast<int64_t>(value);
  SES_ASSIGN_OR_RETURN(
      value, OptionalNumber(instance, "instance", "users",
                            static_cast<double>(spec.dataset.num_users)));
  SES_RETURN_IF_ERROR(CheckPositive(value, "instance.users"));
  spec.dataset.num_users = static_cast<uint32_t>(value);
  SES_ASSIGN_OR_RETURN(
      value, OptionalNumber(instance, "instance", "events",
                            static_cast<double>(spec.dataset.num_events)));
  SES_RETURN_IF_ERROR(CheckPositive(value, "instance.events"));
  spec.dataset.num_events = static_cast<uint32_t>(value);
  SES_ASSIGN_OR_RETURN(
      value, OptionalNumber(instance, "instance", "groups",
                            static_cast<double>(spec.dataset.num_groups)));
  SES_RETURN_IF_ERROR(CheckPositive(value, "instance.groups"));
  spec.dataset.num_groups = static_cast<uint32_t>(value);
  SES_ASSIGN_OR_RETURN(
      value, OptionalNumber(instance, "instance", "tags",
                            static_cast<double>(spec.dataset.num_tags)));
  SES_RETURN_IF_ERROR(CheckPositive(value, "instance.tags"));
  spec.dataset.num_tags = static_cast<uint32_t>(value);
  SES_ASSIGN_OR_RETURN(value,
                       OptionalNumber(instance, "instance", "theta",
                                      spec.workload.theta));
  SES_RETURN_IF_ERROR(CheckPositive(value, "instance.theta"));
  spec.workload.theta = value;
  SES_ASSIGN_OR_RETURN(value,
                       OptionalNumber(instance, "instance", "min_interest",
                                      spec.workload.min_interest));
  SES_RETURN_IF_ERROR(CheckFraction(value, "instance.min_interest"));
  spec.workload.min_interest = value;
  SES_ASSIGN_OR_RETURN(
      value, OptionalNumber(instance, "instance", "seed",
                            static_cast<double>(spec.workload.seed)));
  spec.workload.seed = static_cast<uint64_t>(value);
  spec.dataset.seed = spec.workload.seed ^ 0x5e5e5e5eULL;
  return Status::Ok();
}

Status ParseScheduler(const JsonValue& scheduler, TraceSpec& spec) {
  SES_RETURN_IF_ERROR(RejectUnknownKeys(
      scheduler, "scheduler",
      {"threads", "max_queued", "sweep_period_seconds"}));
  double value = 0.0;
  SES_ASSIGN_OR_RETURN(value,
                       OptionalNumber(scheduler, "scheduler", "threads", 0.0));
  if (value < 0.0) {
    return Status::InvalidArgument(
        "trace descriptor: 'scheduler.threads' must be non-negative");
  }
  spec.scheduler_threads = static_cast<int64_t>(value);
  SES_ASSIGN_OR_RETURN(
      value, OptionalNumber(scheduler, "scheduler", "max_queued", 0.0));
  if (value < 0.0) {
    return Status::InvalidArgument(
        "trace descriptor: 'scheduler.max_queued' must be non-negative");
  }
  spec.max_queued_requests = static_cast<int64_t>(value);
  SES_ASSIGN_OR_RETURN(
      spec.sweep_period_seconds,
      OptionalNumber(scheduler, "scheduler", "sweep_period_seconds", 0.0));
  if (spec.sweep_period_seconds < 0.0) {
    return Status::InvalidArgument(
        "trace descriptor: 'scheduler.sweep_period_seconds' must be "
        "non-negative");
  }
  return Status::Ok();
}

}  // namespace

void TraceSpec::ScaleRequests(double multiplier) {
  num_requests = std::max<int64_t>(
      1, std::llround(static_cast<double>(num_requests) * multiplier));
}

util::Result<TraceSpec> TraceSpec::FromJsonText(const std::string& text) {
  SES_ASSIGN_OR_RETURN(const JsonValue root, JsonValue::Parse(text));
  if (!root.is_object()) {
    return Status::InvalidArgument(
        "trace descriptor: top-level value must be an object");
  }
  SES_RETURN_IF_ERROR(RejectUnknownKeys(
      root, "",
      {"name", "seed", "requests", "arrival", "priority_mix", "solver_mix",
       "deadline", "instance", "scheduler"}));

  TraceSpec spec;
  // A scaled-down default instance: bench traces measure the scheduler,
  // not instance construction, so the per-request solve should be
  // milliseconds unless the descriptor says otherwise.
  spec.workload.k = 20;
  spec.dataset.num_users = 1200;
  spec.dataset.num_events = 600;
  spec.dataset.num_groups = 90;
  spec.dataset.num_tags = 120;

  const JsonValue* name = root.Find("name");
  if (name == nullptr || !name->is_string() || name->AsString().empty()) {
    return Status::InvalidArgument(
        "trace descriptor: required key 'name' must be a non-empty string");
  }
  spec.name = name->AsString();
  for (char c : spec.name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          "trace descriptor: 'name' must match [a-z0-9_-]+ (it becomes the "
          "BENCH_<name>.json stem)");
    }
  }

  double value = 0.0;
  SES_ASSIGN_OR_RETURN(value, RequireNumber(root, "", "seed"));
  spec.seed = static_cast<uint64_t>(value);
  SES_ASSIGN_OR_RETURN(value, RequireNumber(root, "", "requests"));
  SES_RETURN_IF_ERROR(CheckPositive(value, "requests"));
  spec.num_requests = static_cast<int64_t>(value);

  const JsonValue* arrival = root.Find("arrival");
  if (arrival == nullptr || !arrival->is_object()) {
    return Status::InvalidArgument(
        "trace descriptor: required key 'arrival' must be an object");
  }
  SES_RETURN_IF_ERROR(ParseArrival(*arrival, spec));

  if (const JsonValue* mix = root.Find("priority_mix"); mix != nullptr) {
    if (!mix->is_object()) {
      return Status::InvalidArgument(
          "trace descriptor: 'priority_mix' must be an object");
    }
    SES_RETURN_IF_ERROR(ParsePriorityMix(*mix, spec));
  }

  const JsonValue* solver_mix = root.Find("solver_mix");
  if (solver_mix == nullptr || !solver_mix->is_object()) {
    return Status::InvalidArgument(
        "trace descriptor: required key 'solver_mix' must be an object");
  }
  SES_RETURN_IF_ERROR(ParseSolverMix(*solver_mix, spec));

  if (const JsonValue* deadline = root.Find("deadline"); deadline != nullptr) {
    if (!deadline->is_object()) {
      return Status::InvalidArgument(
          "trace descriptor: 'deadline' must be an object");
    }
    SES_RETURN_IF_ERROR(ParseDeadline(*deadline, spec));
  }

  if (const JsonValue* instance = root.Find("instance"); instance != nullptr) {
    if (!instance->is_object()) {
      return Status::InvalidArgument(
          "trace descriptor: 'instance' must be an object");
    }
    SES_RETURN_IF_ERROR(ParseInstance(*instance, spec));
  } else {
    spec.workload.seed = spec.seed;
    spec.dataset.seed = spec.seed ^ 0x5e5e5e5eULL;
  }

  if (const JsonValue* scheduler = root.Find("scheduler");
      scheduler != nullptr) {
    if (!scheduler->is_object()) {
      return Status::InvalidArgument(
          "trace descriptor: 'scheduler' must be an object");
    }
    SES_RETURN_IF_ERROR(ParseScheduler(*scheduler, spec));
  }

  return spec;
}

util::Result<TraceSpec> TraceSpec::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open trace file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto spec = FromJsonText(buffer.str());
  if (!spec.ok()) {
    return Status(spec.status().code(),
                  path + ": " + std::string(spec.status().message()));
  }
  return spec;
}

std::vector<double> ArrivalOffsets(const TraceSpec& spec, util::Rng& rng) {
  // Burst windows are positioned on the nominal (unbursted) duration;
  // the rate is piecewise-constant, evaluated at the current arrival
  // time. Bursts compress real time, so the realized duration of a
  // bursty trace is shorter than nominal — intended: the same request
  // count arrives faster.
  const double nominal =
      static_cast<double>(spec.num_requests) / spec.rate_hz;
  std::vector<double> offsets;
  offsets.reserve(static_cast<size_t>(spec.num_requests));
  double t = 0.0;
  for (int64_t i = 0; i < spec.num_requests; ++i) {
    double rate = spec.rate_hz;
    for (const BurstSpec& burst : spec.bursts) {
      const double begin = burst.at_fraction * nominal;
      const double end = begin + burst.duration_fraction * nominal;
      if (t >= begin && t < end) {
        rate = spec.rate_hz * burst.multiplier;
        break;
      }
    }
    // Exponential inter-arrival via inversion; NextDouble() is in
    // [0, 1) so the argument of log stays positive.
    t += -std::log(1.0 - rng.NextDouble()) / rate;
    offsets.push_back(t);
  }
  return offsets;
}

}  // namespace ses::exp
