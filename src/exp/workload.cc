#include "exp/workload.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace ses::exp {

namespace {

/// Applies the min-interest threshold and the per-event user cap.
std::vector<std::pair<core::UserIndex, float>> ToInterestRow(
    std::vector<ebsn::UserInterest> interests, double min_interest,
    int64_t cap) {
  if (cap > 0 && interests.size() > static_cast<size_t>(cap)) {
    // Keep the `cap` most interested users.
    std::nth_element(interests.begin(), interests.begin() + cap,
                     interests.end(),
                     [](const ebsn::UserInterest& a,
                        const ebsn::UserInterest& b) {
                       return a.interest > b.interest;
                     });
    interests.resize(static_cast<size_t>(cap));
    std::sort(interests.begin(), interests.end(),
              [](const ebsn::UserInterest& a, const ebsn::UserInterest& b) {
                return a.user < b.user;
              });
  }
  std::vector<std::pair<core::UserIndex, float>> row;
  row.reserve(interests.size());
  for (const ebsn::UserInterest& ui : interests) {
    if (ui.interest < min_interest) continue;
    row.push_back({static_cast<core::UserIndex>(ui.user), ui.interest});
  }
  return row;
}

}  // namespace

WorkloadFactory::WorkloadFactory(const ebsn::EbsnDataset& dataset)
    : dataset_(&dataset), interest_(dataset) {}

util::Result<core::SesInstance> WorkloadFactory::Build(
    const PaperWorkloadConfig& config) const {
  if (config.k <= 0) {
    return util::Status::InvalidArgument("k must be positive");
  }
  const int64_t num_intervals = config.ResolvedIntervals();
  const int64_t num_events = config.ResolvedEvents();
  if (num_intervals <= 0) {
    return util::Status::InvalidArgument("|T| must be positive");
  }
  if (num_events < config.k) {
    return util::Status::InvalidArgument("|E| must be at least k");
  }
  const size_t catalog_size = dataset_->events().size();
  if (catalog_size == 0) {
    return util::Status::FailedPrecondition("dataset has no events");
  }
  if (static_cast<size_t>(num_events) > catalog_size) {
    return util::Status::InvalidArgument(util::StrFormat(
        "|E|=%lld exceeds the catalog (%zu events)",
        static_cast<long long>(num_events), catalog_size));
  }

  util::Rng rng(config.seed);
  core::InstanceBuilder builder;
  builder.SetNumUsers(static_cast<uint32_t>(dataset_->users().size()))
      .SetNumIntervals(static_cast<uint32_t>(num_intervals))
      .SetTheta(config.theta)
      .SetSigma(std::make_shared<core::HashUniformSigma>(config.seed ^
                                                         0x5161a5ea11ULL));

  // Candidate events: a uniform catalog sample without replacement.
  const std::vector<uint32_t> candidate_ids = util::SampleWithoutReplacement(
      rng, static_cast<uint32_t>(catalog_size),
      static_cast<uint32_t>(num_events));
  for (uint32_t id : candidate_ids) {
    const auto& record = dataset_->events()[id];
    auto row = ToInterestRow(
        interest_.EventInterests(record.tags,
                                 static_cast<float>(config.min_interest)),
        config.min_interest, config.max_users_per_event);
    const core::LocationId location = static_cast<core::LocationId>(
        rng.NextBounded(static_cast<uint64_t>(config.num_locations)));
    const double xi = rng.UniformDouble(config.xi_min, config.xi_max);
    builder.AddEvent(location, xi, std::move(row));
  }

  // Competing events: per interval, a uniform *integer* count on the
  // closed range [round(mean-spread), round(mean+spread)]. Drawing a
  // real and rounding it would give the two endpoint counts half the
  // probability of every interior count (their rounding intervals are
  // half-width), biasing the per-interval mean away from the paper's
  // configured value.
  const int64_t competing_lo = std::max<int64_t>(
      0, std::llround(config.competing_mean - config.competing_spread));
  const int64_t competing_hi = std::max<int64_t>(
      competing_lo,
      std::llround(config.competing_mean + config.competing_spread));
  for (int64_t t = 0; t < num_intervals; ++t) {
    const int64_t count = rng.UniformInt(competing_lo, competing_hi);
    for (int64_t c = 0; c < count; ++c) {
      const uint32_t id =
          static_cast<uint32_t>(rng.NextBounded(catalog_size));
      const auto& record = dataset_->events()[id];
      auto row = ToInterestRow(
          interest_.EventInterests(record.tags,
                                   static_cast<float>(config.min_interest)),
          config.min_interest, config.max_users_per_event);
      builder.AddCompetingEvent(static_cast<core::IntervalIndex>(t),
                                std::move(row));
    }
  }

  return builder.Build();
}

}  // namespace ses::exp
