#ifndef SES_EXP_TRACE_H_
#define SES_EXP_TRACE_H_

/// \file
/// Declarative load-trace descriptors for the bench harness.
///
/// A trace file (bench/traces/*.json) describes one reproducible load
/// scenario against a live api::Scheduler: an open-loop arrival process
/// (Poisson base rate with optional burst windows), a priority mix, a
/// solver mix, a deadline spread, the synthetic instance to solve, and
/// one seed that fixes every random choice. TraceSpec parses and
/// validates the descriptor; exp::LoadGenerator (load_generator.h)
/// replays it.
///
/// Validation is strict: every key is checked and unknown or malformed
/// keys fail with InvalidArgument naming the offending key, so a typo
/// in a descriptor dies loudly instead of silently running the default
/// scenario.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "api/dispatch_queue.h"
#include "ebsn/generator.h"
#include "exp/workload.h"
#include "util/json.h"
#include "util/random.h"
#include "util/status.h"

namespace ses::exp {

/// One burst window of the arrival process, positioned as fractions of
/// the trace's nominal duration (requests / rate_hz).
struct BurstSpec {
  /// Window start, in [0, 1).
  double at_fraction = 0.0;
  /// Window length, in (0, 1].
  double duration_fraction = 0.0;
  /// Arrival-rate multiplier inside the window (> 0; > 1 is a burst,
  /// < 1 a lull).
  double multiplier = 1.0;
};

/// Deadline spread: which fraction of requests carry a deadline, and
/// the uniform range their budget is drawn from.
struct DeadlineSpec {
  /// Fraction of requests submitted with a deadline, in [0, 1].
  double fraction = 0.0;
  /// Uniform budget range in seconds, 0 <= min <= max.
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

/// A parsed, validated load scenario.
struct TraceSpec {
  /// Scenario name (becomes the BENCH_<name>.json stem).
  std::string name;

  /// Master seed: fixes the arrival process, every per-request draw
  /// (solver, priority, deadline, solver seed), and the instance.
  uint64_t seed = 0;

  /// Number of requests to submit.
  int64_t num_requests = 0;

  /// Base Poisson arrival rate, requests per second.
  double rate_hz = 0.0;

  /// Burst windows (may overlap; multipliers do not stack — the first
  /// matching window wins).
  std::vector<BurstSpec> bursts;

  /// Per-lane submission weights, indexed by api::Priority.
  std::array<double, api::kNumPriorityLanes> priority_weights = {0.0, 1.0,
                                                                 0.0};

  /// Solver name -> weight; keys are validated against
  /// core::ListSolvers(). std::map so every derived iteration is
  /// deterministic.
  std::map<std::string, double> solver_mix;

  /// Deadline spread; fraction 0 (default) submits everything
  /// unlimited.
  DeadlineSpec deadline;

  /// Synthetic dataset scale for ebsn::GenerateSyntheticMeetup.
  ebsn::SyntheticMeetupConfig dataset;

  /// Paper-workload parameters of the instance each request solves.
  PaperWorkloadConfig workload;

  /// api::SchedulerOptions mirror (0 = library default).
  int64_t scheduler_threads = 0;
  int64_t max_queued_requests = 0;
  double sweep_period_seconds = 0.0;

  /// Scales num_requests by \p multiplier (result floored, minimum 1).
  /// The bench harness's --size=S/M/L knob maps to 0.25 / 1 / 4.
  void ScaleRequests(double multiplier);

  /// Parses and validates a descriptor from JSON text. Syntax errors
  /// come back as kParseError (with line/column); schema violations as
  /// kInvalidArgument naming the offending key.
  [[nodiscard]] static util::Result<TraceSpec> FromJsonText(
      const std::string& text);

  /// FromJsonText over the contents of \p path.
  [[nodiscard]] static util::Result<TraceSpec> Load(const std::string& path);
};

/// The trace's arrival timestamps: seconds-since-start offsets for each
/// of spec.num_requests submissions, strictly non-decreasing.
/// Open-loop Poisson with piecewise-constant rate — inside a burst
/// window the base rate is multiplied by the window's multiplier.
/// Deterministic in (spec, rng state); LoadGenerator seeds the rng from
/// spec.seed so a trace always replays the same arrival sequence.
std::vector<double> ArrivalOffsets(const TraceSpec& spec, util::Rng& rng);

}  // namespace ses::exp

#endif  // SES_EXP_TRACE_H_
