#ifndef SES_EXP_LOAD_GENERATOR_H_
#define SES_EXP_LOAD_GENERATOR_H_

/// \file
/// Trace replay against a live api::Scheduler.
///
/// LoadGenerator takes a validated TraceSpec (trace.h), materializes its
/// synthetic dataset and SES instance, and submits the trace's requests
/// open-loop: each request is dispatched at its pre-drawn arrival
/// timestamp regardless of how the scheduler is keeping up, so queue
/// waits reflect the offered load rather than caller back-pressure.
///
/// Measurement comes from the scheduler's own MetricRegistry as a
/// snapshot *delta* (Scheduler::SnapshotDelta): the report describes
/// exactly this run, never process-lifetime totals — the bug class
/// run_benchmarks.py exists to keep out of BENCH_*.json. Per-lane queue
/// waits are read from the post-split healthy histogram
/// (`scheduler.queue_wait_seconds.<lane>`), so expired-in-queue
/// requests never pollute the reported percentiles.
///
/// Everything except wall-clock-derived numbers is deterministic in the
/// trace seed; RenderBenchReportJson(report, /*include_timing=*/false)
/// drops the timing fields, giving a byte-stable report for fixed-seed
/// smoke traces (the same idiom as the sweep CSVs' --csv-timing=false).

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "api/scheduler.h"
#include "exp/trace.h"
#include "util/status.h"

namespace ses::exp {

/// Per-priority-lane slice of a bench run.
struct BenchLaneReport {
  /// Requests the trace submitted to this lane (from the plan;
  /// deterministic).
  int64_t submitted = 0;
  /// Healthy dequeues: requests that left the queue for a worker
  /// (delta count of scheduler.queue_wait_seconds.<lane>).
  uint64_t started = 0;
  /// Requests dropped at dequeue with an already-expired deadline
  /// (delta count of scheduler.expired_queue_wait_seconds.<lane>).
  uint64_t expired_in_queue = 0;
  /// Healthy queue-wait stats in seconds, estimated from the delta
  /// histogram; NaN when the lane saw no healthy dequeue.
  double wait_p50_seconds = 0.0;
  double wait_p99_seconds = 0.0;
  double wait_mean_seconds = 0.0;
};

/// Per-solver slice of a bench run.
struct BenchSolverReport {
  /// Requests the trace planned for this solver (deterministic).
  int64_t submitted = 0;
  /// Solver runs that actually started (delta count of
  /// scheduler.solve_seconds.<solver>).
  uint64_t runs = 0;
  /// Sum of utilities over *completed* responses (deterministic: a
  /// completed solve is bit-identical for a fixed seed).
  double utility = 0.0;
  /// Solve-latency stats in seconds from the delta histogram; NaN when
  /// the solver never ran.
  double solve_p50_seconds = 0.0;
  double solve_p99_seconds = 0.0;
  double solve_mean_seconds = 0.0;
};

/// Machine-readable outcome of one trace replay.
struct BenchReport {
  std::string trace_name;
  uint64_t seed = 0;
  int64_t submitted = 0;

  /// Terminal-status tallies over all submitted requests.
  uint64_t completed = 0;
  uint64_t refused = 0;
  uint64_t deadline_expired = 0;
  /// Of the deadline_expired total, how many died in the queue without
  /// ever reaching a solver (counter delta
  /// scheduler.deadline_expired_in_queue).
  uint64_t expired_in_queue = 0;
  uint64_t failed = 0;

  /// Sum of utilities over completed responses.
  double total_utility = 0.0;

  std::array<BenchLaneReport, api::kNumPriorityLanes> lanes;
  std::map<std::string, BenchSolverReport> solvers;

  /// Wall-clock timing (first submission to last response).
  double duration_seconds = 0.0;
  double throughput_rps = 0.0;
};

/// Replays one TraceSpec end-to-end. Owns nothing between runs: each
/// Run() builds the dataset, instance, and a fresh scheduler, replays
/// the trace, and reports from the metric snapshot delta.
class LoadGenerator {
 public:
  explicit LoadGenerator(TraceSpec spec);

  /// Builds everything and replays the trace. Errors are construction
  /// failures (instance build); replay itself always produces a report.
  [[nodiscard]] util::Result<BenchReport> Run();

  const TraceSpec& spec() const { return spec_; }

 private:
  TraceSpec spec_;
};

/// Renders the report as a JSON document (two-space indent, fixed key
/// order, NaN rendered as null). \p include_timing=false omits every
/// wall-clock-derived field — duration, throughput, and the wait/solve
/// latency stats — leaving only fields that are byte-stable for a fixed
/// seed (given a drop-free trace: no deadlines, unbounded queue).
std::string RenderBenchReportJson(const BenchReport& report,
                                  bool include_timing);

}  // namespace ses::exp

#endif  // SES_EXP_LOAD_GENERATOR_H_
