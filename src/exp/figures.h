#ifndef SES_EXP_FIGURES_H_
#define SES_EXP_FIGURES_H_

/// \file
/// Rendering of experiment series in the layout of the paper's figures:
/// one row per sweep coordinate, one column per method, for a chosen
/// metric (utility or time). Also writes CSV for external plotting.

#include <string>
#include <vector>

#include "exp/runner.h"
#include "util/status.h"

namespace ses::exp {

/// Which measurement a figure plots.
enum class Metric {
  kUtility,
  kSeconds,
};

/// Renders \p records as an aligned text table: rows keyed by the sweep
/// coordinate (labelled \p x_label), one column per solver in
/// \p solver_order, values from \p metric. Includes a title line.
std::string RenderFigure(const std::string& title, const std::string& x_label,
                         const std::vector<std::string>& solver_order,
                         const std::vector<RunRecord>& records,
                         Metric metric);

/// Whether a records CSV includes the wall-clock column group.
enum class CsvTiming {
  /// Deterministic columns only — two runs of the same sweep produce
  /// byte-identical files regardless of worker count.
  kOmit,
  /// Appends the `seconds` column after the comparable columns.
  kAppend,
};

/// Writes the records to CSV. The comparable column group
/// (x,solver,utility,gain_evaluations,assignments) always comes first;
/// with CsvTiming::kAppend the non-deterministic `seconds` measurement
/// is appended as the trailing column.
[[nodiscard]] util::Status WriteRecordsCsv(const std::string& path,
                             const std::vector<RunRecord>& records,
                             CsvTiming timing = CsvTiming::kAppend);

}  // namespace ses::exp

#endif  // SES_EXP_FIGURES_H_
