#ifndef SES_EXP_FIGURES_H_
#define SES_EXP_FIGURES_H_

/// \file
/// Rendering of experiment series in the layout of the paper's figures:
/// one row per sweep coordinate, one column per method, for a chosen
/// metric (utility or time). Also writes CSV for external plotting.

#include <string>
#include <vector>

#include "exp/runner.h"
#include "util/status.h"

namespace ses::exp {

/// Which measurement a figure plots.
enum class Metric {
  kUtility,
  kSeconds,
};

/// Renders \p records as an aligned text table: rows keyed by the sweep
/// coordinate (labelled \p x_label), one column per solver in
/// \p solver_order, values from \p metric. Includes a title line.
std::string RenderFigure(const std::string& title, const std::string& x_label,
                         const std::vector<std::string>& solver_order,
                         const std::vector<RunRecord>& records,
                         Metric metric);

/// Writes the records to CSV: x,solver,utility,seconds,gain_evaluations.
util::Status WriteRecordsCsv(const std::string& path,
                             const std::vector<RunRecord>& records);

}  // namespace ses::exp

#endif  // SES_EXP_FIGURES_H_
