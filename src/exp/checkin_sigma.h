#ifndef SES_EXP_CHECKIN_SIGMA_H_
#define SES_EXP_CHECKIN_SIGMA_H_

/// \file
/// Adapter: exposes an ebsn::ActivityModel (fit on check-in history) as a
/// core::SigmaProvider, mapping each SES interval to a recurring activity
/// slot (interval index modulo the slot count). This realizes the paper's
/// remark that sigma "can be estimated by examining the user's past
/// behavior (e.g. number of check-ins)".

#include "core/sigma.h"
#include "ebsn/activity.h"

namespace ses::exp {

/// SigmaProvider backed by a check-in-derived activity model.
class CheckinSigma final : public core::SigmaProvider {
 public:
  /// \p model must outlive this provider.
  explicit CheckinSigma(const ebsn::ActivityModel& model) : model_(&model) {}

  double At(core::UserIndex u, core::IntervalIndex t) const override {
    return model_->Probability(u, t % model_->num_slots());
  }

 private:
  const ebsn::ActivityModel* model_;
};

}  // namespace ses::exp

#endif  // SES_EXP_CHECKIN_SIGMA_H_
