#ifndef SES_EXP_SWEEP_H_
#define SES_EXP_SWEEP_H_

/// \file
/// Repeated-measurement sweeps: run each sweep point on several workload
/// seeds and aggregate utility/time into summary statistics, so figure
/// series carry error bars instead of single draws.

#include <functional>
#include <string>
#include <vector>

#include "core/solver.h"
#include "exp/workload.h"
#include "util/stats.h"
#include "util/status.h"

namespace ses::exp {

/// Aggregated measurements of one (sweep coordinate, solver) cell.
struct SweepCell {
  int64_t x = 0;
  std::string solver;
  util::Summary utility;
  util::Summary seconds;
};

/// Maps a sweep coordinate and repetition seed to a workload config.
using ConfigFactory =
    std::function<PaperWorkloadConfig(int64_t x, uint64_t seed)>;

/// Runs \p solvers on every x in \p xs, \p repetitions times each with
/// distinct seeds, and aggregates per (x, solver).
///
/// The solver's k is taken from the generated config's k. The (x, rep)
/// cells run concurrently on a ParallelSweepRunner with \p num_threads
/// workers (0 = hardware concurrency; the default of 1 keeps existing
/// callers serial so parallelism — which perturbs the `seconds`
/// aggregates under CPU contention — stays opt-in). Per-cell seeding
/// makes the utility aggregates identical for every worker count.
/// \p solver_threads is forwarded to SolverOptions::threads (grd/lazy
/// score-generation shards); utility aggregates are bit-identical at any
/// value.
[[nodiscard]] util::Result<std::vector<SweepCell>> RunRepeatedSweep(
    const WorkloadFactory& factory, const std::vector<int64_t>& xs,
    const ConfigFactory& make_config,
    const std::vector<std::string>& solvers, int repetitions,
    uint64_t base_seed, size_t num_threads = 1,
    int64_t solver_threads = 1);

/// Renders cells as "mean +- sd" per column, rows keyed by x.
std::string RenderSweepTable(const std::string& title,
                             const std::string& x_label,
                             const std::vector<std::string>& solver_order,
                             const std::vector<SweepCell>& cells,
                             bool show_seconds);

}  // namespace ses::exp

#endif  // SES_EXP_SWEEP_H_
