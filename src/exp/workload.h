#ifndef SES_EXP_WORKLOAD_H_
#define SES_EXP_WORKLOAD_H_

/// \file
/// The paper's experimental workload (Section IV-A), reproduced:
///
///  - data: Meetup-like EBSN dataset (42,444 users / ~16k events for the
///    California scale), interest mu = Jaccard of user/event tags;
///  - k: default 100, maximum 500;
///  - |T|: swept from k/5 to 3k, default 3k/2;
///  - |E| = 2k candidate events, sampled from the catalog;
///  - competing events per interval: uniform with mean 8.1, drawn from
///    the catalog and fixed to their interval;
///  - 25 event locations, assigned uniformly;
///  - theta = 20 available resources; xi ~ Uniform[1, 20/3];
///  - sigma: Uniform[0,1) via a seeded hash (storage-free).

#include <cstdint>

#include "core/instance.h"
#include "ebsn/dataset.h"
#include "ebsn/interest.h"
#include "util/status.h"

namespace ses::exp {

/// Parameters of one experiment point. Negative values mean "derive the
/// paper default from k".
struct PaperWorkloadConfig {
  int64_t k = 100;
  int64_t num_intervals = -1;        ///< default 3k/2
  int64_t num_candidate_events = -1; ///< default 2k

  /// Competing events per interval ~ round(Uniform(mean - spread,
  /// mean + spread)); the paper's mean is 8.1.
  double competing_mean = 8.1;
  double competing_spread = 3.9;

  int64_t num_locations = 25;
  double theta = 20.0;
  double xi_min = 1.0;
  double xi_max = 20.0 / 3.0;

  /// Interests below this Jaccard threshold are treated as zero.
  double min_interest = 0.05;
  /// Per-event cap on the interest list (keeps the densest instances
  /// memory-bounded; entries beyond the cap are the least-interested
  /// users). 0 disables the cap.
  int64_t max_users_per_event = 4000;

  uint64_t seed = 7;

  /// |T| after applying the 3k/2 default.
  int64_t ResolvedIntervals() const {
    return num_intervals > 0 ? num_intervals : (3 * k) / 2;
  }
  /// |E| after applying the 2k default.
  int64_t ResolvedEvents() const {
    return num_candidate_events > 0 ? num_candidate_events : 2 * k;
  }
};

/// Builds SES instances over a fixed EBSN dataset. Construction
/// pre-builds the Jaccard inverted index once; Build() is then cheap
/// enough to call per sweep point. Thread-safe: Build() only reads the
/// shared index (InterestModel keeps its scatter scratch per thread), so
/// concurrent sweep workers construct instances without serialization.
class WorkloadFactory {
 public:
  /// \p dataset must outlive the factory.
  explicit WorkloadFactory(const ebsn::EbsnDataset& dataset);

  /// Materializes the SES instance for \p config.
  [[nodiscard]] util::Result<core::SesInstance> Build(
      const PaperWorkloadConfig& config) const;

  const ebsn::EbsnDataset& dataset() const { return *dataset_; }

 private:
  const ebsn::EbsnDataset* dataset_;
  ebsn::InterestModel interest_;
};

}  // namespace ses::exp

#endif  // SES_EXP_WORKLOAD_H_
