#include "exp/figures.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/csv.h"
#include "util/string_util.h"

namespace ses::exp {

std::string RenderFigure(const std::string& title, const std::string& x_label,
                         const std::vector<std::string>& solver_order,
                         const std::vector<RunRecord>& records,
                         Metric metric) {
  // x -> solver -> value
  std::map<int64_t, std::map<std::string, double>> grid;
  for (const RunRecord& record : records) {
    const double value = metric == Metric::kUtility
                             ? record.utility
                             : record.measurement.seconds;
    grid[record.x][record.solver] = value;
  }

  std::string out;
  out += "=== " + title + " ===\n";
  out += util::StrFormat("%10s", x_label.c_str());
  for (const std::string& solver : solver_order) {
    out += util::StrFormat(" %12s", solver.c_str());
  }
  out += "\n";
  for (const auto& [x, row] : grid) {
    out += util::StrFormat("%10lld", static_cast<long long>(x));
    for (const std::string& solver : solver_order) {
      auto it = row.find(solver);
      if (it == row.end()) {
        out += util::StrFormat(" %12s", "-");
      } else if (metric == Metric::kUtility) {
        out += util::StrFormat(" %12.2f", it->second);
      } else {
        out += util::StrFormat(" %12.4f", it->second);
      }
    }
    out += "\n";
  }
  return out;
}

util::Status WriteRecordsCsv(const std::string& path,
                             const std::vector<RunRecord>& records,
                             CsvTiming timing) {
  util::CsvRow header{"x", "solver", "utility", "gain_evaluations",
                      "assignments"};
  if (timing == CsvTiming::kAppend) header.push_back("seconds");
  std::vector<util::CsvRow> rows;
  rows.reserve(records.size());
  for (const RunRecord& record : records) {
    util::CsvRow row{std::to_string(record.x), record.solver,
                     util::StrFormat("%.6f", record.utility),
                     std::to_string(record.gain_evaluations),
                     std::to_string(record.assignments)};
    if (timing == CsvTiming::kAppend) {
      row.push_back(util::StrFormat("%.6f", record.measurement.seconds));
    }
    rows.push_back(std::move(row));
  }
  return util::WriteCsvFile(path, header, rows);
}

}  // namespace ses::exp
