#include "exp/load_generator.h"

#include <chrono>
#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "ebsn/generator.h"
#include "exp/workload.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/string_util.h"

namespace ses::exp {

namespace {

/// One pre-drawn request of the replay plan. The whole plan is drawn
/// before the clock starts, so wall-clock jitter can never change a
/// random choice.
struct PlannedRequest {
  double offset_seconds = 0.0;
  api::Priority priority = api::Priority::kNormal;
  std::string solver;
  uint64_t solver_seed = 0;
  bool has_deadline = false;
  double deadline_seconds = 0.0;
};

std::vector<PlannedRequest> DrawPlan(const TraceSpec& spec) {
  util::Rng rng(spec.seed);
  const std::vector<double> offsets = ArrivalOffsets(spec, rng);

  // Samplers over the spec's (deterministically ordered) mixes.
  std::vector<std::string> solver_names;
  std::vector<double> solver_weights;
  for (const auto& [solver, weight] : spec.solver_mix) {
    solver_names.push_back(solver);
    solver_weights.push_back(weight);
  }
  const util::DiscreteSampler solver_sampler(solver_weights);
  const util::DiscreteSampler priority_sampler(std::vector<double>(
      spec.priority_weights.begin(), spec.priority_weights.end()));

  std::vector<PlannedRequest> plan;
  plan.reserve(offsets.size());
  for (double offset : offsets) {
    PlannedRequest request;
    request.offset_seconds = offset;
    request.priority =
        static_cast<api::Priority>(priority_sampler.Sample(rng));
    request.solver = solver_names[solver_sampler.Sample(rng)];
    request.solver_seed = rng.Next();
    request.has_deadline = spec.deadline.fraction > 0.0 &&
                           rng.Bernoulli(spec.deadline.fraction);
    if (request.has_deadline) {
      request.deadline_seconds = rng.UniformDouble(
          spec.deadline.min_seconds, spec.deadline.max_seconds);
    }
    plan.push_back(std::move(request));
  }
  return plan;
}

/// Copies one delta histogram's stats into (count, p50, p99, mean).
void FillLatencyStats(const util::MetricsSnapshot& delta,
                      const std::string& name, uint64_t* count, double* p50,
                      double* p99, double* mean) {
  const util::HistogramSample* sample = delta.FindHistogram(name);
  if (sample == nullptr) {
    *count = 0;
    *p50 = *p99 = *mean = std::nan("");
    return;
  }
  *count = sample->count;
  *p50 = sample->Quantile(0.50);
  *p99 = sample->Quantile(0.99);
  *mean = sample->count == 0 ? std::nan("") : sample->mean();
}

/// JSON number, NaN as null (JSON has no NaN literal).
std::string JsonNumber(double value) {
  if (std::isnan(value)) return "null";
  return util::StrFormat("%.9g", value);
}

}  // namespace

LoadGenerator::LoadGenerator(TraceSpec spec) : spec_(std::move(spec)) {}

util::Result<BenchReport> LoadGenerator::Run() {
  const ebsn::EbsnDataset dataset = ebsn::GenerateSyntheticMeetup(spec_.dataset);
  const WorkloadFactory factory(dataset);
  auto built = factory.Build(spec_.workload);
  if (!built.ok()) return built.status();
  const core::SesInstance& instance = *built;

  api::SchedulerOptions options;
  options.num_threads = static_cast<size_t>(spec_.scheduler_threads);
  options.max_queued_requests =
      static_cast<size_t>(spec_.max_queued_requests);
  options.expired_sweep_period_seconds = spec_.sweep_period_seconds;
  api::Scheduler scheduler(options);

  const std::vector<PlannedRequest> plan = DrawPlan(spec_);

  BenchReport report;
  report.trace_name = spec_.name;
  report.seed = spec_.seed;
  report.submitted = static_cast<int64_t>(plan.size());
  for (const auto& [solver, weight] : spec_.solver_mix) {
    (void)weight;
    report.solvers[solver];  // materialize every mixed solver, even if
                             // the draw never picks it
  }
  for (const PlannedRequest& request : plan) {
    ++report.lanes[static_cast<size_t>(request.priority)].submitted;
    ++report.solvers[request.solver].submitted;
  }

  const util::MetricsSnapshot before = scheduler.metric_registry().Snapshot();

  // Open-loop replay: submissions happen at the planned offsets whether
  // or not earlier requests have finished. sleep_until (not sleep_for)
  // keeps a slow Submit from shifting every later arrival.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  std::vector<api::PendingSolve> pending;
  pending.reserve(plan.size());
  for (const PlannedRequest& planned : plan) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(planned.offset_seconds)));
    api::SolveRequest request;
    request.solver = planned.solver;
    request.priority = planned.priority;
    request.options.k = spec_.workload.k;
    request.options.seed = planned.solver_seed;
    if (planned.has_deadline) {
      // Constructed at submission: the budget covers queue wait plus
      // solve, the scheduler's RPC-style deadline semantics.
      request.deadline = core::Deadline::After(planned.deadline_seconds);
    }
    pending.push_back(scheduler.Submit(instance, std::move(request)));
  }

  for (size_t i = 0; i < pending.size(); ++i) {
    const api::SolveResponse response = pending[i].Get();
    BenchSolverReport& solver_report = report.solvers[plan[i].solver];
    if (response.status.ok()) {
      ++report.completed;
      report.total_utility += response.utility;
      solver_report.utility += response.utility;
    } else if (response.status.code() ==
               util::StatusCode::kResourceExhausted) {
      ++report.refused;
    } else if (response.status.code() ==
               util::StatusCode::kDeadlineExceeded) {
      ++report.deadline_expired;
    } else {
      ++report.failed;
    }
  }
  const std::chrono::duration<double> elapsed = Clock::now() - start;
  report.duration_seconds = elapsed.count();
  report.throughput_rps =
      report.duration_seconds > 0.0
          ? static_cast<double>(report.completed) / report.duration_seconds
          : 0.0;

  // Everything below reads the snapshot *delta*: this run's activity,
  // never process totals.
  const util::MetricsSnapshot delta = scheduler.SnapshotDelta(before);
  report.expired_in_queue =
      delta.CounterValue("scheduler.deadline_expired_in_queue");
  for (size_t lane = 0; lane < api::kNumPriorityLanes; ++lane) {
    const std::string lane_name =
        api::PriorityToString(static_cast<api::Priority>(lane));
    BenchLaneReport& lane_report = report.lanes[lane];
    FillLatencyStats(delta, "scheduler.queue_wait_seconds." + lane_name,
                     &lane_report.started, &lane_report.wait_p50_seconds,
                     &lane_report.wait_p99_seconds,
                     &lane_report.wait_mean_seconds);
    const util::HistogramSample* expired = delta.FindHistogram(
        "scheduler.expired_queue_wait_seconds." + lane_name);
    lane_report.expired_in_queue = expired == nullptr ? 0 : expired->count;
  }
  for (auto& [solver, solver_report] : report.solvers) {
    FillLatencyStats(delta, "scheduler.solve_seconds." + solver,
                     &solver_report.runs, &solver_report.solve_p50_seconds,
                     &solver_report.solve_p99_seconds,
                     &solver_report.solve_mean_seconds);
  }
  return report;
}

std::string RenderBenchReportJson(const BenchReport& report,
                                  bool include_timing) {
  std::string out = "{\n";
  out += util::StrFormat("  \"trace\": \"%s\",\n",
                         report.trace_name.c_str());
  out += util::StrFormat("  \"seed\": %llu,\n",
                         static_cast<unsigned long long>(report.seed));
  out += "  \"requests\": {\n";
  out += util::StrFormat("    \"submitted\": %lld,\n",
                         static_cast<long long>(report.submitted));
  out += util::StrFormat("    \"completed\": %llu,\n",
                         static_cast<unsigned long long>(report.completed));
  out += util::StrFormat("    \"refused\": %llu,\n",
                         static_cast<unsigned long long>(report.refused));
  out += util::StrFormat(
      "    \"deadline_expired\": %llu,\n",
      static_cast<unsigned long long>(report.deadline_expired));
  out += util::StrFormat(
      "    \"expired_in_queue\": %llu,\n",
      static_cast<unsigned long long>(report.expired_in_queue));
  out += util::StrFormat("    \"failed\": %llu\n",
                         static_cast<unsigned long long>(report.failed));
  out += "  },\n";
  out += util::StrFormat("  \"total_utility\": %s,\n",
                         JsonNumber(report.total_utility).c_str());

  out += "  \"lanes\": {\n";
  for (size_t lane = 0; lane < api::kNumPriorityLanes; ++lane) {
    const BenchLaneReport& lane_report = report.lanes[lane];
    out += util::StrFormat(
        "    \"%s\": {\n",
        api::PriorityToString(static_cast<api::Priority>(lane)));
    out += util::StrFormat("      \"submitted\": %lld,\n",
                           static_cast<long long>(lane_report.submitted));
    out += util::StrFormat(
        "      \"started\": %llu,\n",
        static_cast<unsigned long long>(lane_report.started));
    out += util::StrFormat(
        "      \"expired_in_queue\": %llu",
        static_cast<unsigned long long>(lane_report.expired_in_queue));
    if (include_timing) {
      out += ",\n      \"queue_wait_seconds\": {\n";
      out += util::StrFormat(
          "        \"p50\": %s,\n",
          JsonNumber(lane_report.wait_p50_seconds).c_str());
      out += util::StrFormat(
          "        \"p99\": %s,\n",
          JsonNumber(lane_report.wait_p99_seconds).c_str());
      out += util::StrFormat(
          "        \"mean\": %s\n",
          JsonNumber(lane_report.wait_mean_seconds).c_str());
      out += "      }";
    }
    out += util::StrFormat(
        "\n    }%s\n", lane + 1 < api::kNumPriorityLanes ? "," : "");
  }
  out += "  },\n";

  out += "  \"solvers\": {";
  size_t index = 0;
  for (const auto& [solver, solver_report] : report.solvers) {
    out += util::StrFormat("\n    \"%s\": {\n", solver.c_str());
    out += util::StrFormat("      \"submitted\": %lld,\n",
                           static_cast<long long>(solver_report.submitted));
    out += util::StrFormat(
        "      \"runs\": %llu,\n",
        static_cast<unsigned long long>(solver_report.runs));
    out += util::StrFormat("      \"utility\": %s",
                           JsonNumber(solver_report.utility).c_str());
    if (include_timing) {
      out += ",\n      \"solve_seconds\": {\n";
      out += util::StrFormat(
          "        \"p50\": %s,\n",
          JsonNumber(solver_report.solve_p50_seconds).c_str());
      out += util::StrFormat(
          "        \"p99\": %s,\n",
          JsonNumber(solver_report.solve_p99_seconds).c_str());
      out += util::StrFormat(
          "        \"mean\": %s\n",
          JsonNumber(solver_report.solve_mean_seconds).c_str());
      out += "      }";
    }
    ++index;
    out += util::StrFormat("\n    }%s",
                           index < report.solvers.size() ? "," : "");
  }
  out += "\n  }";

  if (include_timing) {
    out += ",\n  \"timing\": {\n";
    out += util::StrFormat("    \"duration_seconds\": %s,\n",
                           JsonNumber(report.duration_seconds).c_str());
    out += util::StrFormat("    \"throughput_rps\": %s\n",
                           JsonNumber(report.throughput_rps).c_str());
    out += "  }";
  }
  out += "\n}\n";
  return out;
}

}  // namespace ses::exp
