#ifndef SES_EXP_RUNNER_H_
#define SES_EXP_RUNNER_H_

/// \file
/// Experiment runner: executes a set of solvers on workload sweep points
/// and collects per-run measurements — the machinery behind every figure
/// reproduction in bench/.

#include <string>
#include <vector>

#include "core/instance.h"
#include "core/solver.h"
#include "exp/workload.h"
#include "util/status.h"

namespace ses::exp {

/// One measurement row.
struct RunRecord {
  std::string solver;
  /// The sweep coordinate (k or |T|, depending on the experiment).
  int64_t x = 0;
  double utility = 0.0;
  double seconds = 0.0;
  uint64_t gain_evaluations = 0;
  size_t assignments = 0;
};

/// Runs each named solver once on \p instance with \p options, validating
/// every returned schedule. \p x tags the records with the sweep
/// coordinate.
util::Result<std::vector<RunRecord>> RunSolvers(
    const core::SesInstance& instance,
    const std::vector<std::string>& solver_names,
    const core::SolverOptions& options, int64_t x);

}  // namespace ses::exp

#endif  // SES_EXP_RUNNER_H_
