#ifndef SES_EXP_RUNNER_H_
#define SES_EXP_RUNNER_H_

/// \file
/// Experiment runner: executes a set of solvers on workload sweep points
/// and collects per-run measurements — the machinery behind every figure
/// reproduction in bench/.
///
/// RunSolvers is a thin adapter over api::Scheduler::SolveBatch: the
/// per-point solver loop fans out across a process-shared scheduler pool
/// and the records come back in solver-list order. The parallel path
/// registers each sweep point's instance in the scheduler's session
/// cache (LoadInstance / solve-by-id / Drop) at Batch priority, so
/// sweeps coexist with latency-sensitive traffic on the same scheduler.

#include <string>
#include <vector>

#include "core/instance.h"
#include "core/solver.h"
#include "exp/workload.h"
#include "util/status.h"

namespace ses::exp {

/// Wall-clock measurement of one run. Split from RunRecord's comparable
/// fields: `seconds` is the only value that differs between reruns and
/// worker counts, so keeping it out of the comparable struct lets CSV
/// diffs and record comparisons be byte-exact.
struct RunMeasurement {
  double seconds = 0.0;
};

/// One measurement row. Every direct field is deterministic — identical
/// across serial/parallel execution and across reruns; the wall-clock
/// part lives in `measurement`.
struct RunRecord {
  std::string solver;
  /// The sweep coordinate (k or |T|, depending on the experiment).
  int64_t x = 0;
  double utility = 0.0;
  uint64_t gain_evaluations = 0;
  size_t assignments = 0;
  /// Non-comparable wall-clock measurement.
  RunMeasurement measurement;
};

/// How RunSolvers executes the solvers of one sweep point.
enum class SolverExecution {
  /// Fan out across the shared api::Scheduler pool (SolveBatch). The
  /// comparable record fields are unaffected, but per-solver
  /// `measurement.seconds` is taken under multi-core contention.
  kParallel,
  /// One after another on the calling thread — the timing-clean
  /// reference path; RunSweepSerial (--jobs=1) uses this.
  kSequential,
};

/// Runs each named solver once on \p instance with \p options, validating
/// every returned schedule. \p x tags the records with the sweep
/// coordinate; records are returned in solver-list order regardless of
/// \p execution.
[[nodiscard]] util::Result<std::vector<RunRecord>> RunSolvers(
    const core::SesInstance& instance,
    const std::vector<std::string>& solver_names,
    const core::SolverOptions& options, int64_t x,
    SolverExecution execution = SolverExecution::kParallel);

/// One-line summary of the process-shared scheduler's metrics —
/// completions, queue activity, session-cache traffic. The counters are
/// cumulative over the process lifetime (the scheduler is shared by
/// every RunSolvers call), so sweep runners log it once per sweep to
/// show the delta trend. See docs/METRICS.md for the full registry.
std::string SharedSchedulerMetricsSummary();

}  // namespace ses::exp

#endif  // SES_EXP_RUNNER_H_
