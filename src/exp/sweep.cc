#include "exp/sweep.h"

#include <map>

#include "exp/parallel_sweep.h"
#include "exp/runner.h"
#include "util/string_util.h"

namespace ses::exp {

util::Result<std::vector<SweepCell>> RunRepeatedSweep(
    const WorkloadFactory& factory, const std::vector<int64_t>& xs,
    const ConfigFactory& make_config,
    const std::vector<std::string>& solvers, int repetitions,
    uint64_t base_seed, size_t num_threads, int64_t solver_threads) {
  if (repetitions <= 0) {
    return util::Status::InvalidArgument("repetitions must be positive");
  }
  // Each (x, rep) cell is one independent sweep point; the per-cell seed
  // depends only on (x, rep), never on execution order.
  std::vector<SweepPoint> points;
  points.reserve(xs.size() * static_cast<size_t>(repetitions));
  for (int64_t x : xs) {
    for (int rep = 0; rep < repetitions; ++rep) {
      const uint64_t seed =
          base_seed + static_cast<uint64_t>(rep) * 1000003ULL +
          static_cast<uint64_t>(x);
      SweepPoint point;
      point.config = make_config(x, seed);
      point.options.k = point.config.k;
      point.options.seed = seed;
      point.options.threads = solver_threads;
      point.x = x;
      points.push_back(std::move(point));
    }
  }

  auto records = RunSweep(factory, points, solvers, num_threads);
  if (!records.ok()) return records.status();

  // Records arrive in point order, so samples accumulate exactly as the
  // old serial loop pushed them.
  std::map<std::pair<int64_t, std::string>,
           std::pair<std::vector<double>, std::vector<double>>>
      samples;
  for (const RunRecord& record : *records) {
    auto& cell = samples[{record.x, record.solver}];
    cell.first.push_back(record.utility);
    cell.second.push_back(record.measurement.seconds);
  }

  std::vector<SweepCell> cells;
  cells.reserve(samples.size());
  for (const auto& [key, values] : samples) {
    SweepCell cell;
    cell.x = key.first;
    cell.solver = key.second;
    cell.utility = util::Summarize(values.first);
    cell.seconds = util::Summarize(values.second);
    cells.push_back(std::move(cell));
  }
  return cells;
}

std::string RenderSweepTable(const std::string& title,
                             const std::string& x_label,
                             const std::vector<std::string>& solver_order,
                             const std::vector<SweepCell>& cells,
                             bool show_seconds) {
  std::map<int64_t, std::map<std::string, const SweepCell*>> grid;
  for (const SweepCell& cell : cells) {
    grid[cell.x][cell.solver] = &cell;
  }
  std::string out = "=== " + title + " ===\n";
  out += util::StrFormat("%10s", x_label.c_str());
  for (const std::string& solver : solver_order) {
    out += util::StrFormat(" %22s", solver.c_str());
  }
  out += "\n";
  for (const auto& [x, row] : grid) {
    out += util::StrFormat("%10lld", static_cast<long long>(x));
    for (const std::string& solver : solver_order) {
      auto it = row.find(solver);
      if (it == row.end()) {
        out += util::StrFormat(" %22s", "-");
        continue;
      }
      const util::Summary& s =
          show_seconds ? it->second->seconds : it->second->utility;
      out += util::StrFormat(" %14.2f +-%6.2f", s.mean, s.stddev);
    }
    out += "\n";
  }
  return out;
}

}  // namespace ses::exp
