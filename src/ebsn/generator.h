#ifndef SES_EBSN_GENERATOR_H_
#define SES_EBSN_GENERATOR_H_

/// \file
/// Synthetic Meetup-like EBSN generator.
///
/// The paper evaluates on the Meetup California dataset of Pham et al.
/// (ICDE'15): 42,444 users and about 16k events, with user-event interest
/// defined as Jaccard similarity between user tags and the organizer
/// group's tags. That dump is not redistributable, so this generator
/// synthesizes a dataset with the same *shape*:
///
///  - a tag vocabulary whose popularity follows a Zipf law,
///  - groups carrying 3-10 tags drawn by popularity,
///  - users joining a heavy-tailed number of groups, with group choice
///    also Zipf-distributed (a few huge groups, many tiny ones),
///  - user tags = union of joined groups' tags,
///  - events organized by groups (popular groups organize more events),
///    inheriting the organizer's tags,
///  - per-user check-in histories over recurring time slots, used by the
///    activity model.
///
/// All randomness flows from a single seed, so datasets are reproducible.

#include <cstdint>

#include "ebsn/dataset.h"

namespace ses::ebsn {

/// Knobs for the synthetic generator. Defaults approximate the Meetup
/// California dataset scale used in the paper's evaluation.
struct SyntheticMeetupConfig {
  uint32_t num_users = 42444;
  uint32_t num_events = 16000;
  uint32_t num_groups = 1500;
  uint32_t num_tags = 600;

  /// Zipf exponent of tag popularity when composing group tag sets.
  double tag_zipf_exponent = 1.0;
  /// Zipf exponent of group popularity for membership and organizing.
  double group_zipf_exponent = 1.05;

  /// Group tag-set size range (inclusive).
  uint32_t group_tags_min = 3;
  uint32_t group_tags_max = 10;

  /// Mean number of groups joined per user beyond the mandatory first
  /// (Poisson distributed).
  double user_groups_mean = 2.5;
  /// Hard cap on groups per user.
  uint32_t user_groups_max = 12;

  /// Number of recurring activity slots (e.g. coarse hour-of-week bins).
  uint32_t num_slots = 56;
  /// Mean check-ins per user (heavy-tailed per-user rates).
  double checkins_per_user_mean = 6.0;

  /// PRNG seed; same seed => identical dataset.
  uint64_t seed = 20180416;
};

/// Generates a dataset per \p config. The result always passes
/// EbsnDataset::Validate().
EbsnDataset GenerateSyntheticMeetup(const SyntheticMeetupConfig& config);

}  // namespace ses::ebsn

#endif  // SES_EBSN_GENERATOR_H_
