#ifndef SES_EBSN_TAG_CATALOG_H_
#define SES_EBSN_TAG_CATALOG_H_

/// \file
/// Interned tag vocabulary. Meetup groups advertise themselves through
/// free-form topic tags ("pop-music", "fashion", ...); the catalog maps
/// each distinct tag string to a dense TagId.

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ebsn/types.h"
#include "util/status.h"

namespace ses::ebsn {

/// Bidirectional tag-string <-> TagId mapping.
class TagCatalog {
 public:
  /// Returns the id for \p name, interning it on first sight.
  TagId Intern(std::string_view name);

  /// Returns the id for \p name or NotFound when never interned.
  [[nodiscard]] util::Result<TagId> Find(std::string_view name) const;

  /// The tag string for \p id. \p id must be valid.
  const std::string& name(TagId id) const;

  /// Number of distinct tags.
  size_t size() const { return names_.size(); }

  bool empty() const { return names_.empty(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, TagId> index_;
};

}  // namespace ses::ebsn

#endif  // SES_EBSN_TAG_CATALOG_H_
