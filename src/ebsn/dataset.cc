#include "ebsn/dataset.h"

#include <algorithm>

#include "util/csv.h"
#include "util/string_util.h"

namespace ses::ebsn {

namespace {

using util::CsvRow;
using util::Result;
using util::Status;

bool IsSortedUnique(const std::vector<uint32_t>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] >= v[i]) return false;
  }
  return true;
}

std::string JoinIds(const std::vector<uint32_t>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out += std::to_string(ids[i]);
  }
  return out;
}

Result<std::vector<uint32_t>> ParseIds(const std::string& packed) {
  std::vector<uint32_t> out;
  if (util::Trim(packed).empty()) return out;
  for (const std::string& token : util::Split(packed, ' ')) {
    if (token.empty()) continue;
    auto value = util::ParseInt64(token);
    if (!value.ok()) return value.status();
    if (value.value() < 0 || value.value() > 0xfffffffeLL) {
      return Status::ParseError("id out of range: " + token);
    }
    out.push_back(static_cast<uint32_t>(value.value()));
  }
  return out;
}

}  // namespace

Status EbsnDataset::Validate() const {
  const uint32_t num_tags = static_cast<uint32_t>(tags_.size());
  const uint32_t num_users = static_cast<uint32_t>(users_.size());
  const uint32_t num_groups = static_cast<uint32_t>(groups_.size());

  for (size_t g = 0; g < groups_.size(); ++g) {
    const Group& group = groups_[g];
    if (!IsSortedUnique(group.tags)) {
      return Status::FailedPrecondition(
          util::StrFormat("group %zu: tags not sorted/unique", g));
    }
    for (TagId tag : group.tags) {
      if (tag >= num_tags) {
        return Status::OutOfRange(
            util::StrFormat("group %zu: tag %u out of range", g, tag));
      }
    }
    if (!IsSortedUnique(group.members)) {
      return Status::FailedPrecondition(
          util::StrFormat("group %zu: members not sorted/unique", g));
    }
    for (EbsnUserId member : group.members) {
      if (member >= num_users) {
        return Status::OutOfRange(
            util::StrFormat("group %zu: member %u out of range", g, member));
      }
    }
  }

  for (size_t u = 0; u < users_.size(); ++u) {
    const UserProfile& user = users_[u];
    if (!IsSortedUnique(user.tags)) {
      return Status::FailedPrecondition(
          util::StrFormat("user %zu: tags not sorted/unique", u));
    }
    for (TagId tag : user.tags) {
      if (tag >= num_tags) {
        return Status::OutOfRange(
            util::StrFormat("user %zu: tag %u out of range", u, tag));
      }
    }
    if (!IsSortedUnique(user.groups)) {
      return Status::FailedPrecondition(
          util::StrFormat("user %zu: groups not sorted/unique", u));
    }
    for (GroupId g : user.groups) {
      if (g >= num_groups) {
        return Status::OutOfRange(
            util::StrFormat("user %zu: group %u out of range", u, g));
      }
      const auto& members = groups_[g].members;
      if (!std::binary_search(members.begin(), members.end(),
                              static_cast<EbsnUserId>(u))) {
        return Status::FailedPrecondition(util::StrFormat(
            "user %zu joined group %u but is not in its member list", u, g));
      }
    }
  }

  for (size_t e = 0; e < events_.size(); ++e) {
    const EventRecord& event = events_[e];
    if (event.organizer >= num_groups) {
      return Status::OutOfRange(
          util::StrFormat("event %zu: organizer %u out of range", e,
                          event.organizer));
    }
    if (!IsSortedUnique(event.tags)) {
      return Status::FailedPrecondition(
          util::StrFormat("event %zu: tags not sorted/unique", e));
    }
    for (TagId tag : event.tags) {
      if (tag >= num_tags) {
        return Status::OutOfRange(
            util::StrFormat("event %zu: tag %u out of range", e, tag));
      }
    }
  }

  for (size_t c = 0; c < checkins_.size(); ++c) {
    if (checkins_[c].user >= num_users) {
      return Status::OutOfRange(
          util::StrFormat("checkin %zu: user out of range", c));
    }
    if (num_slots_ > 0 && checkins_[c].slot >= num_slots_) {
      return Status::OutOfRange(
          util::StrFormat("checkin %zu: slot out of range", c));
    }
  }
  return Status::Ok();
}

Status EbsnDataset::Save(const std::string& dir) const {
  {
    std::vector<CsvRow> rows;
    rows.reserve(tags_.size());
    for (size_t i = 0; i < tags_.size(); ++i) {
      rows.push_back({std::to_string(i), tags_.name(static_cast<TagId>(i))});
    }
    SES_RETURN_IF_ERROR(
        util::WriteCsvFile(dir + "/tags.csv", {"tag_id", "name"}, rows));
  }
  {
    std::vector<CsvRow> rows;
    rows.reserve(groups_.size());
    for (size_t g = 0; g < groups_.size(); ++g) {
      rows.push_back({std::to_string(g), groups_[g].name,
                      JoinIds(groups_[g].tags), JoinIds(groups_[g].members)});
    }
    SES_RETURN_IF_ERROR(util::WriteCsvFile(
        dir + "/groups.csv", {"group_id", "name", "tags", "members"}, rows));
  }
  {
    std::vector<CsvRow> rows;
    rows.reserve(users_.size());
    for (size_t u = 0; u < users_.size(); ++u) {
      rows.push_back({std::to_string(u), JoinIds(users_[u].groups),
                      JoinIds(users_[u].tags)});
    }
    SES_RETURN_IF_ERROR(util::WriteCsvFile(
        dir + "/users.csv", {"user_id", "groups", "tags"}, rows));
  }
  {
    std::vector<CsvRow> rows;
    rows.reserve(events_.size());
    for (size_t e = 0; e < events_.size(); ++e) {
      rows.push_back({std::to_string(e), std::to_string(events_[e].organizer),
                      JoinIds(events_[e].tags)});
    }
    SES_RETURN_IF_ERROR(util::WriteCsvFile(
        dir + "/events.csv", {"event_id", "organizer", "tags"}, rows));
  }
  {
    std::vector<CsvRow> rows;
    rows.reserve(checkins_.size() + 1);
    rows.push_back({"slots", std::to_string(num_slots_)});
    for (const CheckIn& checkin : checkins_) {
      rows.push_back(
          {std::to_string(checkin.user), std::to_string(checkin.slot)});
    }
    SES_RETURN_IF_ERROR(util::WriteCsvFile(dir + "/checkins.csv",
                                           {"user_or_meta", "slot"}, rows));
  }
  return Status::Ok();
}

Result<EbsnDataset> EbsnDataset::Load(const std::string& dir) {
  EbsnDataset ds;
  {
    CsvRow header;
    auto rows = util::ReadCsvFile(dir + "/tags.csv", true, &header);
    if (!rows.ok()) return rows.status();
    for (const CsvRow& row : rows.value()) {
      if (row.size() != 2) return Status::ParseError("tags.csv: bad row");
      ds.tags_.Intern(row[1]);
    }
  }
  {
    CsvRow header;
    auto rows = util::ReadCsvFile(dir + "/groups.csv", true, &header);
    if (!rows.ok()) return rows.status();
    for (const CsvRow& row : rows.value()) {
      if (row.size() != 4) return Status::ParseError("groups.csv: bad row");
      Group group;
      group.name = row[1];
      auto tags = ParseIds(row[2]);
      if (!tags.ok()) return tags.status();
      group.tags = std::move(tags).value();
      auto members = ParseIds(row[3]);
      if (!members.ok()) return members.status();
      group.members = std::move(members).value();
      ds.groups_.push_back(std::move(group));
    }
  }
  {
    CsvRow header;
    auto rows = util::ReadCsvFile(dir + "/users.csv", true, &header);
    if (!rows.ok()) return rows.status();
    for (const CsvRow& row : rows.value()) {
      if (row.size() != 3) return Status::ParseError("users.csv: bad row");
      UserProfile user;
      auto groups = ParseIds(row[1]);
      if (!groups.ok()) return groups.status();
      user.groups = std::move(groups).value();
      auto tags = ParseIds(row[2]);
      if (!tags.ok()) return tags.status();
      user.tags = std::move(tags).value();
      ds.users_.push_back(std::move(user));
    }
  }
  {
    CsvRow header;
    auto rows = util::ReadCsvFile(dir + "/events.csv", true, &header);
    if (!rows.ok()) return rows.status();
    for (const CsvRow& row : rows.value()) {
      if (row.size() != 3) return Status::ParseError("events.csv: bad row");
      EventRecord event;
      auto organizer = util::ParseInt64(row[1]);
      if (!organizer.ok()) return organizer.status();
      event.organizer = static_cast<GroupId>(organizer.value());
      auto tags = ParseIds(row[2]);
      if (!tags.ok()) return tags.status();
      event.tags = std::move(tags).value();
      ds.events_.push_back(std::move(event));
    }
  }
  {
    CsvRow header;
    auto rows = util::ReadCsvFile(dir + "/checkins.csv", true, &header);
    if (!rows.ok()) return rows.status();
    for (const CsvRow& row : rows.value()) {
      if (row.size() != 2) return Status::ParseError("checkins.csv: bad row");
      if (row[0] == "slots") {
        auto slots = util::ParseInt64(row[1]);
        if (!slots.ok()) return slots.status();
        ds.num_slots_ = static_cast<uint32_t>(slots.value());
        continue;
      }
      auto user = util::ParseInt64(row[0]);
      if (!user.ok()) return user.status();
      auto slot = util::ParseInt64(row[1]);
      if (!slot.ok()) return slot.status();
      ds.checkins_.push_back({static_cast<EbsnUserId>(user.value()),
                              static_cast<uint32_t>(slot.value())});
    }
  }
  SES_RETURN_IF_ERROR(ds.Validate());
  return ds;
}

}  // namespace ses::ebsn
