#ifndef SES_EBSN_ACTIVITY_H_
#define SES_EBSN_ACTIVITY_H_

/// \file
/// Social-activity model: estimates sigma(u, slot) — the probability that
/// user u engages in a social activity during a recurring time slot — from
/// the user's check-in history, as the paper suggests ("this probability
/// can be estimated by examining the user's past behavior, e.g. number of
/// check-ins").
///
/// The estimator is a smoothed product model:
///   sigma(u, slot) = user_rate(u) * slot_weight(slot)
/// where user_rate is the user's overall propensity (check-ins relative to
/// the most active user, Laplace-smoothed) and slot_weight is the slot's
/// share of global activity normalized to peak 1.

#include <vector>

#include "ebsn/dataset.h"

namespace ses::ebsn {

/// Check-in-derived activity probabilities.
class ActivityModel {
 public:
  /// Fits the model on \p dataset's check-in table.
  /// \param smoothing Laplace pseudo-count applied to both user and slot
  ///        tallies so zero-history users retain a small probability.
  explicit ActivityModel(const EbsnDataset& dataset, double smoothing = 1.0);

  /// Probability in [0, 1] that \p user is socially active during \p slot.
  double Probability(EbsnUserId user, uint32_t slot) const;

  /// The user's overall activity propensity in (0, 1].
  double UserRate(EbsnUserId user) const;

  /// The slot's activity weight in (0, 1].
  double SlotWeight(uint32_t slot) const;

  /// Number of recurring slots the model was fit over.
  uint32_t num_slots() const { return static_cast<uint32_t>(slot_weight_.size()); }

 private:
  std::vector<double> user_rate_;
  std::vector<double> slot_weight_;
};

}  // namespace ses::ebsn

#endif  // SES_EBSN_ACTIVITY_H_
