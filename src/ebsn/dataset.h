#ifndef SES_EBSN_DATASET_H_
#define SES_EBSN_DATASET_H_

/// \file
/// In-memory model of an event-based social network (EBSN), mirroring the
/// entities of the Meetup dataset used by the paper: groups carrying topic
/// tags, users who join groups (and inherit interest tags), events
/// organized by groups (inheriting the group's tags), and per-user
/// check-in history used to estimate social-activity probabilities.
///
/// The container is deliberately simple: plain structs with dense-index
/// cross references, plus CSV persistence so datasets can be inspected and
/// reproduced outside the process.

#include <string>
#include <vector>

#include "ebsn/tag_catalog.h"
#include "ebsn/types.h"
#include "util/status.h"

namespace ses::ebsn {

/// A Meetup-style interest group.
struct Group {
  std::string name;
  /// Sorted, de-duplicated topic tags describing the group.
  std::vector<TagId> tags;
  /// Members (user ids); sorted.
  std::vector<EbsnUserId> members;
};

/// A platform user.
struct UserProfile {
  /// Groups the user joined; sorted.
  std::vector<GroupId> groups;
  /// Interest tags, the union of joined groups' tags; sorted and unique.
  std::vector<TagId> tags;
};

/// A (historical or candidate) social event.
struct EventRecord {
  /// The group that organizes the event.
  GroupId organizer = kInvalidEbsnId;
  /// Topic tags; for Meetup-style data these are the organizer group's
  /// tags (the association rule used in the paper, Section IV-A).
  std::vector<TagId> tags;
};

/// One historical check-in: \p user was socially active during time slot
/// \p slot (slot is an abstract recurring period, e.g. hour-of-week).
struct CheckIn {
  EbsnUserId user = kInvalidEbsnId;
  uint32_t slot = 0;
};

/// A full EBSN snapshot.
class EbsnDataset {
 public:
  TagCatalog& tags() { return tags_; }
  const TagCatalog& tags() const { return tags_; }

  std::vector<Group>& groups() { return groups_; }
  const std::vector<Group>& groups() const { return groups_; }

  std::vector<UserProfile>& users() { return users_; }
  const std::vector<UserProfile>& users() const { return users_; }

  std::vector<EventRecord>& events() { return events_; }
  const std::vector<EventRecord>& events() const { return events_; }

  std::vector<CheckIn>& checkins() { return checkins_; }
  const std::vector<CheckIn>& checkins() const { return checkins_; }

  /// Number of distinct activity slots referenced by checkins().
  uint32_t num_slots() const { return num_slots_; }
  void set_num_slots(uint32_t n) { num_slots_ = n; }

  /// Structural validation: sorted tag lists, in-range cross references,
  /// event organizers exist, member lists consistent with user group
  /// lists. Returns the first violation found.
  [[nodiscard]] util::Status Validate() const;

  /// Persists the dataset as CSV files under directory \p dir
  /// (tags.csv, groups.csv, users.csv, events.csv, checkins.csv).
  [[nodiscard]] util::Status Save(const std::string& dir) const;

  /// Loads a dataset previously written by Save().
  [[nodiscard]] static util::Result<EbsnDataset> Load(const std::string& dir);

 private:
  TagCatalog tags_;
  std::vector<Group> groups_;
  std::vector<UserProfile> users_;
  std::vector<EventRecord> events_;
  std::vector<CheckIn> checkins_;
  uint32_t num_slots_ = 0;
};

}  // namespace ses::ebsn

#endif  // SES_EBSN_DATASET_H_
