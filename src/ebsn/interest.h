#ifndef SES_EBSN_INTEREST_H_
#define SES_EBSN_INTEREST_H_

/// \file
/// Interest (likeness) model: mu(u, e) = Jaccard(user tags, event tags).
///
/// This is exactly the recipe the paper adopts from the event-participant
/// planning literature (Section IV-A): events carry the tags of the group
/// that organizes them and the interest of a user in an event is the
/// Jaccard similarity of the two tag sets.
///
/// The model pre-builds a tag -> users inverted index so the sparse
/// interest list of one event costs O(sum over event tags of |users(tag)|)
/// instead of O(|U|).

#include <utility>
#include <vector>

#include "ebsn/dataset.h"

namespace ses::ebsn {

/// One (user, interest) entry of a sparse interest list.
struct UserInterest {
  EbsnUserId user = 0;
  float interest = 0.0f;  ///< mu in (0, 1].

  friend bool operator==(const UserInterest& a, const UserInterest& b) {
    return a.user == b.user && a.interest == b.interest;
  }
};

/// Jaccard-based interest computation over an EbsnDataset.
///
/// Thread-safe for concurrent const use: EventInterests scatters into
/// per-thread scratch (thread_local, grown lazily to the user universe),
/// so one shared model serves parallel workload builds without locking.
class InterestModel {
 public:
  /// Builds the inverted tag index for \p dataset. The dataset must
  /// outlive this model.
  explicit InterestModel(const EbsnDataset& dataset);

  /// Returns the sparse interest list of an event with tag set
  /// \p event_tags (sorted unique TagIds): every user whose Jaccard
  /// similarity is >= \p min_interest, sorted by user id.
  std::vector<UserInterest> EventInterests(const std::vector<TagId>& event_tags,
                                           float min_interest) const;

  /// Jaccard similarity between one user's tags and \p event_tags.
  /// Reference implementation (set intersection); used by tests to verify
  /// the inverted-index path.
  float UserEventJaccard(EbsnUserId user,
                         const std::vector<TagId>& event_tags) const;

  /// Users carrying \p tag, sorted.
  const std::vector<EbsnUserId>& UsersWithTag(TagId tag) const;

 private:
  const EbsnDataset* dataset_;
  std::vector<std::vector<EbsnUserId>> tag_users_;
};

}  // namespace ses::ebsn

#endif  // SES_EBSN_INTEREST_H_
