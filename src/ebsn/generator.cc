#include "ebsn/generator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace ses::ebsn {

namespace {

/// Draws \p count distinct values from \p sampler (1-based Zipf) into a
/// sorted unique vector of 0-based ids.
std::vector<uint32_t> DrawDistinctZipf(const util::ZipfSampler& sampler,
                                       uint32_t count, util::Rng& rng) {
  std::set<uint32_t> chosen;
  // The rejection loop terminates quickly because count is far below the
  // support size in all configurations we generate.
  int attempts = 0;
  const int max_attempts = static_cast<int>(count) * 64 + 64;
  while (chosen.size() < count && attempts < max_attempts) {
    chosen.insert(static_cast<uint32_t>(sampler.Sample(rng) - 1));
    ++attempts;
  }
  // Fall back to sequential fill if the distribution is too concentrated.
  uint32_t next = 0;
  while (chosen.size() < count && next < sampler.n()) {
    chosen.insert(next++);
  }
  return std::vector<uint32_t>(chosen.begin(), chosen.end());
}

}  // namespace

EbsnDataset GenerateSyntheticMeetup(const SyntheticMeetupConfig& config) {
  SES_CHECK_GT(config.num_users, 0u);
  SES_CHECK_GT(config.num_groups, 0u);
  SES_CHECK_GT(config.num_tags, 0u);
  SES_CHECK_GE(config.group_tags_max, config.group_tags_min);
  SES_CHECK_GE(config.group_tags_min, 1u);
  SES_CHECK_LE(config.group_tags_max, config.num_tags);

  util::Rng rng(config.seed);
  EbsnDataset ds;

  // --- Tag vocabulary -----------------------------------------------------
  for (uint32_t t = 0; t < config.num_tags; ++t) {
    ds.tags().Intern(util::StrFormat("tag-%04u", t));
  }

  // --- Groups ---------------------------------------------------------
  util::ZipfSampler tag_popularity(config.num_tags, config.tag_zipf_exponent);
  ds.groups().resize(config.num_groups);
  for (uint32_t g = 0; g < config.num_groups; ++g) {
    Group& group = ds.groups()[g];
    group.name = util::StrFormat("group-%04u", g);
    const uint32_t tag_count = static_cast<uint32_t>(
        rng.UniformInt(config.group_tags_min, config.group_tags_max));
    group.tags = DrawDistinctZipf(tag_popularity, tag_count, rng);
  }

  // --- Users & memberships ---------------------------------------------
  util::ZipfSampler group_popularity(config.num_groups,
                                     config.group_zipf_exponent);
  ds.users().resize(config.num_users);
  for (uint32_t u = 0; u < config.num_users; ++u) {
    UserProfile& user = ds.users()[u];
    uint32_t group_count =
        1 + static_cast<uint32_t>(
                util::PoissonSample(rng, config.user_groups_mean));
    group_count = std::min(group_count, config.user_groups_max);
    group_count = std::min(group_count, config.num_groups);
    user.groups = DrawDistinctZipf(group_popularity, group_count, rng);

    std::set<TagId> tag_union;
    for (GroupId g : user.groups) {
      ds.groups()[g].members.push_back(u);
      const auto& group_tags = ds.groups()[g].tags;
      tag_union.insert(group_tags.begin(), group_tags.end());
    }
    user.tags.assign(tag_union.begin(), tag_union.end());
  }
  // Membership lists were appended in increasing user order, so they are
  // already sorted and unique; Validate() double-checks this.

  // --- Events -----------------------------------------------------------
  ds.events().resize(config.num_events);
  for (uint32_t e = 0; e < config.num_events; ++e) {
    EventRecord& event = ds.events()[e];
    event.organizer =
        static_cast<GroupId>(group_popularity.Sample(rng) - 1);
    event.tags = ds.groups()[event.organizer].tags;
  }

  // --- Check-in history ---------------------------------------------------
  ds.set_num_slots(config.num_slots);
  if (config.num_slots > 0 && config.checkins_per_user_mean > 0) {
    // Per-user activity rates are heavy-tailed: rate = mean * w where
    // w ~ Exp(1) (via inverse CDF), so some users are far more active.
    for (uint32_t u = 0; u < config.num_users; ++u) {
      const double unit = std::max(1e-12, 1.0 - rng.NextDouble());
      const double weight = -std::log(unit);
      const int count = util::PoissonSample(
          rng, config.checkins_per_user_mean * weight);
      for (int c = 0; c < count; ++c) {
        // Slot popularity is triangular: later slots (evenings/weekends
        // in the analogy) attract more activity.
        const double a = rng.NextDouble();
        const double b = rng.NextDouble();
        const uint32_t slot = static_cast<uint32_t>(
            std::max(a, b) * config.num_slots);
        ds.checkins().push_back(
            {u, std::min(slot, config.num_slots - 1)});
      }
    }
  }

  SES_CHECK(ds.Validate().ok()) << "generator produced invalid dataset";
  return ds;
}

}  // namespace ses::ebsn
