#include "ebsn/tag_catalog.h"

#include "util/logging.h"

namespace ses::ebsn {

TagId TagCatalog::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const TagId id = static_cast<TagId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

util::Result<TagId> TagCatalog::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return util::Status::NotFound("unknown tag: " + std::string(name));
  }
  return it->second;
}

const std::string& TagCatalog::name(TagId id) const {
  SES_CHECK_LT(id, names_.size());
  return names_[id];
}

}  // namespace ses::ebsn
