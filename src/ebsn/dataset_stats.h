#ifndef SES_EBSN_DATASET_STATS_H_
#define SES_EBSN_DATASET_STATS_H_

/// \file
/// Descriptive statistics of an EBSN dataset. The paper calibrates its
/// workload from such statistics (e.g. "on average 8.1 events are taking
/// place during overlapping intervals"); this module makes the analogous
/// measurements on our datasets reproducible.

#include <string>

#include "ebsn/dataset.h"
#include "util/stats.h"

namespace ses::ebsn {

/// Aggregate statistics of one dataset.
struct DatasetStats {
  size_t num_users = 0;
  size_t num_groups = 0;
  size_t num_events = 0;
  size_t num_tags = 0;
  size_t num_checkins = 0;

  /// Distribution of group sizes (members per group).
  util::Summary group_size;
  /// Distribution of groups joined per user.
  util::Summary groups_per_user;
  /// Distribution of tags per user.
  util::Summary tags_per_user;
  /// Distribution of tags per event.
  util::Summary tags_per_event;
  /// Distribution of check-ins per user.
  util::Summary checkins_per_user;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Computes DatasetStats for \p dataset.
DatasetStats ComputeDatasetStats(const EbsnDataset& dataset);

/// Estimates the average number of events running during overlapping
/// intervals when \p events_per_day events are spread over \p days days
/// with \p slots_per_day disjoint slots per day — the measurement the
/// paper uses to pick the competing-events-per-interval mean (8.1).
double EstimateOverlappingEvents(size_t num_events, size_t days,
                                 size_t slots_per_day);

}  // namespace ses::ebsn

#endif  // SES_EBSN_DATASET_STATS_H_
