#ifndef SES_EBSN_TYPES_H_
#define SES_EBSN_TYPES_H_

/// \file
/// Identifier types for the event-based-social-network (EBSN) substrate.
///
/// All ids are dense indices into the owning EbsnDataset's vectors, which
/// keeps the data model cache-friendly and trivially serializable.

#include <cstdint>

namespace ses::ebsn {

/// Index of a tag in the TagCatalog.
using TagId = uint32_t;

/// Index of a group in EbsnDataset::groups().
using GroupId = uint32_t;

/// Index of a user in EbsnDataset::users().
using EbsnUserId = uint32_t;

/// Index of an event in EbsnDataset::events().
using EbsnEventId = uint32_t;

/// Sentinel for "no id".
inline constexpr uint32_t kInvalidEbsnId = 0xffffffffu;

}  // namespace ses::ebsn

#endif  // SES_EBSN_TYPES_H_
