#include "ebsn/activity.h"

#include <algorithm>

#include "util/logging.h"

namespace ses::ebsn {

ActivityModel::ActivityModel(const EbsnDataset& dataset, double smoothing) {
  SES_CHECK_GE(smoothing, 0.0);
  const size_t num_users = dataset.users().size();
  const uint32_t num_slots = std::max<uint32_t>(1, dataset.num_slots());

  std::vector<double> user_counts(num_users, smoothing);
  std::vector<double> slot_counts(num_slots, smoothing);
  for (const CheckIn& checkin : dataset.checkins()) {
    if (checkin.user < num_users) user_counts[checkin.user] += 1.0;
    if (checkin.slot < num_slots) slot_counts[checkin.slot] += 1.0;
  }

  double max_user = 0.0;
  for (double c : user_counts) max_user = std::max(max_user, c);
  if (max_user <= 0.0) max_user = 1.0;
  user_rate_.resize(num_users);
  for (size_t u = 0; u < num_users; ++u) {
    user_rate_[u] = user_counts[u] / max_user;
  }

  double max_slot = 0.0;
  for (double c : slot_counts) max_slot = std::max(max_slot, c);
  if (max_slot <= 0.0) max_slot = 1.0;
  slot_weight_.resize(num_slots);
  for (uint32_t s = 0; s < num_slots; ++s) {
    slot_weight_[s] = slot_counts[s] / max_slot;
  }
}

double ActivityModel::Probability(EbsnUserId user, uint32_t slot) const {
  return UserRate(user) * SlotWeight(slot);
}

double ActivityModel::UserRate(EbsnUserId user) const {
  SES_CHECK_LT(user, user_rate_.size());
  return user_rate_[user];
}

double ActivityModel::SlotWeight(uint32_t slot) const {
  SES_CHECK_LT(slot, slot_weight_.size());
  return slot_weight_[slot];
}

}  // namespace ses::ebsn
