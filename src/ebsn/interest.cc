#include "ebsn/interest.h"

#include <algorithm>
#include <cstdint>

#include "util/logging.h"

namespace ses::ebsn {

namespace {

/// Per-thread scatter scratch for EventInterests: intersection counts per
/// user plus the list of touched users. Keyed by thread rather than by
/// model so a shared const InterestModel is safe to query from many
/// threads at once. The counts invariant — zero everywhere outside a
/// call (reset-as-we-go below) — lets models over different datasets
/// share one buffer; it only ever grows to the largest user universe the
/// thread has seen.
struct ScatterScratch {
  std::vector<uint16_t> overlap_counts;
  std::vector<EbsnUserId> touched;
};

ScatterScratch& LocalScratch(size_t num_users) {
  thread_local ScatterScratch scratch;
  if (scratch.overlap_counts.size() < num_users) {
    scratch.overlap_counts.resize(num_users, 0);
  }
  return scratch;
}

}  // namespace

InterestModel::InterestModel(const EbsnDataset& dataset)
    : dataset_(&dataset) {
  tag_users_.resize(dataset.tags().size());
  for (EbsnUserId u = 0; u < dataset.users().size(); ++u) {
    for (TagId tag : dataset.users()[u].tags) {
      tag_users_[tag].push_back(u);
    }
  }
  // Users are visited in increasing id order, so the lists are sorted.
}

std::vector<UserInterest> InterestModel::EventInterests(
    const std::vector<TagId>& event_tags, float min_interest) const {
  ScatterScratch& scratch = LocalScratch(dataset_->users().size());
  scratch.touched.clear();
  for (TagId tag : event_tags) {
    SES_CHECK_LT(tag, tag_users_.size());
    for (EbsnUserId u : tag_users_[tag]) {
      if (scratch.overlap_counts[u] == 0) scratch.touched.push_back(u);
      ++scratch.overlap_counts[u];
    }
  }
  std::vector<UserInterest> out;
  out.reserve(scratch.touched.size());
  const auto& users = dataset_->users();
  const float event_size = static_cast<float>(event_tags.size());
  for (EbsnUserId u : scratch.touched) {
    const float overlap = static_cast<float>(scratch.overlap_counts[u]);
    scratch.overlap_counts[u] = 0;  // reset scratch as we go
    const float union_size =
        static_cast<float>(users[u].tags.size()) + event_size - overlap;
    const float jaccard = union_size > 0 ? overlap / union_size : 0.0f;
    if (jaccard >= min_interest && jaccard > 0.0f) {
      out.push_back({u, jaccard});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const UserInterest& a, const UserInterest& b) {
              return a.user < b.user;
            });
  return out;
}

float InterestModel::UserEventJaccard(
    EbsnUserId user, const std::vector<TagId>& event_tags) const {
  SES_CHECK_LT(user, dataset_->users().size());
  const auto& user_tags = dataset_->users()[user].tags;
  size_t overlap = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < user_tags.size() && j < event_tags.size()) {
    if (user_tags[i] == event_tags[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (user_tags[i] < event_tags[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t union_size = user_tags.size() + event_tags.size() - overlap;
  if (union_size == 0) return 0.0f;
  return static_cast<float>(overlap) / static_cast<float>(union_size);
}

const std::vector<EbsnUserId>& InterestModel::UsersWithTag(TagId tag) const {
  SES_CHECK_LT(tag, tag_users_.size());
  return tag_users_[tag];
}

}  // namespace ses::ebsn
