#include "ebsn/interest.h"

#include <algorithm>

#include "util/logging.h"

namespace ses::ebsn {

InterestModel::InterestModel(const EbsnDataset& dataset)
    : dataset_(&dataset) {
  tag_users_.resize(dataset.tags().size());
  for (EbsnUserId u = 0; u < dataset.users().size(); ++u) {
    for (TagId tag : dataset.users()[u].tags) {
      tag_users_[tag].push_back(u);
    }
  }
  // Users are visited in increasing id order, so the lists are sorted.
  overlap_counts_.assign(dataset.users().size(), 0);
  touched_.reserve(1024);
}

std::vector<UserInterest> InterestModel::EventInterests(
    const std::vector<TagId>& event_tags, float min_interest) const {
  touched_.clear();
  for (TagId tag : event_tags) {
    SES_CHECK_LT(tag, tag_users_.size());
    for (EbsnUserId u : tag_users_[tag]) {
      if (overlap_counts_[u] == 0) touched_.push_back(u);
      ++overlap_counts_[u];
    }
  }
  std::vector<UserInterest> out;
  out.reserve(touched_.size());
  const auto& users = dataset_->users();
  const float event_size = static_cast<float>(event_tags.size());
  for (EbsnUserId u : touched_) {
    const float overlap = static_cast<float>(overlap_counts_[u]);
    overlap_counts_[u] = 0;  // reset scratch as we go
    const float union_size =
        static_cast<float>(users[u].tags.size()) + event_size - overlap;
    const float jaccard = union_size > 0 ? overlap / union_size : 0.0f;
    if (jaccard >= min_interest && jaccard > 0.0f) {
      out.push_back({u, jaccard});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const UserInterest& a, const UserInterest& b) {
              return a.user < b.user;
            });
  return out;
}

float InterestModel::UserEventJaccard(
    EbsnUserId user, const std::vector<TagId>& event_tags) const {
  SES_CHECK_LT(user, dataset_->users().size());
  const auto& user_tags = dataset_->users()[user].tags;
  size_t overlap = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < user_tags.size() && j < event_tags.size()) {
    if (user_tags[i] == event_tags[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (user_tags[i] < event_tags[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t union_size = user_tags.size() + event_tags.size() - overlap;
  if (union_size == 0) return 0.0f;
  return static_cast<float>(overlap) / static_cast<float>(union_size);
}

const std::vector<EbsnUserId>& InterestModel::UsersWithTag(TagId tag) const {
  SES_CHECK_LT(tag, tag_users_.size());
  return tag_users_[tag];
}

}  // namespace ses::ebsn
