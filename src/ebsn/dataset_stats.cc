#include "ebsn/dataset_stats.h"

#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace ses::ebsn {

DatasetStats ComputeDatasetStats(const EbsnDataset& dataset) {
  DatasetStats stats;
  stats.num_users = dataset.users().size();
  stats.num_groups = dataset.groups().size();
  stats.num_events = dataset.events().size();
  stats.num_tags = dataset.tags().size();
  stats.num_checkins = dataset.checkins().size();

  std::vector<double> group_sizes;
  group_sizes.reserve(dataset.groups().size());
  for (const Group& group : dataset.groups()) {
    group_sizes.push_back(static_cast<double>(group.members.size()));
  }
  stats.group_size = util::Summarize(group_sizes);

  std::vector<double> groups_per_user;
  std::vector<double> tags_per_user;
  groups_per_user.reserve(dataset.users().size());
  tags_per_user.reserve(dataset.users().size());
  for (const UserProfile& user : dataset.users()) {
    groups_per_user.push_back(static_cast<double>(user.groups.size()));
    tags_per_user.push_back(static_cast<double>(user.tags.size()));
  }
  stats.groups_per_user = util::Summarize(groups_per_user);
  stats.tags_per_user = util::Summarize(tags_per_user);

  std::vector<double> tags_per_event;
  tags_per_event.reserve(dataset.events().size());
  for (const EventRecord& event : dataset.events()) {
    tags_per_event.push_back(static_cast<double>(event.tags.size()));
  }
  stats.tags_per_event = util::Summarize(tags_per_event);

  std::vector<double> checkins_per_user(dataset.users().size(), 0.0);
  for (const CheckIn& checkin : dataset.checkins()) {
    if (checkin.user < checkins_per_user.size()) {
      checkins_per_user[checkin.user] += 1.0;
    }
  }
  stats.checkins_per_user = util::Summarize(checkins_per_user);
  return stats;
}

double EstimateOverlappingEvents(size_t num_events, size_t days,
                                 size_t slots_per_day) {
  SES_CHECK_GT(days, 0u);
  SES_CHECK_GT(slots_per_day, 0u);
  // Events spread uniformly over days*slots_per_day disjoint slots; the
  // expected number of events sharing one slot is the occupancy.
  return static_cast<double>(num_events) /
         static_cast<double>(days * slots_per_day);
}

std::string DatasetStats::ToString() const {
  std::string out;
  out += util::StrFormat(
      "users=%s groups=%s events=%s tags=%s checkins=%s\n",
      util::WithThousandsSep(static_cast<int64_t>(num_users)).c_str(),
      util::WithThousandsSep(static_cast<int64_t>(num_groups)).c_str(),
      util::WithThousandsSep(static_cast<int64_t>(num_events)).c_str(),
      util::WithThousandsSep(static_cast<int64_t>(num_tags)).c_str(),
      util::WithThousandsSep(static_cast<int64_t>(num_checkins)).c_str());
  out += "  group size:        " + group_size.ToString() + "\n";
  out += "  groups per user:   " + groups_per_user.ToString() + "\n";
  out += "  tags per user:     " + tags_per_user.ToString() + "\n";
  out += "  tags per event:    " + tags_per_event.ToString() + "\n";
  out += "  checkins per user: " + checkins_per_user.ToString() + "\n";
  return out;
}

}  // namespace ses::ebsn
