#include "api/scheduler.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "core/registry.h"
#include "util/mutex.h"
#include "util/string_util.h"

namespace ses::api {

namespace {

/// NotFound with the full catalog, so a caller (or a CLI user) can see
/// the valid choices without a second round trip.
util::Status UnknownSolverStatus(const std::string& name) {
  std::string catalog;
  for (const std::string& solver : core::ListSolvers()) {
    if (!catalog.empty()) catalog += ", ";
    catalog += solver;
  }
  return util::Status::NotFound("unknown solver '" + name +
                                "'; registered solvers: " + catalog);
}

/// Registry name of the per-solver solve-latency histogram.
std::string SolveSecondsName(const std::string& solver) {
  return "scheduler.solve_seconds." + solver;
}

}  // namespace

// Also what the by-reference entry points ride on internally, so they
// share one pinned code path with the by-id ones; the by-reference
// contract (instance outlives the call) is unchanged.
std::shared_ptr<const core::SesInstance> BorrowInstance(
    const core::SesInstance& instance) {
  return std::shared_ptr<const core::SesInstance>(
      std::shared_ptr<const void>(), &instance);
}

SchedulerOptions SchedulerOptions::ForSolverThreads(int64_t solver_threads) {
  SchedulerOptions options;
  if (solver_threads > 0) {
    const size_t hardware =
        std::max<size_t>(1, std::thread::hardware_concurrency());
    options.num_threads =
        std::min(static_cast<size_t>(solver_threads), hardware);
  }
  return options;
}

Scheduler::MetricHandles Scheduler::RegisterMetrics(
    util::MetricRegistry& registry) {
  MetricHandles handles;
  handles.admitted = &registry.GetCounter("scheduler.admitted");
  handles.refused = &registry.GetCounter("scheduler.refused");
  handles.validation_failed =
      &registry.GetCounter("scheduler.validation_failed");
  handles.completed = &registry.GetCounter("scheduler.completed");
  handles.cancelled = &registry.GetCounter("scheduler.cancelled");
  handles.deadline_expired =
      &registry.GetCounter("scheduler.deadline_expired");
  handles.deadline_expired_in_queue =
      &registry.GetCounter("scheduler.deadline_expired_in_queue");
  handles.session_hits = &registry.GetCounter("scheduler.session.hit");
  handles.session_misses = &registry.GetCounter("scheduler.session.miss");
  handles.loaded_instances = &registry.GetGauge("scheduler.session.loaded");
  const std::vector<double>& latency = util::MetricRegistry::LatencyBounds();
  for (size_t lane = 0; lane < kNumPriorityLanes; ++lane) {
    const std::string lane_name =
        PriorityToString(static_cast<Priority>(lane));
    handles.queue_depth[lane] =
        &registry.GetGauge("scheduler.queue_depth." + lane_name);
    handles.queue_wait[lane] = &registry.GetHistogram(
        "scheduler.queue_wait_seconds." + lane_name, latency);
    handles.expired_queue_wait[lane] = &registry.GetHistogram(
        "scheduler.expired_queue_wait_seconds." + lane_name, latency);
  }
  // One latency histogram per registered solver, created eagerly: the
  // catalog is fixed, so a fresh scheduler already exposes every metric
  // name (docs/METRICS.md and `ses_cli metrics` rely on this), and the
  // const solve path can look handles up without the registry mutex.
  for (const std::string& solver : core::ListSolvers()) {
    handles.solve_seconds[solver] =
        &registry.GetHistogram(SolveSecondsName(solver), latency);
  }
  return handles;
}

Scheduler::Scheduler(const SchedulerOptions& options)
    : metrics_(RegisterMetrics(registry_)),
      dispatch_(options.max_queued_requests,
                DispatchQueueMetrics{
                    .lane_depth = metrics_.queue_depth,
                    .deadline_expired_in_queue =
                        metrics_.deadline_expired_in_queue}),
      pool_(options.num_threads) {
  if (options.expired_sweep_period_seconds > 0.0) {
    sweeper_ = std::thread(
        [this, period = options.expired_sweep_period_seconds] {
          SweeperLoop(period);
        });
  }
}

Scheduler::~Scheduler() {
  {
    util::MutexLock lock(sweeper_mutex_);
    stop_sweeper_ = true;
  }
  sweeper_cv_.NotifyAll();
  if (sweeper_.joinable()) sweeper_.join();
}

void Scheduler::SweeperLoop(double period_seconds) {
  sweeper_mutex_.Lock();
  while (!stop_sweeper_) {
    // One period per wait; a notification only matters when it carries
    // the stop flag, so spurious wakeups just re-check and sweep early
    // (harmless — SweepExpired is idempotent).
    sweeper_cv_.WaitFor(sweeper_mutex_, period_seconds);
    if (stop_sweeper_) break;
    // Sweep outside the wait lock so a concurrent destructor is never
    // blocked behind expire handlers.
    sweeper_mutex_.Unlock();
    dispatch_.SweepExpired();
    sweeper_mutex_.Lock();
  }
  sweeper_mutex_.Unlock();
}

SchedulerMetrics Scheduler::Metrics() const {
  SchedulerMetrics metrics;
  metrics.admitted = metrics_.admitted->value();
  metrics.refused = metrics_.refused->value();
  metrics.validation_failed = metrics_.validation_failed->value();
  metrics.completed = metrics_.completed->value();
  metrics.cancelled = metrics_.cancelled->value();
  metrics.deadline_expired = metrics_.deadline_expired->value();
  metrics.deadline_expired_in_queue =
      metrics_.deadline_expired_in_queue->value();
  metrics.session_hits = metrics_.session_hits->value();
  metrics.session_misses = metrics_.session_misses->value();
  metrics.loaded_instances = metrics_.loaded_instances->value();
  for (size_t lane = 0; lane < kNumPriorityLanes; ++lane) {
    metrics.queue_depth[lane] = metrics_.queue_depth[lane]->value();
  }
  return metrics;
}

util::MetricsSnapshot Scheduler::SnapshotDelta(
    const util::MetricsSnapshot& since) const {
  return util::DiffSnapshots(since, registry_.Snapshot());
}

PendingSolve Scheduler::ResolvedWithError(
    std::string solver, std::shared_ptr<core::CancelToken> cancel,
    util::Status status) {
  PendingSolve pending;
  pending.cancel_ = std::move(cancel);
  std::promise<SolveResponse> promise;
  SolveResponse response;
  response.solver = std::move(solver);
  response.status = std::move(status);
  promise.set_value(std::move(response));
  pending.future_ = promise.get_future();
  return pending;
}

util::Status Scheduler::Validate(const core::SesInstance& instance,
                                 const SolveRequest& request) const {
  auto solver = core::MakeSolver(request.solver);
  if (!solver.ok()) return UnknownSolverStatus(request.solver);
  return core::ValidateSolverOptions(instance, request.options);
}

SolveResponse Scheduler::RunRequest(const core::SesInstance& instance,
                                    const SolveRequest& request) const {
  SolveResponse response;
  response.solver = request.solver;

  auto solver = core::MakeSolver(request.solver);
  if (!solver.ok()) {
    metrics_.validation_failed->Increment();
    response.status = UnknownSolverStatus(request.solver);
    return response;
  }

  core::SolveContext context;
  context.deadline = request.deadline;
  context.cancel = request.cancel;
  context.work_counter = request.work_counter;

  // Intra-solver score-generation shards run on the scheduler's own pool:
  // ThreadPool::ParallelFor is worker-re-entrant, so a solver that was
  // itself fanned out by Submit/SolveBatch shares the pool with its
  // shards instead of spawning a transient one per request. The options
  // copy (warm_start included) only happens when a pool is actually
  // lent; the common serial request solves straight off the reference.
  auto result = [&] {
    if (request.options.pool == nullptr && request.options.threads != 1) {
      core::SolverOptions options = request.options;
      options.pool = &pool_;
      return (*solver)->Solve(instance, options, context);
    }
    return (*solver)->Solve(instance, request.options, context);
  }();
  if (!result.ok()) {
    // The solver's own validation rejected the request (direct Solve
    // path; async requests were validated before admission).
    metrics_.validation_failed->Increment();
    response.status = result.status();
    return response;
  }

  response.schedule = std::move(result->assignments);
  response.utility = result->utility;
  response.wall_seconds = result->wall_seconds;
  response.stats = result->stats;
  // An interrupted run surfaces through the response status while the
  // best-so-far schedule stays available (has_schedule() is then true).
  response.status = std::move(result->termination);

  // Outcome accounting. Purely observational: counters and the latency
  // histogram never feed back into solver state, so responses are
  // bit-identical to an uninstrumented run (pinned by the stress suite).
  if (const auto it = metrics_.solve_seconds.find(request.solver);
      it != metrics_.solve_seconds.end()) {
    it->second->Observe(response.wall_seconds);
  }
  switch (response.status.code()) {
    case util::StatusCode::kOk:
      metrics_.completed->Increment();
      break;
    case util::StatusCode::kCancelled:
      metrics_.cancelled->Increment();
      break;
    case util::StatusCode::kDeadlineExceeded:
      metrics_.deadline_expired->Increment();
      break;
    default:
      break;
  }
  return response;
}

SolveResponse Scheduler::Solve(const core::SesInstance& instance,
                               const SolveRequest& request) const {
  return RunRequest(instance, request);
}

PendingSolve Scheduler::Submit(const core::SesInstance& instance,
                               SolveRequest request) {
  return SubmitPinned(BorrowInstance(instance), std::move(request));
}

PendingSolve Scheduler::SubmitPinned(
    std::shared_ptr<const core::SesInstance> pin, SolveRequest request) {
  // Guarantee a token so PendingSolve::Cancel is never a silent no-op.
  if (request.cancel == nullptr) {
    request.cancel = std::make_shared<core::CancelToken>();
  }

  // Fail fast on invalid requests: resolve the handle immediately
  // without occupying a worker or a queue slot.
  if (auto status = Validate(*pin, request); !status.ok()) {
    metrics_.validation_failed->Increment();
    return ResolvedWithError(request.solver, request.cancel,
                             std::move(status));
  }

  PendingSolve pending;
  pending.cancel_ = request.cancel;

  // Kept out of the task: needed again if admission refuses it below
  // and by the expire handler, which must not depend on the moved-from
  // request.
  const Priority priority = request.priority;
  const size_t lane = static_cast<size_t>(priority);
  const std::string solver_name = request.solver;
  const auto cancel = request.cancel;

  // One promise, resolved by exactly one of the two handlers below (the
  // dispatch queue guarantees that): `run` on a worker, or `expire`
  // when the deadline lapsed while the request was still queued. Both
  // handlers own the pin via the run lambda / their shared state: a
  // Drop of the instance while this request is queued or running cannot
  // invalidate it.
  auto promise = std::make_shared<std::promise<SolveResponse>>();
  pending.future_ = promise->get_future();
  const auto admitted = std::chrono::steady_clock::now();

  DispatchJob job;
  job.deadline = request.deadline;
  job.run = [this, admitted, lane, promise, pin = std::move(pin),
             request = std::move(request)]() {
    const std::chrono::duration<double> waited =
        std::chrono::steady_clock::now() - admitted;
    metrics_.queue_wait[lane]->Observe(waited.count());
    SolveResponse response = RunRequest(*pin, request);
    response.queue_seconds = waited.count();
    promise->set_value(std::move(response));
  };
  // Deadline-aware admission: a request that is already dead when a
  // worker (or the sweeper) reaches it is answered without running a
  // solver — it cannot delay live requests behind it. Counted as
  // deadline_expired_in_queue by the queue, not as a solver-run expiry.
  job.expire = [this, admitted, lane, promise, solver_name]() {
    const std::chrono::duration<double> waited =
        std::chrono::steady_clock::now() - admitted;
    // Expired waits go to their own histogram: a request that sat past
    // its deadline says nothing about the latency of requests that ran,
    // and mixing the two skews p50/p99 of queue_wait_seconds.
    metrics_.expired_queue_wait[lane]->Observe(waited.count());
    SolveResponse response;
    response.solver = solver_name;
    response.status = util::Status::DeadlineExceeded(util::StrFormat(
        "deadline expired after %.3fs in the queue; request dropped "
        "before reaching a solver",
        waited.count()));
    response.queue_seconds = waited.count();
    promise->set_value(std::move(response));
  };

  // Admission: the queue slot check and the enqueue are one atomic step
  // inside TryDispatch, so a burst of submitters can never overshoot
  // the bound between a check and an insert; the refusal depth is the
  // one observed under that same lock.
  size_t depth_at_refusal = 0;
  if (!dispatch_.TryDispatch(pool_, priority, std::move(job),
                             &depth_at_refusal)) {
    metrics_.refused->Increment();
    return ResolvedWithError(
        solver_name, cancel,
        util::Status::ResourceExhausted(util::StrFormat(
            "solve queue is full: %zu of %zu slots in use; retry later "
            "or raise SchedulerOptions::max_queued_requests",
            depth_at_refusal, dispatch_.max_queued())));
  }
  metrics_.admitted->Increment();
  return pending;
}

std::vector<SolveResponse> Scheduler::SolveBatch(
    const core::SesInstance& instance,
    const std::vector<SolveRequest>& requests) {
  return SolveBatchPinned(BorrowInstance(instance), requests);
}

std::vector<SolveResponse> Scheduler::SolveBatchPinned(
    std::shared_ptr<const core::SesInstance> pin,
    const std::vector<SolveRequest>& requests) {
  // One future slot per request keeps the output order equal to the
  // request order no matter which worker finishes first — and no matter
  // the priorities, which only shuffle start order.
  std::vector<PendingSolve> pending;
  pending.reserve(requests.size());
  for (const SolveRequest& request : requests) {
    pending.push_back(SubmitPinned(pin, request));
  }
  std::vector<SolveResponse> responses;
  responses.reserve(requests.size());
  for (PendingSolve& handle : pending) {
    responses.push_back(handle.Get());
  }
  return responses;
}

// --- Session cache ---------------------------------------------------------

util::Status Scheduler::LoadInstance(const std::string& name,
                                     core::SesInstance instance) {
  return LoadInstance(
      name, std::make_shared<const core::SesInstance>(std::move(instance)));
}

util::Status Scheduler::LoadInstance(
    const std::string& name,
    std::shared_ptr<const core::SesInstance> instance) {
  if (instance == nullptr) {
    return util::Status::InvalidArgument(
        "LoadInstance requires a non-null instance");
  }
  util::WriterMutexLock lock(instances_mutex_);
  const auto [it, inserted] = instances_.emplace(name, std::move(instance));
  (void)it;
  if (!inserted) {
    return util::Status::AlreadyExists("instance '" + name +
                                       "' is already loaded; Drop it first");
  }
  metrics_.loaded_instances->Increment();
  return util::Status::Ok();
}

util::Status Scheduler::Drop(const std::string& name) {
  std::shared_ptr<const core::SesInstance> released;
  {
    util::WriterMutexLock lock(instances_mutex_);
    auto it = instances_.find(name);
    if (it == instances_.end()) {
      return util::Status::NotFound("instance '" + name + "' is not loaded");
    }
    // Move the pin out so a potentially large deallocation (when this
    // was the last reference) happens outside the lock.
    released = std::move(it->second);
    instances_.erase(it);
    metrics_.loaded_instances->Decrement();
  }
  return util::Status::Ok();
}

std::vector<std::string> Scheduler::LoadedInstances() const {
  std::vector<std::string> names;
  {
    util::ReaderMutexLock lock(instances_mutex_);
    names.reserve(instances_.size());
    for (const auto& [name, instance] : instances_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

util::Result<std::shared_ptr<const core::SesInstance>> Scheduler::Pin(
    const std::string& instance_name) const {
  util::ReaderMutexLock lock(instances_mutex_);
  auto it = instances_.find(instance_name);
  if (it == instances_.end()) {
    metrics_.session_misses->Increment();
    return util::Status::NotFound("instance '" + instance_name +
                                  "' is not loaded");
  }
  metrics_.session_hits->Increment();
  return it->second;
}

SolveResponse Scheduler::Solve(const std::string& instance_name,
                               const SolveRequest& request) const {
  auto pin = Pin(instance_name);
  if (!pin.ok()) {
    SolveResponse response;
    response.solver = request.solver;
    response.status = pin.status();
    return response;
  }
  return RunRequest(**pin, request);
}

PendingSolve Scheduler::Submit(const std::string& instance_name,
                               SolveRequest request) {
  auto pin = Pin(instance_name);
  if (!pin.ok()) {
    if (request.cancel == nullptr) {
      request.cancel = std::make_shared<core::CancelToken>();
    }
    return ResolvedWithError(request.solver, request.cancel, pin.status());
  }
  return SubmitPinned(std::move(*pin), std::move(request));
}

std::vector<SolveResponse> Scheduler::SolveBatch(
    const std::string& instance_name,
    const std::vector<SolveRequest>& requests) {
  auto pin = Pin(instance_name);
  if (!pin.ok()) {
    std::vector<SolveResponse> responses(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      responses[i].solver = requests[i].solver;
      responses[i].status = pin.status();
    }
    return responses;
  }
  return SolveBatchPinned(std::move(*pin), requests);
}

std::vector<std::string> ListSolvers() { return core::ListSolvers(); }

}  // namespace ses::api
