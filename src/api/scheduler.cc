#include "api/scheduler.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "core/registry.h"

namespace ses::api {

namespace {

/// NotFound with the full catalog, so a caller (or a CLI user) can see
/// the valid choices without a second round trip.
util::Status UnknownSolverStatus(const std::string& name) {
  std::string catalog;
  for (const std::string& solver : core::ListSolvers()) {
    if (!catalog.empty()) catalog += ", ";
    catalog += solver;
  }
  return util::Status::NotFound("unknown solver '" + name +
                                "'; registered solvers: " + catalog);
}

}  // namespace

SchedulerOptions SchedulerOptions::ForSolverThreads(int64_t solver_threads) {
  SchedulerOptions options;
  if (solver_threads > 0) {
    const size_t hardware =
        std::max<size_t>(1, std::thread::hardware_concurrency());
    options.num_threads =
        std::min(static_cast<size_t>(solver_threads), hardware);
  }
  return options;
}

Scheduler::Scheduler(const SchedulerOptions& options)
    : pool_(options.num_threads) {}

util::Status Scheduler::Validate(const core::SesInstance& instance,
                                 const SolveRequest& request) const {
  auto solver = core::MakeSolver(request.solver);
  if (!solver.ok()) return UnknownSolverStatus(request.solver);
  return core::ValidateSolverOptions(instance, request.options);
}

SolveResponse Scheduler::RunRequest(const core::SesInstance& instance,
                                    const SolveRequest& request) const {
  SolveResponse response;
  response.solver = request.solver;

  auto solver = core::MakeSolver(request.solver);
  if (!solver.ok()) {
    response.status = UnknownSolverStatus(request.solver);
    return response;
  }

  core::SolveContext context;
  context.deadline = request.deadline;
  context.cancel = request.cancel;
  context.work_counter = request.work_counter;

  // Intra-solver score-generation shards run on the scheduler's own pool:
  // ThreadPool::ParallelFor is worker-re-entrant, so a solver that was
  // itself fanned out by Submit/SolveBatch shares the pool with its
  // shards instead of spawning a transient one per request. The options
  // copy (warm_start included) only happens when a pool is actually
  // lent; the common serial request solves straight off the reference.
  auto result = [&] {
    if (request.options.pool == nullptr && request.options.threads != 1) {
      core::SolverOptions options = request.options;
      options.pool = &pool_;
      return (*solver)->Solve(instance, options, context);
    }
    return (*solver)->Solve(instance, request.options, context);
  }();
  if (!result.ok()) {
    response.status = result.status();
    return response;
  }

  response.schedule = std::move(result->assignments);
  response.utility = result->utility;
  response.wall_seconds = result->wall_seconds;
  response.stats = result->stats;
  // An interrupted run surfaces through the response status while the
  // best-so-far schedule stays available (has_schedule() is then true).
  response.status = std::move(result->termination);
  return response;
}

SolveResponse Scheduler::Solve(const core::SesInstance& instance,
                               const SolveRequest& request) const {
  return RunRequest(instance, request);
}

PendingSolve Scheduler::Submit(const core::SesInstance& instance,
                               SolveRequest request) {
  // Guarantee a token so PendingSolve::Cancel is never a silent no-op.
  if (request.cancel == nullptr) {
    request.cancel = std::make_shared<core::CancelToken>();
  }

  PendingSolve pending;
  pending.cancel_ = request.cancel;

  // Fail fast on invalid requests: resolve the handle immediately
  // without occupying a worker.
  if (auto status = Validate(instance, request); !status.ok()) {
    std::promise<SolveResponse> promise;
    SolveResponse response;
    response.solver = request.solver;
    response.status = std::move(status);
    promise.set_value(std::move(response));
    pending.future_ = promise.get_future();
    return pending;
  }

  // ThreadPool::Submit wants a copyable callable; park the packaged_task
  // behind a shared_ptr.
  auto task = std::make_shared<std::packaged_task<SolveResponse()>>(
      [this, &instance, request = std::move(request)]() {
        return RunRequest(instance, request);
      });
  pending.future_ = task->get_future();
  pool_.Submit([task]() { (*task)(); });
  return pending;
}

std::vector<SolveResponse> Scheduler::SolveBatch(
    const core::SesInstance& instance,
    const std::vector<SolveRequest>& requests) {
  // One future slot per request keeps the output order equal to the
  // request order no matter which worker finishes first.
  std::vector<PendingSolve> pending;
  pending.reserve(requests.size());
  for (const SolveRequest& request : requests) {
    pending.push_back(Submit(instance, request));
  }
  std::vector<SolveResponse> responses;
  responses.reserve(requests.size());
  for (PendingSolve& handle : pending) {
    responses.push_back(handle.Get());
  }
  return responses;
}

std::vector<std::string> ListSolvers() { return core::ListSolvers(); }

}  // namespace ses::api
