#include "api/dispatch_queue.h"

#include <utility>
#include <vector>

namespace ses::api {

const char* PriorityToString(Priority priority) {
  switch (priority) {
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kBatch:
      return "batch";
  }
  return "unknown";
}

bool DispatchQueue::TryDispatch(util::ThreadPool& pool, Priority priority,
                                DispatchJob job,
                                size_t* depth_at_refusal) {
  const size_t lane = static_cast<size_t>(priority);
  {
    util::MutexLock lock(mutex_);
    if (max_queued_ > 0 && queued_ >= max_queued_) {
      if (depth_at_refusal != nullptr) *depth_at_refusal = queued_;
      return false;
    }
    lanes_[lane].push_back(std::move(job));
    ++queued_;
    if (metrics_.lane_depth[lane] != nullptr) {
      metrics_.lane_depth[lane]->Increment();
    }
  }
  // One pool task per admitted job. RunNext is not guaranteed to find
  // *this* job (a more urgent one drains first) or, after a sweep, any
  // job at all — but an admitted job is always either run by some pool
  // task or expired by a sweep, exactly once.
  pool.Submit([this] { RunNext(); });
  return true;
}

size_t DispatchQueue::SweepExpired() {
  // Collect under the lock, run expire handlers outside it: handlers
  // resolve caller futures and must not hold up dispatchers.
  std::vector<DispatchJob> expired;
  {
    util::MutexLock lock(mutex_);
    for (size_t lane = 0; lane < lanes_.size(); ++lane) {
      std::deque<DispatchJob>& entries = lanes_[lane];
      for (auto it = entries.begin(); it != entries.end();) {
        if (it->expire != nullptr && it->deadline.Expired()) {
          expired.push_back(std::move(*it));
          it = entries.erase(it);
          --queued_;
          if (metrics_.lane_depth[lane] != nullptr) {
            metrics_.lane_depth[lane]->Decrement();
          }
        } else {
          ++it;
        }
      }
    }
  }
  for (DispatchJob& job : expired) {
    if (metrics_.deadline_expired_in_queue != nullptr) {
      metrics_.deadline_expired_in_queue->Increment();
    }
    job.expire();
  }
  return expired.size();
}

size_t DispatchQueue::queued() const {
  util::MutexLock lock(mutex_);
  return queued_;
}

bool DispatchQueue::PopMostUrgent(DispatchJob* job) {
  for (size_t lane = 0; lane < lanes_.size(); ++lane) {
    if (lanes_[lane].empty()) continue;
    *job = std::move(lanes_[lane].front());
    lanes_[lane].pop_front();
    --queued_;
    if (metrics_.lane_depth[lane] != nullptr) {
      metrics_.lane_depth[lane]->Decrement();
    }
    return true;
  }
  return false;
}

void DispatchQueue::RunNext() {
  DispatchJob job;
  bool found = false;
  {
    util::MutexLock lock(mutex_);
    found = PopMostUrgent(&job);
  }
  // Empty lanes are legitimate: SweepExpired may have drained entries
  // whose "run the best queued job" pool tasks had not fired yet.
  if (!found) return;
  if (job.expire != nullptr && job.deadline.Expired()) {
    // Dead on arrival at a worker: answer without running the job, so
    // an expired request costs microseconds instead of solver time.
    if (metrics_.deadline_expired_in_queue != nullptr) {
      metrics_.deadline_expired_in_queue->Increment();
    }
    job.expire();
    return;
  }
  job.run();
}

}  // namespace ses::api
