#include "api/dispatch_queue.h"

#include <utility>

#include "util/logging.h"

namespace ses::api {

const char* PriorityToString(Priority priority) {
  switch (priority) {
    case Priority::kHigh:
      return "high";
    case Priority::kNormal:
      return "normal";
    case Priority::kBatch:
      return "batch";
  }
  return "unknown";
}

bool DispatchQueue::TryDispatch(util::ThreadPool& pool, Priority priority,
                                std::function<void()> job,
                                size_t* depth_at_refusal) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (max_queued_ > 0 && queued_ >= max_queued_) {
      if (depth_at_refusal != nullptr) *depth_at_refusal = queued_;
      return false;
    }
    lanes_[static_cast<size_t>(priority)].push_back(std::move(job));
    ++queued_;
  }
  // One pool task per admitted job: the counts always match, so RunNext
  // is guaranteed to find *a* job — just not necessarily this one.
  pool.Submit([this] { RunNext(); });
  return true;
}

size_t DispatchQueue::queued() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queued_;
}

void DispatchQueue::RunNext() {
  std::function<void()> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::deque<std::function<void()>>& lane : lanes_) {
      if (lane.empty()) continue;
      job = std::move(lane.front());
      lane.pop_front();
      break;
    }
    SES_CHECK(job != nullptr) << "dispatch task without a queued job";
    --queued_;
  }
  job();
}

}  // namespace ses::api
