#ifndef SES_API_DISPATCH_QUEUE_H_
#define SES_API_DISPATCH_QUEUE_H_

/// \file
/// Priority-aware, admission-controlled, deadline-aware dispatch queue
/// feeding a util::ThreadPool.
///
/// util::ThreadPool deliberately stays a plain FIFO executor — its
/// ParallelFor re-entrancy contract is easiest to reason about that way
/// — so request ordering lives one layer up, here. Each admitted job is
/// parked in one of three priority lanes and a generic "run the best
/// queued job" task is pushed to the pool; when a worker picks that task
/// up it drains whichever job is most urgent *at that moment*, so a
/// High-priority request admitted behind a wall of Batch work still runs
/// as soon as any worker frees up. Within a lane jobs run in admission
/// (FIFO) order.
///
/// Admission control is a fail-fast bound on the number of admitted but
/// not-yet-started jobs: TryDispatch refuses (returns false, runs
/// nothing) once `max_queued` jobs are waiting, instead of letting a
/// burst queue unbounded work. The caller turns a refusal into a typed
/// kResourceExhausted response; nothing here blocks or aborts.
///
/// Deadline awareness: a job may carry a core::Deadline plus an
/// `expire` handler. When a worker dequeues a job whose deadline has
/// already passed, it runs the (cheap) `expire` handler instead of the
/// job — a dead request is answered without ever occupying a worker for
/// solver time, so it cannot delay live requests behind it. SweepExpired
/// proactively drops every expired queued entry the same way; the
/// scheduler can call it periodically so dead requests do not even hold
/// queue slots until dequeue.

#include <array>
#include <cstddef>
#include <deque>
#include <functional>

#include "core/solve_context.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace ses::api {

/// Urgency of one request. Lower enum value drains first; ties drain in
/// admission order.
enum class Priority {
  kHigh = 0,    ///< latency-sensitive, overtakes everything queued
  kNormal = 1,  ///< default
  kBatch = 2,   ///< throughput work, yields to everything else
};

/// Number of priority lanes (the Priority enum's cardinality).
inline constexpr size_t kNumPriorityLanes = 3;

/// Stable lowercase name ("high", "normal", "batch") for logs and flags.
const char* PriorityToString(Priority priority);

/// One unit of work for the queue: the job body plus optional deadline
/// handling.
struct DispatchJob {
  /// The job body; runs on a pool worker when this entry is the most
  /// urgent queued one.
  std::function<void()> run;

  /// Wall-clock deadline; default never expires (the job always runs).
  core::Deadline deadline;

  /// Runs *instead of* `run` when the deadline has already expired at
  /// dequeue (or sweep) time. Must be cheap — it executes on a worker
  /// (dequeue) or on the sweeper (SweepExpired) and typically just
  /// resolves the caller's future with kDeadlineExceeded. When null, an
  /// expired job runs normally (pre-deadline-awareness behavior).
  std::function<void()> expire;
};

/// Optional observability hooks for a DispatchQueue, all nullable;
/// pointees must outlive the queue. Updated under the queue's own
/// lock-fenced transitions, so gauge values always agree with queued().
struct DispatchQueueMetrics {
  /// Per-lane admitted-but-not-started depth, indexed by Priority.
  std::array<util::Gauge*, kNumPriorityLanes> lane_depth{};
  /// Jobs whose deadline expired while queued (dropped at dequeue or
  /// swept); their `expire` handler ran instead of the job body.
  util::Counter* deadline_expired_in_queue = nullptr;
};

/// Bounded three-lane priority queue in front of a util::ThreadPool.
/// Thread-safe; one instance is meant to be shared by many submitters.
class DispatchQueue {
 public:
  /// \param max_queued admitted-but-not-started bound; 0 = unbounded.
  explicit DispatchQueue(size_t max_queued = 0,
                         DispatchQueueMetrics metrics = {})
      : max_queued_(max_queued), metrics_(metrics) {}

  DispatchQueue(const DispatchQueue&) = delete;
  DispatchQueue& operator=(const DispatchQueue&) = delete;

  /// Admits \p job at \p priority and schedules it on \p pool, unless
  /// the queue is full — then returns false without enqueuing anything
  /// and, when \p depth_at_refusal is non-null, stores the queue depth
  /// observed under the admission lock (a re-read after returning could
  /// contradict the refusal once workers drain concurrently). An
  /// admitted job runs (or, expired, has its `expire` handler run)
  /// exactly once, after every queued job with a more urgent lane (and
  /// every earlier job in its own lane) has been picked up.
  ///
  /// The queue must outlive every pool task it schedules; destroy (or
  /// drain) the pool before destroying the queue.
  bool TryDispatch(util::ThreadPool& pool, Priority priority,
                   DispatchJob job, size_t* depth_at_refusal = nullptr)
      SES_EXCLUDES(mutex_);

  /// Removes every queued entry whose deadline has expired and runs its
  /// `expire` handler (on the calling thread). Entries without an
  /// `expire` handler are left in place. Returns the number of entries
  /// dropped. Safe to call concurrently with dispatch and dequeue.
  size_t SweepExpired() SES_EXCLUDES(mutex_);

  /// Jobs admitted and still waiting for a worker. Per-lane depth is
  /// published through DispatchQueueMetrics::lane_depth gauges.
  size_t queued() const SES_EXCLUDES(mutex_);

  /// The admission bound; 0 = unbounded.
  size_t max_queued() const { return max_queued_; }

 private:
  /// Pops and runs the most urgent queued job (pool-task body). A no-op
  /// when the lanes are empty, which happens when SweepExpired removed
  /// entries whose pool tasks had not fired yet.
  void RunNext() SES_EXCLUDES(mutex_);

  /// Pops the most urgent queued entry into \p job (priority lane
  /// order, FIFO within a lane), maintaining depth accounting; false
  /// when every lane is empty. Callers hold the admission lock.
  bool PopMostUrgent(DispatchJob* job) SES_REQUIRES(mutex_);

  const size_t max_queued_;
  const DispatchQueueMetrics metrics_;
  mutable util::Mutex mutex_;
  /// One FIFO lane per Priority value, indexed by the enum.
  std::array<std::deque<DispatchJob>, kNumPriorityLanes> lanes_
      SES_GUARDED_BY(mutex_);
  size_t queued_ SES_GUARDED_BY(mutex_) = 0;
};

}  // namespace ses::api

#endif  // SES_API_DISPATCH_QUEUE_H_
