#ifndef SES_API_DISPATCH_QUEUE_H_
#define SES_API_DISPATCH_QUEUE_H_

/// \file
/// Priority-aware, admission-controlled dispatch queue feeding a
/// util::ThreadPool.
///
/// util::ThreadPool deliberately stays a plain FIFO executor — its
/// ParallelFor re-entrancy contract is easiest to reason about that way
/// — so request ordering lives one layer up, here. Each admitted job is
/// parked in one of three priority lanes and a generic "run the best
/// queued job" task is pushed to the pool; when a worker picks that task
/// up it drains whichever job is most urgent *at that moment*, so a
/// High-priority request admitted behind a wall of Batch work still runs
/// as soon as any worker frees up. Within a lane jobs run in admission
/// (FIFO) order.
///
/// Admission control is a fail-fast bound on the number of admitted but
/// not-yet-started jobs: TryDispatch refuses (returns false, runs
/// nothing) once `max_queued` jobs are waiting, instead of letting a
/// burst queue unbounded work. The caller turns a refusal into a typed
/// kResourceExhausted response; nothing here blocks or aborts.

#include <array>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

#include "util/thread_pool.h"

namespace ses::api {

/// Urgency of one request. Lower enum value drains first; ties drain in
/// admission order.
enum class Priority {
  kHigh = 0,    ///< latency-sensitive, overtakes everything queued
  kNormal = 1,  ///< default
  kBatch = 2,   ///< throughput work, yields to everything else
};

/// Stable lowercase name ("high", "normal", "batch") for logs and flags.
const char* PriorityToString(Priority priority);

/// Bounded three-lane priority queue in front of a util::ThreadPool.
/// Thread-safe; one instance is meant to be shared by many submitters.
class DispatchQueue {
 public:
  /// \param max_queued admitted-but-not-started bound; 0 = unbounded.
  explicit DispatchQueue(size_t max_queued = 0)
      : max_queued_(max_queued) {}

  DispatchQueue(const DispatchQueue&) = delete;
  DispatchQueue& operator=(const DispatchQueue&) = delete;

  /// Admits \p job at \p priority and schedules it on \p pool, unless
  /// the queue is full — then returns false without enqueuing anything
  /// and, when \p depth_at_refusal is non-null, stores the queue depth
  /// observed under the admission lock (a re-read after returning could
  /// contradict the refusal once workers drain concurrently). An
  /// admitted job runs exactly once, after every queued job with a more
  /// urgent lane (and every earlier job in its own lane) has been
  /// picked up.
  ///
  /// The queue must outlive every pool task it schedules; destroy (or
  /// drain) the pool before destroying the queue.
  bool TryDispatch(util::ThreadPool& pool, Priority priority,
                   std::function<void()> job,
                   size_t* depth_at_refusal = nullptr);

  /// Jobs admitted and still waiting for a worker.
  size_t queued() const;

  /// The admission bound; 0 = unbounded.
  size_t max_queued() const { return max_queued_; }

 private:
  /// Pops and runs the most urgent queued job (pool-task body).
  void RunNext();

  const size_t max_queued_;
  mutable std::mutex mutex_;
  /// One FIFO lane per Priority value, indexed by the enum.
  std::array<std::deque<std::function<void()>>, 3> lanes_;
  size_t queued_ = 0;
};

}  // namespace ses::api

#endif  // SES_API_DISPATCH_QUEUE_H_
