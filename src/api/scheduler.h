#ifndef SES_API_SCHEDULER_H_
#define SES_API_SCHEDULER_H_

/// \file
/// ses::api — the session-oriented solve surface of the library.
///
/// Every consumer (CLI, examples, the experiment runner, downstream
/// users) talks to solvers through a Scheduler and typed request /
/// response messages instead of hand-assembling MakeSolver +
/// SolverOptions + Validate + objective recomputation:
///
///   api::Scheduler scheduler;                 // owns a worker pool
///   api::SolveRequest request;
///   request.solver = "grd";
///   request.options.k = 40;
///   request.deadline = core::Deadline::After(0.5);   // optional budget
///   api::SolveResponse response = scheduler.Solve(instance, request);
///
/// Requests are validated up front (unknown solver, infeasible k, bad
/// warm start) and fail with a typed util::Status before any solver
/// work. Runs are interruptible: a Deadline or CancelToken stops the
/// solve at its next iteration boundary and the response still carries
/// the best feasible schedule found so far, with status
/// kDeadlineExceeded / kCancelled.
///
/// Submit() runs a request asynchronously on the scheduler's pool and
/// returns a PendingSolve; SolveBatch() fans N requests across the pool
/// and returns responses in request order regardless of completion
/// order — the primitive behind exp::RunSolvers' per-point solver loop.

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/instance.h"
#include "core/solve_context.h"
#include "core/solver.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace ses::api {

/// One solve request: which solver, its options, and optional run bounds.
struct SolveRequest {
  /// Registered solver name ("grd", "lazy", "bestfit", "top", "rand",
  /// "exact", "ls", "anneal"); see ListSolvers().
  std::string solver;

  /// Solver tuning knobs (k, seed, warm start, ...). Setting
  /// options.threads != 1 shards GRD/lazy score generation across the
  /// scheduler's own pool (results stay bit-identical; see
  /// SolverOptions::threads).
  core::SolverOptions options;

  /// Wall-clock budget; unlimited by default. An expired deadline turns
  /// the run into "return the best feasible schedule found so far".
  /// RPC-style semantics: the clock starts when the Deadline is
  /// constructed, so for Submit/SolveBatch the budget covers queue wait
  /// as well as solver time — a request stuck behind a deep queue
  /// returns kDeadlineExceeded (with whatever it computed, possibly
  /// nothing) rather than blowing the caller's latency target.
  core::Deadline deadline;

  /// Optional cancellation token shared with the caller. Submit() fills
  /// this in when absent so PendingSolve::Cancel always works.
  std::shared_ptr<core::CancelToken> cancel;

  /// Optional externally-owned progress counter, bumped at solver
  /// iteration boundaries while the request runs.
  std::atomic<uint64_t>* work_counter = nullptr;
};

/// Outcome of one request.
struct SolveResponse {
  /// OK: completed schedule. kDeadlineExceeded / kCancelled: interrupted,
  /// `schedule` holds the best feasible partial result (possibly empty).
  /// Any other code: the request failed and `schedule` is empty.
  util::Status status;

  /// The chosen assignments, sorted by (interval, event).
  std::vector<core::Assignment> schedule;

  /// Total utility Omega of `schedule` (reference objective).
  double utility = 0.0;

  /// Wall-clock seconds spent inside the solver.
  double wall_seconds = 0.0;

  /// Solver work counters.
  core::SolverStats stats;

  /// Name of the solver that ran (echoed from the request).
  std::string solver;

  /// True when the response carries a usable schedule: completed runs
  /// and interrupted-but-partial runs alike.
  bool has_schedule() const {
    return status.ok() ||
           status.code() == util::StatusCode::kDeadlineExceeded ||
           status.code() == util::StatusCode::kCancelled;
  }
};

/// Scheduler construction knobs.
struct SchedulerOptions {
  /// Worker threads for Submit/SolveBatch; 0 = hardware concurrency.
  size_t num_threads = 0;

  /// Pool sizing for a `--solver-threads`-style knob (the CLI and the
  /// benches share this policy): 0 keeps the all-cores default, N > 0
  /// is capped at the core count — workers beyond the cores only add
  /// spawn cost, and an absurd flag value must not translate into that
  /// many OS threads.
  static SchedulerOptions ForSolverThreads(int64_t solver_threads);
};

/// Handle to an in-flight asynchronous solve.
///
/// Obtained from Scheduler::Submit. Get() blocks until the response is
/// ready and may be called once; Cancel() requests cooperative
/// cancellation (the solve returns kCancelled with its best-so-far
/// schedule at the next iteration boundary).
class PendingSolve {
 public:
  PendingSolve() = default;

  /// True when a response can be fetched without blocking.
  bool Ready() const {
    return future_.valid() &&
           future_.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
  }

  /// Requests cancellation of the underlying solve.
  void Cancel() {
    if (cancel_ != nullptr) cancel_->Cancel();
  }

  /// Blocks until the solve finishes and returns its response. Must be
  /// called exactly once on a handle returned by Submit.
  SolveResponse Get() { return future_.get(); }

 private:
  friend class Scheduler;
  std::future<SolveResponse> future_;
  std::shared_ptr<core::CancelToken> cancel_;
};

/// Session-oriented solve front end. Owns a util::ThreadPool; one
/// Scheduler is meant to serve many requests (and many callers — all
/// entry points are thread-safe; solver runs share the pool).
///
/// The instance passed to Solve/Submit/SolveBatch is read concurrently
/// and must stay alive and unmodified until every response has been
/// collected. SesInstance is immutable after Build, so this is the
/// natural contract.
class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options = SchedulerOptions());

  /// Typed pre-flight check, run before any solver work: NotFound for an
  /// unknown solver name (the message lists the catalog),
  /// InvalidArgument for an infeasible k or a bad warm start.
  util::Status Validate(const core::SesInstance& instance,
                        const SolveRequest& request) const;

  /// Validates and runs \p request synchronously on the calling thread.
  SolveResponse Solve(const core::SesInstance& instance,
                      const SolveRequest& request) const;

  /// Validates \p request and enqueues it on the pool. Validation errors
  /// surface through the returned handle's Get(), never as lost work.
  PendingSolve Submit(const core::SesInstance& instance,
                      SolveRequest request);

  /// Runs every request concurrently on the pool and returns responses
  /// in request order — deterministic regardless of worker count or
  /// completion order. Invalid requests yield error responses in their
  /// slot without disturbing their siblings.
  std::vector<SolveResponse> SolveBatch(
      const core::SesInstance& instance,
      const std::vector<SolveRequest>& requests);

  /// Worker threads in the pool.
  size_t num_threads() const { return pool_.num_threads(); }

 private:
  /// Validates and executes one request end to end.
  SolveResponse RunRequest(const core::SesInstance& instance,
                           const SolveRequest& request) const;

  // Mutable: the pool is a thread-safe execution resource, and const
  // entry points (Solve) lend it to solvers whose options ask for
  // intra-solver parallelism (SolverOptions::threads != 1).
  mutable util::ThreadPool pool_;
};

/// All registered solver names, in presentation order (forwarded from
/// the core registry so api callers need no core include).
std::vector<std::string> ListSolvers();

}  // namespace ses::api

#endif  // SES_API_SCHEDULER_H_
