#ifndef SES_API_SCHEDULER_H_
#define SES_API_SCHEDULER_H_

/// \file
/// ses::api — the session-oriented solve surface of the library.
///
/// Every consumer (CLI, examples, the experiment runner, downstream
/// users) talks to solvers through a Scheduler and typed request /
/// response messages instead of hand-assembling MakeSolver +
/// SolverOptions + Validate + objective recomputation:
///
///   api::Scheduler scheduler;                 // owns a worker pool
///   api::SolveRequest request;
///   request.solver = "grd";
///   request.options.k = 40;
///   request.deadline = core::Deadline::After(0.5);   // optional budget
///   api::SolveResponse response = scheduler.Solve(instance, request);
///
/// Requests are validated up front (unknown solver, infeasible k, bad
/// warm start) and fail with a typed util::Status before any solver
/// work. Runs are interruptible: a Deadline or CancelToken stops the
/// solve at its next iteration boundary and the response still carries
/// the best feasible schedule found so far, with status
/// kDeadlineExceeded / kCancelled.
///
/// Submit() runs a request asynchronously on the scheduler's pool and
/// returns a PendingSolve; SolveBatch() fans N requests across the pool
/// and returns responses in request order regardless of completion
/// order — the primitive behind exp::RunSolvers' per-point solver loop.
///
/// The Scheduler is a *service shell*, not just an executor:
///
///  - **Admission control.** SchedulerOptions::max_queued_requests
///    bounds the work Submit/SolveBatch may park in front of the pool.
///    When the queue is full, new async requests fail fast with a
///    kResourceExhausted *response* (reporting depth and limit) instead
///    of queueing unbounded work — never a block, never an abort.
///  - **Per-request priorities.** SolveRequest::priority (High / Normal
///    / Batch) orders the queue priority-then-FIFO: a High request
///    admitted behind a wall of Batch work runs as soon as any worker
///    frees up. Priorities affect only scheduling order; responses stay
///    bit-identical to any other ordering.
///  - **Session cache.** LoadInstance(name, ...) / Drop(name) let one
///    scheduler hold many instances; the id-keyed Solve / Submit /
///    SolveBatch overloads solve against a loaded instance by name, so
///    N callers share one loaded copy instead of each threading
///    `const SesInstance&` through every hop. In-flight solves pin
///    their instance (refcounted), so Drop during a solve is safe: the
///    solve completes against the pinned copy.
///  - **Deadline-aware admission.** A queued request whose deadline has
///    already expired is dropped at dequeue time — answered with
///    kDeadlineExceeded without ever occupying a worker for solver
///    time — so dead requests cannot delay live ones under saturation.
///    SchedulerOptions::expired_sweep_period_seconds optionally runs a
///    background sweep that drops expired entries while they are still
///    queued.
///  - **Observability.** Every admission, refusal, completion,
///    cancellation, and expiry is counted in a util::MetricRegistry,
///    along with per-lane queue depth gauges, per-lane queue-wait
///    histograms, and per-solver solve-latency histograms. Metrics()
///    returns the headline numbers as a typed struct;
///    metric_registry().Snapshot() plus util::RenderMetricsText /
///    RenderMetricsCsv give the full dump (docs/METRICS.md is the
///    reference). Instrumentation never changes what a solver computes:
///    responses stay bit-identical with metrics on (they are never
///    off).

#include <array>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/dispatch_queue.h"
#include "core/instance.h"
#include "core/solve_context.h"
#include "core/solver.h"
#include "util/metrics.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace ses::api {

/// One solve request: which solver, its options, and optional run bounds.
struct SolveRequest {
  /// Registered solver name ("grd", "lazy", "bestfit", "top", "rand",
  /// "exact", "ls", "anneal"); see ListSolvers().
  std::string solver;

  /// Solver tuning knobs (k, seed, warm start, ...). Setting
  /// options.threads != 1 shards GRD/lazy score generation across the
  /// scheduler's own pool (results stay bit-identical; see
  /// SolverOptions::threads).
  core::SolverOptions options;

  /// Queue urgency for Submit/SolveBatch: the scheduler drains its
  /// queue priority-then-FIFO. Has no effect on the response content,
  /// only on when the request starts; Solve() (synchronous, caller's
  /// thread) ignores it.
  Priority priority = Priority::kNormal;

  /// Wall-clock budget; unlimited by default. An expired deadline turns
  /// the run into "return the best feasible schedule found so far".
  /// RPC-style semantics: the clock starts when the Deadline is
  /// constructed, so for Submit/SolveBatch the budget covers queue wait
  /// as well as solver time — a request stuck behind a deep queue
  /// returns kDeadlineExceeded (with whatever it computed, possibly
  /// nothing) rather than blowing the caller's latency target.
  core::Deadline deadline;

  /// Optional cancellation token shared with the caller. Submit() fills
  /// this in when absent so PendingSolve::Cancel always works.
  std::shared_ptr<core::CancelToken> cancel;

  /// Optional externally-owned progress counter, bumped at solver
  /// iteration boundaries while the request runs.
  std::atomic<uint64_t>* work_counter = nullptr;
};

/// Outcome of one request.
struct SolveResponse {
  /// OK: completed schedule. kDeadlineExceeded / kCancelled: interrupted,
  /// `schedule` holds the best feasible partial result (possibly empty).
  /// kResourceExhausted: refused at admission (queue full), nothing ran.
  /// Any other code: the request failed and `schedule` is empty.
  util::Status status;

  /// The chosen assignments, sorted by (interval, event).
  std::vector<core::Assignment> schedule;

  /// Total utility Omega of `schedule` (reference objective).
  double utility = 0.0;

  /// Wall-clock seconds spent inside the solver.
  double wall_seconds = 0.0;

  /// Wall-clock seconds between admission and the solver starting —
  /// the queue wait. 0 for synchronous Solve() and for requests that
  /// never started (validation or admission failures). This is the
  /// serving-latency signal the priority lanes exist to shape.
  double queue_seconds = 0.0;

  /// Solver work counters.
  core::SolverStats stats;

  /// Name of the solver that ran (echoed from the request).
  std::string solver;

  /// True when the response carries a usable schedule: completed runs
  /// and interrupted-but-partial runs alike.
  bool has_schedule() const {
    return status.ok() ||
           status.code() == util::StatusCode::kDeadlineExceeded ||
           status.code() == util::StatusCode::kCancelled;
  }
};

/// Scheduler construction knobs.
struct SchedulerOptions {
  /// Worker threads for Submit/SolveBatch; 0 = hardware concurrency.
  size_t num_threads = 0;

  /// Admission bound: maximum requests admitted by Submit/SolveBatch
  /// but not yet started. 0 = unbounded (the pre-service-shell
  /// behavior). When the bound is hit, new async requests resolve
  /// immediately with kResourceExhausted.
  size_t max_queued_requests = 0;

  /// Period of the optional background sweep that drops queued requests
  /// whose deadline has already expired (each is answered
  /// kDeadlineExceeded and counted as deadline_expired_in_queue without
  /// occupying a worker). 0 (default) disables the sweeper thread;
  /// expired requests are then still dropped at dequeue time, just not
  /// before.
  double expired_sweep_period_seconds = 0.0;

  /// Pool sizing for a `--solver-threads`-style knob (the CLI and the
  /// benches share this policy): 0 keeps the all-cores default, N > 0
  /// is capped at the core count — workers beyond the cores only add
  /// spawn cost, and an absurd flag value must not translate into that
  /// many OS threads.
  static SchedulerOptions ForSolverThreads(int64_t solver_threads);
};

/// Headline scheduler metrics as plain numbers — the typed view of the
/// registry for programmatic consumers (tests, load-shedding logic).
/// Field-by-field meanings, units, and the underlying metric names are
/// documented in docs/METRICS.md; the full registry (histograms
/// included) is available via Scheduler::metric_registry().Snapshot().
struct SchedulerMetrics {
  /// Async requests accepted into the dispatch queue.
  uint64_t admitted = 0;
  /// Async requests refused at admission (queue full,
  /// kResourceExhausted).
  uint64_t refused = 0;
  /// Requests rejected before any solver ran (unknown solver,
  /// infeasible options, bad warm start).
  uint64_t validation_failed = 0;
  /// Solver runs that completed normally (OK responses).
  uint64_t completed = 0;
  /// Solver runs interrupted by cancellation.
  uint64_t cancelled = 0;
  /// Solver runs interrupted by an expired deadline.
  uint64_t deadline_expired = 0;
  /// Queued requests dropped because their deadline expired before a
  /// worker picked them up (dequeue drop or sweep) — they never reached
  /// a solver.
  uint64_t deadline_expired_in_queue = 0;
  /// Id-keyed lookups that found / missed a loaded instance.
  uint64_t session_hits = 0;
  uint64_t session_misses = 0;
  /// Instances currently loaded in the session cache.
  int64_t loaded_instances = 0;
  /// Current admitted-but-not-started depth per lane, indexed by
  /// Priority (kHigh, kNormal, kBatch).
  std::array<int64_t, kNumPriorityLanes> queue_depth = {0, 0, 0};
};

/// Handle to an in-flight asynchronous solve.
///
/// Obtained from Scheduler::Submit. Get() blocks until the response is
/// ready and may be called once; Cancel() requests cooperative
/// cancellation (the solve returns kCancelled with its best-so-far
/// schedule at the next iteration boundary).
class PendingSolve {
 public:
  PendingSolve() = default;

  /// True when a response can be fetched without blocking.
  bool Ready() const {
    return future_.valid() &&
           future_.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
  }

  /// Requests cancellation of the underlying solve.
  void Cancel() {
    if (cancel_ != nullptr) cancel_->Cancel();
  }

  /// Blocks until the solve finishes and returns its response. Must be
  /// called exactly once on a handle returned by Submit.
  SolveResponse Get() { return future_.get(); }

 private:
  friend class Scheduler;
  std::future<SolveResponse> future_;
  std::shared_ptr<core::CancelToken> cancel_;
};

/// Session-oriented solve front end. Owns a util::ThreadPool; one
/// Scheduler is meant to serve many requests (and many callers — all
/// entry points are thread-safe; solver runs share the pool).
///
/// Two ways to name the instance to solve:
///
///  - By reference: the instance passed to Solve/Submit/SolveBatch is
///    read concurrently and must stay alive and unmodified until every
///    response has been collected. SesInstance is immutable after
///    Build, so this is the natural contract.
///  - By id: LoadInstance the instance once, then solve against its
///    name from any thread. The scheduler keeps owned instances alive
///    while any solve is in flight, Drop or not.
class Scheduler {
 public:
  explicit Scheduler(const SchedulerOptions& options = SchedulerOptions());

  /// Stops the optional expiry sweeper; queued work drains through the
  /// pool's destructor as before.
  ~Scheduler();

  /// Typed pre-flight check, run before any solver work: NotFound for an
  /// unknown solver name (the message lists the catalog),
  /// InvalidArgument for an infeasible k or a bad warm start.
  [[nodiscard]] util::Status Validate(const core::SesInstance& instance,
                        const SolveRequest& request) const;

  /// Validates and runs \p request synchronously on the calling thread.
  SolveResponse Solve(const core::SesInstance& instance,
                      const SolveRequest& request) const;

  /// Validates \p request and enqueues it on the pool at its priority.
  /// Validation errors surface through the returned handle's Get(),
  /// never as lost work; so does an admission refusal
  /// (kResourceExhausted) when the queue is at
  /// SchedulerOptions::max_queued_requests.
  PendingSolve Submit(const core::SesInstance& instance,
                      SolveRequest request);

  /// Runs every request concurrently on the pool and returns responses
  /// in request order — deterministic regardless of worker count,
  /// priorities, or completion order. Invalid or refused requests yield
  /// error responses in their slot without disturbing their siblings.
  std::vector<SolveResponse> SolveBatch(
      const core::SesInstance& instance,
      const std::vector<SolveRequest>& requests);

  // --- Session cache -----------------------------------------------------

  /// Takes ownership of \p instance and registers it under \p name for
  /// the id-keyed entry points. AlreadyExists if \p name is taken
  /// (Drop first to replace).
  [[nodiscard]] util::Status LoadInstance(const std::string& name,
                            core::SesInstance instance)
      SES_EXCLUDES(instances_mutex_);

  /// Shared-ownership variant: registers an instance the caller also
  /// holds (or, via a non-owning shared_ptr, merely borrows — the
  /// caller then guarantees the instance outlives Drop and every solve
  /// submitted against it).
  [[nodiscard]] util::Status LoadInstance(
      const std::string& name,
      std::shared_ptr<const core::SesInstance> instance)
      SES_EXCLUDES(instances_mutex_);

  /// Unregisters \p name. NotFound when it is not loaded. Safe while
  /// solves against \p name are in flight: each solve pinned the
  /// instance at submission, completes normally, and the storage is
  /// released when the last pin goes away.
  [[nodiscard]] util::Status Drop(const std::string& name)
      SES_EXCLUDES(instances_mutex_);

  /// Names of the currently loaded instances, sorted.
  std::vector<std::string> LoadedInstances() const
      SES_EXCLUDES(instances_mutex_);

  /// Id-keyed counterparts of the by-reference entry points, solving
  /// against the instance loaded under \p instance_name. An unknown
  /// name yields a kNotFound response (for Submit: through Get()).
  SolveResponse Solve(const std::string& instance_name,
                      const SolveRequest& request) const;
  PendingSolve Submit(const std::string& instance_name,
                      SolveRequest request);
  std::vector<SolveResponse> SolveBatch(
      const std::string& instance_name,
      const std::vector<SolveRequest>& requests);

  /// Worker threads in the pool.
  size_t num_threads() const { return pool_.num_threads(); }

  /// Requests admitted but not yet started (async paths).
  size_t queued_requests() const { return dispatch_.queued(); }

  /// The admission bound; 0 = unbounded.
  size_t max_queued_requests() const { return dispatch_.max_queued(); }

  // --- Observability -----------------------------------------------------

  /// Headline counters and gauges as a typed struct (see
  /// SchedulerMetrics). Cheap: a handful of relaxed atomic loads.
  SchedulerMetrics Metrics() const;

  /// The full registry behind Metrics() — snapshot it for histograms
  /// and for rendering (util::RenderMetricsText / RenderMetricsCsv).
  /// Every name it registers is documented in docs/METRICS.md.
  const util::MetricRegistry& metric_registry() const { return registry_; }

  /// The registry's activity since \p since (an earlier
  /// metric_registry().Snapshot() of *this* scheduler): counters and
  /// histogram buckets are subtracted, gauges keep their current value.
  /// This is how the bench harness isolates one trace run from
  /// process-lifetime totals — see util::DiffSnapshots for the exact
  /// semantics.
  util::MetricsSnapshot SnapshotDelta(
      const util::MetricsSnapshot& since) const;

  /// Drops every queued request whose deadline has already expired
  /// (answering each with kDeadlineExceeded) and returns how many were
  /// dropped. The optional background sweeper calls this every
  /// SchedulerOptions::expired_sweep_period_seconds; it is also safe to
  /// call manually from any thread.
  size_t SweepExpiredQueued() { return dispatch_.SweepExpired(); }

 private:
  /// Validates and executes one request end to end.
  SolveResponse RunRequest(const core::SesInstance& instance,
                           const SolveRequest& request) const;

  /// Shared Submit body: \p pin keeps the instance alive for the task's
  /// lifetime (non-owning for the by-reference overload).
  PendingSolve SubmitPinned(
      std::shared_ptr<const core::SesInstance> pin, SolveRequest request);

  /// SolveBatch body over an already-pinned instance.
  std::vector<SolveResponse> SolveBatchPinned(
      std::shared_ptr<const core::SesInstance> pin,
      const std::vector<SolveRequest>& requests);

  /// Looks up a loaded instance; NotFound names the unknown id.
  [[nodiscard]] util::Result<std::shared_ptr<const core::SesInstance>> Pin(
      const std::string& instance_name) const SES_EXCLUDES(instances_mutex_);

  /// A handle already resolved with an error — the shape of every
  /// fail-fast path (validation, admission, unknown instance id).
  static PendingSolve ResolvedWithError(
      std::string solver, std::shared_ptr<core::CancelToken> cancel,
      util::Status status);

  /// Pre-looked-up registry handles, cached once at construction so the
  /// serving paths never pay the registration mutex. All increments are
  /// relaxed atomics; docs/METRICS.md documents each name.
  struct MetricHandles {
    util::Counter* admitted = nullptr;
    util::Counter* refused = nullptr;
    util::Counter* validation_failed = nullptr;
    util::Counter* completed = nullptr;
    util::Counter* cancelled = nullptr;
    util::Counter* deadline_expired = nullptr;
    util::Counter* deadline_expired_in_queue = nullptr;
    util::Counter* session_hits = nullptr;
    util::Counter* session_misses = nullptr;
    util::Gauge* loaded_instances = nullptr;
    std::array<util::Gauge*, kNumPriorityLanes> queue_depth = {};
    /// Queue wait of requests that went on to run. Kept separate from
    /// expired_queue_wait so latency percentiles are not polluted by
    /// requests that merely sat past their deadline.
    std::array<util::Histogram*, kNumPriorityLanes> queue_wait = {};
    /// Queue wait of requests dropped at dequeue because their deadline
    /// had already expired.
    std::array<util::Histogram*, kNumPriorityLanes> expired_queue_wait = {};
    /// Solve-latency histogram per registered solver name. The solver
    /// catalog is fixed at construction, so lookups from const paths
    /// need no registry mutex.
    std::unordered_map<std::string, util::Histogram*> solve_seconds;
  };

  /// Registers every fixed-name scheduler metric (including one
  /// solve-latency histogram per registered solver, so a fresh
  /// scheduler already exposes the full catalog) and returns the cached
  /// handles.
  static MetricHandles RegisterMetrics(util::MetricRegistry& registry);

  /// Body of the optional expiry-sweeper thread.
  void SweeperLoop(double period_seconds) SES_EXCLUDES(sweeper_mutex_);

  /// Owns every metric; declared first so pool tasks and the sweeper,
  /// which update metrics, are torn down before it.
  util::MetricRegistry registry_;
  MetricHandles metrics_;

  /// Loaded instances, keyed by caller-chosen name. shared_ptr values
  /// are the pins: an in-flight solve holds one, so Drop only removes
  /// the map entry and the instance outlives it as long as needed.
  /// Reader/writer capability: lookups (Pin, LoadedInstances) take it
  /// shared, Load/Drop exclusive.
  mutable util::SharedMutex instances_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const core::SesInstance>>
      instances_ SES_GUARDED_BY(instances_mutex_);

  // Declared before pool_ so the pool (whose destructor drains pending
  // dispatch tasks that touch dispatch_) is destroyed first.
  DispatchQueue dispatch_;

  // Mutable: the pool is a thread-safe execution resource, and const
  // entry points (Solve) lend it to solvers whose options ask for
  // intra-solver parallelism (SolverOptions::threads != 1).
  mutable util::ThreadPool pool_;

  /// Expiry sweeper (only started when
  /// SchedulerOptions::expired_sweep_period_seconds > 0); joined in the
  /// destructor before any member is torn down.
  util::Mutex sweeper_mutex_;
  util::CondVar sweeper_cv_;
  bool stop_sweeper_ SES_GUARDED_BY(sweeper_mutex_) = false;
  std::thread sweeper_;
};

/// All registered solver names, in presentation order (forwarded from
/// the core registry so api callers need no core include).
std::vector<std::string> ListSolvers();

/// Non-owning alias of a caller-owned instance — the idiom for handing
/// an instance to the shared_ptr LoadInstance overload without a copy.
/// The caller guarantees \p instance outlives the Drop and every solve
/// submitted against it (the refcounted pin then protects nothing; it
/// is the caller's lifetime promise that does).
std::shared_ptr<const core::SesInstance> BorrowInstance(
    const core::SesInstance& instance);

}  // namespace ses::api

#endif  // SES_API_SCHEDULER_H_
