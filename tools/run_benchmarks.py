#!/usr/bin/env python3
"""Canonical benchmark runner: traces in, BENCH_*.json out.

Replays every trace descriptor under bench/traces/ through `ses_cli
bench`, aggregates repeats by median, and writes one canonical
BENCH_<scenario>.json per trace at the repo root — the files the
leaderboard and `--compare` diff against. Standard library only.

Workflow (docs/BENCHMARKS.md):

    python3 tools/run_benchmarks.py --size=S           # quick pass
    python3 tools/run_benchmarks.py --repeat=5         # canonical run
    python3 tools/run_benchmarks.py --compare=HEAD~1   # regression diff
    python3 tools/run_benchmarks.py --micro            # kernel microbench

`--micro` swaps the trace harness for bench/micro_attendance.cc (the
google-benchmark binary over the attendance-model and SoA span
kernels) and lands the medianed numbers in BENCH_micro_attendance.json
with the same repeat/median/pin/compare machinery — kernel before/after
numbers live in a committed canonical file, not PR prose.

Methodology:
  * clean, test-free build into build-bench/ (skip with --no-build);
  * CPU pinning via taskset where available (skip with --no-pin);
  * N repeats per trace (--repeat), element-wise median over every
    numeric field — medians shrug off the odd scheduling hiccup that
    would skew a mean;
  * reports come from the scheduler's metric snapshot *delta*, so a
    BENCH file describes exactly one run, never process totals.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRACE_DIR = os.path.join(REPO_ROOT, "bench", "traces")
DEFAULT_BUILD_DIR = os.path.join(REPO_ROOT, "build-bench")

SIZES = ("S", "M", "L")

MICRO_SCENARIO = "micro_attendance"
MICRO_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def list_traces(trace_dir=TRACE_DIR):
    """Returns sorted (scenario, path) pairs for every trace file."""
    traces = []
    for name in sorted(os.listdir(trace_dir)):
        if name.endswith(".json"):
            traces.append((name[: -len(".json")], os.path.join(trace_dir, name)))
    return traces


def median(values):
    """Median of a numeric list (mean of the middle pair on even sizes)."""
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def median_tree(trees):
    """Element-wise median over parallel JSON trees.

    Numbers are replaced by the median across the repeats; dicts and
    lists recurse; anything else (strings, None) must agree across
    repeats and is carried through. Mixed shapes raise ValueError — a
    repeat that produced a different report schema is a bug, not data.
    """
    if not trees:
        raise ValueError("median_tree needs at least one tree")
    first = trees[0]
    if isinstance(first, bool) or not isinstance(first, (int, float, dict, list)):
        for tree in trees[1:]:
            if tree != first:
                raise ValueError(
                    f"non-numeric field disagrees across repeats: "
                    f"{first!r} vs {tree!r}")
        return first
    if isinstance(first, dict):
        keys = set(first)
        for tree in trees[1:]:
            if not isinstance(tree, dict) or set(tree) != keys:
                raise ValueError("report schema differs across repeats")
        return {key: median_tree([tree[key] for tree in trees]) for key in keys}
    if isinstance(first, list):
        length = len(first)
        for tree in trees[1:]:
            if not isinstance(tree, list) or len(tree) != length:
                raise ValueError("report schema differs across repeats")
        return [median_tree([tree[i] for tree in trees]) for i in range(length)]
    # int/float — None (a JSON null from an empty histogram) may appear
    # in some repeats; median over the numeric ones only.
    numeric = [t for t in trees if isinstance(t, (int, float))
               and not isinstance(t, bool)]
    if len(numeric) != len(trees):
        raise ValueError("numeric field is null in some repeats")
    value = median(numeric)
    # Keep counts integral so BENCH diffs stay clean.
    if all(isinstance(t, int) for t in numeric) and float(value).is_integer():
        return int(value)
    return value


def bench_path(scenario, out_dir=REPO_ROOT):
    return os.path.join(out_dir, f"BENCH_{scenario}.json")


def write_canonical(scenario, size, reports, out_dir=REPO_ROOT):
    """Writes BENCH_<scenario>.json from per-repeat reports; returns path."""
    canonical = {
        "scenario": scenario,
        "size": size,
        "repeats": len(reports),
        "report": median_tree(reports),
    }
    path = bench_path(scenario, out_dir)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(canonical, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def summary_row(canonical):
    """Pulls the leaderboard columns out of one canonical BENCH tree."""
    report = canonical["report"]
    requests = report["requests"]
    # Headline latency: the busiest lane's healthy p50/p99.
    busiest = max(report["lanes"].values(), key=lambda lane: lane["submitted"])
    wait = busiest.get("queue_wait_seconds") or {}
    return {
        "scenario": canonical["scenario"],
        "size": canonical["size"],
        "completed": requests["completed"],
        "refused": requests["refused"],
        "expired": requests["deadline_expired"],
        "throughput_rps": report.get("timing", {}).get("throughput_rps"),
        "wait_p50_ms": None if wait.get("p50") is None else wait["p50"] * 1e3,
        "wait_p99_ms": None if wait.get("p99") is None else wait["p99"] * 1e3,
    }


def render_leaderboard(canonicals):
    """Fixed-width leaderboard over canonical BENCH trees."""
    header = (f"{'scenario':<20} {'size':<4} {'done':>5} {'ref':>4} "
              f"{'exp':>4} {'rps':>8} {'p50 ms':>8} {'p99 ms':>8}")
    lines = [header, "-" * len(header)]
    for canonical in sorted(canonicals, key=lambda c: c["scenario"]):
        row = summary_row(canonical)

        def fmt(value, width, digits=1):
            if value is None:
                return f"{'-':>{width}}"
            return f"{value:>{width}.{digits}f}"

        lines.append(
            f"{row['scenario']:<20} {row['size']:<4} {row['completed']:>5} "
            f"{row['refused']:>4} {row['expired']:>4} "
            f"{fmt(row['throughput_rps'], 8)} "
            f"{fmt(row['wait_p50_ms'], 8, 3)} {fmt(row['wait_p99_ms'], 8, 3)}")
    return "\n".join(lines)


def compare_rows(old_canonical, new_canonical):
    """(metric, old, new, delta-ratio) rows between two canonical trees."""
    rows = []
    old_row = summary_row(old_canonical)
    new_row = summary_row(new_canonical)
    for key in ("completed", "refused", "expired", "throughput_rps",
                "wait_p50_ms", "wait_p99_ms"):
        old_value, new_value = old_row[key], new_row[key]
        if old_value is None or new_value is None:
            continue
        ratio = None if old_value == 0 else (new_value - old_value) / old_value
        rows.append((key, old_value, new_value, ratio))
    return rows


def render_compare(scenario, rows):
    lines = [f"{scenario}:"]
    for key, old_value, new_value, ratio in rows:
        delta = "n/a" if ratio is None else f"{ratio * 100:+.1f}%"
        lines.append(f"  {key:<16} {old_value:>12.3f} -> {new_value:>12.3f}"
                     f"  ({delta})")
    return "\n".join(lines)


def load_git_canonical(ref, scenario, repo_root=REPO_ROOT):
    """BENCH_<scenario>.json as of <ref>, or None when absent there."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:BENCH_{scenario}.json"],
        capture_output=True, text=True, check=False, cwd=repo_root)
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def micro_report(raw):
    """Normalizes one google-benchmark JSON dump into a BENCH report.

    Keeps only per-iteration entries (no aggregates), converts times to
    nanoseconds via the per-benchmark time_unit, and carries
    items_per_second through when the benchmark reported it. The result
    is a plain {"benchmarks": {name: {...}}} tree that median_tree can
    fold across repeats.
    """
    benchmarks = {}
    for entry in raw.get("benchmarks", []):
        if entry.get("run_type", "iteration") != "iteration":
            continue
        factor = MICRO_TIME_UNIT_NS[entry.get("time_unit", "ns")]
        benchmarks[entry["name"]] = {
            "real_time_ns": entry["real_time"] * factor,
            "cpu_time_ns": entry["cpu_time"] * factor,
            "items_per_second": entry.get("items_per_second"),
        }
    if not benchmarks:
        raise ValueError("benchmark dump contains no iteration entries")
    return {"benchmarks": benchmarks}


def micro_summary_rows(canonical):
    """(name, real_time_ns, cpu_time_ns, items_per_second) per kernel."""
    rows = []
    for name in sorted(canonical["report"]["benchmarks"]):
        entry = canonical["report"]["benchmarks"][name]
        rows.append((name, entry["real_time_ns"], entry["cpu_time_ns"],
                     entry.get("items_per_second")))
    return rows


def render_micro_leaderboard(canonical):
    """Fixed-width per-benchmark table for one micro canonical tree."""
    header = (f"{'benchmark':<32} {'real ns':>12} {'cpu ns':>12} "
              f"{'items/s':>12}")
    lines = [header, "-" * len(header)]
    for name, real_ns, cpu_ns, items in micro_summary_rows(canonical):
        items_text = "-" if items is None else f"{items:.3e}"
        lines.append(f"{name:<32} {real_ns:>12.1f} {cpu_ns:>12.1f} "
                     f"{items_text:>12}")
    return "\n".join(lines)


def micro_compare_rows(old_canonical, new_canonical):
    """Per-benchmark real-time rows in the compare_rows tuple shape.

    Benchmarks present on only one side are skipped — a renamed or new
    kernel has no baseline to diff against.
    """
    old_benchmarks = old_canonical["report"]["benchmarks"]
    new_benchmarks = new_canonical["report"]["benchmarks"]
    rows = []
    for name in sorted(set(old_benchmarks) & set(new_benchmarks)):
        old_ns = old_benchmarks[name]["real_time_ns"]
        new_ns = new_benchmarks[name]["real_time_ns"]
        ratio = None if old_ns == 0 else (new_ns - old_ns) / old_ns
        rows.append((f"{name} ns", old_ns, new_ns, ratio))
    return rows


def build_micro(build_dir):
    """Configures and builds the micro_attendance benchmark binary."""
    subprocess.run(
        ["cmake", "-B", build_dir, "-S", REPO_ROOT,
         "-DCMAKE_BUILD_TYPE=RelWithDebInfo", "-DBUILD_TESTING=OFF"],
        check=True)
    subprocess.run(
        ["cmake", "--build", build_dir, "--target", "micro_attendance",
         "-j", str(os.cpu_count() or 2)],
        check=True)


def run_micro(binary, repeats, tmp_dir, no_pin):
    """Runs the micro binary N times; returns normalized reports."""
    reports = []
    for repeat in range(repeats):
        out = os.path.join(tmp_dir, f"micro_{repeat}.json")
        subprocess.run(
            pin_prefix(no_pin) + [
                binary, f"--benchmark_out={out}",
                "--benchmark_out_format=json"],
            check=True)
        with open(out, encoding="utf-8") as fh:
            reports.append(micro_report(json.load(fh)))
    return reports


def pin_prefix(no_pin):
    """taskset prefix for a stable-frequency core, when available."""
    if no_pin or shutil.which("taskset") is None:
        return []
    return ["taskset", "-c", "0"]


def clean_build(build_dir):
    """Configures and builds ses_cli only (no tests) into build_dir."""
    subprocess.run(
        ["cmake", "-B", build_dir, "-S", REPO_ROOT,
         "-DCMAKE_BUILD_TYPE=RelWithDebInfo", "-DBUILD_TESTING=OFF"],
        check=True)
    subprocess.run(
        ["cmake", "--build", build_dir, "--target", "ses_cli",
         "-j", str(os.cpu_count() or 2)],
        check=True)


def run_trace(cli, trace_path, size, repeats, tmp_dir, no_pin):
    """Runs one trace N times; returns the list of parsed reports."""
    reports = []
    for repeat in range(repeats):
        out = os.path.join(tmp_dir, f"report_{repeat}.json")
        subprocess.run(
            pin_prefix(no_pin) + [
                cli, "bench", f"--trace={trace_path}", f"--size={size}",
                f"--out={out}"],
            check=True)
        with open(out, encoding="utf-8") as fh:
            reports.append(json.load(fh))
    return reports


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", choices=SIZES, default="M",
                        help="request-count scale passed to ses_cli bench")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repeats per trace; the median is canonical")
    parser.add_argument("--traces", default="",
                        help="comma-separated scenario names "
                             "(default: every bench/traces/*.json)")
    parser.add_argument("--build-dir", default=DEFAULT_BUILD_DIR)
    parser.add_argument("--no-build", action="store_true",
                        help="reuse an existing --build-dir/ses_cli")
    parser.add_argument("--no-pin", action="store_true",
                        help="skip taskset CPU pinning")
    parser.add_argument("--compare", metavar="REF", default="",
                        help="diff fresh results against BENCH files at "
                             "this git ref instead of just writing them")
    parser.add_argument("--micro", action="store_true",
                        help="run bench/micro_attendance instead of traces "
                             "and write BENCH_micro_attendance.json")
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be >= 1")

    if args.micro:
        if args.traces:
            parser.error("--micro and --traces are mutually exclusive")
        if not args.no_build:
            build_micro(args.build_dir)
        binary = os.path.join(args.build_dir, "micro_attendance")
        if not os.path.exists(binary):
            parser.error(f"{binary} not found (build it or drop "
                         "--no-build; requires google-benchmark)")
        import tempfile
        with tempfile.TemporaryDirectory() as tmp_dir:
            print(f"== {MICRO_SCENARIO} ({args.repeat} repeat(s)) ==",
                  flush=True)
            reports = run_micro(binary, args.repeat, tmp_dir, args.no_pin)
        path = write_canonical(MICRO_SCENARIO, "micro", reports)
        print(f"wrote {os.path.relpath(path, REPO_ROOT)}\n")
        canonical = json.load(open(path, encoding="utf-8"))
        print(render_micro_leaderboard(canonical))
        if args.compare:
            print(f"\n-- compare vs {args.compare} --")
            old = load_git_canonical(args.compare, MICRO_SCENARIO)
            if old is None:
                print(f"{MICRO_SCENARIO}: absent at {args.compare}")
            else:
                print(render_compare(
                    MICRO_SCENARIO, micro_compare_rows(old, canonical)))
        return 0

    traces = list_traces()
    if args.traces:
        wanted = set(args.traces.split(","))
        traces = [t for t in traces if t[0] in wanted]
        missing = wanted - {scenario for scenario, _ in traces}
        if missing:
            parser.error(f"unknown trace(s): {', '.join(sorted(missing))}")
    if not traces:
        parser.error(f"no trace descriptors found in {TRACE_DIR}")

    if not args.no_build:
        clean_build(args.build_dir)
    cli = os.path.join(args.build_dir, "ses_cli")
    if not os.path.exists(cli):
        parser.error(f"{cli} not found (build it or drop --no-build)")

    import tempfile
    canonicals = []
    with tempfile.TemporaryDirectory() as tmp_dir:
        for scenario, trace_path in traces:
            print(f"== {scenario} ({args.repeat} repeat(s), size "
                  f"{args.size}) ==", flush=True)
            reports = run_trace(cli, trace_path, args.size, args.repeat,
                                tmp_dir, args.no_pin)
            path = write_canonical(scenario, args.size, reports)
            canonicals.append(json.load(open(path, encoding="utf-8")))
            print(f"wrote {os.path.relpath(path, REPO_ROOT)}")

    print()
    print(render_leaderboard(canonicals))

    if args.compare:
        print(f"\n-- compare vs {args.compare} --")
        for canonical in canonicals:
            old = load_git_canonical(args.compare, canonical["scenario"])
            if old is None:
                print(f"{canonical['scenario']}: absent at {args.compare}")
                continue
            print(render_compare(canonical["scenario"],
                                 compare_rows(old, canonical)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
