#!/usr/bin/env python3
"""ses_lint — project-invariant linter and flow-aware analyzer.

Usage: ses_lint.py [--root DIR] [--list-rules] [--capabilities]
                   [--hot-functions] [--fix-stale]
                   [--format {text,json,github}] [--changed-only GIT_REF]
                   [--compile-commands FILE] [PATH ...]

Enforces, with nothing beyond the Python standard library, the
invariants the compiler cannot see (and that `clang -Wthread-safety`
does not cover). PATHs default to `src tools tests bench examples`
under --root (default: the repository root, i.e. the parent of this
script's directory); directories are walked for *.h / *.cc files. Each
rule applies only inside its scope — listed below and documented in
docs/ARCHITECTURE.md ("Concurrency invariants & static analysis").

Token rules:
  layering              src/ include-layering matrix: util includes
                        nothing above it, core -> util only, ebsn ->
                        core/util, api -> core/util, exp -> anything
                        (its RunSolvers is a documented client of api).
  determinism-clock     no wall-clock reads (std::chrono clocks,
                        time()/clock()/gettimeofday) in src/core or
                        src/ebsn outside core/solve_context.h — solver
                        results must not depend on when they run.
  determinism-random    no nondeterministic randomness (std::rand,
                        srand, std::random_device) in src/core or
                        src/ebsn — all randomness flows through seeded
                        util RNGs.
  unordered-accumulate  no range-for over a std::unordered_map/set
                        whose body accumulates (+=, push_back, insert,
                        ...) in src/core or src/ebsn — hash iteration
                        order is implementation-defined, so such loops
                        break bit-identical reproducibility.
  raw-mutex             no raw std synchronization primitives
                        (std::mutex, std::shared_mutex,
                        std::condition_variable, std::*_lock) in src/
                        outside util/mutex.h — use the annotated
                        util::Mutex wrappers so clang's Thread Safety
                        Analysis sees every lock.
  tsa-escape            SES_NO_THREAD_SAFETY_ANALYSIS is reserved for
                        util/mutex.h itself; anywhere else in src/ the
                        annotation must be fixed, not muted.
  naked-new             no naked `new` in src/ — wrap allocations in
                        unique_ptr/shared_ptr (or suppress with a
                        justification for intentional leaks).
  using-namespace-header no `using namespace` in any header — it leaks
                        into every includer.

Flow rules (a per-TU scan of the SES_* annotation surface plus scoped
MutexLock/ReaderMutexLock/WriterMutexLock constructions and manual
Lock/Unlock calls, linked into a global call graph):
  lock-order            the acquired-while-holding graph over every
                        util::Mutex/SharedMutex capability must be
                        acyclic (deadlock freedom); cycles are reported
                        with a full witness path. `--capabilities`
                        dumps the derived inventory.
  condvar-hold          no CondVar::Wait/WaitFor reachable while a
                        second capability is held — the wait releases
                        only its own mutex, so the second lock blocks
                        every would-be notifier.
  discarded-status      a call to a util::Status/Result<T>-returning
                        function must be consumed, returned, or
                        explicitly discarded as `(void)expr;` with a
                        same-line `// ses-lint: allow(discarded-status)`
                        carrying the justification. The compiler
                        enforces the same contract via [[nodiscard]]
                        (-Wunused-result under -Werror); this rule
                        keeps the discipline visible to review and to
                        trees the compiler has not seen yet.
  hot-path              every SES_HOT-annotated function
                        (util/hot_annotations.h) is the root of a
                        transitive call-graph walk that must reach no
                        allocation (with an amortized-capacity escape
                        for growth calls covered by a matching
                        reserve), no mutex acquisition or CondVar
                        wait, no logging/IO/clock read, no map-shaped
                        lookup, and no virtual dispatch through a
                        non-final receiver. Calls the analysis cannot
                        see are errors unless the simple name is
                        listed in tools/hot_whitelist.txt. Violations
                        carry the full witness call chain from the
                        SES_HOT root. `--hot-functions` dumps the
                        annotated inventory.
  stale-suppression     every `// ses-lint: allow(rule)` comment must
                        actually suppress (or annotate) a finding the
                        current run produced on that line; dead
                        suppressions rot into false documentation.
                        `--fix-stale` deletes them in place.

Suppressions: append `// ses-lint: allow(<rule>)` to the offending
line (comma-separate several rule ids). Comments, string literals, and
character literals are stripped before matching, so prose never trips
a rule. For lock-order the suppression goes on the witness line of the
edge; for hot-path it goes on the violation line or on the witness
call edge (cutting the whole subtree behind that call); for
discarded-status it must accompany a `(void)` cast.

--format=json prints one JSON object per finding (rule, file, line,
message, witness) to stdout instead of the text report.
--format=github prints GitHub Actions `::error file=...,line=...::`
workflow commands so findings annotate PR diffs inline.
--changed-only GIT_REF still runs the full (whole-graph) analysis but
reports only findings whose file — or any witness file, for cycles —
differs from GIT_REF, for fast CI/pre-commit runs.
--compile-commands FILE restricts the scanned *.cc set to translation
units listed in the exported compile_commands.json (headers are always
scanned), so the flow pass analyzes exactly what the build builds.

Exit status: 0 when clean, 1 with one "file:line: rule: message" per
problem otherwise.
"""

import argparse
import bisect
import json
import os
import re
import subprocess
import sys

# Layer -> layers it may include (by the first path component of a
# quoted include). tests/bench/tools/examples may use everything and are
# exempt. exp legitimately includes api (exp::RunSolvers and the
# trace-replay exp::LoadGenerator are documented clients of
# api::Scheduler; see docs/ARCHITECTURE.md "Layer map").
LAYERS = ("util", "core", "ebsn", "exp", "api")
ALLOWED_INCLUDES = {
    "util": {"util"},
    "core": {"core", "util"},
    "ebsn": {"ebsn", "core", "util"},
    "api": {"api", "core", "util"},
    "exp": {"exp", "ebsn", "core", "util", "api"},
}

# Files (repo-relative, forward slashes) exempt from the determinism
# clock rule: the two sanctioned wall-clock surfaces.
CLOCK_EXEMPT = {"src/core/solve_context.h", "src/util/timer.h"}

# Files allowed to touch raw std synchronization primitives and the
# analysis escape hatch: the annotated wrappers themselves.
MUTEX_EXEMPT = {"src/util/mutex.h"}
TSA_ESCAPE_EXEMPT = {"src/util/mutex.h", "src/util/thread_annotations.h"}

# The lock wrappers themselves look like lock-order chaos from the
# outside (Lock() "acquires while holding" in every combination); the
# flow analysis models their call sites, not their internals.
FLOW_EXEMPT = {"src/util/mutex.h", "src/util/thread_annotations.h"}

# The allocation-counting interposer is the one sanctioned definition
# site for the global operator new family (`operator new[]` trips the
# naked-new token match); everywhere else the rule stands.
ALLOC_GUARD_EXEMPT = {"src/util/alloc_guard.cc"}

CLOCK_RE = re.compile(
    r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)"
    r"|(?<![\w:])(?:time|clock|gettimeofday|localtime|mktime)\s*\(")
RANDOM_RE = re.compile(r"std::rand\b|(?<![\w:])srand\s*\(|random_device")
RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|shared_)?mutex\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b")
TSA_ESCAPE_RE = re.compile(r"\bSES_NO_THREAD_SAFETY_ANALYSIS\b")
NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")  # `new (addr)` placement ok
SMART_WRAP_RE = re.compile(
    r"unique_ptr|shared_ptr|make_unique|make_shared|weak_ptr")
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*[^;:)])\s:\s([^)]+)\)")
ACCUMULATE_RE = re.compile(
    r"\+=|-=|\*=|/=|\|=|&=|\^=|\+\+|--"
    r"|push_back|emplace_back|emplace\(|insert\(|append\(")
ALLOW_RE = re.compile(r"//\s*ses-lint:\s*allow\(([^)]*)\)")

RULE_DOCS = {
    "layering": "src/ include-layering matrix (util < core < ebsn/api < exp)",
    "determinism-clock":
        "no wall-clock reads in src/core|src/ebsn outside solve_context.h",
    "determinism-random":
        "no std::rand/srand/random_device in src/core|src/ebsn",
    "unordered-accumulate":
        "no accumulating range-for over unordered containers in core/ebsn",
    "raw-mutex":
        "annotated util::Mutex wrappers, not raw std primitives, in src/",
    "tsa-escape":
        "SES_NO_THREAD_SAFETY_ANALYSIS only inside util/mutex.h",
    "naked-new": "allocations in src/ go through smart pointers",
    "using-namespace-header": "no `using namespace` in headers",
    "lock-order":
        "acquired-while-holding graph over util::Mutex capabilities is "
        "acyclic (static deadlock freedom; --capabilities for the table)",
    "condvar-hold":
        "no CondVar::Wait/WaitFor while a second capability is held",
    "discarded-status":
        "Status/Result<T> returns are consumed, returned, or (void)-cast "
        "with a same-line allow(discarded-status) justification",
    "hot-path":
        "SES_HOT call trees are allocation-, lock-, IO-, map-lookup-, and "
        "virtual-dispatch-free (witness chains; tools/hot_whitelist.txt "
        "for trusted leaves; --hot-functions for the inventory)",
    "stale-suppression":
        "every ses-lint allow() suppresses a real finding on its line "
        "(--fix-stale deletes dead ones)",
}


def strip_code(text):
    """Blanks comments and string/char literals, preserving line
    structure, and returns (code_lines, raw_lines). Rules match on
    code_lines; suppression comments are read from raw_lines."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string or char
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if (state == "string" and c == '"') or (
                    state == "char" and c == "'"):
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out).split("\n"), text.split("\n")


def blank_preprocessor(code_lines):
    """Blanks preprocessor directives (and their backslash-continuation
    lines) so macro bodies never confuse brace/paren tracking."""
    out = []
    in_directive = False
    for line in code_lines:
        if in_directive or line.lstrip().startswith("#"):
            in_directive = line.rstrip().endswith("\\")
            out.append("")
        else:
            in_directive = False
            out.append(line)
    return out


def suppressed(raw_line, rule):
    match = ALLOW_RE.search(raw_line)
    if not match:
        return False
    allowed = {r.strip() for r in match.group(1).split(",")}
    return rule in allowed


# (rel, lineno, rule) triples whose allow() comment suppressed or
# annotated a finding this run — the evidence base for the
# stale-suppression audit. Every code path that honors a suppression
# must register it here via use_suppression(); a bare suppressed()
# check that merely *reads* an allow comment (without it changing any
# finding) deliberately does not count.
USED_SUPPRESSIONS = set()


def use_suppression(rel, lineno, raw_line, rule):
    """suppressed(), plus registration for the stale audit."""
    if suppressed(raw_line, rule):
        USED_SUPPRESSIONS.add((rel, lineno, rule))
        return True
    return False


def finding(file, line, rule, message, witness=None):
    return {"rule": rule, "file": file, "line": line, "message": message,
            "witness": witness or []}


class Linter:
    """The token rules: per-line regex invariants."""

    def __init__(self, root):
        self.root = root
        self.problems = []

    def report(self, rel, lineno, rule, message, raw_lines):
        if use_suppression(rel, lineno, raw_lines[lineno - 1], rule):
            return
        self.problems.append(finding(rel, lineno, rule, message))

    def lint_file(self, rel, text):
        code, raw = strip_code(text)

        in_src = rel.startswith("src/")
        layer = rel.split("/")[1] if in_src and rel.count("/") >= 2 else None
        deterministic = layer in ("core", "ebsn")
        is_header = rel.endswith(".h")

        if layer in ALLOWED_INCLUDES:
            self.check_layering(rel, layer, raw)
        if deterministic:
            if rel not in CLOCK_EXEMPT:
                self.check_pattern(rel, code, raw, CLOCK_RE,
                                   "determinism-clock",
                                   "wall-clock read in a deterministic "
                                   "layer (use core::SolveContext / "
                                   "util::WallTimer at the call site)")
            self.check_pattern(rel, code, raw, RANDOM_RE,
                               "determinism-random",
                               "nondeterministic randomness (seeded util "
                               "RNGs only)")
            self.check_unordered_accumulate(rel, code, raw)
        if in_src and rel not in MUTEX_EXEMPT:
            self.check_pattern(rel, code, raw, RAW_MUTEX_RE, "raw-mutex",
                               "raw std synchronization primitive (use "
                               "the annotated util::Mutex wrappers)")
        if in_src and rel not in TSA_ESCAPE_EXEMPT:
            self.check_pattern(rel, code, raw, TSA_ESCAPE_RE, "tsa-escape",
                               "thread-safety-analysis escape hatch "
                               "outside util/mutex.h (fix the "
                               "annotation instead)")
        if in_src and rel not in ALLOC_GUARD_EXEMPT:
            self.check_naked_new(rel, code, raw)
        if is_header:
            self.check_pattern(rel, code, raw, USING_NAMESPACE_RE,
                               "using-namespace-header",
                               "`using namespace` in a header leaks "
                               "into every includer")

    def check_pattern(self, rel, code, raw, pattern, rule, message):
        for lineno, line in enumerate(code, start=1):
            if pattern.search(line):
                self.report(rel, lineno, rule, message, raw)

    def check_layering(self, rel, layer, raw):
        allowed = ALLOWED_INCLUDES[layer]
        for lineno, line in enumerate(raw, start=1):
            match = INCLUDE_RE.match(line)
            if not match:
                continue
            target = match.group(1).split("/")[0]
            if target in LAYERS and target not in allowed:
                self.report(
                    rel, lineno, "layering",
                    f"src/{layer} must not include \"{match.group(1)}\" "
                    f"(allowed layers: {', '.join(sorted(allowed))})", raw)

    def check_naked_new(self, rel, code, raw):
        for lineno, line in enumerate(code, start=1):
            if NEW_RE.search(line) and not SMART_WRAP_RE.search(line):
                self.report(rel, lineno, "naked-new",
                            "naked `new` (wrap in unique_ptr/shared_ptr, "
                            "or justify with a suppression)", raw)

    def check_unordered_accumulate(self, rel, code, raw):
        unordered_names = set()
        for line in code:
            match = UNORDERED_DECL_RE.search(line)
            if not match:
                continue
            # The declared name: last identifier before ; = { ( on the
            # line, after the closing template bracket. Heuristic, but
            # the fixture suite pins the cases that matter.
            tail = line[match.end():]
            for name_match in re.finditer(r"(\w+)\s*(?:;|=|\{|\()", tail):
                unordered_names.add(name_match.group(1))
        if not unordered_names:
            return
        for lineno, line in enumerate(code, start=1):
            match = RANGE_FOR_RE.search(line)
            if not match:
                continue
            range_ids = set(re.findall(r"\w+", match.group(2)))
            if not (range_ids & unordered_names):
                continue
            if self.body_accumulates(code, lineno - 1):
                self.report(
                    rel, lineno, "unordered-accumulate",
                    "range-for over an unordered container whose body "
                    "accumulates — hash order is not deterministic "
                    "(iterate a sorted view, or suppress if the "
                    "accumulation is order-insensitive and exact)", raw)

    @staticmethod
    def body_accumulates(code, for_line_index):
        """Scans the brace-matched loop body (or the single statement up
        to the next ';') following the range-for for accumulation."""
        depth = 0
        opened = False
        for lineno in range(for_line_index, min(for_line_index + 200,
                                                len(code))):
            line = code[lineno]
            start = 0
            if lineno == for_line_index:
                close = line.find(")")
                start = close + 1 if close >= 0 else 0
            body = line[start:]
            if ACCUMULATE_RE.search(body):
                return True
            depth += body.count("{") - body.count("}")
            opened = opened or "{" in body
            if opened and depth <= 0:
                return False
            if not opened and ";" in body:
                return False
        return False


# ---------------------------------------------------------------------------
# Flow-aware analysis: a scanner over the SES_* annotation surface
# ---------------------------------------------------------------------------

CPP_KEYWORDS = {
    "if", "while", "for", "switch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "new", "delete", "catch", "throw", "case",
    "default", "do", "else", "operator", "static_assert", "assert",
    "void", "int", "bool", "auto", "char", "co_await", "co_return",
    "co_yield", "static_cast", "dynamic_cast", "reinterpret_cast",
    "const_cast", "typeid", "alignas", "template", "typename", "using",
    "explicit", "requires",
}

MEMBER_MUTEX_RE = re.compile(
    r"\b(?:ses::)?(?:util::)?(Mutex|SharedMutex)\s+(\w+)\b")
SCOPED_LOCK_RE = re.compile(
    r"\b(?:ses::)?(?:util::)?(MutexLock|ReaderMutexLock|WriterMutexLock)"
    r"\s+\w+\s*\(([^()]+)\)")
MANUAL_LOCK_RE = re.compile(
    r"((?:\w+(?:\.|->))*\w+)\s*\.\s*"
    r"(Lock|LockShared|Unlock|UnlockShared)\s*\(\s*\)")
WAIT_RE = re.compile(
    r"((?:\w+(?:\.|->))*\w+)\s*\.\s*(Wait|WaitFor)\s*\(\s*([^,()]+?)\s*[,)]")
CALL_RE = re.compile(
    r"((?:[A-Za-z_]\w*(?:\.|->))*)((?:[A-Za-z_]\w*::)*)([A-Za-z_]\w*)\s*\(")
ANNOT_RE = re.compile(
    r"\bSES_(REQUIRES|REQUIRES_SHARED|ACQUIRE|ACQUIRE_SHARED)\s*\(([^()]*)\)")
MAKE_SMART_RE = re.compile(
    r"(\w+)\s*=\s*std::make_(?:shared|unique)<\s*((?:\w+::)*\w+)")
LOCAL_DECL_RE = re.compile(
    r"^((?:\w+::)*\w+)(?:\s*<[^;=]*>)?\s*[&*]*\s+(\w+)\s*(?:=|\(|$)")
QUALIFIER_RE = re.compile(
    r"^(?:(?:mutable|static|const|constexpr|inline|extern|friend|"
    r"virtual|thread_local)\b\s*)+")
FUNC_NAME_RE = re.compile(r"([~\w:]+)\s*\($")
HOT_RE = re.compile(r"\bSES_HOT\b")
VIRTUAL_RE = re.compile(r"\bvirtual\b|\boverride\b|\)\s*[\w\s]*=\s*0\s*$")
FINAL_CLASS_RE = re.compile(r"\bfinal\b")
# Allocation sources that are not method calls on a receiver (those —
# push_back/emplace/resize/insert/append/reserve — arrive as ordinary
# call events and are classified during the hot walk, where receiver
# and reserve ordering are known).
HOT_ALLOC_RE = re.compile(
    r"(?<![\w.])new\b|\bmake_unique\s*<|\bmake_shared\s*<"
    r"|\bstd::string\s*[({]|\bto_string\s*\(|\bStrCat\s*\(|\bStrFormat\s*\(")
# Logging, stream IO, file IO, and clock reads. SES_CHECK is absent by
# policy: a passing check is one branch, and its failure path aborts.
HOT_IO_RE = re.compile(
    r"\bSES_LOG\s*\(|\bSES_LOG_IS_ON\b"
    r"|(?<![\w:])f?printf\s*\(|\bfopen\s*\(|\bfputs\s*\(|\bfwrite\s*\("
    r"|\bfread\s*\(|\bfflush\s*\(|\bstd::c(?:out|err|log)\b"
    r"|\bstd::(?:i|o)?f?stream\b|\bostringstream\b"
    r"|::now\s*\(|\bgettimeofday\s*\(|(?<![\w:])time\s*\(")
HOT_SUBSCRIPT_RE = re.compile(r"\b(\w+)\s*\[")
HOT_GROW_METHODS = {"push_back", "emplace_back", "emplace", "insert",
                    "append", "resize"}
HOT_MAP_METHODS = {"at", "find", "count"}
HOT_MAP_TYPES = {"map", "unordered_map", "multimap", "unordered_multimap",
                 "set", "unordered_set"}


class Scope:
    __slots__ = ("kind", "name", "releases", "func", "body")

    def __init__(self, kind, name=None, func=None, body=None):
        self.kind = kind        # namespace | class | enum | function | block
        self.name = name        # namespace parts / class simple name
        self.releases = []      # cap exprs to release when this scope pops
        self.func = func        # Func record for function scopes
        self.body = body        # Body dict for function scopes


def new_body():
    return {"events": [], "param_types": {}, "local_types": {},
            "requires": [], "acquires": []}


class Func:
    __slots__ = ("raw_name", "ns", "lexical_class", "file", "line",
                 "bodies", "requires_exprs", "acquire_exprs",
                 "qname", "cls", "simple", "hot", "virt")

    def __init__(self, raw_name, ns, lexical_class, file, line):
        self.raw_name = raw_name          # possibly qualified (A::B)
        self.ns = ns                      # namespace parts at decl site
        self.lexical_class = lexical_class  # enclosing class qname or None
        self.file = file
        self.line = line
        self.bodies = []                  # one Body dict per definition
        self.requires_exprs = []          # (expr, ns, lexical_class)
        self.acquire_exprs = []
        self.qname = None
        self.cls = None
        self.simple = raw_name.split("::")[-1]
        self.hot = False                  # SES_HOT on decl or definition
        self.virt = False                 # virtual / override / pure


class CppModel:
    """Global registries built from scanning every src/ file, then the
    lock-order / condvar-hold analyses over the merged call graph."""

    def __init__(self):
        self.caps = {}          # qname -> {kind, file, line}
        self.classes = {}       # qname -> {simple, members{}, member_types{}}
        self.raw_funcs = []     # Func records, pre-merge
        self.raw_lines = {}     # rel -> raw lines (suppression lookups)
        # Populated by finalize()/analyze():
        self.funcs = {}         # qname -> merged func dict
        self.funcs_by_simple = {}
        self.caps_by_simple = {}
        self.classes_by_simple = {}
        self.edges = {}         # (a, b) -> witness dict

    # -- scanning -----------------------------------------------------------

    def scan_file(self, rel, code_lines, raw_lines):
        self.raw_lines[rel] = raw_lines
        code_lines = blank_preprocessor(code_lines)
        text = "\n".join(code_lines)
        line_starts = [0]
        for idx, ch in enumerate(text):
            if ch == "\n":
                line_starts.append(idx + 1)
        self._line_starts = line_starts
        self._rel = rel

        scopes = [Scope("namespace", name=[])]
        paren = 0
        chunk_start = 0
        last_popped_class = None
        i = 0
        n = len(text)
        while i < n:
            c = text[i]
            if c == "(":
                paren += 1
            elif c == ")":
                paren = max(0, paren - 1)
            elif paren == 0 and c in ";{}":
                chunk = text[chunk_start:i]
                if c == "{":
                    self._open_scope(scopes, chunk, chunk_start)
                    last_popped_class = None
                elif c == "}":
                    self._flush_chunk(scopes, chunk, chunk_start,
                                      last_popped_class)
                    last_popped_class = self._close_scope(scopes, i)
                else:
                    self._flush_chunk(scopes, chunk, chunk_start,
                                      last_popped_class)
                    last_popped_class = None
                chunk_start = i + 1
            i += 1

    def _lineno(self, pos):
        return bisect.bisect_right(self._line_starts, pos)

    def _ns_parts(self, scopes):
        parts = []
        for s in scopes:
            if s.kind == "namespace" and s.name:
                parts.extend(s.name)
        if parts and parts[0] == "ses":
            parts = parts[1:]
        return parts

    def _class_parts(self, scopes):
        return [s.name for s in scopes if s.kind == "class"]

    def _enclosing_func_scope(self, scopes):
        for s in reversed(scopes):
            if s.kind == "function":
                return s
        return None

    def _open_scope(self, scopes, head, head_start):
        h = re.sub(r"\btemplate\s*<[^<>{}]*>", " ", head).strip()
        # Initializer lists / trailing annotations keep parens in the
        # head; classification looks at keywords and the first
        # top-level '(' only.
        if re.search(r"\benum\b", h):
            scopes.append(Scope("enum"))
            return
        ns = re.match(r"^(?:inline\s+)?namespace\b\s*([\w:]*)", h)
        if ns:
            name = [p for p in ns.group(1).split("::") if p]
            scopes.append(Scope("namespace", name=name))
            return
        cls = None
        for m in re.finditer(r"\b(?:class|struct)\s+"
                             r"(?:SES_\w+\s*(?:\([^()]*\))?\s*)*"
                             r"([A-Za-z_]\w*)", h):
            cls = m.group(1)
        if cls is not None and "=" not in h.split(cls)[0]:
            qname = "::".join(self._ns_parts(scopes) +
                              self._class_parts(scopes) + [cls])
            entry = self.classes.setdefault(qname, {
                "simple": cls, "members": {}, "member_types": {},
                "file": self._rel, "final": False})
            if FINAL_CLASS_RE.search(h):
                entry["final"] = True
            scopes.append(Scope("class", name=cls))
            return
        if self._enclosing_func_scope(scopes) is not None:
            scopes.append(Scope("block"))
            return
        func = self._match_function(h)
        if func is None or "=" in h.split("(")[0]:
            scopes.append(Scope("block"))
            return
        record = Func(func, self._ns_parts(scopes),
                      "::".join(self._ns_parts(scopes) +
                                self._class_parts(scopes))
                      if self._class_parts(scopes) else None,
                      self._rel, self._lineno(head_start))
        if record.lexical_class is None and not self._class_parts(scopes):
            record.lexical_class = None
        record.hot = HOT_RE.search(h) is not None
        record.virt = VIRTUAL_RE.search(h) is not None
        body = new_body()
        self._parse_annotations(h, record)
        self._parse_params(h, body)
        record.bodies.append(body)
        self.raw_funcs.append(record)
        scopes.append(Scope("function", func=record, body=body))

    @staticmethod
    def _match_function(head):
        idx = head.find("(")
        if idx < 0:
            return None
        m = FUNC_NAME_RE.search(head[:idx + 1])
        if not m:
            return None
        name = m.group(1).strip(":")
        simple = name.split("::")[-1].lstrip("~")
        if simple in CPP_KEYWORDS or simple.startswith("SES_"):
            return None
        return name

    def _parse_annotations(self, text, record):
        for m in ANNOT_RE.finditer(text):
            kind = m.group(1)
            exprs = [e.strip() for e in m.group(2).split(",") if e.strip()]
            if kind.startswith("REQUIRES"):
                record.requires_exprs.extend(exprs)
            else:
                record.acquire_exprs.extend(exprs)

    @staticmethod
    def _parse_params(head, body):
        idx = head.find("(")
        if idx < 0:
            return
        depth = 0
        end = idx
        for j in range(idx, len(head)):
            if head[j] == "(":
                depth += 1
            elif head[j] == ")":
                depth -= 1
                if depth == 0:
                    end = j
                    break
        params = head[idx + 1:end]
        for part in re.split(r",(?![^<(]*[>)])", params):
            part = part.split("=")[0].strip()
            part = QUALIFIER_RE.sub("", part)
            m = re.match(r"((?:\w+::)*\w+)(?:\s*<.*>)?\s*[&*]*\s+(\w+)\s*$",
                         part)
            if m:
                body["param_types"][m.group(2)] = m.group(1).split("::")[-1]

    def _close_scope(self, scopes, pos):
        if len(scopes) <= 1:
            return None
        scope = scopes.pop()
        func_scope = self._enclosing_func_scope(scopes + [scope])
        if func_scope is not None and scope.releases:
            for expr in scope.releases:
                func_scope.body["events"].append(
                    ("release", expr, self._rel, self._lineno(pos)))
        return scope.name if scope.kind == "class" else None

    def _flush_chunk(self, scopes, chunk, chunk_start, last_popped_class):
        s = chunk.strip()
        if not s:
            return
        scope = scopes[-1]
        func_scope = self._enclosing_func_scope(scopes)
        if scope.kind == "enum":
            return
        if scope.kind in ("namespace", "class"):
            self._flush_declaration(scopes, scope, s, chunk_start)
            return
        if func_scope is None:
            return
        body = func_scope.body
        if last_popped_class and re.fullmatch(r"\w+", s):
            # `struct S { ... } var;` — the variable is typed by the
            # class that just closed (score_gen's StopState pattern).
            body["local_types"][s] = last_popped_class
            return
        self._extract_events(scopes, body, chunk, chunk_start)

    def _flush_declaration(self, scopes, scope, s, chunk_start):
        stripped = QUALIFIER_RE.sub("", s)
        mm = MEMBER_MUTEX_RE.search(stripped)
        lineno = self._lineno(chunk_start)
        owner = "::".join(self._ns_parts(scopes) + self._class_parts(scopes))
        if mm:
            qname = (owner + "::" + mm.group(2)) if owner else mm.group(2)
            kind = "mutex" if mm.group(1) == "Mutex" else "shared_mutex"
            if qname not in self.caps:
                self.caps[qname] = {"kind": kind, "file": self._rel,
                                    "line": lineno}
            if scope.kind == "class":
                cls = self._current_class_qname(scopes)
                self.classes[cls]["members"][mm.group(2)] = qname
            return
        # Method / free-function declaration (no body): keep the SES_*
        # annotations — a header-declared SES_ACQUIRE function is a real
        # node in the call graph even if its definition lives elsewhere.
        name = self._match_function(stripped)
        if name is not None and ANNOT_RE.search(stripped) or (
                name is not None and "(" in stripped):
            record = Func(name, self._ns_parts(scopes),
                          self._current_class_qname(scopes)
                          if scope.kind == "class" else None,
                          self._rel, lineno)
            # QUALIFIER_RE strips leading `virtual`, so hot/virtual
            # detection reads the unstripped declaration.
            record.hot = HOT_RE.search(s) is not None
            record.virt = VIRTUAL_RE.search(s) is not None
            self._parse_annotations(stripped, record)
            self.raw_funcs.append(record)
            return
        if scope.kind == "class":
            m = re.match(
                r"^((?:\w+::)*\w+)(?:\s*<[^;]*>)?\s*[&*]*\s+(\w+)", stripped)
            if m:
                cls = self._current_class_qname(scopes)
                self.classes[cls]["member_types"][m.group(2)] = \
                    m.group(1).split("::")[-1]

    def _current_class_qname(self, scopes):
        return "::".join(self._ns_parts(scopes) + self._class_parts(scopes))

    def _extract_events(self, scopes, body, chunk, chunk_start):
        # Local variable typing (for obj.method call resolution).
        stripped = QUALIFIER_RE.sub("", chunk.strip())
        m = MAKE_SMART_RE.search(stripped)
        if m:
            body["local_types"][m.group(1)] = m.group(2).split("::")[-1]
        else:
            m = LOCAL_DECL_RE.match(stripped)
            if m and m.group(1).split("::")[-1] not in CPP_KEYWORDS:
                body["local_types"][m.group(2)] = m.group(1).split("::")[-1]

        # Brace depth inside the chunk (braces here are always inside
        # parens — lambdas passed as call arguments).
        depth_at = []
        d = 0
        for ch in chunk:
            depth_at.append(d)
            if ch == "{":
                d += 1
            elif ch == "}":
                d = max(0, d - 1)

        events = []  # (pos, tuple)
        spans = []

        def in_span(pos):
            return any(a <= pos < b for a, b in spans)

        for m in SCOPED_LOCK_RE.finditer(chunk):
            kind, arg = m.group(1), m.group(2).strip()
            shared = kind == "ReaderMutexLock"
            line = self._lineno(chunk_start + m.start())
            events.append((m.start(),
                           ("acquire", arg, shared, self._rel, line)))
            spans.append(m.span())
            d0 = depth_at[m.start()]
            if d0 > 0:
                # Lambda-internal scoped lock: released where its
                # enclosing lambda block closes inside this chunk.
                rel_pos = len(chunk)
                dd = d0
                for j in range(m.end(), len(chunk)):
                    if chunk[j] == "{":
                        dd += 1
                    elif chunk[j] == "}":
                        dd -= 1
                        if dd < d0:
                            rel_pos = j
                            break
                events.append((rel_pos, ("release", arg, self._rel,
                                         self._lineno(chunk_start + rel_pos))))
            else:
                scopes[-1].releases.append(arg)
        for m in MANUAL_LOCK_RE.finditer(chunk):
            obj, op = m.group(1), m.group(2)
            line = self._lineno(chunk_start + m.start())
            if op in ("Lock", "LockShared"):
                events.append((m.start(), ("acquire", obj,
                                           op == "LockShared",
                                           self._rel, line)))
            else:
                events.append((m.start(), ("release", obj, self._rel, line)))
            spans.append(m.span())
        for m in WAIT_RE.finditer(chunk):
            if in_span(m.start()):
                continue
            line = self._lineno(chunk_start + m.start())
            events.append((m.start(), ("wait", m.group(3).strip(),
                                       self._rel, line)))
            spans.append(m.span())
        for m in CALL_RE.finditer(chunk):
            name = m.group(3)
            if name in CPP_KEYWORDS or name.startswith("SES_"):
                continue
            if in_span(m.start()):
                continue
            obj = m.group(1).rstrip(".").rstrip("->").rstrip(".")
            line = self._lineno(chunk_start + m.start())
            events.append((m.start(), ("call", obj, name, self._rel, line)))

        # Hot-path raw material; consulted only for SES_HOT-reachable
        # bodies, so the extra events are inert everywhere else.
        for m in HOT_ALLOC_RE.finditer(chunk):
            line = self._lineno(chunk_start + m.start())
            events.append((m.start(), ("hotalloc", m.group(0).strip(),
                                       self._rel, line)))
        for m in HOT_IO_RE.finditer(chunk):
            line = self._lineno(chunk_start + m.start())
            events.append((m.start(), ("hotio", m.group(0).strip(),
                                       self._rel, line)))
        for m in HOT_SUBSCRIPT_RE.finditer(chunk):
            line = self._lineno(chunk_start + m.start())
            events.append((m.start(), ("hotsub", m.group(1),
                                       self._rel, line)))

        events.sort(key=lambda e: e[0])
        body["events"].extend(ev for _, ev in events)

    # -- resolution ---------------------------------------------------------

    def finalize(self):
        self.caps_by_simple = {}
        for qname in self.caps:
            self.caps_by_simple.setdefault(qname.split("::")[-1],
                                           []).append(qname)
        self.classes_by_simple = {}
        for qname, cls in self.classes.items():
            self.classes_by_simple.setdefault(cls["simple"],
                                              []).append(qname)

        # Merge declarations and definitions by resolved qname.
        self.funcs = {}
        for rec in self.raw_funcs:
            qname = self._resolve_func_qname(rec)
            merged = self.funcs.setdefault(qname, {
                "qname": qname, "simple": rec.simple.lstrip("~"),
                "cls": None, "file": rec.file, "line": rec.line,
                "bodies": [], "requires_exprs": [], "acquire_exprs": [],
                "ns": rec.ns, "hot": False, "virt": False, "files": set()})
            cls = self._resolve_func_class(rec)
            if cls is not None:
                merged["cls"] = cls
            merged["bodies"].extend(rec.bodies)
            merged["requires_exprs"].extend(rec.requires_exprs)
            merged["acquire_exprs"].extend(rec.acquire_exprs)
            merged["hot"] = merged["hot"] or rec.hot
            merged["virt"] = merged["virt"] or rec.virt
            merged["files"].add(rec.file)
        self.funcs_by_simple = {}
        for qname, f in self.funcs.items():
            self.funcs_by_simple.setdefault(f["simple"], []).append(qname)

    def _resolve_func_class(self, rec):
        if rec.lexical_class:
            return rec.lexical_class
        name = rec.raw_name
        if "::" in name:
            prefix = name.split("::")[-2]
            cands = self.classes_by_simple.get(prefix, [])
            if len(cands) == 1:
                return cands[0]
            for cand in cands:
                if cand.startswith("::".join(rec.ns)):
                    return cand
        return None

    def _resolve_func_qname(self, rec):
        cls = self._resolve_func_class(rec)
        simple = rec.simple
        if cls is not None:
            return cls + "::" + simple
        return "::".join(rec.ns + [simple]) if rec.ns else simple

    def resolve_cap(self, expr, func, body):
        """Maps a capability expression (bare member, namespace-scope
        name, or dotted path) to a capability id. Unresolvable
        expressions get a per-function-local id — correct for locals,
        and incapable of forming false cross-function aliases."""
        expr = expr.strip().lstrip("&").strip()
        expr = expr.replace("->", ".")
        expr = re.sub(r"^this\.", "", expr)
        if not expr or not re.fullmatch(r"[\w.]+", expr):
            return None
        parts = expr.split(".")
        cls = self.classes.get(func["cls"]) if func["cls"] else None
        if len(parts) == 1:
            name = parts[0]
            if cls and name in cls["members"]:
                return cls["members"][name]
            cands = self.caps_by_simple.get(name, [])
            if len(cands) == 1:
                return cands[0]
            return f"<local {func['qname']}::{expr}>"
        obj, field = ".".join(parts[:-1]), parts[-1]
        obj_simple = parts[0]
        obj_type = (body["local_types"].get(obj_simple) or
                    body["param_types"].get(obj_simple) or
                    (cls["member_types"].get(obj_simple) if cls else None))
        if obj_type:
            tcands = self.classes_by_simple.get(obj_type, [])
            if len(tcands) == 1:
                members = self.classes[tcands[0]]["members"]
                if field in members:
                    return members[field]
        cands = self.caps_by_simple.get(field, [])
        if len(cands) == 1:
            return cands[0]
        return f"<local {func['qname']}::{obj}.{field}>"

    def resolve_call(self, obj, name, func, body):
        """Returns the qnames a call may dispatch to. Typed objects
        narrow to the exact class; everything else unions over all
        same-named functions (conservative)."""
        cands = self.funcs_by_simple.get(name, [])
        if not cands:
            return []
        if obj and obj not in ("this",):
            obj_simple = obj.replace("->", ".").split(".")[0]
            cls = self.classes.get(func["cls"]) if func["cls"] else None
            obj_type = (body["local_types"].get(obj_simple) or
                        body["param_types"].get(obj_simple) or
                        (cls["member_types"].get(obj_simple)
                         if cls else None))
            if obj_type:
                tcands = self.classes_by_simple.get(obj_type, [])
                if len(tcands) == 1:
                    narrowed = [q for q in cands
                                if self.funcs[q]["cls"] == tcands[0]]
                    if narrowed:
                        return narrowed
                    return []
        elif func["cls"]:
            # Unqualified call inside a member function: C++ name
            # lookup finds the member first, so a same-class candidate
            # beats the cross-class union.
            own = [q for q in cands if self.funcs[q]["cls"] == func["cls"]]
            if own:
                return own
        return cands

    # -- analysis -----------------------------------------------------------

    def analyze(self):
        """Runs the lock-order and condvar-hold analyses; returns the
        findings list and leaves the edge graph on self.edges."""
        # Transitive acquire summaries, to a fixpoint over the call
        # graph: tacq(F) = direct acquires ∪ tacq(resolved callees).
        tacq = {}
        call_edges = {}
        for qname, f in self.funcs.items():
            direct = set()
            for expr in f["acquire_exprs"]:
                body = f["bodies"][0] if f["bodies"] else new_body()
                cap = self.resolve_cap(expr, f, body)
                if cap:
                    direct.add(cap)
            callees = set()
            for body in f["bodies"]:
                for ev in body["events"]:
                    if ev[0] == "acquire":
                        cap = self.resolve_cap(ev[1], f, body)
                        if cap:
                            direct.add(cap)
                    elif ev[0] == "call":
                        callees.update(self.resolve_call(ev[1], ev[2],
                                                         f, body))
            tacq[qname] = direct
            call_edges[qname] = callees
        changed = True
        while changed:
            changed = False
            for qname in self.funcs:
                before = len(tacq[qname])
                for callee in call_edges[qname]:
                    tacq[qname] |= tacq.get(callee, set())
                if len(tacq[qname]) != before:
                    changed = True

        findings = []
        self.edges = {}
        for qname in sorted(self.funcs):
            f = self.funcs[qname]
            for body in f["bodies"]:
                findings.extend(self._walk_body(f, body, tacq))
        findings.extend(self._cycle_findings())
        return findings

    def _allowed(self, rel, line, rule):
        raw = self.raw_lines.get(rel)
        if raw is None or not 1 <= line <= len(raw):
            return False
        return use_suppression(rel, line, raw[line - 1], rule)

    def _add_edge(self, held_from, to, rel, line, func, via):
        if self._allowed(rel, line, "lock-order"):
            return
        key = (held_from, to)
        if key not in self.edges:
            self.edges[key] = {"file": rel, "line": line,
                               "func": func, "via": via}

    def _walk_body(self, f, body, tacq):
        findings = []
        held = []
        for expr in f["requires_exprs"]:
            cap = self.resolve_cap(expr, f, body)
            if cap and cap not in held:
                held.append(cap)
        for ev in body["events"]:
            kind = ev[0]
            if kind == "acquire":
                cap = self.resolve_cap(ev[1], f, body)
                if not cap:
                    continue
                rel, line = ev[3], ev[4]
                for h in held:
                    self._add_edge(h, cap, rel, line, f["qname"],
                                   "acquires")
                if cap not in held:
                    held.append(cap)
            elif kind == "release":
                cap = self.resolve_cap(ev[1], f, body)
                if cap in held:
                    held.remove(cap)
            elif kind == "wait":
                cap = self.resolve_cap(ev[1], f, body)
                rel, line = ev[2], ev[3]
                extra = [h for h in held if h != cap]
                if extra and not self._allowed(rel, line, "condvar-hold"):
                    findings.append(finding(
                        rel, line, "condvar-hold",
                        f"CondVar wait on {cap or ev[1]} in {f['qname']} "
                        f"while also holding {', '.join(extra)} — the "
                        "wait releases only its own mutex, so the "
                        "second lock blocks every would-be notifier"))
            elif kind == "call":
                if not held:
                    continue
                targets = set()
                for callee in self.resolve_call(ev[1], ev[2], f, body):
                    targets |= tacq.get(callee, set())
                rel, line = ev[3], ev[4]
                for cap in sorted(targets):
                    if cap in held:
                        continue  # re-acquire guards are the callee's bug
                    for h in held:
                        self._add_edge(h, cap, rel, line, f["qname"],
                                       f"calls {ev[2]}")
        return findings

    def _cycle_findings(self):
        graph = {}
        for (a, b) in self.edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
        sccs = tarjan_sccs(graph)
        findings = []
        for scc in sccs:
            scc_set = set(scc)
            if len(scc) == 1:
                node = scc[0]
                if (node, node) not in self.edges:
                    continue
            cycle = self._cycle_path(sorted(scc)[0], scc_set, graph)
            if not cycle:
                continue
            witness = []
            for a, b in zip(cycle, cycle[1:]):
                w = self.edges[(a, b)]
                witness.append(f"{a} -> {b} at {w['file']}:{w['line']} "
                               f"in {w['func']} ({w['via']})")
            first = self.edges[(cycle[0], cycle[1])]
            path = " -> ".join(cycle)
            findings.append(finding(
                first["file"], first["line"], "lock-order",
                f"acquired-while-holding cycle: {path} — two threads "
                "taking these locks in opposite order deadlock "
                f"[witness: {'; '.join(witness)}]", witness))
        return findings

    @staticmethod
    def _cycle_path(start, scc_set, graph):
        """A concrete witness cycle from `start` back to itself staying
        inside one SCC (or a self-loop)."""
        if start in graph.get(start, ()):
            return [start, start]
        stack = [(start, [start])]
        seen = set()
        while stack:
            node, path = stack.pop()
            for nxt in sorted(graph.get(node, ())):
                if nxt == start and len(path) > 1:
                    return path + [start]
                if nxt in scc_set and nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    # -- hot-path purity ----------------------------------------------------

    def _object_type(self, obj, func, body):
        """Simple type name of a dotted receiver's first component, via
        the same local/param/member maps resolve_call uses."""
        obj_simple = obj.replace("->", ".").replace("this.", "").split(".")[0]
        cls = self.classes.get(func["cls"]) if func["cls"] else None
        return (body["local_types"].get(obj_simple) or
                body["param_types"].get(obj_simple) or
                (cls["member_types"].get(obj_simple) if cls else None))

    @staticmethod
    def _recv_key(obj):
        return re.sub(r"^this\.", "", obj.replace("->", "."))

    def _class_reserved(self):
        """receiver-name -> reserving class qnames: the constructor
        down-payment side of the amortized-capacity escape. A reserve
        anywhere in class C covers growth calls on that member in every
        method of C (the alloc-guard test enforces that the reserved
        capacity actually bounds steady-state growth)."""
        reserved = {}
        for f in self.funcs.values():
            if not f["cls"]:
                continue
            for body in f["bodies"]:
                for ev in body["events"]:
                    if ev[0] == "call" and ev[2] == "reserve":
                        reserved.setdefault(f["cls"], set()).add(
                            self._recv_key(ev[1]))
        return reserved

    def hot_findings(self, whitelist):
        """Transitive purity walk from every SES_HOT root. Reports each
        violating site once, with the witness call chain from the first
        (alphabetically) root that reaches it."""
        roots = sorted(q for q, f in self.funcs.items() if f["hot"])
        findings = []
        if not roots:
            return findings
        class_reserved = self._class_reserved()
        reported_lines = set()   # (rel, line): one finding per site
        for root in roots:
            seen = {root}
            queue = [(root, [])]
            while queue:
                qname, chain = queue.pop(0)
                f = self.funcs[qname]
                for body in f["bodies"]:
                    self._hot_walk_body(root, f, body, chain, class_reserved,
                                        whitelist, seen, queue,
                                        reported_lines, findings)
        return findings

    def _hot_violation(self, findings, reported_lines, root, chain,
                       rel, line, detail):
        if self._allowed(rel, line, "hot-path"):
            return
        if (rel, line) in reported_lines:
            return
        reported_lines.add((rel, line))
        witness = [f"SES_HOT root {root}"] + chain
        via = (f" [witness: {' -> '.join([root] + chain)}]" if chain else "")
        findings.append(finding(
            rel, line, "hot-path",
            f"reachable from SES_HOT {root}: {detail}{via}", witness))

    def _hot_walk_body(self, root, f, body, chain, class_reserved,
                       whitelist, seen, queue, reported_lines, findings):
        flag = self._hot_violation
        body_reserved = set()
        cls_reserved = class_reserved.get(f["cls"], set()) if f["cls"] else set()
        for ev in body["events"]:
            kind = ev[0]
            if kind == "acquire":
                flag(findings, reported_lines, root, chain, ev[3], ev[4],
                     f"mutex acquisition of '{ev[1]}' in {f['qname']} — "
                     "hot kernels must run lock-free; hoist the lock to "
                     "the cold caller")
            elif kind == "wait":
                flag(findings, reported_lines, root, chain, ev[2], ev[3],
                     f"CondVar wait on '{ev[1]}' in {f['qname']} — "
                     "blocking on the hot path")
            elif kind == "hotalloc":
                flag(findings, reported_lines, root, chain, ev[2], ev[3],
                     f"allocation '{ev[1]}' in {f['qname']} — preallocate "
                     "in the owner or move this to a cold path")
            elif kind == "hotio":
                flag(findings, reported_lines, root, chain, ev[2], ev[3],
                     f"logging/IO/clock read '{ev[1]}' in {f['qname']} — "
                     "hot kernels must not log, stream, or read clocks "
                     "(SES_CHECK is the sanctioned exception)")
            elif kind == "hotsub":
                recv_type = self._object_type(ev[1], f, body)
                if recv_type in HOT_MAP_TYPES:
                    flag(findings, reported_lines, root, chain, ev[2], ev[3],
                         f"map-shaped lookup '{ev[1]}[...]' in "
                         f"{f['qname']} — hoist into dense, "
                         "index-addressed scratch")
            elif kind == "call":
                obj, name, rel, line = ev[1], ev[2], ev[3], ev[4]
                if self._allowed(rel, line, "hot-path"):
                    continue  # witness-edge suppression cuts the subtree
                if name == "reserve":
                    body_reserved.add(self._recv_key(obj))
                    continue  # the amortized down-payment itself
                if name in HOT_GROW_METHODS:
                    recv = self._recv_key(obj)
                    if (name != "resize" and
                            (recv in body_reserved or recv in cls_reserved)):
                        continue  # amortized-capacity escape
                    flag(findings, reported_lines, root, chain, rel, line,
                         f"container growth '{obj}.{name}' in {f['qname']} "
                         "without a matching reserve (amortized-capacity "
                         "escape: reserve in this body or in another "
                         "member of the same class)")
                    continue
                if name in HOT_MAP_METHODS:
                    recv_type = self._object_type(obj, f, body) if obj else None
                    if recv_type in HOT_MAP_TYPES:
                        flag(findings, reported_lines, root, chain, rel, line,
                             f"map-shaped lookup '{obj}.{name}' in "
                             f"{f['qname']} — hoist into dense, "
                             "index-addressed scratch")
                        continue
                if name in whitelist:
                    continue  # trusted pure leaf (tools/hot_whitelist.txt)
                cands = self.resolve_call(obj, name, f, body)
                if not cands:
                    flag(findings, reported_lines, root, chain, rel, line,
                         f"call to '{name}' in {f['qname']} that the "
                         "analysis cannot see — add it to "
                         "tools/hot_whitelist.txt if it is a pure leaf, "
                         "or suppress this edge with a justification")
                    continue
                virt = [q for q in cands
                        if self.funcs[q]["virt"] and
                        not self._final_class(self.funcs[q]["cls"])]
                if virt:
                    flag(findings, reported_lines, root, chain, rel, line,
                         f"virtual dispatch '{obj + '.' if obj else ''}"
                         f"{name}' in {f['qname']} through non-final "
                         f"{self.funcs[virt[0]]['cls'] or '?'} — devirtualize "
                         "(final receiver) or suppress with a justification")
                    continue
                walkable = [q for q in cands if self.funcs[q]["bodies"]]
                declared_acquire = [q for q in cands
                                    if self.funcs[q]["acquire_exprs"]]
                if declared_acquire and not walkable:
                    flag(findings, reported_lines, root, chain, rel, line,
                         f"call to SES_ACQUIRE-declared '{name}' in "
                         f"{f['qname']} — hot kernels must run lock-free")
                    continue
                if not walkable:
                    flag(findings, reported_lines, root, chain, rel, line,
                         f"call to '{name}' in {f['qname']} with no "
                         "analyzable body — add it to "
                         "tools/hot_whitelist.txt if it is a pure leaf, "
                         "or suppress this edge with a justification")
                    continue
                for cand in walkable:
                    if cand not in seen:
                        seen.add(cand)
                        queue.append(
                            (cand, chain + [f"{cand} (at {rel}:{line})"]))

    def _final_class(self, cls_qname):
        if not cls_qname:
            return False
        entry = self.classes.get(cls_qname)
        return bool(entry and entry.get("final"))

    def hot_table(self):
        """The SES_HOT inventory — every annotated root the hot-path
        walk proves pure, as docs/ARCHITECTURE.md embeds it verbatim
        (pinned by the docs-lockstep test)."""
        rows = [("hot function", "declared-in")]
        for qname in sorted(self.funcs):
            f = self.funcs[qname]
            if not f["hot"]:
                continue
            declared = min(f["files"],
                           key=lambda p: (not p.endswith(".h"), p))
            rows.append((qname, declared))
        widths = [max(len(r[i]) for r in rows) for i in range(2)]
        lines = []
        for idx, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)).rstrip())
            if idx == 0:
                lines.append("  ".join("-" * widths[i]
                                       for i in range(2)).rstrip())
        return "\n".join(lines)

    # -- capability inventory ----------------------------------------------

    def capabilities_table(self):
        """The derived mutex inventory plus, per capability, which other
        capabilities can be held at any of its acquisition sites — the
        canonical acquisition-order table docs/ARCHITECTURE.md embeds
        verbatim (pinned by the docs-lockstep test)."""
        rows = [("capability", "kind", "declared-in", "held-when-acquiring")]
        held_before = {}
        for (a, b) in self.edges:
            held_before.setdefault(b, set()).add(a)
        for qname in sorted(self.caps):
            cap = self.caps[qname]
            before = sorted(h for h in held_before.get(qname, ())
                            if not h.startswith("<local "))
            rows.append((qname, cap["kind"], cap["file"],
                         ", ".join(before) if before else "(none)"))
        widths = [max(len(r[i]) for r in rows) for i in range(4)]
        lines = []
        for idx, row in enumerate(rows):
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)).rstrip())
            if idx == 0:
                lines.append("  ".join("-" * widths[i]
                                       for i in range(4)).rstrip())
        return "\n".join(lines)


def tarjan_sccs(graph):
    """Iterative Tarjan strongly-connected components, deterministic
    over sorted node order."""
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]
    for root in sorted(graph):
        if root in index:
            continue
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    top = stack.pop()
                    on_stack.discard(top)
                    scc.append(top)
                    if top == node:
                        break
                sccs.append(sorted(scc))
    return sccs


# ---------------------------------------------------------------------------
# Status-propagation discipline
# ---------------------------------------------------------------------------

STATUS_FN_RE = re.compile(
    r"\b(?:ses::)?(?:util::)?(?:Status|Result\s*<[^;{}=]*>)\s+"
    r"(?:\w+(?:<[^<>]*>)?::)*([A-Za-z_]\w*)\s*\(")
VOID_CAST_RE = re.compile(r"\(\s*void\s*\)\s*$")
CONTROL_INIT_KEYWORDS = {"if", "switch", "for", "while"}


def status_function_names(files):
    """Every simple name declared anywhere in the tree with a
    util::Status / util::Result<T> return type — the database the
    discard scan checks call sites against."""
    names = set()
    for rel, code_lines in files.items():
        del rel
        text = "\n".join(blank_preprocessor(code_lines))
        for m in STATUS_FN_RE.finditer(text):
            names.add(m.group(1))
    return names


def check_discarded_status(rel, code_lines, raw_lines, names):
    """Flags statement-position calls to Status-returning functions
    whose value evaporates. Three accepted shapes: consume it, return
    it, or `(void)call(); // ses-lint: allow(discarded-status)` — the
    cast makes the discard explicit, the suppression carries the
    reason. [[nodiscard]] makes the compiler the backstop for anything
    this token-level scan cannot see (nested lambdas, macro bodies)."""
    findings = []
    text = "\n".join(blank_preprocessor(code_lines))
    line_starts = [0]
    for idx, ch in enumerate(text):
        if ch == "\n":
            line_starts.append(idx + 1)

    # Paren depth prefix and, per open paren, the keyword before it —
    # so `for (x; F(); ...)` conditions are not mistaken for discards
    # while `Submit([&]{ F(); })` lambda bodies still are.
    opener_stack = []
    opener_at = [None] * len(text)
    depth = [0] * (len(text) + 1)
    d = 0
    for i, ch in enumerate(text):
        opener_at[i] = opener_stack[-1] if opener_stack else None
        depth[i] = d
        if ch == "(":
            before = text[:i].rstrip()
            kw = re.search(r"([A-Za-z_]\w*)$", before)
            opener_stack.append(kw.group(1) if kw else "")
            d += 1
        elif ch == ")":
            if opener_stack:
                opener_stack.pop()
            d = max(0, d - 1)

    def prev_nonws(pos):
        j = pos - 1
        while j >= 0 and text[j].isspace():
            j -= 1
        return (text[j], j) if j >= 0 else ("", -1)

    def close_of_call(open_pos):
        dd = 0
        for j in range(open_pos, len(text)):
            if text[j] == "(":
                dd += 1
            elif text[j] == ")":
                dd -= 1
                if dd == 0:
                    return j
        return -1

    def next_nonws(pos):
        j = pos
        while j < len(text) and text[j].isspace():
            j += 1
        return text[j] if j < len(text) else ""

    def chain_ends_in_semicolon(close_pos):
        """True when the expression containing the call terminates at a
        statement `;` — a comma chain like `F(), G();` does; a
        brace-initializer element `{F(), x}` hits its closing `}` first
        and an argument `g(F(), x)` hits its closing `)` first."""
        pd = bd = 0
        for j in range(close_pos + 1, len(text)):
            ch = text[j]
            if ch == "(":
                pd += 1
            elif ch == ")":
                if pd == 0:
                    return False
                pd -= 1
            elif ch == "{":
                bd += 1
            elif ch == "}":
                if bd == 0:
                    return False
                bd -= 1
            elif ch == ";" and pd == 0 and bd == 0:
                return True
        return False

    for m in CALL_RE.finditer(text):
        name = m.group(3)
        if name not in names:
            continue
        open_pos = text.index("(", m.end() - 1)
        close_pos = close_of_call(open_pos)
        if close_pos < 0:
            continue
        lineno = bisect.bisect_right(line_starts, m.start())
        raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        pc, _ = prev_nonws(m.start())
        nc = next_nonws(close_pos + 1)
        void_cast = VOID_CAST_RE.search(text[:m.start()]) is not None

        if void_cast:
            # use_suppression (not bare suppressed): the allow comment
            # is load-bearing here, so the stale audit must see it.
            if not use_suppression(rel, lineno, raw_line,
                                   "discarded-status"):
                findings.append(finding(
                    rel, lineno, "discarded-status",
                    f"(void)-discard of Status-returning '{name}' needs "
                    "a same-line `// ses-lint: allow(discarded-status)` "
                    "with the justification"))
            continue

        opener = opener_at[m.start()]
        in_control_header = opener in CONTROL_INIT_KEYWORDS
        discard = False
        if pc == "(" and in_control_header and nc == ";":
            discard = True  # if/switch/for init-statement
        elif pc in (";", "{", "}", ",", "") and nc in (";", ","):
            # Statement position (including lambda bodies nested in
            # call arguments) — but never a for/while header clause,
            # never a brace-initializer element or argument slot.
            if not (depth[m.start()] > 0 and in_control_header):
                discard = (nc == ";" or
                           chain_ends_in_semicolon(close_pos))
        if not discard:
            continue
        if use_suppression(rel, lineno, raw_line, "discarded-status"):
            # The allow comment did engage with a real discard (so it
            # is not stale) — but without the (void) cast it downgrades
            # nothing; the discard must still be made explicit.
            findings.append(finding(
                rel, lineno, "discarded-status",
                f"suppressed discard of Status-returning '{name}' must "
                "be explicit: write `(void)...;` next to the allow "
                "comment"))
        else:
            findings.append(finding(
                rel, lineno, "discarded-status",
                f"result of Status-returning '{name}' is discarded — "
                "consume it, return it (SES_RETURN_IF_ERROR / "
                "SES_ASSIGN_OR_RETURN), or make the drop explicit with "
                "`(void)` plus a same-line allow(discarded-status)"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                files.extend(os.path.join(root, name)
                             for name in sorted(names)
                             if name.endswith((".h", ".cc")))
        elif path.endswith((".h", ".cc")):
            files.append(path)
    return files


def compile_commands_filter(files, cc_path):
    """Keeps headers plus exactly the *.cc translation units the build
    exports in compile_commands.json."""
    try:
        with open(cc_path, encoding="utf-8") as fh:
            entries = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"ses_lint: cannot read {cc_path}: {err}", file=sys.stderr)
        return files
    built = set()
    for entry in entries:
        src = entry.get("file", "")
        if not os.path.isabs(src):
            src = os.path.join(entry.get("directory", ""), src)
        built.add(os.path.realpath(src))
    return [f for f in files
            if f.endswith(".h") or os.path.realpath(f) in built]


def changed_files(root, ref):
    """Repo-relative paths that differ from `ref`, plus untracked
    files; None when git is unavailable (caller reports everything)."""
    try:
        diff = subprocess.run(
            ["git", "-C", root, "diff", "--name-only", ref, "--"],
            capture_output=True, text=True, check=True)
        untracked = subprocess.run(
            ["git", "-C", root, "ls-files", "--others",
             "--exclude-standard"],
            capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError) as err:
        print(f"ses_lint: --changed-only: git failed ({err}); "
              "reporting all findings", file=sys.stderr)
        return None
    changed = set()
    for out in (diff.stdout, untracked.stdout):
        changed.update(line.strip() for line in out.splitlines()
                       if line.strip())
    return changed


def load_hot_whitelist(root):
    """Simple callee names the hot-path walk trusts as pure leaves —
    checked in at tools/hot_whitelist.txt, one name per line, `#`
    comments. Missing file means an empty whitelist (fixture trees)."""
    names = set()
    try:
        with open(os.path.join(root, "tools", "hot_whitelist.txt"),
                  encoding="utf-8") as fh:
            for line in fh:
                line = line.split("#", 1)[0].strip()
                if line:
                    names.add(line)
    except OSError:
        pass
    return names


STALE_STRIP_RE = re.compile(r"\s*//\s*ses-lint:\s*allow\([^)]*\).*$")


def stale_suppressions(raws, contents):
    """Every allow() whose (file, line, rule) never landed in
    USED_SUPPRESSIONS this run. Only lines that carry code are audited:
    an allow() on a pure comment line is prose (docs quoting the
    syntax), not a suppression — rules match stripped code, so it never
    suppressed anything in the first place. Returns (findings, fixes)
    where fixes maps rel -> {lineno: kept_rule_list} for --fix-stale."""
    findings = []
    fixes = {}
    for rel in sorted(raws):
        code = contents.get(rel, [])
        for lineno, line in enumerate(raws[rel], start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            if lineno <= len(code) and not code[lineno - 1].strip():
                continue
            rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
            stale = [r for r in rules
                     if (rel, lineno, r) not in USED_SUPPRESSIONS]
            if not stale:
                continue
            for r in stale:
                unknown = "" if r in RULE_DOCS else " (unknown rule id)"
                findings.append(finding(
                    rel, lineno, "stale-suppression",
                    f"allow({r}) suppresses no finding on this "
                    f"line{unknown} — the code it excused is gone; "
                    "delete it (or run --fix-stale)"))
            fixes.setdefault(rel, {})[lineno] = \
                [r for r in rules if r not in stale]
    return findings, fixes


def apply_stale_fixes(root, fixes):
    """Rewrites files in place, dropping dead allow() comments (or just
    the dead rule ids when live ones share the list)."""
    removed = 0
    for rel, lines in sorted(fixes.items()):
        path = os.path.join(root, rel)
        try:
            with open(path, encoding="utf-8") as fh:
                content = fh.read().split("\n")
        except OSError as err:
            print(f"ses_lint: --fix-stale: cannot read {rel}: {err}",
                  file=sys.stderr)
            continue
        for lineno, kept in lines.items():
            if not 1 <= lineno <= len(content):
                continue
            line = content[lineno - 1]
            if kept:
                line = ALLOW_RE.sub(
                    "// ses-lint: allow(" + ", ".join(kept) + ")",
                    line, count=1)
            else:
                line = STALE_STRIP_RE.sub("", line)
            content[lineno - 1] = line
            removed += 1
        # Dropping a whole-line suppression comment leaves an empty
        # line behind only if the comment stood alone; remove it.
        content = [ln for idx, ln in enumerate(content, start=1)
                   if not (idx in lines and not lines[idx]
                           and ln.strip() == "")]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(content))
        print(f"ses_lint: --fix-stale: cleaned {rel}", file=sys.stderr)
    print(f"ses_lint: --fix-stale: removed {removed} stale "
          "suppression(s)", file=sys.stderr)


def render_text(problems, checked):
    for p in sorted(problems, key=lambda p: (p["file"], p["line"],
                                             p["rule"], p["message"])):
        print(f"{p['file']}:{p['line']}: {p['rule']}: {p['message']}",
              file=sys.stderr)
    print(f"ses_lint: checked {checked} file(s): "
          f"{len(problems)} problem(s)")


def render_json(problems):
    for p in sorted(problems, key=lambda p: (p["file"], p["line"],
                                             p["rule"], p["message"])):
        print(json.dumps(p, sort_keys=True))


def render_github(problems, checked):
    """GitHub Actions workflow commands: one ::error per finding, so
    the lint job annotates the offending lines inline on the PR diff
    (percent-encoding per the workflow-command spec)."""
    def esc(s):
        return (s.replace("%", "%25").replace("\r", "%0D")
                .replace("\n", "%0A"))

    for p in sorted(problems, key=lambda p: (p["file"], p["line"],
                                             p["rule"], p["message"])):
        print(f"::error file={esc(p['file'])},line={p['line']},"
              f"title=ses_lint {esc(p['rule'])}::{esc(p['message'])}")
    print(f"ses_lint: checked {checked} file(s): "
          f"{len(problems)} problem(s)")


def main(argv):
    parser = argparse.ArgumentParser(
        description="ses project-invariant linter and flow analyzer")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and one-line descriptions")
    parser.add_argument("--capabilities", action="store_true",
                        help="dump the derived mutex/acquisition-order "
                             "table and exit")
    parser.add_argument("--hot-functions", action="store_true",
                        help="dump the SES_HOT function inventory and exit")
    parser.add_argument("--fix-stale", action="store_true",
                        help="delete stale ses-lint allow() comments in "
                             "place instead of reporting them")
    parser.add_argument("--format", choices=("text", "json", "github"),
                        default="text",
                        help="finding output format (default: text)")
    parser.add_argument("--changed-only", metavar="GIT_REF", default=None,
                        help="report only findings touching files that "
                             "differ from GIT_REF (analysis still runs "
                             "over the whole tree)")
    parser.add_argument("--compile-commands", metavar="FILE", default=None,
                        help="restrict scanned *.cc files to translation "
                             "units listed in this compile_commands.json")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src tools "
                             "tests bench examples under --root)")
    args = parser.parse_args(argv[1:])

    if args.list_rules:
        for rule in sorted(RULE_DOCS):
            print(f"{rule}: {RULE_DOCS[rule]}")
        return 0

    root = os.path.abspath(args.root) if args.root else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = [os.path.join(root, p) if not os.path.isabs(p) else p
             for p in (args.paths or
                       ["src", "tools", "tests", "bench", "examples"])]
    paths = [p for p in paths if os.path.exists(p)]

    files = collect(paths)
    if args.compile_commands:
        files = compile_commands_filter(files, args.compile_commands)
    # Deterministic scan order: merged-function metadata (e.g. which
    # file "declares" a hot function) must not depend on readdir order.
    files.sort()

    USED_SUPPRESSIONS.clear()
    linter = Linter(root)
    model = CppModel()
    contents = {}   # rel -> code_lines (for the status-name database)
    raws = {}
    for path in files:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except (OSError, UnicodeDecodeError) as err:
            linter.problems.append(finding(rel, 0, "unreadable", str(err)))
            continue
        linter.lint_file(rel, text)
        code, raw = strip_code(text)
        contents[rel] = code
        raws[rel] = raw
        if rel.startswith("src/") and rel not in FLOW_EXEMPT:
            model.scan_file(rel, code, raw)

    model.finalize()
    problems = list(linter.problems)
    problems.extend(model.analyze())

    if args.capabilities:
        print(model.capabilities_table())
        return 0
    if args.hot_functions:
        print(model.hot_table())
        return 0

    names = status_function_names(contents)
    for rel in sorted(contents):
        if rel in FLOW_EXEMPT:
            continue
        problems.extend(check_discarded_status(rel, contents[rel],
                                               raws[rel], names))

    problems.extend(model.hot_findings(load_hot_whitelist(root)))

    # Last, after every rule has had its chance to register the
    # suppressions it honored: the stale audit.
    stale, fixes = stale_suppressions(raws, contents)
    if args.fix_stale:
        apply_stale_fixes(root, fixes)
    else:
        problems.extend(stale)

    if args.changed_only is not None:
        changed = changed_files(root, args.changed_only)
        if changed is not None:
            def touches(p):
                if p["file"] in changed:
                    return True
                return any(f"at {c}:" in w for w in p["witness"]
                           for c in changed)
            problems = [p for p in problems if touches(p)]

    if args.format == "json":
        render_json(problems)
    elif args.format == "github":
        render_github(problems, len(files))
    else:
        render_text(problems, len(files))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
