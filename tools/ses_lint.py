#!/usr/bin/env python3
"""ses_lint — project-invariant linter for the ses repository.

Usage: ses_lint.py [--root DIR] [--list-rules] [PATH ...]

Enforces, with nothing beyond the Python standard library, the
invariants the compiler cannot see (and that `clang -Wthread-safety`
does not cover). PATHs default to `src tools tests` under --root
(default: the repository root, i.e. the parent of this script's
directory); directories are walked for *.h / *.cc files. Each rule
applies only inside its scope — listed below and documented in
docs/ARCHITECTURE.md ("Concurrency invariants & static analysis").

Rules:
  layering              src/ include-layering matrix: util includes
                        nothing above it, core -> util only, ebsn ->
                        core/util, api -> core/util, exp -> anything
                        (its RunSolvers is a documented client of api).
  determinism-clock     no wall-clock reads (std::chrono clocks,
                        time()/clock()/gettimeofday) in src/core or
                        src/ebsn outside core/solve_context.h — solver
                        results must not depend on when they run.
  determinism-random    no nondeterministic randomness (std::rand,
                        srand, std::random_device) in src/core or
                        src/ebsn — all randomness flows through seeded
                        util RNGs.
  unordered-accumulate  no range-for over a std::unordered_map/set
                        whose body accumulates (+=, push_back, insert,
                        ...) in src/core or src/ebsn — hash iteration
                        order is implementation-defined, so such loops
                        break bit-identical reproducibility.
  raw-mutex             no raw std synchronization primitives
                        (std::mutex, std::shared_mutex,
                        std::condition_variable, std::*_lock) in src/
                        outside util/mutex.h — use the annotated
                        util::Mutex wrappers so clang's Thread Safety
                        Analysis sees every lock.
  tsa-escape            SES_NO_THREAD_SAFETY_ANALYSIS is reserved for
                        util/mutex.h itself; anywhere else in src/ the
                        annotation must be fixed, not muted.
  naked-new             no naked `new` in src/ — wrap allocations in
                        unique_ptr/shared_ptr (or suppress with a
                        justification for intentional leaks).
  using-namespace-header no `using namespace` in any header — it leaks
                        into every includer.

Suppressions: append `// ses-lint: allow(<rule>)` to the offending
line (comma-separate several rule ids). Comments, string literals, and
character literals are stripped before matching, so prose never trips
a rule.

Exit status: 0 when clean, 1 with one "file:line: rule: message" per
problem otherwise.
"""

import argparse
import os
import re
import sys

# Layer -> layers it may include (by the first path component of a
# quoted include). tests/bench/tools/examples may use everything and are
# exempt. exp legitimately includes api (exp::RunSolvers is a documented
# client of api::Scheduler; see docs/ARCHITECTURE.md "Layer map").
LAYERS = ("util", "core", "ebsn", "exp", "api")
ALLOWED_INCLUDES = {
    "util": {"util"},
    "core": {"core", "util"},
    "ebsn": {"ebsn", "core", "util"},
    "api": {"api", "core", "util"},
    "exp": {"exp", "ebsn", "core", "util", "api"},
}

# Files (repo-relative, forward slashes) exempt from the determinism
# clock rule: the two sanctioned wall-clock surfaces.
CLOCK_EXEMPT = {"src/core/solve_context.h", "src/util/timer.h"}

# Files allowed to touch raw std synchronization primitives and the
# analysis escape hatch: the annotated wrappers themselves.
MUTEX_EXEMPT = {"src/util/mutex.h"}
TSA_ESCAPE_EXEMPT = {"src/util/mutex.h", "src/util/thread_annotations.h"}

CLOCK_RE = re.compile(
    r"std::chrono::(?:steady_clock|system_clock|high_resolution_clock)"
    r"|(?<![\w:])(?:time|clock|gettimeofday|localtime|mktime)\s*\(")
RANDOM_RE = re.compile(r"std::rand\b|(?<![\w:])srand\s*\(|random_device")
RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|timed_|shared_)?mutex\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b")
TSA_ESCAPE_RE = re.compile(r"\bSES_NO_THREAD_SAFETY_ANALYSIS\b")
NEW_RE = re.compile(r"(?<![\w.])new\b(?!\s*\()")  # `new (addr)` placement ok
SMART_WRAP_RE = re.compile(
    r"unique_ptr|shared_ptr|make_unique|make_shared|weak_ptr")
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*[^;:)])\s:\s([^)]+)\)")
ACCUMULATE_RE = re.compile(
    r"\+=|-=|\*=|/=|\|=|&=|\^=|\+\+|--"
    r"|push_back|emplace_back|emplace\(|insert\(|append\(")
ALLOW_RE = re.compile(r"//\s*ses-lint:\s*allow\(([^)]*)\)")

RULE_DOCS = {
    "layering": "src/ include-layering matrix (util < core < ebsn/api < exp)",
    "determinism-clock":
        "no wall-clock reads in src/core|src/ebsn outside solve_context.h",
    "determinism-random":
        "no std::rand/srand/random_device in src/core|src/ebsn",
    "unordered-accumulate":
        "no accumulating range-for over unordered containers in core/ebsn",
    "raw-mutex":
        "annotated util::Mutex wrappers, not raw std primitives, in src/",
    "tsa-escape":
        "SES_NO_THREAD_SAFETY_ANALYSIS only inside util/mutex.h",
    "naked-new": "allocations in src/ go through smart pointers",
    "using-namespace-header": "no `using namespace` in headers",
}


def strip_code(text):
    """Blanks comments and string/char literals, preserving line
    structure, and returns (code_lines, raw_lines). Rules match on
    code_lines; suppression comments are read from raw_lines."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string or char
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if (state == "string" and c == '"') or (
                    state == "char" and c == "'"):
                state = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out).split("\n"), text.split("\n")


def suppressed(raw_line, rule):
    match = ALLOW_RE.search(raw_line)
    if not match:
        return False
    allowed = {r.strip() for r in match.group(1).split(",")}
    return rule in allowed


class Linter:
    def __init__(self, root):
        self.root = root
        self.problems = []

    def report(self, rel, lineno, rule, message, raw_lines):
        if suppressed(raw_lines[lineno - 1], rule):
            return
        self.problems.append(f"{rel}:{lineno}: {rule}: {message}")

    def lint_file(self, path):
        rel = os.path.relpath(path, self.root).replace(os.sep, "/")
        try:
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
        except (OSError, UnicodeDecodeError) as err:
            self.problems.append(f"{rel}: unreadable: {err}")
            return
        code, raw = strip_code(text)

        in_src = rel.startswith("src/")
        layer = rel.split("/")[1] if in_src and rel.count("/") >= 2 else None
        deterministic = layer in ("core", "ebsn")
        is_header = rel.endswith(".h")

        if layer in ALLOWED_INCLUDES:
            self.check_layering(rel, layer, code, raw)
        if deterministic:
            if rel not in CLOCK_EXEMPT:
                self.check_pattern(rel, code, raw, CLOCK_RE,
                                   "determinism-clock",
                                   "wall-clock read in a deterministic "
                                   "layer (use core::SolveContext / "
                                   "util::WallTimer at the call site)")
            self.check_pattern(rel, code, raw, RANDOM_RE,
                               "determinism-random",
                               "nondeterministic randomness (seeded util "
                               "RNGs only)")
            self.check_unordered_accumulate(rel, code, raw)
        if in_src and rel not in MUTEX_EXEMPT:
            self.check_pattern(rel, code, raw, RAW_MUTEX_RE, "raw-mutex",
                               "raw std synchronization primitive (use "
                               "the annotated util::Mutex wrappers)")
        if in_src and rel not in TSA_ESCAPE_EXEMPT:
            self.check_pattern(rel, code, raw, TSA_ESCAPE_RE, "tsa-escape",
                               "thread-safety-analysis escape hatch "
                               "outside util/mutex.h (fix the "
                               "annotation instead)")
        if in_src:
            self.check_naked_new(rel, code, raw)
        if is_header:
            self.check_pattern(rel, code, raw, USING_NAMESPACE_RE,
                               "using-namespace-header",
                               "`using namespace` in a header leaks "
                               "into every includer")

    def check_pattern(self, rel, code, raw, pattern, rule, message):
        for lineno, line in enumerate(code, start=1):
            if pattern.search(line):
                self.report(rel, lineno, rule, message, raw)

    def check_layering(self, rel, layer, code, raw):
        del code  # the include path is a string literal — match raw lines
        allowed = ALLOWED_INCLUDES[layer]
        for lineno, line in enumerate(raw, start=1):
            match = INCLUDE_RE.match(line)
            if not match:
                continue
            target = match.group(1).split("/")[0]
            if target in LAYERS and target not in allowed:
                self.report(
                    rel, lineno, "layering",
                    f"src/{layer} must not include \"{match.group(1)}\" "
                    f"(allowed layers: {', '.join(sorted(allowed))})", raw)

    def check_naked_new(self, rel, code, raw):
        for lineno, line in enumerate(code, start=1):
            if NEW_RE.search(line) and not SMART_WRAP_RE.search(line):
                self.report(rel, lineno, "naked-new",
                            "naked `new` (wrap in unique_ptr/shared_ptr, "
                            "or justify with a suppression)", raw)

    def check_unordered_accumulate(self, rel, code, raw):
        unordered_names = set()
        for line in code:
            match = UNORDERED_DECL_RE.search(line)
            if not match:
                continue
            # The declared name: last identifier before ; = { ( on the
            # line, after the closing template bracket. Heuristic, but
            # the fixture suite pins the cases that matter.
            tail = line[match.end():]
            for name_match in re.finditer(r"(\w+)\s*(?:;|=|\{|\()", tail):
                unordered_names.add(name_match.group(1))
        if not unordered_names:
            return
        for lineno, line in enumerate(code, start=1):
            match = RANGE_FOR_RE.search(line)
            if not match:
                continue
            range_ids = set(re.findall(r"\w+", match.group(2)))
            if not (range_ids & unordered_names):
                continue
            if self.body_accumulates(code, lineno - 1):
                self.report(
                    rel, lineno, "unordered-accumulate",
                    "range-for over an unordered container whose body "
                    "accumulates — hash order is not deterministic "
                    "(iterate a sorted view, or suppress if the "
                    "accumulation is order-insensitive and exact)", raw)

    @staticmethod
    def body_accumulates(code, for_line_index):
        """Scans the brace-matched loop body (or the single statement up
        to the next ';') following the range-for for accumulation."""
        depth = 0
        opened = False
        for lineno in range(for_line_index, min(for_line_index + 200,
                                                len(code))):
            line = code[lineno]
            start = 0
            if lineno == for_line_index:
                close = line.find(")")
                start = close + 1 if close >= 0 else 0
            body = line[start:]
            if ACCUMULATE_RE.search(body):
                return True
            depth += body.count("{") - body.count("}")
            opened = opened or "{" in body
            if opened and depth <= 0:
                return False
            if not opened and ";" in body:
                return False
        return False


def collect(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                files.extend(os.path.join(root, name)
                             for name in sorted(names)
                             if name.endswith((".h", ".cc")))
        elif path.endswith((".h", ".cc")):
            files.append(path)
    return files


def main(argv):
    parser = argparse.ArgumentParser(
        description="ses project-invariant linter")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and one-line descriptions")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src tools "
                             "tests under --root)")
    args = parser.parse_args(argv[1:])

    if args.list_rules:
        for rule in sorted(RULE_DOCS):
            print(f"{rule}: {RULE_DOCS[rule]}")
        return 0

    root = os.path.abspath(args.root) if args.root else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    paths = [os.path.join(root, p) if not os.path.isabs(p) else p
             for p in (args.paths or ["src", "tools", "tests"])]
    paths = [p for p in paths if os.path.exists(p)]

    linter = Linter(root)
    for path in collect(paths):
        linter.lint_file(path)
    for problem in sorted(linter.problems):
        print(problem, file=sys.stderr)
    print(f"ses_lint: checked {len(collect(paths))} file(s): "
          f"{len(linter.problems)} problem(s)")
    return 1 if linter.problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
