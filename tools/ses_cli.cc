/// ses_cli — command-line front end for the whole library.
///
/// Subcommands:
///   generate-data --out=DIR [--users=N --events=N --groups=N --tags=N
///                  --seed=N]
///       Synthesizes a Meetup-like EBSN dataset and saves it as CSV.
///
///   build-instance --data=DIR --out=DIR [--k=N --intervals=N --events=N
///                  --competing-mean=X --seed=N]
///       Builds the paper's Section IV-A workload from a dataset and
///       persists the SES instance.
///
///   solve --instance=DIR [--solver=grd --k=N --seed=N
///         --budget-seconds=X --priority=normal --max-queued=N --metrics]
///       Loads an instance into the scheduler's session cache, submits a
///       solve against it by id through ses::api::Scheduler (at the
///       requested queue priority, under the requested admission bound),
///       prints the schedule summary. With a budget, an expired deadline
///       still prints the best schedule found so far. --metrics appends
///       the scheduler's full metric dump (docs/METRICS.md).
///
///   metrics [--instance=DIR --solver=grd --k=N --requests=N
///           --format=text|csv]
///       Dumps the scheduler metric catalog. Without --instance: a fresh
///       scheduler's registry (every metric name, all zeros — the
///       reference list docs/METRICS.md mirrors). With --instance: runs
///       --requests solves against it (priorities cycled high/normal/
///       batch) first, so the dump shows live values.
///
///   info --instance=DIR | --data=DIR
///       Prints shape statistics for an instance or a dataset.
///
///   bench --trace=FILE [--size=S|M|L --out=FILE --timing=false]
///       Replays a declarative load trace (bench/traces/*.json) against
///       a live scheduler and emits a machine-readable JSON report:
///       throughput, per-lane p50/p99 healthy queue waits, per-solver
///       solve latencies — all from this run's metric snapshot delta —
///       plus refused/expired counts. --timing=false drops wall-clock
///       fields so a fixed-seed trace renders byte-identically (see
///       docs/BENCHMARKS.md).
///
///   lint [ses_lint flags and paths...]
///       Runs tools/ses_lint.py against this checkout (the repo root is
///       baked in at build time) with any extra arguments passed
///       through — `ses_cli lint --list-rules`, `ses_cli lint src`, etc.

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "api/scheduler.h"
#include "core/instance_io.h"
#include "core/objective.h"
#include "core/validate.h"
#include "ebsn/dataset.h"
#include "ebsn/dataset_stats.h"
#include "ebsn/generator.h"
#include "exp/load_generator.h"
#include "exp/trace.h"
#include "exp/workload.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/metrics.h"

namespace {

using namespace ses;

int Fail(const util::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGenerateData(int argc, const char* const* argv) {
  std::string out;
  int64_t users = 42444;
  int64_t events = 16000;
  int64_t groups = 1500;
  int64_t tags = 600;
  int64_t seed = 20180416;
  util::FlagSet flags("ses_cli generate-data");
  flags.AddString("out", &out, "output directory (created)");
  flags.AddInt("users", &users, "number of users");
  flags.AddInt("events", &events, "catalog size");
  flags.AddInt("groups", &groups, "number of groups");
  flags.AddInt("tags", &tags, "tag vocabulary size");
  flags.AddInt("seed", &seed, "generator seed");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status);
  }
  if (out.empty()) {
    return Fail(util::Status::InvalidArgument("--out is required"));
  }
  ebsn::SyntheticMeetupConfig config;
  config.num_users = static_cast<uint32_t>(users);
  config.num_events = static_cast<uint32_t>(events);
  config.num_groups = static_cast<uint32_t>(groups);
  config.num_tags = static_cast<uint32_t>(tags);
  config.seed = static_cast<uint64_t>(seed);
  const ebsn::EbsnDataset dataset = ebsn::GenerateSyntheticMeetup(config);
  std::filesystem::create_directories(out);
  if (auto status = dataset.Save(out); !status.ok()) return Fail(status);
  std::printf("wrote dataset to %s\n%s", out.c_str(),
              ebsn::ComputeDatasetStats(dataset).ToString().c_str());
  return 0;
}

int CmdBuildInstance(int argc, const char* const* argv) {
  std::string data;
  std::string out;
  int64_t k = 100;
  int64_t intervals = -1;
  int64_t events = -1;
  double competing_mean = 8.1;
  int64_t seed = 7;
  util::FlagSet flags("ses_cli build-instance");
  flags.AddString("data", &data, "dataset directory");
  flags.AddString("out", &out, "output instance directory (created)");
  flags.AddInt("k", &k, "target schedule size");
  flags.AddInt("intervals", &intervals, "|T| (-1 = paper default 3k/2)");
  flags.AddInt("events", &events, "|E| (-1 = paper default 2k)");
  flags.AddDouble("competing-mean", &competing_mean,
                  "competing events per interval, mean");
  flags.AddInt("seed", &seed, "workload seed");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status);
  }
  if (data.empty() || out.empty()) {
    return Fail(
        util::Status::InvalidArgument("--data and --out are required"));
  }
  auto dataset = ebsn::EbsnDataset::Load(data);
  if (!dataset.ok()) return Fail(dataset.status());

  exp::WorkloadFactory factory(dataset.value());
  exp::PaperWorkloadConfig config;
  config.k = k;
  config.num_intervals = intervals;
  config.num_candidate_events = events;
  config.competing_mean = competing_mean;
  config.seed = static_cast<uint64_t>(seed);
  auto instance = factory.Build(config);
  if (!instance.ok()) return Fail(instance.status());

  core::SigmaSpec spec;
  spec.kind = core::SigmaSpec::Kind::kHash;
  spec.seed = static_cast<uint64_t>(seed) ^ 0x5161a5ea11ULL;
  std::filesystem::create_directories(out);
  if (auto status = core::SaveInstance(*instance, spec, out); !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote instance to %s: |U|=%u |E|=%u |T|=%u |C|=%u\n",
              out.c_str(), instance->num_users(), instance->num_events(),
              instance->num_intervals(), instance->num_competing());
  return 0;
}

int CmdSolve(int argc, const char* const* argv) {
  std::string instance_dir;
  std::string solver_name = "grd";
  std::string priority_name = "normal";
  int64_t k = 100;
  int64_t seed = 1;
  int64_t solver_threads = 1;
  int64_t max_queued = 0;
  double budget_seconds = 0.0;
  bool print_schedule = false;
  bool print_metrics = false;
  util::FlagSet flags("ses_cli solve");
  flags.AddString("instance", &instance_dir, "instance directory");
  flags.AddString("solver", &solver_name,
                  "solver name (see `ses_cli solve --solver=help`)");
  flags.AddString("priority", &priority_name,
                  "queue priority: high, normal, or batch");
  flags.AddInt("k", &k, "schedule size");
  flags.AddInt("seed", &seed, "solver seed");
  flags.AddInt("solver-threads", &solver_threads,
               "score-generation shards for grd/lazy (1 = serial, 0 = all "
               "cores); the schedule is bit-identical at any value");
  flags.AddInt("max-queued", &max_queued,
               "admission bound on queued requests (0 = unbounded); a "
               "full queue fails fast with RESOURCE_EXHAUSTED");
  flags.AddDouble("budget-seconds", &budget_seconds,
                  "wall-clock budget; 0 = unlimited");
  flags.AddBool("print-schedule", &print_schedule,
                "print every assignment");
  flags.AddBool("metrics", &print_metrics,
                "print the scheduler's metric dump after the solve "
                "(see docs/METRICS.md)");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status);
  }
  if (instance_dir.empty()) {
    return Fail(util::Status::InvalidArgument("--instance is required"));
  }
  if (solver_threads < 0) {
    return Fail(
        util::Status::InvalidArgument("--solver-threads must be >= 0"));
  }
  if (max_queued < 0) {
    return Fail(util::Status::InvalidArgument("--max-queued must be >= 0"));
  }
  api::Priority priority = api::Priority::kNormal;
  if (priority_name == "high") {
    priority = api::Priority::kHigh;
  } else if (priority_name == "batch") {
    priority = api::Priority::kBatch;
  } else if (priority_name != "normal") {
    return Fail(util::Status::InvalidArgument(
        "--priority must be high, normal, or batch (got '" + priority_name +
        "')"));
  }
  auto instance = core::LoadInstance(instance_dir);
  if (!instance.ok()) return Fail(instance.status());

  // The scheduler pool doubles as the score-generation shard pool; size
  // it to the requested intra-solver parallelism (0 = all cores, N
  // capped at the core count — the shared ForSolverThreads policy).
  api::SchedulerOptions scheduler_options =
      api::SchedulerOptions::ForSolverThreads(solver_threads);
  scheduler_options.max_queued_requests = static_cast<size_t>(max_queued);
  api::Scheduler scheduler(scheduler_options);
  api::SolveRequest request;
  request.solver = solver_name;
  request.priority = priority;
  request.options.k = k;
  request.options.seed = static_cast<uint64_t>(seed);
  request.options.threads = solver_threads;
  if (budget_seconds > 0.0) {
    request.deadline = core::Deadline::After(budget_seconds);
  }
  if (auto status = scheduler.Validate(*instance, request); !status.ok()) {
    if (status.code() == util::StatusCode::kNotFound) {
      // Unknown solver: spell out the catalog so the fix is one retry.
      std::fprintf(stderr, "error: unknown solver '%s'\nvalid solvers:\n",
                   solver_name.c_str());
      for (const std::string& name : api::ListSolvers()) {
        std::fprintf(stderr, "  %s\n", name.c_str());
      }
      return 1;
    }
    return Fail(status);
  }

  // The service-shell path end to end: register the instance in the
  // session cache (non-owning borrow; `instance` outlives the solve),
  // submit against its id at the requested priority, collect the
  // response. Admission and priority only matter with concurrent
  // clients, but the CLI exercising the same surface keeps it honest.
  if (auto status =
          scheduler.LoadInstance("cli", api::BorrowInstance(*instance));
      !status.ok()) {
    return Fail(status);
  }
  api::PendingSolve pending = scheduler.Submit("cli", std::move(request));
  const api::SolveResponse response = pending.Get();
  if (!response.has_schedule()) return Fail(response.status);
  if (auto status = core::ValidateAssignments(*instance, response.schedule);
      !status.ok()) {
    return Fail(status);
  }

  if (!response.status.ok()) {
    // Deadline expired (or cancelled): the schedule below is the best
    // found within the budget, not the solver's final answer.
    std::printf("note: %s; reporting best schedule found so far\n",
                response.status.ToString().c_str());
  }
  std::printf("solver=%s k=%zu utility=%.3f seconds=%.4f evaluations=%llu\n",
              response.solver.c_str(), response.schedule.size(),
              response.utility, response.wall_seconds,
              static_cast<unsigned long long>(
                  response.stats.gain_evaluations));
  if (print_schedule) {
    for (const core::Assignment& a : response.schedule) {
      std::printf("  interval %u <- event %u\n", a.interval, a.event);
    }
  }
  if (print_metrics) {
    std::printf("--- scheduler metrics ---\n%s",
                util::RenderMetricsText(
                    scheduler.metric_registry().Snapshot())
                    .c_str());
  }
  return 0;
}

int CmdMetrics(int argc, const char* const* argv) {
  std::string instance_dir;
  std::string solver_name = "grd";
  std::string format = "text";
  int64_t k = 100;
  int64_t requests = 6;
  util::FlagSet flags("ses_cli metrics");
  flags.AddString("instance", &instance_dir,
                  "instance directory (omit to dump the metric catalog "
                  "of a fresh scheduler, all zeros)");
  flags.AddString("solver", &solver_name, "solver to exercise");
  flags.AddString("format", &format, "dump format: text or csv");
  flags.AddInt("k", &k, "schedule size for the exercise solves");
  flags.AddInt("requests", &requests,
               "solves to run before dumping (priorities cycled "
               "high/normal/batch)");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status);
  }
  if (format != "text" && format != "csv") {
    return Fail(util::Status::InvalidArgument(
        "--format must be text or csv (got '" + format + "')"));
  }
  if (requests < 0) {
    return Fail(util::Status::InvalidArgument("--requests must be >= 0"));
  }

  api::Scheduler scheduler;
  if (!instance_dir.empty()) {
    auto instance = core::LoadInstance(instance_dir);
    if (!instance.ok()) return Fail(instance.status());
    if (auto status =
            scheduler.LoadInstance("cli", api::BorrowInstance(*instance));
        !status.ok()) {
      return Fail(status);
    }
    // Exercise the async path so queue-wait histograms and lane
    // counters show real traffic, cycling through the three lanes.
    std::vector<api::SolveRequest> batch;
    batch.reserve(static_cast<size_t>(requests));
    for (int64_t i = 0; i < requests; ++i) {
      api::SolveRequest request;
      request.solver = solver_name;
      request.options.k = k;
      request.options.seed = static_cast<uint64_t>(i + 1);
      request.priority = static_cast<api::Priority>(i % 3);
      batch.push_back(std::move(request));
    }
    for (const api::SolveResponse& response :
         scheduler.SolveBatch("cli", batch)) {
      if (!response.has_schedule()) return Fail(response.status);
    }
  }

  const util::MetricsSnapshot snapshot =
      scheduler.metric_registry().Snapshot();
  std::printf("%s", format == "csv"
                        ? util::RenderMetricsCsv(snapshot).c_str()
                        : util::RenderMetricsText(snapshot).c_str());
  return 0;
}

int CmdInfo(int argc, const char* const* argv) {
  std::string instance_dir;
  std::string data_dir;
  util::FlagSet flags("ses_cli info");
  flags.AddString("instance", &instance_dir, "instance directory");
  flags.AddString("data", &data_dir, "dataset directory");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status);
  }
  if (!data_dir.empty()) {
    auto dataset = ebsn::EbsnDataset::Load(data_dir);
    if (!dataset.ok()) return Fail(dataset.status());
    std::printf("%s",
                ebsn::ComputeDatasetStats(dataset.value()).ToString().c_str());
    return 0;
  }
  if (!instance_dir.empty()) {
    auto instance = core::LoadInstance(instance_dir);
    if (!instance.ok()) return Fail(instance.status());
    size_t competing_entries = 0;
    for (core::CompetingIndex c = 0; c < instance->num_competing(); ++c) {
      competing_entries += instance->CompetingUsers(c).size();
    }
    std::printf(
        "|U|=%u |E|=%u |T|=%u |C|=%u theta=%.2f\n"
        "candidate interest entries: %zu\n"
        "competing interest entries: %zu\n",
        instance->num_users(), instance->num_events(),
        instance->num_intervals(), instance->num_competing(),
        instance->theta(), instance->num_interest_entries(),
        competing_entries);
    return 0;
  }
  return Fail(
      util::Status::InvalidArgument("pass --instance or --data"));
}

int CmdBench(int argc, const char* const* argv) {
  std::string trace;
  std::string out;
  std::string size = "M";
  bool timing = true;
  util::FlagSet flags("ses_cli bench");
  flags.AddString("trace", &trace, "trace descriptor (bench/traces/*.json)");
  flags.AddString("out", &out,
                  "write the JSON report here (default: stdout)");
  flags.AddString("size", &size,
                  "request-count scale: S (0.25x), M (1x), L (4x)");
  flags.AddBool("timing", &timing,
                "include wall-clock fields (p50/p99 waits, throughput); "
                "--timing=false keeps only seed-stable fields");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    return Fail(status);
  }
  if (trace.empty()) {
    return Fail(util::Status::InvalidArgument("--trace is required"));
  }
  double multiplier = 1.0;
  if (size == "S") {
    multiplier = 0.25;
  } else if (size == "M") {
    multiplier = 1.0;
  } else if (size == "L") {
    multiplier = 4.0;
  } else {
    return Fail(util::Status::InvalidArgument(
        "--size must be S, M, or L (got '" + size + "')"));
  }

  auto spec = exp::TraceSpec::Load(trace);
  if (!spec.ok()) return Fail(spec.status());
  spec->ScaleRequests(multiplier);

  std::fprintf(stderr, "bench: trace '%s', %lld requests at %.1f rps base\n",
               spec->name.c_str(),
               static_cast<long long>(spec->num_requests), spec->rate_hz);
  exp::LoadGenerator generator(*std::move(spec));
  auto report = generator.Run();
  if (!report.ok()) return Fail(report.status());
  const std::string rendered = exp::RenderBenchReportJson(*report, timing);
  if (out.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::FILE* file = std::fopen(out.c_str(), "w");
    if (file == nullptr) {
      return Fail(util::Status::IoError("cannot open for write: " + out));
    }
    std::fputs(rendered.c_str(), file);
    std::fclose(file);
    std::fprintf(stderr, "bench: wrote %s\n", out.c_str());
  }
  return 0;
}

int CmdLint(int argc, const char* const* argv) {
  // Passthrough to the project linter with repo-root defaults, so the
  // static gates are reachable from the same binary operators already
  // have on hand. SES_SOURCE_DIR is this checkout's root, baked in by
  // CMake; execvp replaces the process, so the exit code is ses_lint's
  // own.
  std::vector<std::string> args = {"python3",
                                   std::string(SES_SOURCE_DIR) +
                                       "/tools/ses_lint.py",
                                   "--root", SES_SOURCE_DIR};
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  std::vector<char*> exec_argv;
  exec_argv.reserve(args.size() + 1);
  for (std::string& arg : args) exec_argv.push_back(arg.data());
  exec_argv.push_back(nullptr);
  execvp(exec_argv[0], exec_argv.data());
  std::fprintf(stderr, "error: could not exec python3: %s\n",
               std::strerror(errno));
  return 127;
}

void PrintUsage() {
  std::fputs(
      "usage: ses_cli <command> [flags]\n"
      "commands:\n"
      "  generate-data   synthesize a Meetup-like EBSN dataset\n"
      "  build-instance  build the paper workload from a dataset\n"
      "  solve           run a solver on a stored instance\n"
      "  metrics         dump the scheduler metric catalog / live values\n"
      "  info            describe a dataset or instance\n"
      "  bench           replay a load trace and emit a JSON report\n"
      "  lint            run the project linter over this checkout\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand parses only its own flags.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (command == "generate-data") return CmdGenerateData(sub_argc, sub_argv);
  if (command == "build-instance") return CmdBuildInstance(sub_argc, sub_argv);
  if (command == "solve") return CmdSolve(sub_argc, sub_argv);
  if (command == "metrics") return CmdMetrics(sub_argc, sub_argv);
  if (command == "info") return CmdInfo(sub_argc, sub_argv);
  if (command == "bench") return CmdBench(sub_argc, sub_argv);
  if (command == "lint") return CmdLint(sub_argc, sub_argv);
  PrintUsage();
  return 2;
}
