#!/usr/bin/env python3
"""Markdown link checker / lint for the in-tree docs.

Usage: check_markdown_links.py FILE_OR_DIR [FILE_OR_DIR ...]

Checks, per markdown file (directories are walked for **/*.md):
  - every relative inline link or image target resolves to an existing
    file or directory (anchors are stripped first);
  - every same-file anchor link (#section) matches a heading's
    GitHub-style slug;
  - cross-file anchors (path.md#section) match a heading in the target;
  - reference-style links ([text][id] and collapsed [id][]) resolve to
    a `[id]: target` definition in the same file, and the definition's
    target is checked like an inline link (file, anchors and all);
  - external links (http/https/mailto) are syntax-checked only — CI has
    no business depending on third-party uptime.

Exit status: 0 when clean, 1 with one "file:line: message" per problem
otherwise. No dependencies beyond the standard library, so it runs the
same locally and in CI.
"""

import os
import re
import sys

# Inline links/images: [text](target) / ![alt](target). Titles
# ("... "title"") are split off below; <> wrapping is stripped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference-style uses: [text][id]; [id][] collapses to the text.
REF_LINK_RE = re.compile(r"!?\[([^\]]+)\]\[([^\]]*)\]")
# Reference definitions: [id]: target (optional "title" ignored).
REF_DEF_RE = re.compile(r"^\s*\[([^\]]+)\]:\s+(\S+)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to hyphens, punctuation
    dropped (inline code/emphasis markers first)."""
    text = re.sub(r"[`*_]", "", heading)
    # Inline links in headings anchor on their text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: str) -> set:
    slugs = set()
    counts = {}
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if not match:
                continue
            slug = github_slug(match.group(2))
            # GitHub dedups repeated headings with -1, -2, ...
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_target(path, lineno, target, own_slugs, problems):
    """Validates one link target (shared by inline links and reference
    definitions). `own_slugs` is a single-element list cache of this
    file's heading slugs, filled lazily."""
    target = target.strip("<>")
    if target.startswith(("http://", "https://", "mailto:")):
        return
    link_path, _, anchor = target.partition("#")
    if link_path:
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), link_path))
        if not os.path.exists(resolved):
            problems.append(
                f"{path}:{lineno}: broken link '{target}' "
                f"(no such file: {resolved})")
            return
        if anchor and resolved.endswith(".md"):
            if anchor not in heading_slugs(resolved):
                problems.append(
                    f"{path}:{lineno}: broken anchor "
                    f"'{target}' (no heading "
                    f"'#{anchor}' in {resolved})")
    elif anchor:
        if own_slugs[0] is None:
            own_slugs[0] = heading_slugs(path)
        if anchor not in own_slugs[0]:
            problems.append(
                f"{path}:{lineno}: broken anchor "
                f"'#{anchor}' (no such heading here)")


def reference_definitions(lines) -> dict:
    """First pass: `[id]: target` definitions (ids lowercased, per the
    CommonMark case-insensitive matching rule), fence-aware."""
    defs = {}
    in_fence = False
    for lineno, line in enumerate(lines, start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = REF_DEF_RE.match(line)
        if match:
            defs.setdefault(match.group(1).strip().lower(),
                            (lineno, match.group(2)))
    return defs


def check_file(path: str) -> list:
    problems = []
    in_fence = False
    own_slugs = [None]  # computed lazily by check_target
    with open(path, encoding="utf-8") as fh:
        lines = fh.readlines()
    ref_defs = reference_definitions(lines)
    # Every definition's target must resolve, used or not (an unused
    # broken definition is a doc bug waiting for its first reference).
    for lineno, target in ref_defs.values():
        check_target(path, lineno, target, own_slugs, problems)
    for lineno, line in enumerate(lines, start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Blank inline links before scanning for reference-style ones:
        # `[text](a.md)` must not double-report, and `[a][b](c)` styles
        # are rare enough not to care.
        for match in LINK_RE.finditer(line):
            check_target(path, lineno, match.group(1), own_slugs, problems)
        stripped = LINK_RE.sub("", line)
        if REF_DEF_RE.match(stripped):
            continue  # the definition line itself is not a use
        for match in REF_LINK_RE.finditer(stripped):
            ref_id = (match.group(2) or match.group(1)).strip().lower()
            if ref_id not in ref_defs:
                problems.append(
                    f"{path}:{lineno}: unresolved reference link "
                    f"'[{match.group(1)}][{match.group(2)}]' (no "
                    f"'[{ref_id}]: ...' definition in this file)")
    return problems


def collect(paths) -> list:
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                files.extend(
                    os.path.join(root, name)
                    for name in sorted(names) if name.endswith(".md"))
        else:
            files.append(path)
    return files


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = collect(argv[1:])
    problems = []
    for path in files:
        if not os.path.exists(path):
            problems.append(f"{path}: no such file")
            continue
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} markdown file(s): "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
