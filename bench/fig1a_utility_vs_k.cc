/// Reproduces Figure 1a: total utility of GRD / TOP / RAND as the number
/// of scheduled events k grows (|T| = 3k/2, |E| = 2k, Section IV-B).
///
/// Expected shape: GRD significantly above both baselines everywhere; the
/// GRD-RAND gap widens with k; TOP reports considerably low utility.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace ses;
  const bench::FigureArgs args =
      bench::ParseFigureArgs("fig1a_utility_vs_k", argc, argv);
  const bench::BenchScale scale = bench::MakeScale(args.scale);

  std::printf("Fig 1a — Utility vs k (scale=%s, %u users)\n",
              args.scale.c_str(), scale.dataset.num_users);
  const ebsn::EbsnDataset dataset =
      ebsn::GenerateSyntheticMeetup(scale.dataset);
  const exp::WorkloadFactory factory(dataset);

  const std::vector<std::string> solvers{"grd", "top", "rand"};
  const auto records = bench::RunKSweep(factory, scale, solvers,
                                        static_cast<uint64_t>(args.seed),
                                        args.jobs, args.solver_threads);
  bench::EmitFigure(args, "Fig 1a: Utility vs k", "k", solvers, records,
                    exp::Metric::kUtility);
  return 0;
}
