/// Empirical approximation quality (extension beyond the paper): the
/// paper proves SES strongly NP-hard and offers GRD without a proven
/// approximation ratio. This harness measures the ratio GRD / OPT (and
/// the baselines' ratios) on batches of small random instances where the
/// branch-and-bound solver can certify the optimum.
///
/// Expected shape: GRD's ratio concentrates near 1.0 (worst cases well
/// above 0.8), while TOP and RAND fall visibly short — evidence that the
/// greedy's one-step optimality captures most of the attainable utility
/// on realistic interest structures.

#include <cstdio>
#include <map>

#include "api/scheduler.h"
#include "tests/test_util.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace ses;
  int64_t instances = 40;
  int64_t k = 4;
  int64_t events = 8;
  int64_t intervals = 4;
  int64_t seed = 1;
  util::FlagSet flags("ablation_greedy_quality");
  flags.AddInt("instances", &instances, "number of random instances");
  flags.AddInt("k", &k, "schedule size");
  flags.AddInt("events", &events, "candidate events per instance");
  flags.AddInt("intervals", &intervals, "intervals per instance");
  flags.AddInt("seed", &seed, "base seed");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }

  std::printf(
      "Empirical approximation ratios vs certified optimum "
      "(%lld instances, |E|=%lld, |T|=%lld, k=%lld)\n",
      static_cast<long long>(instances), static_cast<long long>(events),
      static_cast<long long>(intervals), static_cast<long long>(k));

  const std::vector<std::string> methods{"grd", "bestfit", "top", "rand"};
  api::Scheduler scheduler;
  std::map<std::string, std::vector<double>> ratios;
  int solved = 0;
  for (int64_t i = 0; i < instances; ++i) {
    test::RandomInstanceConfig config;
    config.seed = static_cast<uint64_t>(seed + i);
    config.num_users = 30;
    config.num_events = static_cast<uint32_t>(events);
    config.num_intervals = static_cast<uint32_t>(intervals);
    const core::SesInstance instance = test::MakeRandomInstance(config);

    api::SolveRequest exact_request;
    exact_request.solver = "exact";
    exact_request.options.k = k;
    exact_request.options.seed = static_cast<uint64_t>(seed + i);
    const api::SolveResponse optimum = scheduler.Solve(instance, exact_request);
    if (!optimum.status.ok() || optimum.utility <= 0.0) {
      continue;  // infeasible k
    }
    ++solved;

    // The heuristics are independent given the certified optimum — fan
    // them out as one batch across the scheduler pool.
    std::vector<api::SolveRequest> requests;
    for (const std::string& method : methods) {
      api::SolveRequest request = exact_request;
      request.solver = method;
      requests.push_back(std::move(request));
    }
    const std::vector<api::SolveResponse> responses =
        scheduler.SolveBatch(instance, requests);
    for (size_t m = 0; m < methods.size(); ++m) {
      SES_CHECK(responses[m].status.ok())
          << responses[m].status.ToString();
      ratios[methods[m]].push_back(responses[m].utility / optimum.utility);
    }
  }

  std::printf("certified optima: %d / %lld instances\n\n", solved,
              static_cast<long long>(instances));
  std::printf("%10s %8s %8s %8s %8s %8s\n", "method", "mean", "min", "p50",
              "p90", "max");
  for (const std::string& method : methods) {
    const util::Summary s = util::Summarize(ratios[method]);
    std::printf("%10s %8.4f %8.4f %8.4f %8.4f %8.4f\n", method.c_str(),
                s.mean, s.min, s.p50, s.p90, s.max);
  }
  return 0;
}
