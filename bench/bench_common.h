#ifndef SES_BENCH_BENCH_COMMON_H_
#define SES_BENCH_BENCH_COMMON_H_

/// \file
/// Shared scaffolding for the figure-reproduction benches: dataset
/// construction at a configurable scale, sweep execution, and output.
///
/// Every figure binary accepts:
///   --scale=paper|medium|small   dataset + sweep size (default: medium)
///   --csv=PATH                   also dump the series as CSV
///   --seed=N                     workload seed
///
/// "paper" matches Section IV-A exactly (42,444 users, 16k-event catalog,
/// k up to 500). "medium" keeps the paper's *structure* (|T| = 3k/2,
/// |E| = 2k, competing mean 8.1, theta, xi, 25 locations) at roughly
/// quarter scale so the full suite completes in minutes on a laptop.

#include <string>
#include <vector>

#include "ebsn/generator.h"
#include "exp/figures.h"
#include "exp/runner.h"
#include "exp/workload.h"
#include "util/flags.h"
#include "util/logging.h"

namespace ses::bench {

/// Scale-dependent knobs.
struct BenchScale {
  ebsn::SyntheticMeetupConfig dataset;
  /// k values for the k sweeps (Figs. 1a/1b).
  std::vector<int64_t> k_sweep;
  /// Default k for the |T| sweeps (Figs. 1c/1d); the paper uses 100.
  int64_t default_k = 100;
  /// |T| values as multiples of k, expressed in tenths (the paper sweeps
  /// k/5 .. 3k): {2, 5, 10, 15, 20, 30} -> 0.2k .. 3k.
  std::vector<int64_t> t_over_k_tenths{2, 5, 10, 15, 20, 30};
};

/// Resolves a named scale.
inline BenchScale MakeScale(const std::string& name) {
  BenchScale scale;
  if (name == "paper") {
    // Section IV-A: Meetup California scale.
    scale.dataset = ebsn::SyntheticMeetupConfig{};
    scale.k_sweep = {100, 200, 300, 400, 500};
    scale.default_k = 100;
    return scale;
  }
  if (name == "medium") {
    scale.dataset.num_users = 12000;
    scale.dataset.num_events = 6000;
    scale.dataset.num_groups = 800;
    scale.dataset.num_tags = 400;
    scale.k_sweep = {50, 100, 150, 200, 250};
    scale.default_k = 50;
    return scale;
  }
  if (name == "small") {
    scale.dataset.num_users = 2500;
    scale.dataset.num_events = 1500;
    scale.dataset.num_groups = 250;
    scale.dataset.num_tags = 200;
    scale.k_sweep = {20, 40, 60, 80, 100};
    scale.default_k = 20;
    return scale;
  }
  SES_LOG(kFatal) << "unknown --scale: " << name
                  << " (want paper|medium|small)";
  return scale;
}

/// Flags shared by every figure bench.
struct FigureArgs {
  std::string scale = "medium";
  std::string csv;
  int64_t seed = 7;
};

/// Parses the common flags; exits the process with usage on error.
inline FigureArgs ParseFigureArgs(const char* program, int argc,
                                  const char* const* argv) {
  FigureArgs args;
  util::FlagSet flags(program);
  flags.AddString("scale", &args.scale, "paper|medium|small");
  flags.AddString("csv", &args.csv, "optional CSV output path");
  flags.AddInt("seed", &args.seed, "workload seed");
  auto status = flags.Parse(argc, argv);
  if (!status.ok()) {
    SES_LOG(kError) << status.ToString();
    std::fputs(flags.Usage().c_str(), stderr);
    std::exit(2);
  }
  return args;
}

/// Runs the paper methods over a k sweep (Figs. 1a/1b).
inline std::vector<exp::RunRecord> RunKSweep(
    const exp::WorkloadFactory& factory, const BenchScale& scale,
    const std::vector<std::string>& solvers, uint64_t seed) {
  std::vector<exp::RunRecord> records;
  for (int64_t k : scale.k_sweep) {
    exp::PaperWorkloadConfig config;
    config.k = k;
    config.seed = seed + static_cast<uint64_t>(k);
    auto instance = factory.Build(config);
    SES_CHECK(instance.ok()) << instance.status().ToString();
    core::SolverOptions options;
    options.k = k;
    options.seed = seed;
    auto rows = exp::RunSolvers(*instance, solvers, options, k);
    SES_CHECK(rows.ok()) << rows.status().ToString();
    records.insert(records.end(), rows->begin(), rows->end());
    SES_LOG(kInfo) << "k=" << k << " done";
  }
  return records;
}

/// Runs the paper methods over a |T| sweep at fixed k (Figs. 1c/1d).
inline std::vector<exp::RunRecord> RunTSweep(
    const exp::WorkloadFactory& factory, const BenchScale& scale,
    const std::vector<std::string>& solvers, uint64_t seed) {
  std::vector<exp::RunRecord> records;
  for (int64_t tenths : scale.t_over_k_tenths) {
    const int64_t intervals =
        std::max<int64_t>(1, scale.default_k * tenths / 10);
    exp::PaperWorkloadConfig config;
    config.k = scale.default_k;
    config.num_intervals = intervals;
    config.seed = seed + static_cast<uint64_t>(intervals);
    auto instance = factory.Build(config);
    SES_CHECK(instance.ok()) << instance.status().ToString();
    core::SolverOptions options;
    options.k = scale.default_k;
    options.seed = seed;
    auto rows = exp::RunSolvers(*instance, solvers, options, intervals);
    SES_CHECK(rows.ok()) << rows.status().ToString();
    records.insert(records.end(), rows->begin(), rows->end());
    SES_LOG(kInfo) << "|T|=" << intervals << " done";
  }
  return records;
}

/// Writes the optional CSV and prints the rendered figure.
inline void EmitFigure(const FigureArgs& args, const std::string& title,
                       const std::string& x_label,
                       const std::vector<std::string>& solvers,
                       const std::vector<exp::RunRecord>& records,
                       exp::Metric metric) {
  if (!args.csv.empty()) {
    auto status = exp::WriteRecordsCsv(args.csv, records);
    if (!status.ok()) {
      SES_LOG(kError) << status.ToString();
    }
  }
  std::fputs(exp::RenderFigure(title, x_label, solvers, records, metric)
                 .c_str(),
             stdout);
}

}  // namespace ses::bench

#endif  // SES_BENCH_BENCH_COMMON_H_
