#ifndef SES_BENCH_BENCH_COMMON_H_
#define SES_BENCH_BENCH_COMMON_H_

/// \file
/// Shared scaffolding for the figure-reproduction benches: dataset
/// construction at a configurable scale, sweep execution, and output.
///
/// Every figure binary accepts:
///   --scale=paper|medium|small   dataset + sweep size (default: medium)
///   --csv=PATH                   also dump the series as CSV
///   --csv-timing=BOOL            include the wall-clock seconds column
///                                in --csv output (default true; false
///                                makes reruns byte-identical)
///   --seed=N                     workload seed
///   --jobs=N                     sweep-point parallelism (0 = all cores,
///                                1 = serial reference path)
///
/// "paper" matches Section IV-A exactly (42,444 users, 16k-event catalog,
/// k up to 500). "medium" keeps the paper's *structure* (|T| = 3k/2,
/// |E| = 2k, competing mean 8.1, theta, xi, 25 locations) at roughly
/// quarter scale so the full suite completes in minutes on a laptop.

#include <string>
#include <vector>

#include "ebsn/generator.h"
#include "exp/figures.h"
#include "exp/parallel_sweep.h"
#include "exp/runner.h"
#include "exp/workload.h"
#include "util/flags.h"
#include "util/logging.h"

namespace ses::bench {

/// Scale-dependent knobs.
struct BenchScale {
  ebsn::SyntheticMeetupConfig dataset;
  /// k values for the k sweeps (Figs. 1a/1b).
  std::vector<int64_t> k_sweep;
  /// Default k for the |T| sweeps (Figs. 1c/1d); the paper uses 100.
  int64_t default_k = 100;
  /// |T| values as multiples of k, expressed in tenths (the paper sweeps
  /// k/5 .. 3k): {2, 5, 10, 15, 20, 30} -> 0.2k .. 3k.
  std::vector<int64_t> t_over_k_tenths{2, 5, 10, 15, 20, 30};
};

/// Resolves a named scale.
inline BenchScale MakeScale(const std::string& name) {
  BenchScale scale;
  if (name == "paper") {
    // Section IV-A: Meetup California scale.
    scale.dataset = ebsn::SyntheticMeetupConfig{};
    scale.k_sweep = {100, 200, 300, 400, 500};
    scale.default_k = 100;
    return scale;
  }
  if (name == "medium") {
    scale.dataset.num_users = 12000;
    scale.dataset.num_events = 6000;
    scale.dataset.num_groups = 800;
    scale.dataset.num_tags = 400;
    scale.k_sweep = {50, 100, 150, 200, 250};
    scale.default_k = 50;
    return scale;
  }
  if (name == "small") {
    scale.dataset.num_users = 2500;
    scale.dataset.num_events = 1500;
    scale.dataset.num_groups = 250;
    scale.dataset.num_tags = 200;
    scale.k_sweep = {20, 40, 60, 80, 100};
    scale.default_k = 20;
    return scale;
  }
  SES_LOG(kFatal) << "unknown --scale: " << name
                  << " (want paper|medium|small)";
  return scale;
}

/// Flags shared by every figure bench.
struct FigureArgs {
  std::string scale = "medium";
  std::string csv;
  /// Append the non-deterministic seconds column to --csv output.
  bool csv_timing = true;
  int64_t seed = 7;
  /// Sweep-point parallelism: 0 = hardware concurrency, 1 = serial.
  int64_t jobs = 0;
  /// Intra-solver score-generation shards for grd/lazy (1 = serial,
  /// 0 = all cores). Records and CSVs are bit-identical at any value;
  /// only the wall-clock seconds change.
  int64_t solver_threads = 1;
};

/// Parses the common flags; exits the process with usage on error.
///
/// Benches whose headline metric is wall-clock time should pass
/// \p default_jobs = 1: concurrent sweep points compete for cores and
/// inflate every RunRecord's `seconds`, so such benches measure serially
/// unless the user explicitly opts into --jobs != 1 (RunSweepPoints
/// warns on every parallel run that timings are contended).
inline FigureArgs ParseFigureArgs(const char* program, int argc,
                                  const char* const* argv,
                                  int64_t default_jobs = 0) {
  FigureArgs args;
  args.jobs = default_jobs;
  util::FlagSet flags(program);
  flags.AddString("scale", &args.scale, "paper|medium|small");
  flags.AddString("csv", &args.csv, "optional CSV output path");
  flags.AddBool("csv-timing", &args.csv_timing,
                "include the wall-clock seconds column in --csv output");
  flags.AddInt("seed", &args.seed, "workload seed");
  flags.AddInt("jobs", &args.jobs,
               "worker threads (0 = all cores, 1 = serial)");
  flags.AddInt("solver-threads", &args.solver_threads,
               "grd/lazy score-generation shards (1 = serial, 0 = all "
               "cores); records stay bit-identical");
  auto status = flags.Parse(argc, argv);
  if (!status.ok() || args.jobs < 0 || args.solver_threads < 0) {
    SES_LOG(kError) << (!status.ok()        ? status.ToString()
                        : args.jobs < 0
                            ? std::string("--jobs must be >= 0")
                            : std::string("--solver-threads must be >= 0"));
    std::fputs(flags.Usage().c_str(), stderr);
    std::exit(2);
  }
  return args;
}

/// Runs \p points on \p jobs workers (0 = all cores, 1 = serial) and
/// fails loudly on any error. Both paths yield identical records (modulo
/// the wall-clock `seconds` field) in point order.
inline std::vector<exp::RunRecord> RunSweepPoints(
    const exp::WorkloadFactory& factory,
    const std::vector<exp::SweepPoint>& points,
    const std::vector<std::string>& solvers, int64_t jobs) {
  if (jobs != 1) {
    // The utility/evaluation fields stay byte-identical, but concurrent
    // points (and, on this path, the solvers within each point, which
    // fan out across the shared api::Scheduler pool) contend for cores,
    // so any reported or CSV-dumped seconds are inflated relative to a
    // serial run. --jobs=1 runs everything sequentially on the calling
    // thread.
    SES_LOG(kWarning) << "--jobs=" << jobs << ": per-record seconds are "
                      << "measured under multi-core contention; use "
                      << "--jobs=1 for clean timings";
  }
  auto records =
      exp::RunSweep(factory, points, solvers, static_cast<size_t>(jobs));
  SES_CHECK(records.ok()) << records.status().ToString();
  return std::move(records).value();
}

/// Runs the paper methods over a k sweep (Figs. 1a/1b).
inline std::vector<exp::RunRecord> RunKSweep(
    const exp::WorkloadFactory& factory, const BenchScale& scale,
    const std::vector<std::string>& solvers, uint64_t seed,
    int64_t jobs, int64_t solver_threads = 1) {
  std::vector<exp::SweepPoint> points;
  points.reserve(scale.k_sweep.size());
  for (int64_t k : scale.k_sweep) {
    exp::SweepPoint point;
    point.config.k = k;
    point.config.seed = seed + static_cast<uint64_t>(k);
    point.options.k = k;
    point.options.seed = seed;
    point.options.threads = solver_threads;
    point.x = k;
    points.push_back(std::move(point));
  }
  return RunSweepPoints(factory, points, solvers, jobs);
}

/// Runs the paper methods over a |T| sweep at fixed k (Figs. 1c/1d).
inline std::vector<exp::RunRecord> RunTSweep(
    const exp::WorkloadFactory& factory, const BenchScale& scale,
    const std::vector<std::string>& solvers, uint64_t seed,
    int64_t jobs, int64_t solver_threads = 1) {
  std::vector<exp::SweepPoint> points;
  points.reserve(scale.t_over_k_tenths.size());
  for (int64_t tenths : scale.t_over_k_tenths) {
    const int64_t intervals =
        std::max<int64_t>(1, scale.default_k * tenths / 10);
    exp::SweepPoint point;
    point.config.k = scale.default_k;
    point.config.num_intervals = intervals;
    point.config.seed = seed + static_cast<uint64_t>(intervals);
    point.options.k = scale.default_k;
    point.options.seed = seed;
    point.options.threads = solver_threads;
    point.x = intervals;
    points.push_back(std::move(point));
  }
  return RunSweepPoints(factory, points, solvers, jobs);
}

/// Writes the optional CSV and prints the rendered figure.
inline void EmitFigure(const FigureArgs& args, const std::string& title,
                       const std::string& x_label,
                       const std::vector<std::string>& solvers,
                       const std::vector<exp::RunRecord>& records,
                       exp::Metric metric) {
  if (!args.csv.empty()) {
    auto status = exp::WriteRecordsCsv(args.csv, records,
                                       args.csv_timing
                                           ? exp::CsvTiming::kAppend
                                           : exp::CsvTiming::kOmit);
    if (!status.ok()) {
      SES_LOG(kError) << status.ToString();
    }
  }
  std::fputs(exp::RenderFigure(title, x_label, solvers, records, metric)
                 .c_str(),
             stdout);
}

}  // namespace ses::bench

#endif  // SES_BENCH_BENCH_COMMON_H_
