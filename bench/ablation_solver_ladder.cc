/// Ablation (extension beyond the paper): the full solver ladder on one
/// paper-default workload, aggregated over repeated seeds — where does
/// each algorithmic idea land between RAND and GRD?
///
///   rand     random valid assignments (paper baseline)
///   top      stale global ranking, no updates (paper baseline)
///   bestfit  event-major greedy: stale event order, fresh intervals
///   grd      the paper's pair-major greedy with updates
///   lazy     GRD with CELF-style deferred updates (same answers)
///
/// Expected order: rand ~ top < bestfit <= grd = lazy, with bestfit
/// recovering most of GRD's advantage at a fraction of the evaluations.

#include <cstdio>

#include "bench/bench_common.h"
#include "exp/sweep.h"

int main(int argc, char** argv) {
  using namespace ses;
  const bench::FigureArgs args =
      bench::ParseFigureArgs("ablation_solver_ladder", argc, argv,
                             /*default_jobs=*/1);
  const bench::BenchScale scale = bench::MakeScale(args.scale);

  std::printf("Ablation — solver ladder (scale=%s, k=%lld, 3 seeds)\n",
              args.scale.c_str(), static_cast<long long>(scale.default_k));
  const ebsn::EbsnDataset dataset =
      ebsn::GenerateSyntheticMeetup(scale.dataset);
  const exp::WorkloadFactory factory(dataset);

  const std::vector<std::string> ladder{"rand", "top", "bestfit", "grd",
                                        "lazy"};
  if (args.jobs != 1) {
    // This bench renders a seconds table, so contended timings matter.
    SES_LOG(kWarning) << "--jobs=" << args.jobs << ": the seconds table "
                      << "is measured under multi-core contention; use "
                      << "--jobs=1 for clean timings";
  }
  const int64_t default_k = scale.default_k;
  auto cells = exp::RunRepeatedSweep(
      factory, {default_k},
      [](int64_t x, uint64_t seed) {
        exp::PaperWorkloadConfig config;
        config.k = x;
        config.seed = seed;
        return config;
      },
      ladder, /*repetitions=*/3, static_cast<uint64_t>(args.seed),
      static_cast<size_t>(args.jobs), args.solver_threads);
  SES_CHECK(cells.ok()) << cells.status().ToString();

  std::fputs(exp::RenderSweepTable("Solver ladder: utility", "k", ladder,
                                   *cells, /*show_seconds=*/false)
                 .c_str(),
             stdout);
  std::fputs(exp::RenderSweepTable("Solver ladder: seconds", "k", ladder,
                                   *cells, /*show_seconds=*/true)
                 .c_str(),
             stdout);
  return 0;
}
