/// Microbenchmarks of the attendance-model kernels: Eq. 4 marginal-gain
/// evaluation, Apply, interval-scratch reloads, the reference
/// objective, and the raw SoA span kernels (core/kernels.h) the model
/// is built on. google-benchmark binary; `tools/run_benchmarks.py
/// --micro` wraps it into the canonical BENCH_micro_attendance.json.

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/attendance.h"
#include "core/kernels.h"
#include "core/objective.h"
#include "ebsn/generator.h"
#include "exp/workload.h"
#include "util/logging.h"

namespace {

using namespace ses;

/// Builds one mid-sized instance shared by all attendance benchmarks.
const core::SesInstance& BenchInstance() {
  static const core::SesInstance* instance = [] {
    util::SetLogLevel(util::LogLevel::kWarning);
    ebsn::SyntheticMeetupConfig dataset_config;
    dataset_config.num_users = 5000;
    dataset_config.num_events = 2000;
    dataset_config.num_groups = 300;
    dataset_config.num_tags = 250;
    dataset_config.seed = 1;
    static const ebsn::EbsnDataset dataset =
        ebsn::GenerateSyntheticMeetup(dataset_config);
    static const exp::WorkloadFactory factory(dataset);
    exp::PaperWorkloadConfig config;
    config.k = 40;
    config.seed = 2;
    auto built = factory.Build(config);
    SES_CHECK(built.ok()) << built.status().ToString();
    return new core::SesInstance(std::move(built).value());
  }();
  return *instance;
}

void BM_MarginalGainSameInterval(benchmark::State& state) {
  const core::SesInstance& instance = BenchInstance();
  core::AttendanceModel model(instance);
  core::EventIndex e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.MarginalGain(e, 0));
    e = (e + 1) % instance.num_events();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MarginalGainSameInterval);

void BM_MarginalGainIntervalSwitch(benchmark::State& state) {
  const core::SesInstance& instance = BenchInstance();
  core::AttendanceModel model(instance);
  core::IntervalIndex t = 0;
  for (auto _ : state) {
    // Alternating intervals forces a scratch reload every call — the
    // worst case for the dense-scratch design.
    benchmark::DoNotOptimize(model.MarginalGain(0, t));
    t = (t + 1) % instance.num_intervals();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MarginalGainIntervalSwitch);

void BM_ApplyUnapply(benchmark::State& state) {
  const core::SesInstance& instance = BenchInstance();
  core::AttendanceModel model(instance);
  for (auto _ : state) {
    model.Apply(0, 0);
    model.Unapply(0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ApplyUnapply);

void BM_ReferenceTotalUtility(benchmark::State& state) {
  const core::SesInstance& instance = BenchInstance();
  core::Schedule schedule(instance);
  // Schedule ~20 events round-robin over intervals.
  core::IntervalIndex t = 0;
  for (core::EventIndex e = 0; e < instance.num_events() &&
                               schedule.size() < 20;
       ++e) {
    if (schedule.CanAssign(e, t)) {
      SES_CHECK(schedule.Assign(e, t).ok());
      t = (t + 1) % instance.num_intervals();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TotalUtility(instance, schedule));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ReferenceTotalUtility);

void BM_InitialScoreGeneration(benchmark::State& state) {
  const core::SesInstance& instance = BenchInstance();
  for (auto _ : state) {
    core::AttendanceModel model(instance);
    double sum = 0.0;
    for (core::IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
      for (core::EventIndex e = 0; e < instance.num_events(); ++e) {
        sum += model.MarginalGain(e, t);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(BenchInstance().num_events()) *
      BenchInstance().num_intervals());
}
BENCHMARK(BM_InitialScoreGeneration);

// --------------------------------------------------------------------
// Raw kernel benchmarks: the span loops in isolation, no model, no
// virtual dispatch — what the auto-vectorizer actually emits.
// --------------------------------------------------------------------

/// Shared dense-row fixture: |row| = kKernelUsers consecutive users
/// with warm SoA state, the shape LuceGain sees on paper-scale rows.
constexpr uint32_t kKernelUsers = 4096;

struct KernelFixture {
  core::IntervalSoA soa{kKernelUsers};
  std::vector<core::UserIndex> users;
  std::vector<float> values;

  KernelFixture() {
    users.reserve(kKernelUsers);
    values.reserve(kKernelUsers);
    core::kernels::FillSigmaHash(7, 0, soa.sigma);
    for (core::UserIndex u = 0; u < kKernelUsers; ++u) {
      users.push_back(u);
      values.push_back(
          0.05f + 0.9f * static_cast<float>(
                             core::kernels::HashSigma(11, u, 1)));
      soa.denom[u] = 0.5 + 2.0 * core::kernels::HashSigma(13, u, 2);
      soa.sched_mass[u] = (u % 3 == 0) ? 0.0 : soa.denom[u] * 0.4;
    }
  }
};

KernelFixture& Fixture() {
  static KernelFixture* fixture = new KernelFixture();
  return *fixture;
}

void BM_KernelLuceGain(benchmark::State& state) {
  KernelFixture& f = Fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::kernels::LuceGain(
        f.users.data(), f.values.data(), f.users.size(), f.soa.denom.data(),
        f.soa.sched_mass.data(), f.soa.sigma.data()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kKernelUsers);
}
BENCHMARK(BM_KernelLuceGain);

void BM_KernelFillSigmaHash(benchmark::State& state) {
  KernelFixture& f = Fixture();
  core::IntervalIndex t = 0;
  for (auto _ : state) {
    core::kernels::FillSigmaHash(7, t++, f.soa.sigma);
    benchmark::DoNotOptimize(f.soa.sigma.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kKernelUsers);
}
BENCHMARK(BM_KernelFillSigmaHash);

void BM_KernelAccumulateClear(benchmark::State& state) {
  // One LoadInterval-shaped cycle on pristine scratch: clear the
  // previously touched users, then scatter-add one dense row.
  core::IntervalSoA soa(kKernelUsers);
  KernelFixture& f = Fixture();
  for (auto _ : state) {
    core::kernels::ClearTouched(soa.touched.data(), soa.num_touched,
                                soa.denom.data(), soa.sched_mass.data(),
                                soa.in_touched.data());
    soa.num_touched = 0;
    soa.num_touched = core::kernels::AccumulateMass(
        f.users.data(), f.values.data(), f.users.size(), soa.denom.data(),
        nullptr, soa.touched.data(), soa.in_touched.data(),
        soa.num_touched);
    benchmark::DoNotOptimize(soa.denom.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kKernelUsers);
}
BENCHMARK(BM_KernelAccumulateClear);

}  // namespace

BENCHMARK_MAIN();
