/// Microbenchmarks of the attendance-model kernels: Eq. 4 marginal-gain
/// evaluation, Apply, interval-scratch reloads, and the reference
/// objective. google-benchmark binary.

#include <benchmark/benchmark.h>

#include "core/attendance.h"
#include "core/objective.h"
#include "ebsn/generator.h"
#include "exp/workload.h"
#include "util/logging.h"

namespace {

using namespace ses;

/// Builds one mid-sized instance shared by all attendance benchmarks.
const core::SesInstance& BenchInstance() {
  static const core::SesInstance* instance = [] {
    util::SetLogLevel(util::LogLevel::kWarning);
    ebsn::SyntheticMeetupConfig dataset_config;
    dataset_config.num_users = 5000;
    dataset_config.num_events = 2000;
    dataset_config.num_groups = 300;
    dataset_config.num_tags = 250;
    dataset_config.seed = 1;
    static const ebsn::EbsnDataset dataset =
        ebsn::GenerateSyntheticMeetup(dataset_config);
    static const exp::WorkloadFactory factory(dataset);
    exp::PaperWorkloadConfig config;
    config.k = 40;
    config.seed = 2;
    auto built = factory.Build(config);
    SES_CHECK(built.ok()) << built.status().ToString();
    return new core::SesInstance(std::move(built).value());
  }();
  return *instance;
}

void BM_MarginalGainSameInterval(benchmark::State& state) {
  const core::SesInstance& instance = BenchInstance();
  core::AttendanceModel model(instance);
  core::EventIndex e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.MarginalGain(e, 0));
    e = (e + 1) % instance.num_events();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MarginalGainSameInterval);

void BM_MarginalGainIntervalSwitch(benchmark::State& state) {
  const core::SesInstance& instance = BenchInstance();
  core::AttendanceModel model(instance);
  core::IntervalIndex t = 0;
  for (auto _ : state) {
    // Alternating intervals forces a scratch reload every call — the
    // worst case for the dense-scratch design.
    benchmark::DoNotOptimize(model.MarginalGain(0, t));
    t = (t + 1) % instance.num_intervals();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_MarginalGainIntervalSwitch);

void BM_ApplyUnapply(benchmark::State& state) {
  const core::SesInstance& instance = BenchInstance();
  core::AttendanceModel model(instance);
  for (auto _ : state) {
    model.Apply(0, 0);
    model.Unapply(0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ApplyUnapply);

void BM_ReferenceTotalUtility(benchmark::State& state) {
  const core::SesInstance& instance = BenchInstance();
  core::Schedule schedule(instance);
  // Schedule ~20 events round-robin over intervals.
  core::IntervalIndex t = 0;
  for (core::EventIndex e = 0; e < instance.num_events() &&
                               schedule.size() < 20;
       ++e) {
    if (schedule.CanAssign(e, t)) {
      SES_CHECK(schedule.Assign(e, t).ok());
      t = (t + 1) % instance.num_intervals();
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TotalUtility(instance, schedule));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ReferenceTotalUtility);

void BM_InitialScoreGeneration(benchmark::State& state) {
  const core::SesInstance& instance = BenchInstance();
  for (auto _ : state) {
    core::AttendanceModel model(instance);
    double sum = 0.0;
    for (core::IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
      for (core::EventIndex e = 0; e < instance.num_events(); ++e) {
        sum += model.MarginalGain(e, t);
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations()) *
      static_cast<int64_t>(BenchInstance().num_events()) *
      BenchInstance().num_intervals());
}
BENCHMARK(BM_InitialScoreGeneration);

}  // namespace

BENCHMARK_MAIN();
