/// Ablation (extension beyond the paper): what do improvement heuristics
/// buy on top of the paper's methods? Compares RAND, RAND + local search,
/// simulated annealing, GRD, and GRD + local search at the default k.
///
/// Expected shape: local search lifts RAND substantially but still trails
/// GRD; GRD + LS adds little — evidence that the greedy solution sits
/// near a local optimum of the swap/relocate neighborhood.

#include <cstdio>

#include "api/scheduler.h"
#include "bench/bench_common.h"
#include "core/validate.h"

int main(int argc, char** argv) {
  using namespace ses;
  const bench::FigureArgs args =
      bench::ParseFigureArgs("ablation_local_search", argc, argv,
                             /*default_jobs=*/1);
  if (args.jobs != 1) {
    SES_LOG(kWarning) << "--jobs has no effect here: this ablation runs "
                      << "variants serially on a single instance";
  }
  const bench::BenchScale scale = bench::MakeScale(args.scale);

  std::printf("Ablation — improvement heuristics (scale=%s, k=%lld)\n",
              args.scale.c_str(), static_cast<long long>(scale.default_k));
  const ebsn::EbsnDataset dataset =
      ebsn::GenerateSyntheticMeetup(scale.dataset);
  const exp::WorkloadFactory factory(dataset);

  exp::PaperWorkloadConfig config;
  config.k = scale.default_k;
  config.seed = static_cast<uint64_t>(args.seed);
  auto instance = factory.Build(config);
  SES_CHECK(instance.ok()) << instance.status().ToString();

  struct Variant {
    const char* label;
    const char* solver;
    core::BaseSolver base;
  };
  const Variant variants[] = {
      {"rand", "rand", core::BaseSolver::kRandom},
      {"rand+ls", "ls", core::BaseSolver::kRandom},
      {"anneal(rand)", "anneal", core::BaseSolver::kRandom},
      {"grd", "grd", core::BaseSolver::kRandom},
      {"grd+ls", "ls", core::BaseSolver::kGreedy},
  };

  // The variants share one scheduler; each runs synchronously so the
  // seconds column stays uncontended. --solver-threads sizes the pool
  // that grd (and greedy-seeded ls) shard score generation across
  // (core-capped via the shared ForSolverThreads policy).
  api::Scheduler scheduler(
      api::SchedulerOptions::ForSolverThreads(args.solver_threads));
  std::printf("%14s %14s %12s %14s\n", "variant", "utility", "seconds",
              "moves-accepted");
  for (const Variant& variant : variants) {
    api::SolveRequest request;
    request.solver = variant.solver;
    request.options.k = scale.default_k;
    request.options.seed = static_cast<uint64_t>(args.seed);
    request.options.threads = args.solver_threads;
    request.options.base_solver = variant.base;
    request.options.max_iterations = 20000;
    const api::SolveResponse response = scheduler.Solve(*instance, request);
    SES_CHECK(response.status.ok()) << response.status.ToString();
    SES_CHECK(core::ValidateAssignments(*instance, response.schedule).ok());
    std::printf("%14s %14.2f %12.4f %14llu\n", variant.label,
                response.utility, response.wall_seconds,
                static_cast<unsigned long long>(
                    response.stats.moves_accepted));
  }
  return 0;
}
