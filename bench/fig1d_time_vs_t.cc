/// Reproduces Figure 1d: execution time of GRD / TOP / RAND as |T| grows
/// at fixed k.
///
/// Expected shape: both GRD and TOP grow with |T| (the initial score pass
/// is O(|E| |T| |U|)), but GRD grows faster because each of its k
/// iterations rescans the larger assignment list and updates the chosen
/// interval — the GRD-TOP gap widens with |T|.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace ses;
  const bench::FigureArgs args =
      bench::ParseFigureArgs("fig1d_time_vs_t", argc, argv,
                             /*default_jobs=*/1);
  const bench::BenchScale scale = bench::MakeScale(args.scale);

  std::printf("Fig 1d — Time vs |T| (scale=%s, k=%lld)\n",
              args.scale.c_str(),
              static_cast<long long>(scale.default_k));
  const ebsn::EbsnDataset dataset =
      ebsn::GenerateSyntheticMeetup(scale.dataset);
  const exp::WorkloadFactory factory(dataset);

  const std::vector<std::string> solvers{"grd", "top", "rand"};
  const auto records = bench::RunTSweep(factory, scale, solvers,
                                        static_cast<uint64_t>(args.seed),
                                        args.jobs, args.solver_threads);
  bench::EmitFigure(args, "Fig 1d: Time (seconds) vs |T|", "|T|", solvers,
                    records, exp::Metric::kSeconds);
  return 0;
}
