/// Microbenchmarks of the data pipeline: synthetic-dataset generation,
/// Jaccard inverted-index construction, per-event interest extraction and
/// full workload materialization. google-benchmark binary.

#include <benchmark/benchmark.h>

#include "ebsn/generator.h"
#include "ebsn/interest.h"
#include "exp/workload.h"
#include "util/logging.h"

namespace {

using namespace ses;

ebsn::SyntheticMeetupConfig SmallDatasetConfig() {
  ebsn::SyntheticMeetupConfig config;
  config.num_users = 3000;
  config.num_events = 1200;
  config.num_groups = 200;
  config.num_tags = 200;
  config.seed = 9;
  return config;
}

const ebsn::EbsnDataset& SmallDataset() {
  static const ebsn::EbsnDataset* dataset = [] {
    util::SetLogLevel(util::LogLevel::kWarning);
    return new ebsn::EbsnDataset(
        ebsn::GenerateSyntheticMeetup(SmallDatasetConfig()));
  }();
  return *dataset;
}

void BM_GenerateDataset(benchmark::State& state) {
  ebsn::SyntheticMeetupConfig config = SmallDatasetConfig();
  config.num_users = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebsn::GenerateSyntheticMeetup(config));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_GenerateDataset)->Arg(1000)->Arg(3000)->Arg(10000);

void BM_BuildInterestIndex(benchmark::State& state) {
  const ebsn::EbsnDataset& dataset = SmallDataset();
  for (auto _ : state) {
    ebsn::InterestModel model(dataset);
    benchmark::DoNotOptimize(&model);
  }
}
BENCHMARK(BM_BuildInterestIndex);

void BM_EventInterests(benchmark::State& state) {
  const ebsn::EbsnDataset& dataset = SmallDataset();
  ebsn::InterestModel model(dataset);
  size_t e = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.EventInterests(dataset.events()[e].tags, 0.05f));
    e = (e + 1) % dataset.events().size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EventInterests);

void BM_BuildWorkload(benchmark::State& state) {
  const ebsn::EbsnDataset& dataset = SmallDataset();
  const exp::WorkloadFactory factory(dataset);
  exp::PaperWorkloadConfig config;
  config.k = static_cast<int64_t>(state.range(0));
  for (auto _ : state) {
    auto instance = factory.Build(config);
    SES_CHECK(instance.ok());
    benchmark::DoNotOptimize(&instance);
  }
}
BENCHMARK(BM_BuildWorkload)->Arg(10)->Arg(25)->Arg(50);

}  // namespace

BENCHMARK_MAIN();
