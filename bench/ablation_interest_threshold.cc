/// Ablation of the substitution knob DESIGN.md calls out: the
/// min-interest threshold below which Jaccard similarities are treated as
/// zero (the paper's Meetup pipeline has no such knob because it
/// materializes every non-zero pair; ours bounds memory).
///
/// Reports, per threshold: instance density (interest entries), GRD and
/// RAND utility aggregated over repeated seeds. Expected shape: utilities
/// are stable for small thresholds — the pruned entries are users who
/// were barely going to attend — and only degrade once the threshold
/// starts eating meaningful interest mass. That stability is what makes
/// the memory-bounding substitution safe.

#include <cstdio>

#include "bench/bench_common.h"
#include "exp/sweep.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ses;
  const bench::FigureArgs args =
      bench::ParseFigureArgs("ablation_interest_threshold", argc, argv);
  const bench::BenchScale scale = bench::MakeScale(args.scale);

  std::printf("Ablation — min-interest threshold (scale=%s, k=%lld)\n",
              args.scale.c_str(), static_cast<long long>(scale.default_k));
  const ebsn::EbsnDataset dataset =
      ebsn::GenerateSyntheticMeetup(scale.dataset);
  const exp::WorkloadFactory factory(dataset);

  // Threshold in permille so the sweep coordinate stays integral.
  const std::vector<int64_t> permille{0, 20, 50, 80, 120, 200};

  // Report density alongside utility.
  std::printf("%12s %18s\n", "threshold", "interest-entries");
  for (int64_t p : permille) {
    exp::PaperWorkloadConfig config;
    config.k = scale.default_k;
    config.min_interest = static_cast<double>(p) / 1000.0;
    config.seed = static_cast<uint64_t>(args.seed);
    auto instance = factory.Build(config);
    SES_CHECK(instance.ok()) << instance.status().ToString();
    std::printf("%12.3f %18s\n", config.min_interest,
                util::WithThousandsSep(static_cast<int64_t>(
                                           instance->num_interest_entries()))
                    .c_str());
  }

  const int64_t default_k = scale.default_k;
  auto cells = exp::RunRepeatedSweep(
      factory, permille,
      [default_k](int64_t x, uint64_t seed) {
        exp::PaperWorkloadConfig config;
        config.k = default_k;
        config.min_interest = static_cast<double>(x) / 1000.0;
        config.seed = seed;
        return config;
      },
      {"grd", "rand"}, /*repetitions=*/3,
      static_cast<uint64_t>(args.seed), static_cast<size_t>(args.jobs),
      args.solver_threads);
  SES_CHECK(cells.ok()) << cells.status().ToString();

  std::fputs(exp::RenderSweepTable(
                 "Utility vs min-interest threshold (permille)",
                 "permille", {"grd", "rand"}, *cells,
                 /*show_seconds=*/false)
                 .c_str(),
             stdout);
  return 0;
}
