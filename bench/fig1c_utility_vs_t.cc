/// Reproduces Figure 1c: total utility of GRD / TOP / RAND as the number
/// of time intervals |T| grows from k/5 to 3k at fixed k.
///
/// Expected shape: utilities of GRD and TOP increase with |T| — more
/// intervals mean fewer co-scheduled events per interval and more
/// candidate assignments to choose from.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace ses;
  const bench::FigureArgs args =
      bench::ParseFigureArgs("fig1c_utility_vs_t", argc, argv);
  const bench::BenchScale scale = bench::MakeScale(args.scale);

  std::printf("Fig 1c — Utility vs |T| (scale=%s, k=%lld)\n",
              args.scale.c_str(),
              static_cast<long long>(scale.default_k));
  const ebsn::EbsnDataset dataset =
      ebsn::GenerateSyntheticMeetup(scale.dataset);
  const exp::WorkloadFactory factory(dataset);

  const std::vector<std::string> solvers{"grd", "top", "rand"};
  const auto records = bench::RunTSweep(factory, scale, solvers,
                                        static_cast<uint64_t>(args.seed),
                                        args.jobs, args.solver_threads);
  bench::EmitFigure(args, "Fig 1c: Utility vs |T|", "|T|", solvers, records,
                    exp::Metric::kUtility);
  return 0;
}
