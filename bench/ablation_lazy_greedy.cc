/// Ablation (extension beyond the paper): faithful GRD vs CELF-style lazy
/// greedy. Both pick the same greedy sequence (up to score ties); the
/// lazy variant skips most of GRD's per-iteration score updates because
/// stale scores upper-bound fresh ones. The table reports utility
/// (should match), wall time, and Eq. 4 evaluations (should shrink).

#include <cstdio>

#include "bench/bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace ses;
  const bench::FigureArgs args =
      bench::ParseFigureArgs("ablation_lazy_greedy", argc, argv,
                             /*default_jobs=*/1);
  const bench::BenchScale scale = bench::MakeScale(args.scale);

  std::printf("Ablation — GRD vs lazy greedy (scale=%s)\n",
              args.scale.c_str());
  const ebsn::EbsnDataset dataset =
      ebsn::GenerateSyntheticMeetup(scale.dataset);
  const exp::WorkloadFactory factory(dataset);

  std::printf("%8s %14s %14s %12s %12s %14s %14s\n", "k", "grd-utility",
              "lazy-utility", "grd-sec", "lazy-sec", "grd-evals",
              "lazy-evals");
  // Same point construction and seeding as the fig1a/1b sweeps, so the
  // numbers stay comparable across benches.
  const std::vector<std::string> solvers{"grd", "lazy"};
  const std::vector<exp::RunRecord> rows = bench::RunKSweep(
      factory, scale, solvers, static_cast<uint64_t>(args.seed), args.jobs,
      args.solver_threads);
  for (size_t i = 0; i < scale.k_sweep.size(); ++i) {
    const int64_t k = scale.k_sweep[i];
    // RunSolvers emits solvers.size() records per point, in solver-list
    // order.
    const exp::RunRecord& grd = rows[solvers.size() * i];
    const exp::RunRecord& lazy = rows[solvers.size() * i + 1];
    std::printf("%8lld %14.2f %14.2f %12.4f %12.4f %14s %14s\n",
                static_cast<long long>(k), grd.utility, lazy.utility,
                grd.measurement.seconds, lazy.measurement.seconds,
                util::WithThousandsSep(
                    static_cast<int64_t>(grd.gain_evaluations))
                    .c_str(),
                util::WithThousandsSep(
                    static_cast<int64_t>(lazy.gain_evaluations))
                    .c_str());
  }
  return 0;
}
