/// Reproduces Figure 1b: execution time of GRD / TOP / RAND as k grows.
///
/// Expected shape: TOP's time is dominated by the one-off initial score
/// computation and stays nearly flat in k, while GRD additionally pays
/// k rounds of score updates, so the GRD-TOP gap grows with k. RAND is
/// orders of magnitude cheaper throughout.

#include <cstdio>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace ses;
  const bench::FigureArgs args =
      bench::ParseFigureArgs("fig1b_time_vs_k", argc, argv,
                             /*default_jobs=*/1);
  const bench::BenchScale scale = bench::MakeScale(args.scale);

  std::printf("Fig 1b — Time vs k (scale=%s, %u users)\n",
              args.scale.c_str(), scale.dataset.num_users);
  const ebsn::EbsnDataset dataset =
      ebsn::GenerateSyntheticMeetup(scale.dataset);
  const exp::WorkloadFactory factory(dataset);

  const std::vector<std::string> solvers{"grd", "top", "rand"};
  const auto records = bench::RunKSweep(factory, scale, solvers,
                                        static_cast<uint64_t>(args.seed),
                                        args.jobs, args.solver_threads);
  bench::EmitFigure(args, "Fig 1b: Time (seconds) vs k", "k", solvers,
                    records, exp::Metric::kSeconds);
  return 0;
}
