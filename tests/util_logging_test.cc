#include "util/logging.h"

#include <gtest/gtest.h>

namespace ses::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrip) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST(LoggingTest, GatingMacroRespectsLevel) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(SES_LOG_IS_ON(kDebug));
  EXPECT_FALSE(SES_LOG_IS_ON(kInfo));
  EXPECT_FALSE(SES_LOG_IS_ON(kWarning));
  EXPECT_TRUE(SES_LOG_IS_ON(kError));
  EXPECT_TRUE(SES_LOG_IS_ON(kFatal));
  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(SES_LOG_IS_ON(kDebug));
}

TEST(LoggingTest, SuppressedMessageDoesNotEvaluateEagerly) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return 42;
  };
  SES_LOG(kDebug) << "value " << count();
  EXPECT_EQ(evaluations, 0) << "stream args of a suppressed message ran";
  SES_LOG(kError) << "value " << count();
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ SES_CHECK(1 == 2) << "impossible"; }, "Check failed");
  EXPECT_DEATH(SES_CHECK_EQ(3, 4), "Check failed");
  EXPECT_DEATH(SES_CHECK_LT(5, 5), "Check failed");
}

TEST(CheckDeathTest, PassingChecksAreSilent) {
  SES_CHECK(true);
  SES_CHECK_EQ(2, 2);
  SES_CHECK_NE(2, 3);
  SES_CHECK_LT(1, 2);
  SES_CHECK_LE(2, 2);
  SES_CHECK_GT(3, 2);
  SES_CHECK_GE(3, 3);
  SUCCEED();
}

}  // namespace
}  // namespace ses::util
