#include "exp/workload.h"

#include <map>

#include <gtest/gtest.h>

#include "ebsn/generator.h"

namespace ses::exp {
namespace {

/// A scaled-down Meetup-like dataset shared by all workload tests.
const ebsn::EbsnDataset& TestDataset() {
  static const ebsn::EbsnDataset* dataset = [] {
    ebsn::SyntheticMeetupConfig config;
    config.num_users = 800;
    config.num_events = 400;
    config.num_groups = 60;
    config.num_tags = 80;
    config.seed = 424;
    return new ebsn::EbsnDataset(ebsn::GenerateSyntheticMeetup(config));
  }();
  return *dataset;
}

TEST(PaperWorkloadConfigTest, DefaultsFollowThePaper) {
  PaperWorkloadConfig config;
  EXPECT_EQ(config.k, 100);
  EXPECT_EQ(config.ResolvedIntervals(), 150);  // 3k/2
  EXPECT_EQ(config.ResolvedEvents(), 200);     // 2k
  EXPECT_DOUBLE_EQ(config.competing_mean, 8.1);
  EXPECT_EQ(config.num_locations, 25);
  EXPECT_DOUBLE_EQ(config.theta, 20.0);
  EXPECT_DOUBLE_EQ(config.xi_max, 20.0 / 3.0);
}

TEST(PaperWorkloadConfigTest, ExplicitOverridesWin) {
  PaperWorkloadConfig config;
  config.k = 50;
  config.num_intervals = 10;
  config.num_candidate_events = 60;
  EXPECT_EQ(config.ResolvedIntervals(), 10);
  EXPECT_EQ(config.ResolvedEvents(), 60);
}

PaperWorkloadConfig SmallConfig() {
  PaperWorkloadConfig config;
  config.k = 20;
  config.competing_mean = 3.0;
  config.competing_spread = 2.0;
  config.seed = 11;
  return config;
}

TEST(WorkloadFactoryTest, BuildsInstanceWithPaperShape) {
  WorkloadFactory factory(TestDataset());
  const PaperWorkloadConfig config = SmallConfig();
  auto instance = factory.Build(config);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  EXPECT_EQ(instance->num_users(), 800u);
  EXPECT_EQ(instance->num_events(), 40u);     // 2k
  EXPECT_EQ(instance->num_intervals(), 30u);  // 3k/2
  EXPECT_DOUBLE_EQ(instance->theta(), 20.0);

  // Locations within [0, 25); xi within [1, 20/3].
  for (core::EventIndex e = 0; e < instance->num_events(); ++e) {
    EXPECT_LT(instance->event(e).location, 25u);
    EXPECT_GE(instance->event(e).required_resources, 1.0);
    EXPECT_LE(instance->event(e).required_resources, 20.0 / 3.0);
  }
}

TEST(WorkloadFactoryTest, CompetingCountsNearConfiguredMean) {
  WorkloadFactory factory(TestDataset());
  PaperWorkloadConfig config = SmallConfig();
  config.k = 40;  // more intervals -> tighter mean estimate
  auto instance = factory.Build(config);
  ASSERT_TRUE(instance.ok());

  double total = 0.0;
  for (core::IntervalIndex t = 0; t < instance->num_intervals(); ++t) {
    const size_t count = instance->CompetingAt(t).size();
    EXPECT_LE(count, 6u);  // mean 3 + spread 2 rounds to at most 5 (+1)
    total += static_cast<double>(count);
  }
  const double mean = total / instance->num_intervals();
  EXPECT_NEAR(mean, 3.0, 1.0);
}

// The endpoint-bias regression pin: the per-interval competing count is
// a uniform *integer* on the closed range [round(mean-spread),
// round(mean+spread)]. The old draw (llround of a uniform real) gave
// the two endpoints half the interior probability, dragging the
// empirical mean off the configured center. With the paper defaults
// (8.1 ± 3.9) the range is [4, 12]: every value incl. both endpoints
// must occur, nothing outside it, and the mean must sit near 8.
TEST(WorkloadFactoryTest, CompetingCountsUniformOnClosedRange) {
  WorkloadFactory factory(TestDataset());
  PaperWorkloadConfig config;          // paper defaults: 8.1 ± 3.9
  config.k = 100;                      // 150 intervals
  config.num_candidate_events = 120;   // keep the build small
  config.seed = 7;
  auto instance = factory.Build(config);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  std::map<size_t, size_t> frequency;
  double total = 0.0;
  for (core::IntervalIndex t = 0; t < instance->num_intervals(); ++t) {
    const size_t count = instance->CompetingAt(t).size();
    EXPECT_GE(count, 4u);
    EXPECT_LE(count, 12u);
    ++frequency[count];
    total += static_cast<double>(count);
  }
  // 150 draws over 9 values: each endpoint is expected ~16-17 times;
  // zero occurrences would flag the old half-weight endpoints (or an
  // accidental half-open range).
  EXPECT_GT(frequency[4], 0u);
  EXPECT_GT(frequency[12], 0u);
  const double mean = total / instance->num_intervals();
  // Uniform on [4,12] has mean 8 and stddev ~2.58; over 150 draws the
  // standard error is ~0.21, so +/-0.8 is a ~4-sigma band.
  EXPECT_NEAR(mean, 8.0, 0.8);
}

TEST(WorkloadFactoryTest, DeterministicPerSeed) {
  WorkloadFactory factory(TestDataset());
  const PaperWorkloadConfig config = SmallConfig();
  auto a = factory.Build(config);
  auto b = factory.Build(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_events(), b->num_events());
  for (core::EventIndex e = 0; e < a->num_events(); ++e) {
    EXPECT_EQ(a->event(e).location, b->event(e).location);
    EXPECT_DOUBLE_EQ(a->event(e).required_resources,
                     b->event(e).required_resources);
    ASSERT_EQ(a->EventUsers(e).size(), b->EventUsers(e).size());
  }
  EXPECT_EQ(a->num_competing(), b->num_competing());
}

TEST(WorkloadFactoryTest, InterestsRespectThreshold) {
  WorkloadFactory factory(TestDataset());
  PaperWorkloadConfig config = SmallConfig();
  config.min_interest = 0.10;
  auto instance = factory.Build(config);
  ASSERT_TRUE(instance.ok());
  for (core::EventIndex e = 0; e < instance->num_events(); ++e) {
    for (float v : instance->EventValues(e)) {
      EXPECT_GE(v, 0.10f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(WorkloadFactoryTest, UserCapBoundsRowSizes) {
  WorkloadFactory factory(TestDataset());
  PaperWorkloadConfig config = SmallConfig();
  config.min_interest = 0.0;
  config.max_users_per_event = 10;
  auto instance = factory.Build(config);
  ASSERT_TRUE(instance.ok());
  for (core::EventIndex e = 0; e < instance->num_events(); ++e) {
    EXPECT_LE(instance->EventUsers(e).size(), 10u);
  }
}

TEST(WorkloadFactoryTest, RejectsBadConfigs) {
  WorkloadFactory factory(TestDataset());
  PaperWorkloadConfig config = SmallConfig();
  config.k = 0;
  EXPECT_FALSE(factory.Build(config).ok());

  config = SmallConfig();
  config.num_candidate_events = 5;  // < k
  EXPECT_FALSE(factory.Build(config).ok());

  config = SmallConfig();
  config.num_candidate_events = 100000;  // > catalog
  EXPECT_FALSE(factory.Build(config).ok());
}

}  // namespace
}  // namespace ses::exp
