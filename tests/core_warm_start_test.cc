/// Incremental re-planning: every constructive solver accepts a
/// pre-committed partial schedule (SolverOptions::warm_start) and extends
/// it to k assignments without disturbing the committed part.

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/objective.h"
#include "core/registry.h"
#include "core/validate.h"
#include "tests/test_util.h"

namespace ses::core {
namespace {

class WarmStartTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SesInstance MakeInstance() const {
    test::RandomInstanceConfig config;
    config.seed = GetParam();
    config.num_users = 30;
    config.num_events = 12;
    config.num_intervals = 5;
    return test::MakeRandomInstance(config);
  }
};

TEST_P(WarmStartTest, ConstructiveSolversKeepCommittedAssignments) {
  const SesInstance instance = MakeInstance();

  // Commit a 3-assignment prefix computed by GRD.
  GreedySolver grd;
  SolverOptions prefix_options;
  prefix_options.k = 3;
  prefix_options.seed = GetParam();
  auto prefix = grd.Solve(instance, prefix_options);
  ASSERT_TRUE(prefix.ok());

  for (const char* name : {"grd", "lazy", "bestfit", "top", "rand"}) {
    auto solver = MakeSolver(name);
    ASSERT_TRUE(solver.ok());
    SolverOptions options;
    options.k = 6;
    options.seed = GetParam();
    options.warm_start = prefix->assignments;
    auto result = solver.value()->Solve(instance, options);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_TRUE(ValidateAssignments(instance, result->assignments, 6).ok())
        << name;
    // Every committed assignment survives verbatim.
    for (const Assignment& committed : prefix->assignments) {
      EXPECT_NE(std::find(result->assignments.begin(),
                          result->assignments.end(), committed),
                result->assignments.end())
          << name << " dropped a committed assignment";
    }
  }
}

TEST_P(WarmStartTest, ExtendingCanOnlyAddUtility) {
  const SesInstance instance = MakeInstance();
  GreedySolver grd;
  SolverOptions prefix_options;
  prefix_options.k = 3;
  auto prefix = grd.Solve(instance, prefix_options);
  ASSERT_TRUE(prefix.ok());

  SolverOptions options;
  options.k = 6;
  options.warm_start = prefix->assignments;
  auto extended = grd.Solve(instance, options);
  ASSERT_TRUE(extended.ok());
  // Marginal gains are non-negative, so extending never loses utility.
  EXPECT_GE(extended->utility, prefix->utility - 1e-9);
}

TEST_P(WarmStartTest, WarmStartedGreedyMatchesItsOwnContinuation) {
  // Cold GRD to k and GRD warm-started with its own k-3 prefix must
  // agree: the greedy selection sequence is deterministic and
  // history-independent given the same partial schedule.
  const SesInstance instance = MakeInstance();
  GreedySolver grd;

  SolverOptions cold_options;
  cold_options.k = 6;
  auto cold = grd.Solve(instance, cold_options);
  ASSERT_TRUE(cold.ok());

  // Re-run to k=3 to recover the prefix greedy actually chose.
  SolverOptions prefix_options;
  prefix_options.k = 3;
  auto prefix = grd.Solve(instance, prefix_options);
  ASSERT_TRUE(prefix.ok());

  SolverOptions warm_options;
  warm_options.k = 6;
  warm_options.warm_start = prefix->assignments;
  auto warm = grd.Solve(instance, warm_options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->assignments, cold->assignments);
  EXPECT_NEAR(warm->utility, cold->utility, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStartTest,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(WarmStartValidationTest, RejectsOversizedWarmStart) {
  test::RandomInstanceConfig config;
  const SesInstance instance = test::MakeRandomInstance(config);
  GreedySolver grd;
  SolverOptions options;
  options.k = 1;
  options.warm_start = {{0, 0}, {1, 1}};
  EXPECT_FALSE(grd.Solve(instance, options).ok());
}

TEST(WarmStartValidationTest, RejectsInfeasibleWarmStart) {
  test::RandomInstanceConfig config;
  const SesInstance instance = test::MakeRandomInstance(config);
  GreedySolver grd;
  SolverOptions options;
  options.k = 3;
  options.warm_start = {{0, 0}, {0, 1}};  // same event twice
  EXPECT_FALSE(grd.Solve(instance, options).ok());
}

TEST(WarmStartValidationTest, WarmStartEqualToKReturnsItUnchanged) {
  test::RandomInstanceConfig config;
  config.seed = 7;
  const SesInstance instance = test::MakeRandomInstance(config);
  GreedySolver grd;
  SolverOptions prefix_options;
  prefix_options.k = 2;
  auto prefix = grd.Solve(instance, prefix_options);
  ASSERT_TRUE(prefix.ok());

  SolverOptions options;
  options.k = 2;
  options.warm_start = prefix->assignments;
  auto result = grd.Solve(instance, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignments, prefix->assignments);
}

}  // namespace
}  // namespace ses::core
