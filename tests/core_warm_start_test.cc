/// Incremental re-planning: every constructive solver accepts a
/// pre-committed partial schedule (SolverOptions::warm_start) and extends
/// it to k assignments without disturbing the committed part.

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/objective.h"
#include "core/registry.h"
#include "core/validate.h"
#include "tests/test_util.h"

namespace ses::core {
namespace {

class WarmStartTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SesInstance MakeInstance() const {
    test::RandomInstanceConfig config;
    config.seed = GetParam();
    config.num_users = 30;
    config.num_events = 12;
    config.num_intervals = 5;
    return test::MakeRandomInstance(config);
  }
};

TEST_P(WarmStartTest, ConstructiveSolversKeepCommittedAssignments) {
  const SesInstance instance = MakeInstance();

  // Commit a 3-assignment prefix computed by GRD.
  GreedySolver grd;
  SolverOptions prefix_options;
  prefix_options.k = 3;
  prefix_options.seed = GetParam();
  auto prefix = grd.Solve(instance, prefix_options);
  ASSERT_TRUE(prefix.ok());

  for (const char* name : {"grd", "lazy", "bestfit", "top", "rand"}) {
    auto solver = MakeSolver(name);
    ASSERT_TRUE(solver.ok());
    SolverOptions options;
    options.k = 6;
    options.seed = GetParam();
    options.warm_start = prefix->assignments;
    auto result = solver.value()->Solve(instance, options);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_TRUE(ValidateAssignments(instance, result->assignments, 6).ok())
        << name;
    // Every committed assignment survives verbatim.
    for (const Assignment& committed : prefix->assignments) {
      EXPECT_NE(std::find(result->assignments.begin(),
                          result->assignments.end(), committed),
                result->assignments.end())
          << name << " dropped a committed assignment";
    }
  }
}

TEST_P(WarmStartTest, ExtendingCanOnlyAddUtility) {
  const SesInstance instance = MakeInstance();
  GreedySolver grd;
  SolverOptions prefix_options;
  prefix_options.k = 3;
  auto prefix = grd.Solve(instance, prefix_options);
  ASSERT_TRUE(prefix.ok());

  SolverOptions options;
  options.k = 6;
  options.warm_start = prefix->assignments;
  auto extended = grd.Solve(instance, options);
  ASSERT_TRUE(extended.ok());
  // Marginal gains are non-negative, so extending never loses utility.
  EXPECT_GE(extended->utility, prefix->utility - 1e-9);
}

TEST_P(WarmStartTest, WarmStartedGreedyMatchesItsOwnContinuation) {
  // Cold GRD to k and GRD warm-started with its own k-3 prefix must
  // agree: the greedy selection sequence is deterministic and
  // history-independent given the same partial schedule.
  const SesInstance instance = MakeInstance();
  GreedySolver grd;

  SolverOptions cold_options;
  cold_options.k = 6;
  auto cold = grd.Solve(instance, cold_options);
  ASSERT_TRUE(cold.ok());

  // Re-run to k=3 to recover the prefix greedy actually chose.
  SolverOptions prefix_options;
  prefix_options.k = 3;
  auto prefix = grd.Solve(instance, prefix_options);
  ASSERT_TRUE(prefix.ok());

  SolverOptions warm_options;
  warm_options.k = 6;
  warm_options.warm_start = prefix->assignments;
  auto warm = grd.Solve(instance, warm_options);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->assignments, cold->assignments);
  EXPECT_NEAR(warm->utility, cold->utility, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmStartTest,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(WarmStartValidationTest, RejectsOversizedWarmStart) {
  test::RandomInstanceConfig config;
  const SesInstance instance = test::MakeRandomInstance(config);
  GreedySolver grd;
  SolverOptions options;
  options.k = 1;
  options.warm_start = {{0, 0}, {1, 1}};
  EXPECT_FALSE(grd.Solve(instance, options).ok());
}

TEST(WarmStartValidationTest, RejectsInfeasibleWarmStart) {
  test::RandomInstanceConfig config;
  const SesInstance instance = test::MakeRandomInstance(config);
  GreedySolver grd;
  SolverOptions options;
  options.k = 3;
  options.warm_start = {{0, 0}, {0, 1}};  // same event twice
  EXPECT_FALSE(grd.Solve(instance, options).ok());
}

// A warm start whose resource total exceeds theta by less than the
// validator's 1e-9 tolerance passes ValidateSolverOptions but fails the
// schedule's strict feasibility check. Handed directly to Solver::Solve
// (bypassing api::Scheduler), every constructive solver used to abort
// the process on an SES_CHECK; it must instead surface a typed
// InvalidArgument.
TEST(WarmStartValidationTest, NearThetaWarmStartReturnsInvalidArgument) {
  InstanceBuilder builder;
  builder.SetNumUsers(4).SetNumIntervals(2).SetTheta(1.0).SetSigma(
      std::make_shared<HashUniformSigma>(1));
  // Two events at distinct locations, each needing just over theta/2:
  // individually fine, jointly over theta by 5e-10 (< the 1e-9 slack).
  builder.AddEvent(/*location=*/0, /*required_resources=*/0.5 + 2.5e-10,
                   {{0u, 0.5f}});
  builder.AddEvent(/*location=*/1, /*required_resources=*/0.5 + 2.5e-10,
                   {{1u, 0.5f}});
  auto instance = builder.Build();
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  SolverOptions options;
  options.k = 2;
  options.warm_start = {{0, 0}, {1, 0}};
  // The validator accepts this warm start (within tolerance)...
  ASSERT_TRUE(ValidateAssignments(*instance, options.warm_start).ok());

  for (const char* name : {"grd", "lazy", "bestfit", "top", "rand"}) {
    auto solver = MakeSolver(name);
    ASSERT_TRUE(solver.ok());
    // ...but applying it is infeasible: expect a typed error, not a
    // process abort.
    auto result = solver.value()->Solve(*instance, options);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument)
        << name << ": " << result.status().ToString();
  }
}

TEST(WarmStartValidationTest, WarmStartEqualToKReturnsItUnchanged) {
  test::RandomInstanceConfig config;
  config.seed = 7;
  const SesInstance instance = test::MakeRandomInstance(config);
  GreedySolver grd;
  SolverOptions prefix_options;
  prefix_options.k = 2;
  auto prefix = grd.Solve(instance, prefix_options);
  ASSERT_TRUE(prefix.ok());

  SolverOptions options;
  options.k = 2;
  options.warm_start = prefix->assignments;
  auto result = grd.Solve(instance, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignments, prefix->assignments);
}

}  // namespace
}  // namespace ses::core
