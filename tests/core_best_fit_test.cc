#include "core/best_fit.h"

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/top_k.h"
#include "core/validate.h"
#include "tests/test_util.h"

namespace ses::core {
namespace {

class BestFitTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SesInstance MakeInstance() const {
    test::RandomInstanceConfig config;
    config.seed = GetParam();
    config.num_users = 35;
    config.num_events = 12;
    config.num_intervals = 5;
    return test::MakeRandomInstance(config);
  }
};

TEST_P(BestFitTest, ProducesFeasibleKSchedule) {
  const SesInstance instance = MakeInstance();
  SolverOptions options;
  options.k = 5;
  BestFitSolver bestfit;
  auto result = bestfit.Solve(instance, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ValidateAssignments(instance, result->assignments, 5).ok());
  EXPECT_EQ(result->solver, "bestfit");
}

TEST_P(BestFitTest, Deterministic) {
  const SesInstance instance = MakeInstance();
  SolverOptions options;
  options.k = 4;
  BestFitSolver bestfit;
  auto a = bestfit.Solve(instance, options);
  auto b = bestfit.Solve(instance, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
}

TEST_P(BestFitTest, NeverBeatsGreedyByMuchAndBeatsNothingInvalid) {
  const SesInstance instance = MakeInstance();
  SolverOptions options;
  options.k = 5;
  BestFitSolver bestfit;
  GreedySolver grd;
  auto bf = bestfit.Solve(instance, options);
  auto g = grd.Solve(instance, options);
  ASSERT_TRUE(bf.ok());
  ASSERT_TRUE(g.ok());
  // Event-major order is a heuristic restriction of GRD; it can win
  // occasionally (greedy is not optimal) but should stay in the same
  // ballpark. The point of this assertion is catching gross regressions.
  EXPECT_GE(bf->utility, 0.5 * g->utility);
  EXPECT_LE(bf->utility, 1.5 * g->utility);
}

TEST_P(BestFitTest, DoesFewerEvaluationsThanGreedy) {
  const SesInstance instance = MakeInstance();
  SolverOptions options;
  options.k = 6;
  BestFitSolver bestfit;
  GreedySolver grd;
  auto bf = bestfit.Solve(instance, options);
  auto g = grd.Solve(instance, options);
  ASSERT_TRUE(bf.ok());
  ASSERT_TRUE(g.ok());
  // BESTFIT costs |E||T| + (at most) k|T| evaluations; GRD's update cost
  // varies with how contested the chosen intervals are, so on tiny
  // instances the two can be within one interval-refresh of each other.
  EXPECT_LE(bf->stats.gain_evaluations,
            g->stats.gain_evaluations + instance.num_intervals());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BestFitTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(BestFitSingleTest, AvoidsTheCompetitionLoadedInterval) {
  // Two user-disjoint events and a competing event at interval 0 only.
  // The events never interact (no shared users, distinct locations), so
  // both belong at the competition-free interval 1 for the optimum 2.0.
  InstanceBuilder builder;
  builder.SetNumUsers(2).SetNumIntervals(2).SetTheta(10.0).SetSigma(
      std::make_shared<ConstSigma>(1.0));
  builder.AddEvent(0, 1.0, {{0, 0.9f}});
  builder.AddEvent(1, 1.0, {{1, 0.9f}});
  builder.AddCompetingEvent(0, {{0, 0.9f}, {1, 0.9f}});
  auto instance = builder.Build();
  ASSERT_TRUE(instance.ok());

  SolverOptions options;
  options.k = 2;
  BestFitSolver bestfit;
  auto result = bestfit.Solve(*instance, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignments.size(), 2u);
  for (const Assignment& a : result->assignments) {
    EXPECT_EQ(a.interval, 1u);
  }
  EXPECT_NEAR(result->utility, 2.0, 1e-6);
}

TEST(BestFitSingleTest, FreshGainSeesEarlierPlacements) {
  // One shared fan: if both events pile onto interval 1, the fan splits
  // (utility 1.0 total from them); the second event should instead take
  // interval 0 and keep the fan's full attention twice (0.5/1.4 loss vs
  // fresh gain comparison). Competing event at interval 0 with interest
  // 0.5 makes interval 1 more attractive for the *first* pick only.
  InstanceBuilder builder;
  builder.SetNumUsers(1).SetNumIntervals(2).SetTheta(10.0).SetSigma(
      std::make_shared<ConstSigma>(1.0));
  builder.AddEvent(/*location=*/0, 1.0, {{0, 0.9f}});
  builder.AddEvent(/*location=*/1, 1.0, {{0, 0.9f}});
  builder.AddCompetingEvent(0, {{0, 0.5f}});
  auto instance = builder.Build();
  ASSERT_TRUE(instance.ok());

  SolverOptions options;
  options.k = 2;
  BestFitSolver bestfit;
  auto result = bestfit.Solve(*instance, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignments.size(), 2u);
  // One event per interval: 1.0 (alone at t1) + 0.9/1.4 (vs competing
  // at t0) beats sharing t1 (0.5 + 0.5).
  EXPECT_NE(result->assignments[0].interval,
            result->assignments[1].interval);
  EXPECT_NEAR(result->utility, 1.0 + 0.9 / 1.4, 1e-6);
}

}  // namespace
}  // namespace ses::core
