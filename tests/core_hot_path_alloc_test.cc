/// Dynamic verification of the SES_HOT contract: the kernels that
/// tools/ses_lint.py proves allocation-free statically (hot-path rule)
/// are re-proven here at runtime with the counting allocator from
/// src/util/alloc_guard.h. Build with -DSES_ALLOC_GUARD=ON (the
/// sanitizer and release-test CI jobs do); without it every test
/// GTEST_SKIPs rather than passing vacuously.
///
/// The split mirrors the lint's cold/hot boundary exactly: warm-up
/// passes (cache materialization, schedule mutation) run before the
/// ScopedAllocCheck window opens, and the window then covers the same
/// call trees the SES_HOT annotations root.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/attendance.h"
#include "core/kernels.h"
#include "core/objective.h"
#include "core/sigma.h"
#include "tests/test_util.h"
#include "util/alloc_guard.h"

namespace ses::core {
namespace {

constexpr char kSkipMessage[] =
    "build with -DSES_ALLOC_GUARD=ON to count allocations";

/// One full interval-major gain sweep over the unassigned events —
/// the same access pattern as score generation (ScoreRange).
double GainSweep(const SesInstance& instance, AttendanceModel& model) {
  double sink = 0.0;
  for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
    for (EventIndex e = 0; e < instance.num_events(); ++e) {
      if (model.schedule().IsAssigned(e)) continue;
      sink += model.MarginalGain(e, t);
    }
  }
  return sink;
}

TEST(HotPathAllocTest, FirstSweepScratchPathIsAllocationFree) {
  if (!util::AllocGuardEnabled()) GTEST_SKIP() << kSkipMessage;
  const SesInstance instance = test::MakeMediumInstance();
  AttendanceModel model(instance);
  // A fresh model's first pass takes the uncached scratch path in
  // every interval (the cache materializes on the *second* load), so
  // this window proves the constructor's reserve down-payments cover
  // steady-state LoadInterval with zero allocations from load one.
  util::ScopedAllocCheck check;
  const double sink = GainSweep(instance, model);
  EXPECT_EQ(check.allocations(), 0u);
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(HotPathAllocTest, CacheWarmSweepIsAllocationFree) {
  if (!util::AllocGuardEnabled()) GTEST_SKIP() << kSkipMessage;
  const SesInstance instance = test::MakeMediumInstance();
  AttendanceModel model(instance);
  // Two warm passes: pass one counts each interval's load, pass two
  // triggers the (allocating, lint-suppressed) MaterializeCache on
  // every interval. Both stay outside the window.
  double warm = GainSweep(instance, model);
  warm += GainSweep(instance, model);
  util::ScopedAllocCheck check;
  const double sink = GainSweep(instance, model);
  EXPECT_EQ(check.allocations(), 0u);
  // The cached replay must also reproduce the uncached sweeps exactly:
  // warm holds two bit-identical passes, and (x + x) / 2 is exact in
  // IEEE arithmetic (bit-identity is pinned in depth by
  // core_sigma_cache_test).
  EXPECT_EQ(sink, warm / 2.0);
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(HotPathAllocTest, SweepOverPartialScheduleIsAllocationFree) {
  if (!util::AllocGuardEnabled()) GTEST_SKIP() << kSkipMessage;
  const SesInstance instance = test::MakeMediumInstance();
  AttendanceModel model(instance);
  // Mutating the schedule allocates (Schedule keeps per-interval event
  // lists) and is not SES_HOT; do it before the window so the window
  // measures gain evaluation over a non-trivial schedule — the
  // EventsAt fold in LoadInterval included.
  int applied = 0;
  for (EventIndex e = 0; e < instance.num_events() && applied < 5; ++e) {
    const IntervalIndex t = e % instance.num_intervals();
    if (model.CanAssign(e, t)) {
      model.Apply(e, t);
      ++applied;
    }
  }
  ASSERT_GT(applied, 0);
  double warm = GainSweep(instance, model);  // materialization pass 1
  warm += GainSweep(instance, model);        // materialization pass 2
  util::ScopedAllocCheck check;
  const double sink = GainSweep(instance, model);
  EXPECT_EQ(check.allocations(), 0u);
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(HotPathAllocTest, SigmaProviderFillsAreAllocationFree) {
  if (!util::AllocGuardEnabled()) GTEST_SKIP() << kSkipMessage;
  constexpr size_t kUsers = 512;
  constexpr IntervalIndex kIntervals = 16;
  const HashUniformSigma hashed(123);
  const ConstSigma constant(0.25);
  const DenseSigma dense(std::vector<std::vector<float>>(
      kIntervals, std::vector<float>(kUsers, 0.5f)));
  std::vector<float> row(kUsers);
  double sink = 0.0;
  util::ScopedAllocCheck check;
  for (IntervalIndex t = 0; t < kIntervals; ++t) {
    hashed.FillInterval(t, row);
    sink += row[t];
    constant.FillInterval(t, row);
    sink += row[t];
    dense.FillInterval(t, row);
    sink += row[t];
    sink += hashed.At(0, t) + constant.At(0, t) + dense.At(0, t);
  }
  EXPECT_EQ(check.allocations(), 0u);
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(HotPathAllocTest, KernelSweepIsAllocationFree) {
  if (!util::AllocGuardEnabled()) GTEST_SKIP() << kSkipMessage;
  // The SoA kernels called directly, bypassing AttendanceModel: a warm
  // sweep over pre-sized spans must be pure arithmetic — the kernels
  // take raw restrict pointers and have nothing to grow. This is the
  // runtime half of the lint's hot-path proof for the kernels::*
  // inventory entries.
  constexpr uint32_t kUsers = 512;
  IntervalSoA soa(kUsers);  // allocation happens here, outside the window
  std::vector<UserIndex> users;
  std::vector<float> values;
  for (UserIndex u = 0; u < kUsers; u += 3) {
    users.push_back(u);
    values.push_back(0.25f + static_cast<float>(u % 7) * 0.1f);
  }
  double sink = 0.0;
  util::ScopedAllocCheck check;
  for (int pass = 0; pass < 16; ++pass) {
    kernels::ClearTouched(soa.touched.data(), soa.num_touched,
                          soa.denom.data(), soa.sched_mass.data(),
                          soa.in_touched.data());
    soa.num_touched = 0;
    kernels::FillSigmaHash(42, static_cast<IntervalIndex>(pass), soa.sigma);
    soa.num_touched = kernels::AccumulateMass(
        users.data(), values.data(), users.size(), soa.denom.data(),
        nullptr, soa.touched.data(), soa.in_touched.data(),
        soa.num_touched);
    soa.num_touched = kernels::AccumulateMass(
        users.data(), values.data(), users.size(), soa.denom.data(),
        soa.sched_mass.data(), soa.touched.data(), soa.in_touched.data(),
        soa.num_touched);
    sink += kernels::LuceGain(users.data(), values.data(), users.size(),
                              soa.denom.data(), soa.sched_mass.data(),
                              soa.sigma.data());
    sink += kernels::LuceLoss(users.data(), values.data(), users.size(),
                              soa.denom.data(), soa.sched_mass.data(),
                              soa.sigma.data());
    soa.num_touched = kernels::TouchMass(
        users.data(), values.data(), users.size(), -1.0, soa.denom.data(),
        soa.sched_mass.data(), soa.touched.data(), soa.in_touched.data(),
        soa.num_touched);
  }
  EXPECT_EQ(check.allocations(), 0u);
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(HotPathAllocTest, AttendanceProbabilityIsAllocationFree) {
  if (!util::AllocGuardEnabled()) GTEST_SKIP() << kSkipMessage;
  const SesInstance instance = test::MakeMediumInstance();
  AttendanceModel model(instance);
  std::vector<EventIndex> assigned;
  for (EventIndex e = 0; e < instance.num_events(); ++e) {
    const IntervalIndex t = e % instance.num_intervals();
    if (model.CanAssign(e, t)) {
      model.Apply(e, t);
      assigned.push_back(e);
    }
  }
  ASSERT_FALSE(assigned.empty());
  double sink = 0.0;
  util::ScopedAllocCheck check;
  for (EventIndex e : assigned) {
    for (UserIndex u = 0; u < instance.num_users(); ++u) {
      sink += AttendanceProbability(instance, model.schedule(), u, e);
    }
  }
  EXPECT_EQ(check.allocations(), 0u);
  EXPECT_TRUE(std::isfinite(sink));
}

}  // namespace
}  // namespace ses::core
