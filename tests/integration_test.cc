/// End-to-end pipeline test: synthesize an EBSN dataset, build the paper
/// workload, run the paper's three methods, and check the paper's
/// qualitative findings at reduced scale.

#include <gtest/gtest.h>

#include "core/objective.h"
#include "core/validate.h"
#include "ebsn/generator.h"
#include "exp/runner.h"
#include "exp/workload.h"

namespace ses {
namespace {

const ebsn::EbsnDataset& PipelineDataset() {
  static const ebsn::EbsnDataset* dataset = [] {
    ebsn::SyntheticMeetupConfig config;
    config.num_users = 2000;
    config.num_events = 800;
    config.num_groups = 120;
    config.num_tags = 150;
    config.seed = 20180101;
    return new ebsn::EbsnDataset(ebsn::GenerateSyntheticMeetup(config));
  }();
  return *dataset;
}

TEST(IntegrationTest, FullPipelineRunsAndSchedulesAreFeasible) {
  exp::WorkloadFactory factory(PipelineDataset());
  exp::PaperWorkloadConfig config;
  config.k = 25;
  config.seed = 3;
  auto instance = factory.Build(config);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  core::SolverOptions options;
  options.k = config.k;
  options.seed = 3;
  auto records =
      exp::RunSolvers(*instance, {"grd", "lazy", "top", "rand"}, options,
                      config.k);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  for (const exp::RunRecord& record : *records) {
    EXPECT_EQ(record.assignments, 25u) << record.solver;
    EXPECT_GT(record.utility, 0.0) << record.solver;
  }
}

TEST(IntegrationTest, PaperFindingGreedyDominatesBaselines) {
  exp::WorkloadFactory factory(PipelineDataset());

  // Aggregate over several seeds so the comparison is not hostage to one
  // random draw — mirrors the paper's Figure 1a finding.
  double grd_total = 0.0;
  double top_total = 0.0;
  double rand_total = 0.0;
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    exp::PaperWorkloadConfig config;
    config.k = 20;
    config.seed = seed;
    auto instance = factory.Build(config);
    ASSERT_TRUE(instance.ok());
    core::SolverOptions options;
    options.k = config.k;
    options.seed = seed;
    auto records =
        exp::RunSolvers(*instance, {"grd", "top", "rand"}, options, 0);
    ASSERT_TRUE(records.ok());
    grd_total += (*records)[0].utility;
    top_total += (*records)[1].utility;
    rand_total += (*records)[2].utility;
  }
  EXPECT_GT(grd_total, top_total);
  EXPECT_GT(grd_total, rand_total);
}

TEST(IntegrationTest, PaperFindingUtilityGrowsWithIntervals) {
  exp::WorkloadFactory factory(PipelineDataset());

  double few_intervals_utility = 0.0;
  double many_intervals_utility = 0.0;
  for (uint64_t seed : {5ull, 6ull}) {
    for (const int64_t intervals : {4ll, 60ll}) {
      exp::PaperWorkloadConfig config;
      config.k = 20;
      config.num_intervals = intervals;
      config.seed = seed;
      auto instance = factory.Build(config);
      ASSERT_TRUE(instance.ok());
      core::SolverOptions options;
      options.k = config.k;
      options.seed = seed;
      auto records = exp::RunSolvers(*instance, {"grd"}, options, intervals);
      ASSERT_TRUE(records.ok());
      if (intervals == 4) {
        few_intervals_utility += (*records)[0].utility;
      } else {
        many_intervals_utility += (*records)[0].utility;
      }
    }
  }
  // More intervals -> less crowding and more candidate assignments ->
  // higher utility (paper Fig. 1c trend).
  EXPECT_GT(many_intervals_utility, few_intervals_utility);
}

TEST(IntegrationTest, GreedyUtilityIsMonotoneInK) {
  exp::WorkloadFactory factory(PipelineDataset());
  exp::PaperWorkloadConfig config;
  config.k = 30;  // fixes |E| = 60, |T| = 45
  config.num_candidate_events = 60;
  config.num_intervals = 45;
  config.seed = 9;
  auto instance = factory.Build(config);
  ASSERT_TRUE(instance.ok());

  double previous = 0.0;
  for (int64_t k : {5ll, 15ll, 30ll}) {
    core::SolverOptions options;
    options.k = k;
    auto records = exp::RunSolvers(*instance, {"grd"}, options, k);
    ASSERT_TRUE(records.ok());
    const double utility = (*records)[0].utility;
    EXPECT_GE(utility, previous - 1e-9) << "k=" << k;
    previous = utility;
  }
}

}  // namespace
}  // namespace ses
