/// Randomized differential test: drive Schedule with random
/// assign/unassign sequences and mirror every operation against a naive
/// reference model; all observable state must agree at every step. Also
/// cross-checks AttendanceModel's tracked utility against the reference
/// objective along the same random walks.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/attendance.h"
#include "core/objective.h"
#include "core/schedule.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ses::core {
namespace {

/// Deliberately naive re-implementation of the schedule rules.
class ReferenceSchedule {
 public:
  explicit ReferenceSchedule(const SesInstance& instance)
      : instance_(&instance) {}

  bool CanAssign(EventIndex e, IntervalIndex t) const {
    if (e >= instance_->num_events() || t >= instance_->num_intervals()) {
      return false;
    }
    if (placement_.count(e) > 0) return false;
    double used = instance_->event(e).required_resources;
    for (const auto& [other, interval] : placement_) {
      if (interval != t) continue;
      if (instance_->event(other).location ==
          instance_->event(e).location) {
        return false;
      }
      used += instance_->event(other).required_resources;
    }
    return used <= instance_->theta();
  }

  bool Assign(EventIndex e, IntervalIndex t) {
    if (!CanAssign(e, t)) return false;
    placement_[e] = t;
    return true;
  }

  bool Unassign(EventIndex e) { return placement_.erase(e) > 0; }

  size_t size() const { return placement_.size(); }

  std::set<EventIndex> EventsAt(IntervalIndex t) const {
    std::set<EventIndex> out;
    for (const auto& [e, interval] : placement_) {
      if (interval == t) out.insert(e);
    }
    return out;
  }

 private:
  const SesInstance* instance_;
  std::map<EventIndex, IntervalIndex> placement_;
};

class ScheduleFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScheduleFuzzTest, ScheduleAgreesWithReferenceModel) {
  test::RandomInstanceConfig config;
  config.seed = GetParam();
  config.num_users = 15;
  config.num_events = 10;
  config.num_intervals = 4;
  config.theta = 7.0;  // tight: feasibility rejections happen often
  const SesInstance instance = test::MakeRandomInstance(config);

  Schedule schedule(instance);
  ReferenceSchedule reference(instance);
  util::Rng rng(GetParam() * 101 + 13);

  for (int step = 0; step < 500; ++step) {
    const EventIndex e =
        static_cast<EventIndex>(rng.NextBounded(instance.num_events()));
    const IntervalIndex t = static_cast<IntervalIndex>(
        rng.NextBounded(instance.num_intervals()));
    if (rng.Bernoulli(0.7)) {
      const bool expected = reference.CanAssign(e, t);
      ASSERT_EQ(schedule.CanAssign(e, t), expected)
          << "step " << step << " CanAssign(" << e << "," << t << ")";
      const bool reference_ok = reference.Assign(e, t);
      ASSERT_EQ(schedule.Assign(e, t).ok(), reference_ok) << "step " << step;
    } else {
      const bool reference_ok = reference.Unassign(e);
      ASSERT_EQ(schedule.Unassign(e).ok(), reference_ok) << "step " << step;
    }
    ASSERT_EQ(schedule.size(), reference.size()) << "step " << step;
    for (IntervalIndex check = 0; check < instance.num_intervals();
         ++check) {
      const auto& actual = schedule.EventsAt(check);
      ASSERT_EQ(std::set<EventIndex>(actual.begin(), actual.end()),
                reference.EventsAt(check))
          << "step " << step << " interval " << check;
    }
  }
}

TEST_P(ScheduleFuzzTest, AttendanceTrackerSurvivesRandomWalk) {
  test::RandomInstanceConfig config;
  config.seed = GetParam() + 500;
  config.num_users = 20;
  config.num_events = 8;
  config.num_intervals = 3;
  const SesInstance instance = test::MakeRandomInstance(config);

  AttendanceModel model(instance);
  util::Rng rng(GetParam() * 7 + 1);

  for (int step = 0; step < 200; ++step) {
    const EventIndex e =
        static_cast<EventIndex>(rng.NextBounded(instance.num_events()));
    if (rng.Bernoulli(0.6)) {
      const IntervalIndex t = static_cast<IntervalIndex>(
          rng.NextBounded(instance.num_intervals()));
      if (model.CanAssign(e, t)) model.Apply(e, t);
    } else if (model.schedule().IsAssigned(e)) {
      model.Unapply(e);
    }
    if (step % 20 == 0) {
      ASSERT_NEAR(model.total_utility(),
                  TotalUtility(instance, model.schedule()), 1e-6)
          << "drift at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzzTest,
                         ::testing::Values(1, 7, 42, 99, 1234));

}  // namespace
}  // namespace ses::core
