/// \file
/// Differential kernel-testing harness for the SoA kernel layer
/// (core/kernels.h): every batched span kernel is compared against a
/// kept scalar reference implementation — the exact loops the kernels
/// replaced — and the kernel-backed AttendanceModel is compared
/// against both a from-scratch scalar recompute and the objective.h
/// oracle, property-swept over seeds × sigma providers × degenerate
/// instance shapes × thread counts.
///
/// Equality tiers (see the contract note atop core/kernels.h):
///
///   BIT-IDENTICAL — kernel vs the scalar loop it replaced, and
///     MarginalGain vs a scalar from-scratch recompute that accumulates
///     in the same order. The kernels preserve evaluation order, so any
///     difference — one reassociated add, one fused multiply — is a
///     test failure, not tolerance noise.
///   ≤ 1e-6 RELATIVE — MarginalGain vs objective::AssignmentScore. The
///     oracle sums per-user terms in a different association (hash-map
///     walk over a schedule copy), so bit-equality is not defined;
///     1e-6 matches the pre-existing pin in core_attendance_test.cc.
///
/// Degenerate shapes: |U|=1 (InstanceBuilder rejects |U|=0, so the
/// zero-user case is covered at the kernel level by n=0 spans), a
/// single interval, and all-users-interested dense rows.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/attendance.h"
#include "core/instance.h"
#include "core/kernels.h"
#include "core/objective.h"
#include "core/schedule.h"
#include "core/score_gen.h"
#include "core/sigma.h"
#include "core/solve_context.h"
#include "core/solver.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ses::core {
namespace {

/// Bitwise double equality: distinguishes -0.0 from 0.0 and would
/// surface NaN-payload drift, which `==` cannot.
::testing::AssertionResult BitEq(double a, double b) {
  if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::hex
         << std::bit_cast<uint64_t>(a) << " vs "
         << std::bit_cast<uint64_t>(b) << ")";
}

::testing::AssertionResult BitEqF(float a, float b) {
  if (std::bit_cast<uint32_t>(a) == std::bit_cast<uint32_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::hex
         << std::bit_cast<uint32_t>(a) << " vs "
         << std::bit_cast<uint32_t>(b) << ")";
}

template <typename T>
std::vector<T> ToVec(std::span<const T> s) {
  return std::vector<T>(s.begin(), s.end());
}

/// The scalar reference implementations: these are the pre-kernel
/// loops from attendance.cc, kept verbatim so the harness can detect
/// any numeric drift a future kernel rewrite introduces.
namespace ref {

double LuceGain(const std::vector<UserIndex>& users,
                const std::vector<float>& values,
                const std::vector<double>& denom,
                const std::vector<double>& sched_mass,
                const std::vector<float>& sigma) {
  double gain = 0.0;
  for (size_t i = 0; i < users.size(); ++i) {
    const UserIndex u = users[i];
    const double x = static_cast<double>(values[i]);
    const double d = denom[u];
    const double m = sched_mass[u];
    const double term_new = (m + x) / (d + x);
    const double term_old = d > 0.0 ? m / d : 0.0;
    gain += static_cast<double>(sigma[u]) * (term_new - term_old);
  }
  return gain;
}

double LuceLoss(const std::vector<UserIndex>& users,
                const std::vector<float>& values,
                const std::vector<double>& denom,
                const std::vector<double>& sched_mass,
                const std::vector<float>& sigma) {
  double loss = 0.0;
  for (size_t i = 0; i < users.size(); ++i) {
    const UserIndex u = users[i];
    const double x = static_cast<double>(values[i]);
    const double d = denom[u];
    const double m = sched_mass[u];
    const double term_with = d > 0.0 ? m / d : 0.0;
    const double d_without = d - x;
    const double m_without = m - x;
    const double term_without =
        d_without > 1e-12 ? (m_without > 0.0 ? m_without / d_without : 0.0)
                          : 0.0;
    loss += static_cast<double>(sigma[u]) * (term_with - term_without);
  }
  return loss;
}

// The touched-list recording rule carries the kernels' dedup-mask
// semantics: record a user at most once per load (the SoA `touched`
// array is a strict-|U| buffer, so duplicate recording — possible when
// apply/unapply churn clamps a user's mass back to exactly zero — is
// deduplicated by the byte mask). Recording affects only which entries
// get cleared on unload, never a numeric result.

void AccumulateMass(const std::vector<UserIndex>& users,
                    const std::vector<float>& values,
                    std::vector<double>& denom,
                    std::vector<double>* sched_mass,
                    std::vector<UserIndex>& touched,
                    std::vector<uint8_t>& in_touched) {
  for (size_t i = 0; i < users.size(); ++i) {
    const UserIndex u = users[i];
    if (denom[u] == 0.0 && in_touched[u] == 0) {
      in_touched[u] = 1;
      touched.push_back(u);
    }
    denom[u] += static_cast<double>(values[i]);
    if (sched_mass != nullptr) {
      (*sched_mass)[u] += static_cast<double>(values[i]);
    }
  }
}

void TouchMass(const std::vector<UserIndex>& users,
               const std::vector<float>& values, double sign,
               std::vector<double>& denom, std::vector<double>& sched_mass,
               std::vector<UserIndex>& touched,
               std::vector<uint8_t>& in_touched) {
  for (size_t i = 0; i < users.size(); ++i) {
    const UserIndex u = users[i];
    const double mu = sign * static_cast<double>(values[i]);
    if (denom[u] == 0.0 && mu > 0.0 && in_touched[u] == 0) {
      in_touched[u] = 1;
      touched.push_back(u);
    }
    denom[u] += mu;
    sched_mass[u] += mu;
    if (denom[u] < 0.0) denom[u] = 0.0;
    if (sched_mass[u] < 0.0) sched_mass[u] = 0.0;
  }
}

}  // namespace ref

/// One random sparse row over `num_users` users: sorted unique user
/// indices with interest values in the instance-realistic range.
struct SparseRow {
  std::vector<UserIndex> users;
  std::vector<float> values;
};

SparseRow RandomRow(util::Rng& rng, uint32_t num_users, double density) {
  SparseRow row;
  for (UserIndex u = 0; u < num_users; ++u) {
    if (rng.Bernoulli(density)) {
      row.users.push_back(u);
      row.values.push_back(static_cast<float>(rng.UniformDouble(0.05, 1.0)));
    }
  }
  return row;
}

/// Random dense per-user state with realistic structure: a fraction of
/// users has zero mass (exercises the D == 0 branches) and M <= D.
void RandomState(util::Rng& rng, uint32_t num_users,
                 std::vector<double>& denom, std::vector<double>& sched_mass,
                 std::vector<float>& sigma) {
  denom.assign(num_users, 0.0);
  sched_mass.assign(num_users, 0.0);
  sigma.assign(num_users, 0.0f);
  for (UserIndex u = 0; u < num_users; ++u) {
    sigma[u] = static_cast<float>(rng.UniformDouble(0.0, 1.0));
    if (rng.Bernoulli(0.3)) continue;  // untouched user: D = M = 0
    const double c = rng.UniformDouble(0.0, 3.0);
    const double m = rng.Bernoulli(0.5) ? rng.UniformDouble(0.0, 2.0) : 0.0;
    denom[u] = c + m;
    sched_mass[u] = m;
  }
}

// ---------------------------------------------------------------------------
// Tier 1: every kernel vs its scalar reference, bit-identical, over raw
// arrays (seed-swept; n == 0 rows cover the |U| = 0 degenerate shape).
// ---------------------------------------------------------------------------

TEST(KernelDiffTest, LuceGainBitIdenticalToReference) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    util::Rng rng(seed);
    const uint32_t num_users = seed == 0 ? 1 : 1 + rng.NextBounded(200);
    std::vector<double> denom, sched;
    std::vector<float> sigma;
    RandomState(rng, num_users, denom, sched, sigma);
    // density 0.0 on the first seed gives the empty row (n == 0).
    const double density = seed == 0 ? 0.0 : rng.UniformDouble(0.1, 1.0);
    const SparseRow row = RandomRow(rng, num_users, density);

    const double kernel = kernels::LuceGain(
        row.users.data(), row.values.data(), row.users.size(), denom.data(),
        sched.data(), sigma.data());
    const double reference =
        ref::LuceGain(row.users, row.values, denom, sched, sigma);
    EXPECT_TRUE(BitEq(kernel, reference)) << "seed " << seed;
  }
}

TEST(KernelDiffTest, LuceLossBitIdenticalToReference) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    util::Rng rng(seed);
    const uint32_t num_users = 1 + rng.NextBounded(200);
    std::vector<double> denom, sched;
    std::vector<float> sigma;
    RandomState(rng, num_users, denom, sched, sigma);
    const SparseRow row =
        RandomRow(rng, num_users, rng.UniformDouble(0.1, 1.0));
    // Fold the row in first so the loss has real mass to remove, as in
    // Unapply (exercises the d_without guard via full cancellation on
    // users whose only mass is this row).
    for (size_t i = 0; i < row.users.size(); ++i) {
      denom[row.users[i]] += static_cast<double>(row.values[i]);
      sched[row.users[i]] += static_cast<double>(row.values[i]);
    }

    const double kernel = kernels::LuceLoss(
        row.users.data(), row.values.data(), row.users.size(), denom.data(),
        sched.data(), sigma.data());
    const double reference =
        ref::LuceLoss(row.users, row.values, denom, sched, sigma);
    EXPECT_TRUE(BitEq(kernel, reference)) << "seed " << seed;
  }
}

TEST(KernelDiffTest, AccumulateMassBitIdenticalToReference) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    for (const bool with_sched : {false, true}) {
      util::Rng rng(seed);
      const uint32_t num_users = 1 + rng.NextBounded(100);
      std::vector<double> ref_denom(num_users, 0.0);
      std::vector<double> ref_sched(num_users, 0.0);
      std::vector<UserIndex> ref_touched;
      std::vector<uint8_t> ref_mask(num_users, 0);
      std::vector<double> soa_denom(num_users, 0.0);
      std::vector<double> soa_sched(num_users, 0.0);
      std::vector<UserIndex> soa_touched(num_users, 0);
      std::vector<uint8_t> soa_mask(num_users, 0);
      size_t num_touched = 0;

      // Several overlapping rows, as LoadInterval folds several
      // competing/scheduled rows into the same scratch.
      for (int r = 0; r < 4; ++r) {
        const SparseRow row =
            RandomRow(rng, num_users, rng.UniformDouble(0.0, 0.8));
        ref::AccumulateMass(row.users, row.values, ref_denom,
                            with_sched ? &ref_sched : nullptr, ref_touched,
                            ref_mask);
        num_touched = kernels::AccumulateMass(
            row.users.data(), row.values.data(), row.users.size(),
            soa_denom.data(), with_sched ? soa_sched.data() : nullptr,
            soa_touched.data(), soa_mask.data(), num_touched);
      }

      ASSERT_EQ(num_touched, ref_touched.size()) << "seed " << seed;
      for (size_t i = 0; i < num_touched; ++i) {
        EXPECT_EQ(soa_touched[i], ref_touched[i]) << "seed " << seed;
      }
      for (UserIndex u = 0; u < num_users; ++u) {
        EXPECT_TRUE(BitEq(soa_denom[u], ref_denom[u])) << "seed " << seed;
        EXPECT_TRUE(BitEq(soa_sched[u], ref_sched[u])) << "seed " << seed;
      }
    }
  }
}

TEST(KernelDiffTest, TouchMassBitIdenticalToReference) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    util::Rng rng(seed);
    const uint32_t num_users = 1 + rng.NextBounded(100);
    std::vector<double> ref_denom(num_users, 0.0);
    std::vector<double> ref_sched(num_users, 0.0);
    std::vector<UserIndex> ref_touched;
    std::vector<uint8_t> ref_mask(num_users, 0);
    std::vector<double> soa_denom(num_users, 0.0);
    std::vector<double> soa_sched(num_users, 0.0);
    std::vector<UserIndex> soa_touched(num_users, 0);
    std::vector<uint8_t> soa_mask(num_users, 0);
    size_t num_touched = 0;

    // Apply/unapply churn: add rows, remove some of them again — the
    // remove path exercises the negative-residue clamps.
    std::vector<SparseRow> applied;
    for (int step = 0; step < 6; ++step) {
      const bool remove = !applied.empty() && rng.Bernoulli(0.4);
      SparseRow row;
      double sign;
      if (remove) {
        row = applied.back();
        applied.pop_back();
        sign = -1.0;
      } else {
        row = RandomRow(rng, num_users, rng.UniformDouble(0.1, 0.8));
        applied.push_back(row);
        sign = +1.0;
      }
      ref::TouchMass(row.users, row.values, sign, ref_denom, ref_sched,
                     ref_touched, ref_mask);
      num_touched = kernels::TouchMass(
          row.users.data(), row.values.data(), row.users.size(), sign,
          soa_denom.data(), soa_sched.data(), soa_touched.data(),
          soa_mask.data(), num_touched);
    }

    ASSERT_EQ(num_touched, ref_touched.size()) << "seed " << seed;
    for (size_t i = 0; i < num_touched; ++i) {
      EXPECT_EQ(soa_touched[i], ref_touched[i]) << "seed " << seed;
    }
    for (UserIndex u = 0; u < num_users; ++u) {
      EXPECT_TRUE(BitEq(soa_denom[u], ref_denom[u])) << "seed " << seed;
      EXPECT_TRUE(BitEq(soa_sched[u], ref_sched[u])) << "seed " << seed;
    }
  }
}

TEST(KernelDiffTest, ScatterMassesReplaysExactDoubles) {
  util::Rng rng(7);
  const uint32_t num_users = 64;
  std::vector<UserIndex> users;
  std::vector<double> masses;
  for (UserIndex u = 0; u < num_users; ++u) {
    if (!rng.Bernoulli(0.5)) continue;
    users.push_back(u);
    masses.push_back(rng.UniformDouble(1e-9, 5.0));
  }
  std::vector<double> denom(num_users, 0.0);
  std::vector<UserIndex> touched(num_users, 0);
  std::vector<uint8_t> mask(num_users, 0);
  const size_t n = kernels::ScatterMasses(users.data(), masses.data(),
                                          users.size(), denom.data(),
                                          touched.data(), mask.data());
  ASSERT_EQ(n, users.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(touched[i], users[i]);
    EXPECT_EQ(mask[users[i]], 1);
    EXPECT_TRUE(BitEq(denom[users[i]], masses[i]));
  }
}

// ---------------------------------------------------------------------------
// Tier 1b: sigma fill kernels vs per-element evaluation, bit-identical,
// for every provider (the base-class fallback included).
// ---------------------------------------------------------------------------

TEST(KernelDiffTest, SigmaFillKernelsBitIdenticalToPerElement) {
  const uint32_t num_users = 157;  // deliberately not a SIMD multiple
  std::vector<float> bulk(num_users);

  for (uint64_t seed : {1ULL, 99ULL, 0xDEADBEEFULL}) {
    for (IntervalIndex t = 0; t < 4; ++t) {
      kernels::FillSigmaHash(seed, t, bulk);
      for (UserIndex u = 0; u < num_users; ++u) {
        EXPECT_TRUE(BitEqF(
            bulk[u], static_cast<float>(kernels::HashSigma(seed, u, t))));
      }
    }
  }

  kernels::FillSigmaConst(0.37f, bulk);
  for (float v : bulk) EXPECT_TRUE(BitEqF(v, 0.37f));

  util::Rng rng(3);
  std::vector<float> dense_row(num_users);
  for (float& v : dense_row) {
    v = static_cast<float>(rng.UniformDouble(0.0, 1.0));
  }
  kernels::CopySigmaRow(dense_row, bulk);
  for (UserIndex u = 0; u < num_users; ++u) {
    EXPECT_TRUE(BitEqF(bulk[u], dense_row[u]));
  }

  // n == 0 spans are valid no-ops for every fill.
  std::span<float> empty;
  kernels::FillSigmaHash(1, 0, empty);
  kernels::FillSigmaConst(0.5f, empty);
  kernels::CopySigmaRow(dense_row, empty);
}

// ---------------------------------------------------------------------------
// Tier 2: the kernel-backed AttendanceModel vs a scalar from-scratch
// recompute, bit-identical, swept over sigma providers × shapes ×
// seeds.
// ---------------------------------------------------------------------------

enum class SigmaKind { kConst, kDense, kHashUniform };

const char* Name(SigmaKind kind) {
  switch (kind) {
    case SigmaKind::kConst: return "Const";
    case SigmaKind::kDense: return "Dense";
    case SigmaKind::kHashUniform: return "HashUniform";
  }
  return "?";
}

/// MakeRandomInstance with a selectable sigma provider (the shared
/// helper is hard-wired to HashUniformSigma).
SesInstance MakeInstanceWithSigma(const test::RandomInstanceConfig& config,
                                  SigmaKind kind) {
  util::Rng rng(config.seed);
  InstanceBuilder builder;
  builder.SetNumUsers(config.num_users)
      .SetNumIntervals(config.num_intervals)
      .SetTheta(config.theta);
  switch (kind) {
    case SigmaKind::kConst:
      builder.SetSigma(std::make_shared<ConstSigma>(0.6));
      break;
    case SigmaKind::kDense: {
      std::vector<std::vector<float>> rows(
          config.num_intervals, std::vector<float>(config.num_users));
      for (auto& row : rows) {
        for (float& v : row) {
          v = static_cast<float>(rng.UniformDouble(0.0, 1.0));
        }
      }
      builder.SetSigma(std::make_shared<DenseSigma>(std::move(rows)));
      break;
    }
    case SigmaKind::kHashUniform:
      builder.SetSigma(std::make_shared<HashUniformSigma>(config.seed));
      break;
  }

  auto random_row = [&rng, &config] {
    std::vector<std::pair<UserIndex, float>> row;
    for (UserIndex u = 0; u < config.num_users; ++u) {
      if (rng.Bernoulli(config.interest_density)) {
        row.push_back({u, static_cast<float>(rng.UniformDouble(0.05, 1.0))});
      }
    }
    return row;
  };
  for (uint32_t e = 0; e < config.num_events; ++e) {
    builder.AddEvent(
        static_cast<LocationId>(rng.NextBounded(config.num_locations)),
        rng.UniformDouble(config.xi_min, config.xi_max), random_row());
  }
  for (uint32_t t = 0; t < config.num_intervals; ++t) {
    const int count = util::PoissonSample(rng, config.competing_per_interval);
    for (int c = 0; c < count; ++c) builder.AddCompetingEvent(t, random_row());
  }
  auto instance = builder.Build();
  SES_CHECK(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

/// Scalar from-scratch recompute of MarginalGain(e, t): rebuilds D/M by
/// the reference accumulation loops in the exact order LoadInterval
/// folds rows (competing rows in CompetingAt order, then scheduled
/// events in EventsAt order), then sums the reference gain loop.
double RefMarginalGain(const SesInstance& instance, const Schedule& schedule,
                       EventIndex e, IntervalIndex t) {
  const uint32_t num_users = instance.num_users();
  std::vector<double> denom(num_users, 0.0);
  std::vector<double> sched(num_users, 0.0);
  std::vector<UserIndex> touched;
  std::vector<uint8_t> mask(num_users, 0);
  for (CompetingIndex c : instance.CompetingAt(t)) {
    ref::AccumulateMass(ToVec(instance.CompetingUsers(c)),
                        ToVec(instance.CompetingValues(c)), denom, nullptr,
                        touched, mask);
  }
  for (EventIndex p : schedule.EventsAt(t)) {
    ref::AccumulateMass(ToVec(instance.EventUsers(p)),
                        ToVec(instance.EventValues(p)), denom, &sched,
                        touched, mask);
  }
  std::vector<float> sigma(num_users);
  instance.sigma().FillInterval(t, sigma);
  return ref::LuceGain(ToVec(instance.EventUsers(e)),
                       ToVec(instance.EventValues(e)), denom, sched, sigma);
}

/// Drives one instance: applies a few assignments, then sweeps every
/// unassigned (e, t) cell comparing the model bitwise against the
/// scalar recompute and within tolerance against the objective.h
/// oracle.
void RunModelDiff(const SesInstance& instance, uint64_t seed,
                  const char* label) {
  AttendanceModel model(instance);
  util::Rng rng(seed ^ 0xABCDULL);
  // Apply up to half the events wherever feasible, so the sweep sees
  // non-trivial scheduled mass (M > 0) in most intervals.
  for (EventIndex e = 0; e < instance.num_events(); e += 2) {
    const IntervalIndex t =
        static_cast<IntervalIndex>(rng.NextBounded(instance.num_intervals()));
    if (model.CanAssign(e, t)) model.Apply(e, t);
  }

  for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
    for (EventIndex e = 0; e < instance.num_events(); ++e) {
      if (model.schedule().IsAssigned(e)) continue;
      const double fast = model.MarginalGain(e, t);
      const double scalar =
          RefMarginalGain(instance, model.schedule(), e, t);
      EXPECT_TRUE(BitEq(fast, scalar))
          << label << " seed " << seed << " e=" << e << " t=" << t;
      // Tolerance tier: the oracle associates differently, so compare
      // relatively at the pre-existing 1e-6 pin.
      const double oracle =
          AssignmentScore(instance, model.schedule(), e, t);
      const double denom_tol = std::max(1.0, std::abs(fast));
      EXPECT_NEAR(fast, oracle, 1e-6 * denom_tol)
          << label << " seed " << seed << " e=" << e << " t=" << t;
    }
  }
}

TEST(KernelDiffTest, ModelMatchesScalarRecomputeAcrossSigmaProviders) {
  for (const SigmaKind kind :
       {SigmaKind::kConst, SigmaKind::kDense, SigmaKind::kHashUniform}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      test::RandomInstanceConfig config;
      config.seed = seed;
      SesInstance instance = MakeInstanceWithSigma(config, kind);
      RunModelDiff(instance, seed, Name(kind));
    }
  }
}

TEST(KernelDiffTest, ModelMatchesScalarRecomputeOnDegenerateShapes) {
  // |U| = 1: every row is either empty or the single user.
  // (|U| = 0 is rejected by InstanceBuilder — covered at kernel level
  // by the n == 0 sweeps above.)
  {
    test::RandomInstanceConfig config;
    config.num_users = 1;
    config.interest_density = 1.0;
    SesInstance instance =
        MakeInstanceWithSigma(config, SigmaKind::kHashUniform);
    RunModelDiff(instance, config.seed, "single-user");
  }
  // Single interval: every event competes for the same scratch; the
  // model never reloads, so the sweep runs against TouchLoaded-updated
  // state rather than fresh folds.
  {
    test::RandomInstanceConfig config;
    config.num_intervals = 1;
    SesInstance instance = MakeInstanceWithSigma(config, SigmaKind::kDense);
    RunModelDiff(instance, config.seed, "single-interval");
  }
  // All users interested in everything: dense rows, no D == 0 cells
  // once anything is scheduled.
  {
    test::RandomInstanceConfig config;
    config.interest_density = 1.0;
    SesInstance instance = MakeInstanceWithSigma(config, SigmaKind::kConst);
    RunModelDiff(instance, config.seed, "all-interested");
  }
}

// ---------------------------------------------------------------------------
// Tier 3: sharded score generation stays bit-identical across thread
// counts on the kernel-backed model.
// ---------------------------------------------------------------------------

TEST(KernelDiffTest, ShardedScoreGenerationBitIdenticalAcrossThreads) {
  const SesInstance instance = test::MakeMediumInstance(11);
  const size_t cells = static_cast<size_t>(instance.num_events()) *
                       instance.num_intervals();
  SolveContext context;

  std::vector<double> serial(cells, 0.0);
  {
    SolverOptions options;
    options.threads = 1;
    const ScoreGenResult result =
        GenerateAssignmentScores(instance, options, context, serial);
    ASSERT_TRUE(result.termination.ok());
  }
  std::vector<double> sharded(cells, 0.0);
  {
    SolverOptions options;
    options.threads = 4;
    const ScoreGenResult result =
        GenerateAssignmentScores(instance, options, context, sharded);
    ASSERT_TRUE(result.termination.ok());
  }
  for (size_t i = 0; i < cells; ++i) {
    EXPECT_TRUE(BitEq(serial[i], sharded[i])) << "cell " << i;
  }
}

}  // namespace
}  // namespace ses::core
