#!/usr/bin/env python3
"""Fixture suite for tools/ses_lint.py, registered with ctest.

Each rule gets a good and a bad snippet (run against a synthetic repo
tree in a temp directory, so the fixtures cannot drift into the real
src/), plus suppression-comment behavior, the full layering matrix, and
two lockstep checks: every rule id must appear in
docs/ARCHITECTURE.md's static-analysis section, and the real repository
must lint clean.
"""

import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SES_LINT = os.path.join(REPO_ROOT, "tools", "ses_lint.py")


def run_lint(root, paths=("src",)):
    """Runs ses_lint over a tree; returns (exit_code, stderr_text)."""
    proc = subprocess.run(
        [sys.executable, SES_LINT, "--root", root, *paths],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stderr


class LintFixture(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)

    def assert_clean(self, paths=("src",)):
        code, err = run_lint(self.root, paths)
        self.assertEqual(code, 0, f"expected clean, got:\n{err}")

    def assert_flags(self, rule, paths=("src",)):
        code, err = run_lint(self.root, paths)
        self.assertEqual(code, 1, f"expected a {rule} problem, got clean")
        self.assertIn(f" {rule}: ", err,
                      f"expected rule {rule} in:\n{err}")


class LayeringTest(LintFixture):
    # layer -> (one allowed include, one forbidden include)
    MATRIX = {
        "util": ("util/status.h", "core/instance.h"),
        "core": ("util/status.h", "ebsn/types.h"),
        "ebsn": ("core/types.h", "api/scheduler.h"),
        "api": ("core/solver.h", "ebsn/dataset.h"),
        "exp": ("api/scheduler.h", None),  # exp may include every layer
    }

    def test_allowed_includes_pass(self):
        for layer, (ok_include, _) in self.MATRIX.items():
            self.write(f"src/{layer}/a.h",
                       f'#include "{ok_include}"\n')
        self.assert_clean()

    def test_forbidden_includes_flagged(self):
        for layer, (_, bad_include) in self.MATRIX.items():
            if bad_include is None:
                continue
            with self.subTest(layer=layer):
                self.write(f"src/{layer}/a.h",
                           f'#include "{bad_include}"\n')
                self.assert_flags("layering")
                os.remove(os.path.join(self.root, f"src/{layer}/a.h"))

    def test_core_must_not_include_api(self):
        self.write("src/core/a.cc", '#include "api/scheduler.h"\n')
        self.assert_flags("layering")

    def test_nonlayer_includes_ignored(self):
        self.write("src/util/a.cc", '#include "vendor/header.h"\n')
        self.assert_clean()


class DeterminismClockTest(LintFixture):
    def test_clock_in_core_flagged(self):
        self.write("src/core/a.cc",
                   "auto t = std::chrono::steady_clock::now();\n")
        self.assert_flags("determinism-clock")

    def test_time_call_in_ebsn_flagged(self):
        self.write("src/ebsn/a.cc", "long t = time(nullptr);\n")
        self.assert_flags("determinism-clock")

    def test_solve_context_exempt(self):
        self.write("src/core/solve_context.h",
                   "using Clock = std::chrono::steady_clock;\n")
        self.assert_clean()

    def test_identifier_containing_time_ok(self):
        self.write("src/core/a.cc",
                   "double wall_time(int x);\nrecord.set_time(3);\n")
        self.assert_clean()

    def test_clock_outside_deterministic_layers_ok(self):
        self.write("src/api/a.cc",
                   "auto t = std::chrono::steady_clock::now();\n")
        self.assert_clean()


class DeterminismRandomTest(LintFixture):
    def test_random_device_flagged(self):
        self.write("src/ebsn/a.cc", "std::random_device rd;\n")
        self.assert_flags("determinism-random")

    def test_std_rand_flagged(self):
        self.write("src/core/a.cc", "int r = std::rand();\n")
        self.assert_flags("determinism-random")

    def test_seeded_rng_ok(self):
        self.write("src/core/a.cc",
                   "util::Rng rng(options.seed);\nint r = rng.Next();\n")
        self.assert_clean()


class UnorderedAccumulateTest(LintFixture):
    def test_accumulating_iteration_flagged(self):
        self.write("src/core/a.cc",
                   "std::unordered_map<int, double> weights;\n"
                   "double total = 0.0;\n"
                   "for (const auto& [k, v] : weights) {\n"
                   "  total += v;\n"
                   "}\n")
        self.assert_flags("unordered-accumulate")

    def test_lookup_only_iteration_ok(self):
        self.write("src/core/a.cc",
                   "std::unordered_map<int, double> weights;\n"
                   "for (const auto& [k, v] : weights) {\n"
                   "  if (v < 0.0) return false;\n"
                   "}\n")
        self.assert_clean()

    def test_ordered_map_accumulation_ok(self):
        self.write("src/core/a.cc",
                   "std::map<int, double> weights;\n"
                   "double total = 0.0;\n"
                   "for (const auto& [k, v] : weights) {\n"
                   "  total += v;\n"
                   "}\n")
        self.assert_clean()

    def test_vector_accumulation_ok(self):
        self.write("src/core/a.cc",
                   "std::unordered_set<int> seen;\n"
                   "std::vector<double> values;\n"
                   "double total = 0.0;\n"
                   "for (double v : values) {\n"
                   "  total += v;\n"
                   "}\n")
        self.assert_clean()


class RawMutexTest(LintFixture):
    def test_std_mutex_in_src_flagged(self):
        self.write("src/api/a.h", "  std::mutex mutex_;\n")
        self.assert_flags("raw-mutex")

    def test_lock_guard_flagged(self):
        self.write("src/core/a.cc",
                   "std::lock_guard<std::mutex> lock(mu);\n")
        self.assert_flags("raw-mutex")

    def test_wrapper_file_exempt(self):
        self.write("src/util/mutex.h", "  std::mutex mutex_;\n")
        self.assert_clean()

    def test_wrapper_usage_ok(self):
        self.write("src/api/a.h",
                   "  util::Mutex mutex_;\n  util::CondVar cv_;\n")
        self.assert_clean()

    def test_tests_may_use_std_mutex(self):
        self.write("tests/a_test.cc", "std::mutex mu;\n")
        self.assert_clean(paths=("tests",))


class TsaEscapeTest(LintFixture):
    def test_escape_outside_wrappers_flagged(self):
        self.write("src/api/a.h",
                   "void Touch() SES_NO_THREAD_SAFETY_ANALYSIS;\n")
        self.assert_flags("tsa-escape")

    def test_escape_in_wrapper_ok(self):
        self.write("src/util/mutex.h",
                   "void Lock() SES_NO_THREAD_SAFETY_ANALYSIS;\n")
        self.assert_clean()


class NakedNewTest(LintFixture):
    def test_naked_new_flagged(self):
        self.write("src/core/a.cc", "int* p = new int[4];\n")
        self.assert_flags("naked-new")

    def test_smart_pointer_wrap_ok(self):
        self.write("src/core/a.cc",
                   "auto p = std::unique_ptr<Solver>(new GreedySolver());\n")
        self.assert_clean()

    def test_word_containing_new_ok(self):
        self.write("src/core/a.cc",
                   "bool renewed = Renew(news_count);\n")
        self.assert_clean()


class UsingNamespaceHeaderTest(LintFixture):
    def test_using_namespace_in_header_flagged(self):
        self.write("src/core/a.h", "using namespace std;\n")
        self.assert_flags("using-namespace-header")

    def test_using_namespace_in_cc_ok(self):
        self.write("src/core/a.cc", "using namespace std::chrono;\n")
        self.assert_clean()

    def test_using_declaration_ok(self):
        self.write("src/core/a.h", "using std::vector;\n")
        self.assert_clean()


class SuppressionTest(LintFixture):
    def test_same_line_allow(self):
        self.write("src/core/a.cc",
                   "int* p = new int;  // ses-lint: allow(naked-new)\n")
        self.assert_clean()

    def test_allow_lists_several_rules(self):
        self.write(
            "src/core/a.h",
            "using namespace std;  "
            "// ses-lint: allow(using-namespace-header, naked-new)\n")
        self.assert_clean()

    def test_allow_for_other_rule_does_not_suppress(self):
        self.write("src/core/a.cc",
                   "int* p = new int;  // ses-lint: allow(raw-mutex)\n")
        self.assert_flags("naked-new")


class CommentAndStringStrippingTest(LintFixture):
    def test_patterns_in_comments_ignored(self):
        self.write("src/core/a.cc",
                   "// std::rand() would break determinism here\n"
                   "/* std::mutex is banned: use util::Mutex */\n"
                   "int x = 0;\n")
        self.assert_clean()

    def test_patterns_in_strings_ignored(self):
        self.write("src/core/a.cc",
                   'const char* kMsg = "never call std::rand()";\n')
        self.assert_clean()

    def test_code_after_comment_still_checked(self):
        self.write("src/core/a.cc",
                   "/* prose */ std::random_device rd;\n")
        self.assert_flags("determinism-random")


class DocLockstepTest(unittest.TestCase):
    """Every rule id must be documented, and the real repo must be clean
    — the two properties that keep the linter from rotting."""

    def test_every_rule_documented_in_architecture_md(self):
        proc = subprocess.run(
            [sys.executable, SES_LINT, "--list-rules"],
            capture_output=True, text=True, check=True)
        rules = [line.split(":")[0] for line in
                 proc.stdout.strip().splitlines()]
        self.assertGreaterEqual(len(rules), 8)
        doc_path = os.path.join(REPO_ROOT, "docs", "ARCHITECTURE.md")
        with open(doc_path, encoding="utf-8") as fh:
            doc = fh.read()
        for rule in rules:
            self.assertIn(f"`{rule}`", doc,
                          f"rule '{rule}' missing from docs/ARCHITECTURE.md")

    def test_repository_lints_clean(self):
        code, err = run_lint(REPO_ROOT, ("src", "tools", "tests"))
        self.assertEqual(code, 0, f"repository has lint problems:\n{err}")


if __name__ == "__main__":
    unittest.main()
