#!/usr/bin/env python3
"""Fixture suite for tools/ses_lint.py, registered with ctest.

Each rule gets a good and a bad snippet (run against a synthetic repo
tree in a temp directory, so the fixtures cannot drift into the real
src/), plus suppression-comment behavior, the full layering matrix, and
two lockstep checks: every rule id must appear in
docs/ARCHITECTURE.md's static-analysis section, and the real repository
must lint clean.
"""

import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SES_LINT = os.path.join(REPO_ROOT, "tools", "ses_lint.py")


def run_lint(root, paths=("src",)):
    """Runs ses_lint over a tree; returns (exit_code, stderr_text)."""
    proc = subprocess.run(
        [sys.executable, SES_LINT, "--root", root, *paths],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stderr


def run_lint_argv(root, *argv):
    """Runs ses_lint with explicit extra flags; returns the process."""
    return subprocess.run(
        [sys.executable, SES_LINT, "--root", root, *argv],
        capture_output=True, text=True, check=False)


class LintFixture(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)

    def assert_clean(self, paths=("src",)):
        code, err = run_lint(self.root, paths)
        self.assertEqual(code, 0, f"expected clean, got:\n{err}")

    def assert_flags(self, rule, paths=("src",)):
        code, err = run_lint(self.root, paths)
        self.assertEqual(code, 1, f"expected a {rule} problem, got clean")
        self.assertIn(f" {rule}: ", err,
                      f"expected rule {rule} in:\n{err}")


class LayeringTest(LintFixture):
    # layer -> (one allowed include, one forbidden include)
    MATRIX = {
        "util": ("util/status.h", "core/instance.h"),
        "core": ("util/status.h", "ebsn/types.h"),
        "ebsn": ("core/types.h", "api/scheduler.h"),
        "api": ("core/solver.h", "ebsn/dataset.h"),
        "exp": ("api/scheduler.h", None),  # exp may include every layer
    }

    def test_allowed_includes_pass(self):
        for layer, (ok_include, _) in self.MATRIX.items():
            self.write(f"src/{layer}/a.h",
                       f'#include "{ok_include}"\n')
        self.assert_clean()

    def test_forbidden_includes_flagged(self):
        for layer, (_, bad_include) in self.MATRIX.items():
            if bad_include is None:
                continue
            with self.subTest(layer=layer):
                self.write(f"src/{layer}/a.h",
                           f'#include "{bad_include}"\n')
                self.assert_flags("layering")
                os.remove(os.path.join(self.root, f"src/{layer}/a.h"))

    def test_core_must_not_include_api(self):
        self.write("src/core/a.cc", '#include "api/scheduler.h"\n')
        self.assert_flags("layering")

    def test_nonlayer_includes_ignored(self):
        self.write("src/util/a.cc", '#include "vendor/header.h"\n')
        self.assert_clean()


class DeterminismClockTest(LintFixture):
    def test_clock_in_core_flagged(self):
        self.write("src/core/a.cc",
                   "auto t = std::chrono::steady_clock::now();\n")
        self.assert_flags("determinism-clock")

    def test_time_call_in_ebsn_flagged(self):
        self.write("src/ebsn/a.cc", "long t = time(nullptr);\n")
        self.assert_flags("determinism-clock")

    def test_solve_context_exempt(self):
        self.write("src/core/solve_context.h",
                   "using Clock = std::chrono::steady_clock;\n")
        self.assert_clean()

    def test_identifier_containing_time_ok(self):
        self.write("src/core/a.cc",
                   "double wall_time(int x);\nrecord.set_time(3);\n")
        self.assert_clean()

    def test_clock_outside_deterministic_layers_ok(self):
        self.write("src/api/a.cc",
                   "auto t = std::chrono::steady_clock::now();\n")
        self.assert_clean()


class DeterminismRandomTest(LintFixture):
    def test_random_device_flagged(self):
        self.write("src/ebsn/a.cc", "std::random_device rd;\n")
        self.assert_flags("determinism-random")

    def test_std_rand_flagged(self):
        self.write("src/core/a.cc", "int r = std::rand();\n")
        self.assert_flags("determinism-random")

    def test_seeded_rng_ok(self):
        self.write("src/core/a.cc",
                   "util::Rng rng(options.seed);\nint r = rng.Next();\n")
        self.assert_clean()


class UnorderedAccumulateTest(LintFixture):
    def test_accumulating_iteration_flagged(self):
        self.write("src/core/a.cc",
                   "std::unordered_map<int, double> weights;\n"
                   "double total = 0.0;\n"
                   "for (const auto& [k, v] : weights) {\n"
                   "  total += v;\n"
                   "}\n")
        self.assert_flags("unordered-accumulate")

    def test_lookup_only_iteration_ok(self):
        self.write("src/core/a.cc",
                   "std::unordered_map<int, double> weights;\n"
                   "for (const auto& [k, v] : weights) {\n"
                   "  if (v < 0.0) return false;\n"
                   "}\n")
        self.assert_clean()

    def test_ordered_map_accumulation_ok(self):
        self.write("src/core/a.cc",
                   "std::map<int, double> weights;\n"
                   "double total = 0.0;\n"
                   "for (const auto& [k, v] : weights) {\n"
                   "  total += v;\n"
                   "}\n")
        self.assert_clean()

    def test_vector_accumulation_ok(self):
        self.write("src/core/a.cc",
                   "std::unordered_set<int> seen;\n"
                   "std::vector<double> values;\n"
                   "double total = 0.0;\n"
                   "for (double v : values) {\n"
                   "  total += v;\n"
                   "}\n")
        self.assert_clean()


class RawMutexTest(LintFixture):
    def test_std_mutex_in_src_flagged(self):
        self.write("src/api/a.h", "  std::mutex mutex_;\n")
        self.assert_flags("raw-mutex")

    def test_lock_guard_flagged(self):
        self.write("src/core/a.cc",
                   "std::lock_guard<std::mutex> lock(mu);\n")
        self.assert_flags("raw-mutex")

    def test_wrapper_file_exempt(self):
        self.write("src/util/mutex.h", "  std::mutex mutex_;\n")
        self.assert_clean()

    def test_wrapper_usage_ok(self):
        self.write("src/api/a.h",
                   "  util::Mutex mutex_;\n  util::CondVar cv_;\n")
        self.assert_clean()

    def test_tests_may_use_std_mutex(self):
        self.write("tests/a_test.cc", "std::mutex mu;\n")
        self.assert_clean(paths=("tests",))


class TsaEscapeTest(LintFixture):
    def test_escape_outside_wrappers_flagged(self):
        self.write("src/api/a.h",
                   "void Touch() SES_NO_THREAD_SAFETY_ANALYSIS;\n")
        self.assert_flags("tsa-escape")

    def test_escape_in_wrapper_ok(self):
        self.write("src/util/mutex.h",
                   "void Lock() SES_NO_THREAD_SAFETY_ANALYSIS;\n")
        self.assert_clean()


class NakedNewTest(LintFixture):
    def test_naked_new_flagged(self):
        self.write("src/core/a.cc", "int* p = new int[4];\n")
        self.assert_flags("naked-new")

    def test_smart_pointer_wrap_ok(self):
        self.write("src/core/a.cc",
                   "auto p = std::unique_ptr<Solver>(new GreedySolver());\n")
        self.assert_clean()

    def test_word_containing_new_ok(self):
        self.write("src/core/a.cc",
                   "bool renewed = Renew(news_count);\n")
        self.assert_clean()


class UsingNamespaceHeaderTest(LintFixture):
    def test_using_namespace_in_header_flagged(self):
        self.write("src/core/a.h", "using namespace std;\n")
        self.assert_flags("using-namespace-header")

    def test_using_namespace_in_cc_ok(self):
        self.write("src/core/a.cc", "using namespace std::chrono;\n")
        self.assert_clean()

    def test_using_declaration_ok(self):
        self.write("src/core/a.h", "using std::vector;\n")
        self.assert_clean()


class SuppressionTest(LintFixture):
    def test_same_line_allow(self):
        self.write("src/core/a.cc",
                   "int* p = new int;  // ses-lint: allow(naked-new)\n")
        self.assert_clean()

    def test_allow_lists_several_rules(self):
        # Both listed rules fire on the line (the stale audit would
        # reject a list padded with rules that do not).
        self.write(
            "src/core/a.h",
            "using namespace std; std::mutex m;  "
            "// ses-lint: allow(using-namespace-header, raw-mutex)\n")
        self.assert_clean()

    def test_allow_for_other_rule_does_not_suppress(self):
        self.write("src/core/a.cc",
                   "int* p = new int;  // ses-lint: allow(raw-mutex)\n")
        self.assert_flags("naked-new")


class CommentAndStringStrippingTest(LintFixture):
    def test_patterns_in_comments_ignored(self):
        self.write("src/core/a.cc",
                   "// std::rand() would break determinism here\n"
                   "/* std::mutex is banned: use util::Mutex */\n"
                   "int x = 0;\n")
        self.assert_clean()

    def test_patterns_in_strings_ignored(self):
        self.write("src/core/a.cc",
                   'const char* kMsg = "never call std::rand()";\n')
        self.assert_clean()

    def test_code_after_comment_still_checked(self):
        self.write("src/core/a.cc",
                   "/* prose */ std::random_device rd;\n")
        self.assert_flags("determinism-random")


class LockOrderTest(LintFixture):
    """Flow rule: the acquired-while-holding graph must be acyclic."""

    TWO_LOCK_CYCLE = (
        "namespace ses::api {\n"
        "util::Mutex a_mu;\n"
        "util::Mutex b_mu;\n"
        "void F() {\n"
        "  util::MutexLock la(a_mu);\n"
        "  util::MutexLock lb(b_mu);\n"
        "}\n"
        "void G() {\n"
        "  util::MutexLock lb(b_mu);\n"
        "  util::MutexLock la(a_mu);\n"
        "}\n"
        "}  // namespace ses::api\n")

    def test_two_lock_cycle_flagged_with_witness(self):
        self.write("src/api/ab.cc", self.TWO_LOCK_CYCLE)
        code, err = run_lint(self.root)
        self.assertEqual(code, 1)
        self.assertIn(" lock-order: ", err)
        # The witness names both edges, each with a file:line location.
        self.assertIn("api::a_mu -> api::b_mu at src/api/ab.cc:", err)
        self.assertIn("api::b_mu -> api::a_mu at src/api/ab.cc:", err)

    def test_consistent_order_is_clean(self):
        # Same two locks, but every path agrees a_mu comes first: an
        # acyclic order, not a finding.
        self.write("src/api/ab.cc",
                   "namespace ses::api {\n"
                   "util::Mutex a_mu;\n"
                   "util::Mutex b_mu;\n"
                   "void F() {\n"
                   "  util::MutexLock la(a_mu);\n"
                   "  util::MutexLock lb(b_mu);\n"
                   "}\n"
                   "void G() {\n"
                   "  util::MutexLock la(a_mu);\n"
                   "  util::MutexLock lb(b_mu);\n"
                   "}\n"
                   "}  // namespace ses::api\n")
        self.assert_clean()

    def test_release_before_second_lock_is_clean(self):
        # Scoped blocks that end before the next acquisition never hold
        # two locks at once — the SweeperLoop/TryDispatch idiom.
        self.write("src/api/ab.cc",
                   "namespace ses::api {\n"
                   "util::Mutex a_mu;\n"
                   "util::Mutex b_mu;\n"
                   "void F() {\n"
                   "  {\n"
                   "    util::MutexLock la(a_mu);\n"
                   "  }\n"
                   "  util::MutexLock lb(b_mu);\n"
                   "}\n"
                   "void G() {\n"
                   "  util::MutexLock lb(b_mu);\n"
                   "}\n"
                   "}  // namespace ses::api\n")
        self.assert_clean()

    def test_three_tu_cycle_through_header_acquire(self):
        # The cycle only exists globally: f.cc holds a_mu and calls a
        # header-declared SES_ACQUIRE(b_mu) function; g.cc does the
        # reverse. No single TU sees both edges.
        self.write("src/api/locks.h",
                   "namespace ses::api {\n"
                   "extern util::Mutex a_mu;\n"
                   "extern util::Mutex b_mu;\n"
                   "void TakeA() SES_ACQUIRE(a_mu);\n"
                   "void TakeB() SES_ACQUIRE(b_mu);\n"
                   "}  // namespace ses::api\n")
        self.write("src/api/f.cc",
                   "namespace ses::api {\n"
                   "void F() {\n"
                   "  util::MutexLock la(a_mu);\n"
                   "  TakeB();\n"
                   "}\n"
                   "}  // namespace ses::api\n")
        self.write("src/api/g.cc",
                   "namespace ses::api {\n"
                   "void G() {\n"
                   "  util::MutexLock lb(b_mu);\n"
                   "  TakeA();\n"
                   "}\n"
                   "}  // namespace ses::api\n")
        code, err = run_lint(self.root)
        self.assertEqual(code, 1)
        self.assertIn(" lock-order: ", err)
        self.assertIn("src/api/f.cc:", err)
        self.assertIn("src/api/g.cc:", err)

    def test_suppression_at_witness_edge(self):
        # Allowing one edge of the cycle (same line as the inner
        # acquisition) breaks it.
        suppressed = self.TWO_LOCK_CYCLE.replace(
            "  util::MutexLock la(a_mu);\n}",
            "  util::MutexLock la(a_mu);"
            "  // ses-lint: allow(lock-order)\n}")
        self.assertNotEqual(suppressed, self.TWO_LOCK_CYCLE)
        self.write("src/api/ab.cc", suppressed)
        self.assert_clean()


class CondVarHoldTest(LintFixture):
    def test_wait_under_second_lock_flagged(self):
        self.write("src/api/a.cc",
                   "namespace ses::api {\n"
                   "util::Mutex a_mu;\n"
                   "util::Mutex b_mu;\n"
                   "util::CondVar cv;\n"
                   "void W() {\n"
                   "  util::MutexLock la(a_mu);\n"
                   "  util::MutexLock lb(b_mu);\n"
                   "  while (true) cv.Wait(b_mu);\n"
                   "}\n"
                   "}  // namespace ses::api\n")
        self.assert_flags("condvar-hold")

    def test_wait_under_own_mutex_only_is_clean(self):
        self.write("src/api/a.cc",
                   "namespace ses::api {\n"
                   "util::Mutex a_mu;\n"
                   "util::CondVar cv;\n"
                   "void W() {\n"
                   "  util::MutexLock la(a_mu);\n"
                   "  while (true) cv.Wait(a_mu);\n"
                   "}\n"
                   "}  // namespace ses::api\n")
        self.assert_clean()


class DiscardedStatusTest(LintFixture):
    DECL = "util::Status Save();\n"

    def test_expression_statement_discard_flagged(self):
        self.write("src/core/a.cc", self.DECL
                   + "void F() {\n  Save();\n}\n")
        self.assert_flags("discarded-status")

    def test_comma_operand_discard_flagged(self):
        self.write("src/core/a.cc", self.DECL
                   + "void F() {\n  Save(), Save();\n}\n")
        self.assert_flags("discarded-status")

    def test_if_init_discard_flagged(self):
        self.write("src/core/a.cc", self.DECL
                   + "void F() {\n  if (Save(); true) {\n  }\n}\n")
        self.assert_flags("discarded-status")

    def test_consumed_and_returned_are_clean(self):
        self.write("src/core/a.cc", self.DECL
                   + "util::Status F() {\n"
                   "  util::Status s = Save();\n"
                   "  if (!s.ok()) return s;\n"
                   "  if (!Save().ok()) {\n"
                   "    return Save();\n"
                   "  }\n"
                   "  SES_RETURN_IF_ERROR(Save());\n"
                   "  return Save();\n"
                   "}\n")
        self.assert_clean()

    def test_void_cast_with_allow_is_clean(self):
        self.write("src/core/a.cc", self.DECL
                   + "void F() {\n"
                   "  (void)Save();"
                   "  // ses-lint: allow(discarded-status) fixture\n"
                   "}\n")
        self.assert_clean()

    def test_void_cast_without_allow_flagged(self):
        self.write("src/core/a.cc", self.DECL
                   + "void F() {\n  (void)Save();\n}\n")
        self.assert_flags("discarded-status")

    def test_allow_without_void_cast_flagged(self):
        self.write("src/core/a.cc", self.DECL
                   + "void F() {\n"
                   "  Save();  // ses-lint: allow(discarded-status)\n"
                   "}\n")
        self.assert_flags("discarded-status")

    def test_result_returning_function_covered(self):
        self.write("src/core/a.cc",
                   "util::Result<int> Load();\n"
                   "void F() {\n  Load();\n}\n")
        self.assert_flags("discarded-status")


class JsonFormatTest(LintFixture):
    def test_one_json_object_per_finding(self):
        import json
        self.write("src/core/a.cc",
                   "util::Status Save();\n"
                   "void F() {\n  Save();\n}\n")
        proc = run_lint_argv(self.root, "--format=json", "src")
        self.assertEqual(proc.returncode, 1)
        lines = proc.stdout.strip().splitlines()
        self.assertEqual(len(lines), 1)
        f = json.loads(lines[0])
        self.assertEqual(f["rule"], "discarded-status")
        self.assertEqual(f["file"], "src/core/a.cc")
        self.assertEqual(f["line"], 3)
        self.assertIn("Save", f["message"])
        self.assertEqual(f["witness"], [])

    def test_cycle_witness_is_a_list(self):
        import json
        self.write("src/api/ab.cc", LockOrderTest.TWO_LOCK_CYCLE)
        proc = run_lint_argv(self.root, "--format=json", "src")
        self.assertEqual(proc.returncode, 1)
        f = json.loads(proc.stdout.strip().splitlines()[0])
        self.assertEqual(f["rule"], "lock-order")
        self.assertEqual(len(f["witness"]), 2)
        for edge in f["witness"]:
            self.assertIn(" at src/api/ab.cc:", edge)


class ChangedOnlyTest(LintFixture):
    """--changed-only filters the report to files changed since a ref
    (falling back to a full report when git is unusable)."""

    def _git(self, *argv):
        return subprocess.run(
            ["git", "-C", self.root, *argv], capture_output=True,
            text=True, check=False)

    def setUp(self):
        super().setUp()
        if self._git("init", "-q").returncode != 0:
            self.skipTest("git unavailable")
        self._git("config", "user.email", "lint@test")
        self._git("config", "user.name", "lint test")

    def test_report_restricted_to_changed_files(self):
        self.write("src/core/old.cc",
                   "util::Status Save();\n"
                   "void F() {\n  Save();\n}\n")
        self._git("add", "-A")
        self._git("commit", "-qm", "base")
        self.write("src/core/fresh.cc",
                   "util::Status Save();\n"
                   "void G() {\n  Save();\n}\n")
        proc = run_lint_argv(self.root, "--changed-only", "HEAD", "src")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("src/core/fresh.cc", proc.stderr)
        self.assertNotIn("src/core/old.cc", proc.stderr)

    def test_bad_ref_falls_back_to_full_report(self):
        self.write("src/core/old.cc",
                   "util::Status Save();\n"
                   "void F() {\n  Save();\n}\n")
        proc = run_lint_argv(
            self.root, "--changed-only", "no-such-ref", "src")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("src/core/old.cc", proc.stderr)


class CapabilitiesTest(LintFixture):
    def test_table_lists_mutexes_and_held_set(self):
        self.write("src/api/ab.cc", LockOrderTest.TWO_LOCK_CYCLE)
        proc = run_lint_argv(self.root, "--capabilities", "src")
        self.assertEqual(proc.returncode, 0)
        self.assertIn("api::a_mu", proc.stdout)
        self.assertIn("api::b_mu", proc.stdout)
        # Both locks are acquired while the other is held.
        lines = proc.stdout.splitlines()
        a_row = next(l for l in lines if l.startswith("api::a_mu"))
        self.assertIn("api::b_mu", a_row)


class HotPathTest(LintFixture):
    """Transitive purity walk from SES_HOT roots: allocation, locking,
    IO, map lookups, and virtual dispatch anywhere in the reachable
    call tree are findings with full witness chains."""

    # An allocation three calls below the annotated root.
    DEEP_ALLOC = (
        "namespace ses::core {\n"
        "void Sink(std::vector<int>& out, int v) {\n"
        "  out.push_back(v);\n"
        "}\n"
        "void Mid(std::vector<int>& out, int v) {\n"
        "  Sink(out, v + 1);\n"
        "}\n"
        "SES_HOT void Root(std::vector<int>& out) {\n"
        "  Mid(out, 2);\n"
        "}\n"
        "}  // namespace ses::core\n")

    def test_clean_kernel_with_ses_check(self):
        # Pure arithmetic through an analyzable helper; SES_CHECK is the
        # sanctioned exception (one predictable branch, aborting path).
        self.write("src/core/k.cc",
                   "namespace ses::core {\n"
                   "double Leaf(double x) {\n"
                   "  SES_CHECK(x >= 0.0);\n"
                   "  return x * 2.0;\n"
                   "}\n"
                   "SES_HOT double Kernel(const std::vector<double>& v) {\n"
                   "  return Leaf(v[0]) + 1.0;\n"
                   "}\n"
                   "}  // namespace ses::core\n")
        self.assert_clean()

    def test_allocation_three_calls_deep_reports_witness_chain(self):
        self.write("src/core/deep.cc", self.DEEP_ALLOC)
        code, err = run_lint(self.root)
        self.assertEqual(code, 1)
        self.assertIn(" hot-path: ", err)
        self.assertIn("reachable from SES_HOT core::Root", err)
        self.assertIn("container growth 'out.push_back'", err)
        # The full chain, root to sink, with an edge location per hop.
        self.assertIn("core::Root -> core::Mid (at src/core/deep.cc:9)",
                      err)
        self.assertIn("-> core::Sink (at src/core/deep.cc:6)", err)

    def test_direct_allocation_flagged(self):
        self.write("src/core/a.cc",
                   "namespace ses::core {\n"
                   "SES_HOT int Hot() {\n"
                   "  auto p = std::make_unique<int>(3);\n"
                   "  return *p;\n"
                   "}\n"
                   "}  // namespace ses::core\n")
        self.assert_flags("hot-path")

    def test_mutex_acquisition_flagged(self):
        self.write("src/core/l.cc",
                   "namespace ses::core {\n"
                   "util::Mutex mu;\n"
                   "SES_HOT void Hot() {\n"
                   "  util::MutexLock lock(mu);\n"
                   "}\n"
                   "}  // namespace ses::core\n")
        self.assert_flags("hot-path")

    def test_acquire_declared_callee_flagged(self):
        # Bodyless, but the header annotation says it locks.
        self.write("src/core/l.cc",
                   "namespace ses::core {\n"
                   "util::Mutex mu;\n"
                   "void LockIt() SES_ACQUIRE(mu);\n"
                   "SES_HOT void Hot() { LockIt(); }\n"
                   "}  // namespace ses::core\n")
        code, err = run_lint(self.root)
        self.assertEqual(code, 1)
        self.assertIn(" hot-path: ", err)
        self.assertIn("SES_ACQUIRE-declared 'LockIt'", err)

    def test_logging_flagged(self):
        self.write("src/core/g.cc",
                   "namespace ses::core {\n"
                   "SES_HOT void Hot(int x) {\n"
                   "  SES_LOG(INFO) << x;\n"
                   "}\n"
                   "}  // namespace ses::core\n")
        self.assert_flags("hot-path")

    def test_map_method_lookup_flagged(self):
        self.write("src/core/m.cc",
                   "namespace ses::core {\n"
                   "SES_HOT int Hot(const std::unordered_map<int, int>& m,\n"
                   "                int k) {\n"
                   "  return m.count(k);\n"
                   "}\n"
                   "}  // namespace ses::core\n")
        self.assert_flags("hot-path")

    def test_map_subscript_flagged_vector_subscript_clean(self):
        self.write("src/core/m.cc",
                   "namespace ses::core {\n"
                   "SES_HOT int Hot(std::map<int, int>& table, int k) {\n"
                   "  return table[k];\n"
                   "}\n"
                   "}  // namespace ses::core\n")
        self.assert_flags("hot-path")
        self.write("src/core/m.cc",
                   "namespace ses::core {\n"
                   "SES_HOT int Hot(const std::vector<int>& v, int i) {\n"
                   "  return v[i];\n"
                   "}\n"
                   "}  // namespace ses::core\n")
        self.assert_clean()

    def test_virtual_dispatch_through_non_final_flagged(self):
        self.write("src/core/v.cc",
                   "namespace ses::core {\n"
                   "class Base {\n"
                   " public:\n"
                   "  virtual double At(int u) const = 0;\n"
                   "};\n"
                   "SES_HOT double Hot(const Base& b) { return b.At(3); }\n"
                   "}  // namespace ses::core\n")
        code, err = run_lint(self.root)
        self.assertEqual(code, 1)
        self.assertIn(" hot-path: ", err)
        self.assertIn("virtual dispatch 'b.At'", err)
        self.assertIn("non-final core::Base", err)

    def test_final_receiver_is_clean(self):
        self.write("src/core/v.cc",
                   "namespace ses::core {\n"
                   "class Base {\n"
                   " public:\n"
                   "  virtual double At(int u) const = 0;\n"
                   "};\n"
                   "class Impl final : public Base {\n"
                   " public:\n"
                   "  double At(int u) const override { return u * 0.5; }\n"
                   "};\n"
                   "SES_HOT double Hot(const Impl& b) { return b.At(3); }\n"
                   "}  // namespace ses::core\n")
        self.assert_clean()

    def test_unknown_callee_flagged_until_whitelisted(self):
        self.write("src/core/u.cc",
                   "namespace ses::core {\n"
                   "SES_HOT double Hot(double x) {\n"
                   "  return Mystery(x);\n"
                   "}\n"
                   "}  // namespace ses::core\n")
        code, err = run_lint(self.root)
        self.assertEqual(code, 1)
        self.assertIn(" hot-path: ", err)
        self.assertIn("tools/hot_whitelist.txt", err)
        # The checked-in whitelist is the escape hatch for pure leaves.
        self.write("tools/hot_whitelist.txt", "# trusted\nMystery\n")
        self.assert_clean()

    def test_reserve_escape_in_same_body(self):
        self.write("src/core/r.cc",
                   "namespace ses::core {\n"
                   "SES_HOT void Hot(std::vector<int>& out, int n) {\n"
                   "  out.reserve(n);\n"
                   "  for (int i = 0; i < n; ++i) out.push_back(i);\n"
                   "}\n"
                   "}  // namespace ses::core\n")
        self.assert_clean()

    def test_constructor_reserve_covers_other_members(self):
        # The down-payment pattern: reserve in the constructor, push in
        # the hot member.
        self.write("src/core/r.cc",
                   "namespace ses::core {\n"
                   "class Buf {\n"
                   " public:\n"
                   "  Buf() { data_.reserve(64); }\n"
                   "  SES_HOT void Add(int v) { data_.push_back(v); }\n"
                   " private:\n"
                   "  std::vector<int> data_;\n"
                   "};\n"
                   "}  // namespace ses::core\n")
        self.assert_clean()

    def test_resize_flagged_despite_reserve(self):
        # resize writes elements — reserve never covers it.
        self.write("src/core/r.cc",
                   "namespace ses::core {\n"
                   "SES_HOT void Hot(std::vector<int>& out, int n) {\n"
                   "  out.reserve(n);\n"
                   "  out.resize(n);\n"
                   "}\n"
                   "}  // namespace ses::core\n")
        code, err = run_lint(self.root)
        self.assertEqual(code, 1)
        self.assertIn("container growth 'out.resize'", err)

    def test_suppression_at_witness_edge_cuts_subtree_and_is_not_stale(self):
        # Allowing the Root -> Mid edge hides everything below it, and
        # the stale audit must see that suppression as load-bearing.
        suppressed = self.DEEP_ALLOC.replace(
            "  Mid(out, 2);\n",
            "  Mid(out, 2);  // ses-lint: allow(hot-path) cold edge\n")
        self.assertNotEqual(suppressed, self.DEEP_ALLOC)
        self.write("src/core/deep.cc", suppressed)
        self.assert_clean()

    def test_hot_functions_inventory(self):
        self.write("src/core/deep.cc", self.DEEP_ALLOC)
        proc = run_lint_argv(self.root, "--hot-functions", "src")
        self.assertEqual(proc.returncode, 0)
        self.assertIn("core::Root", proc.stdout)
        self.assertIn("src/core/deep.cc", proc.stdout)
        self.assertNotIn("core::Mid", proc.stdout)  # reachable, not a root


class StaleSuppressionTest(LintFixture):
    """Every allow() must still suppress a finding on its line."""

    def test_live_allow_is_clean(self):
        self.write("src/core/a.cc",
                   "int* p = new int(3);  // ses-lint: allow(naked-new)\n")
        self.assert_clean()

    def test_dead_allow_flagged(self):
        self.write("src/core/a.cc",
                   "int x = 3;  // ses-lint: allow(naked-new)\n")
        self.assert_flags("stale-suppression")

    def test_unknown_rule_id_flagged(self):
        self.write("src/core/a.cc",
                   "int x = 3;  // ses-lint: allow(no-such-rule)\n")
        code, err = run_lint(self.root)
        self.assertEqual(code, 1)
        self.assertIn(" stale-suppression: ", err)
        self.assertIn("unknown rule id", err)

    def test_partially_dead_list_flags_only_the_dead_rule(self):
        self.write("src/core/a.cc",
                   "int* p = new int(3);"
                   "  // ses-lint: allow(naked-new, raw-mutex)\n")
        code, err = run_lint(self.root)
        self.assertEqual(code, 1)
        self.assertIn(" stale-suppression: ", err)
        self.assertIn("allow(raw-mutex)", err)
        self.assertNotIn("allow(naked-new)", err)

    def test_allow_in_doc_comment_prose_is_ignored(self):
        # Docs quoting the syntax on a comment-only line never
        # suppressed anything, so they are prose, not stale.
        self.write("src/core/a.cc",
                   "/// Suppress with `// ses-lint: allow(naked-new)`.\n"
                   "int x = 3;\n")
        self.assert_clean()

    def test_fix_stale_rewrites_in_place(self):
        self.write("src/core/a.cc",
                   "int keep = 1;\n"
                   "int x = 3;  // ses-lint: allow(naked-new)\n"
                   "int* p = new int(3);"
                   "  // ses-lint: allow(naked-new, raw-mutex)\n")
        proc = run_lint_argv(self.root, "--fix-stale", "src")
        self.assertIn("--fix-stale: cleaned src/core/a.cc", proc.stderr)
        with open(os.path.join(self.root, "src/core/a.cc"),
                  encoding="utf-8") as fh:
            fixed = fh.read().split("\n")
        # The dead whole-comment goes; the mixed list keeps its live id.
        self.assertEqual(fixed[1], "int x = 3;")
        self.assertIn("// ses-lint: allow(naked-new)", fixed[2])
        self.assertNotIn("raw-mutex", fixed[2])
        self.assert_clean()


class GithubFormatTest(LintFixture):
    def test_error_annotations_on_stdout(self):
        self.write("src/core/a.cc", "int* p = new int(3);\n")
        proc = run_lint_argv(self.root, "--format=github", "src")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("::error file=src/core/a.cc,line=1,"
                      "title=ses_lint naked-new::", proc.stdout)

    def test_clean_tree_emits_no_commands(self):
        self.write("src/core/a.cc", "int x = 3;\n")
        proc = run_lint_argv(self.root, "--format=github", "src")
        self.assertEqual(proc.returncode, 0)
        self.assertNotIn("::error", proc.stdout)


class DocLockstepTest(unittest.TestCase):
    """Every rule id must be documented, and the real repo must be clean
    — the two properties that keep the linter from rotting."""

    def test_every_rule_documented_in_architecture_md(self):
        proc = subprocess.run(
            [sys.executable, SES_LINT, "--list-rules"],
            capture_output=True, text=True, check=True)
        rules = [line.split(":")[0] for line in
                 proc.stdout.strip().splitlines()]
        self.assertGreaterEqual(len(rules), 8)
        doc_path = os.path.join(REPO_ROOT, "docs", "ARCHITECTURE.md")
        with open(doc_path, encoding="utf-8") as fh:
            doc = fh.read()
        for rule in rules:
            self.assertIn(f"`{rule}`", doc,
                          f"rule '{rule}' missing from docs/ARCHITECTURE.md")

    def test_repository_lints_clean(self):
        code, err = run_lint(
            REPO_ROOT, ("src", "tools", "tests", "bench", "examples"))
        self.assertEqual(code, 0, f"repository has lint problems:\n{err}")

    def test_capabilities_table_matches_architecture_md(self):
        """docs/ARCHITECTURE.md embeds `ses_lint --capabilities` output
        verbatim in the fenced block after the
        `<!-- ses-lint-capabilities -->` marker; regenerate the block
        when the lock landscape changes."""
        proc = subprocess.run(
            [sys.executable, SES_LINT, "--root", REPO_ROOT,
             "--capabilities", "src"],
            capture_output=True, text=True, check=True)
        table = proc.stdout.strip()
        doc_path = os.path.join(REPO_ROOT, "docs", "ARCHITECTURE.md")
        with open(doc_path, encoding="utf-8") as fh:
            doc = fh.read()
        marker = "<!-- ses-lint-capabilities -->"
        self.assertIn(marker, doc)
        after = doc.split(marker, 1)[1]
        fence_start = after.index("```") + 3
        fence_end = after.index("```", fence_start)
        documented = after[fence_start:fence_end].strip()
        self.assertEqual(
            documented, table,
            "docs/ARCHITECTURE.md capability table is stale — paste the "
            "current `tools/ses_lint.py --capabilities` output into the "
            "fenced block")

    def test_hot_functions_table_matches_architecture_md(self):
        """docs/ARCHITECTURE.md embeds `ses_lint --hot-functions` output
        verbatim in the fenced block after the
        `<!-- ses-lint-hot-functions -->` marker; regenerate the block
        when annotations change."""
        proc = subprocess.run(
            [sys.executable, SES_LINT, "--root", REPO_ROOT,
             "--hot-functions", "src"],
            capture_output=True, text=True, check=True)
        table = proc.stdout.strip()
        doc_path = os.path.join(REPO_ROOT, "docs", "ARCHITECTURE.md")
        with open(doc_path, encoding="utf-8") as fh:
            doc = fh.read()
        marker = "<!-- ses-lint-hot-functions -->"
        self.assertIn(marker, doc)
        after = doc.split(marker, 1)[1]
        fence_start = after.index("```") + 3
        fence_end = after.index("```", fence_start)
        documented = after[fence_start:fence_end].strip()
        self.assertEqual(
            documented, table,
            "docs/ARCHITECTURE.md SES_HOT inventory is stale — paste the "
            "current `tools/ses_lint.py --hot-functions` output into the "
            "fenced block")


if __name__ == "__main__":
    unittest.main()
