/// util::JsonValue parser semantics: round-trips of every node kind,
/// deterministic object iteration, and typed parse errors carrying a
/// line/column diagnostic — the contract exp::TraceSpec's descriptor
/// validation builds on.

#include "util/json.h"

#include <gtest/gtest.h>

namespace ses::util {
namespace {

TEST(JsonParseTest, ScalarKinds) {
  auto null_value = JsonValue::Parse("null");
  ASSERT_TRUE(null_value.ok());
  EXPECT_TRUE(null_value->is_null());

  auto true_value = JsonValue::Parse("true");
  ASSERT_TRUE(true_value.ok());
  EXPECT_TRUE(true_value->AsBool());

  auto number = JsonValue::Parse("-12.5e1");
  ASSERT_TRUE(number.ok());
  EXPECT_DOUBLE_EQ(number->AsNumber(), -125.0);

  auto text = JsonValue::Parse("\"a\\n\\\"b\\\"\"");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->AsString(), "a\n\"b\"");
}

TEST(JsonParseTest, UnicodeEscape) {
  auto value = JsonValue::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->AsString(), "A\xC3\xA9");
}

TEST(JsonParseTest, NestedDocument) {
  const std::string doc = R"({
    "name": "steady",
    "rate": 120.5,
    "bursts": [{"at": 0.25, "x": 4}, {"at": 0.5, "x": 2}],
    "flags": {"open_loop": true, "note": null}
  })";
  auto parsed = JsonValue::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = *parsed;
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.Find("name")->AsString(), "steady");
  EXPECT_DOUBLE_EQ(root.Find("rate")->AsNumber(), 120.5);
  const JsonValue* bursts = root.Find("bursts");
  ASSERT_NE(bursts, nullptr);
  ASSERT_EQ(bursts->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(bursts->AsArray()[1].Find("x")->AsNumber(), 2.0);
  EXPECT_TRUE(root.Find("flags")->Find("open_loop")->AsBool());
  EXPECT_TRUE(root.Find("flags")->Find("note")->is_null());
  EXPECT_EQ(root.Find("absent"), nullptr);
}

TEST(JsonParseTest, ObjectIterationIsSorted) {
  auto parsed = JsonValue::Parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(parsed.ok());
  std::string order;
  for (const auto& [key, value] : parsed->AsObject()) order += key;
  EXPECT_EQ(order, "amz");
}

TEST(JsonParseTest, ErrorsNameTheLocation) {
  auto truncated = JsonValue::Parse("{\"a\": ");
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kParseError);

  auto garbage = JsonValue::Parse("{}x");
  ASSERT_FALSE(garbage.ok());
  EXPECT_NE(garbage.status().message().find("trailing"), std::string::npos);

  auto bad_line = JsonValue::Parse("{\n  \"a\": nope\n}");
  ASSERT_FALSE(bad_line.ok());
  EXPECT_NE(bad_line.status().message().find("line 2"), std::string::npos)
      << bad_line.status().ToString();

  auto duplicate = JsonValue::Parse(R"({"a": 1, "a": 2})");
  ASSERT_FALSE(duplicate.ok());
  EXPECT_NE(duplicate.status().message().find("duplicate"),
            std::string::npos);

  auto bad_number = JsonValue::Parse("[1.2.3]");
  ASSERT_FALSE(bad_number.ok());
}

TEST(JsonParseTest, WrongKindAccessorsAreZeroValued) {
  auto parsed = JsonValue::Parse("42");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->AsBool());
  EXPECT_TRUE(parsed->AsString().empty());
  EXPECT_TRUE(parsed->AsArray().empty());
  EXPECT_TRUE(parsed->AsObject().empty());
  EXPECT_EQ(parsed->Find("k"), nullptr);
}

TEST(JsonParseTest, DeepNestingIsRejectedNotFatal) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  auto parsed = JsonValue::Parse(deep);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("nesting"), std::string::npos);
}

}  // namespace
}  // namespace ses::util
