#include "ebsn/dataset.h"

#include <filesystem>

#include <gtest/gtest.h>

namespace ses::ebsn {
namespace {

/// A tiny, consistent dataset: 2 groups, 3 users, 2 events, check-ins.
EbsnDataset MakeTinyDataset() {
  EbsnDataset ds;
  const TagId pop = ds.tags().Intern("pop");
  const TagId rock = ds.tags().Intern("rock");
  const TagId fashion = ds.tags().Intern("fashion");

  ds.groups().push_back({"g-music", {pop, rock}, {0, 1}});
  ds.groups().push_back({"g-style", {fashion}, {1, 2}});

  ds.users().resize(3);
  ds.users()[0] = {{0}, {pop, rock}};
  ds.users()[1] = {{0, 1}, {pop, rock, fashion}};
  ds.users()[2] = {{1}, {fashion}};

  ds.events().push_back({0, {pop, rock}});
  ds.events().push_back({1, {fashion}});

  ds.set_num_slots(4);
  ds.checkins().push_back({0, 1});
  ds.checkins().push_back({1, 3});
  return ds;
}

TEST(EbsnDatasetTest, TinyDatasetValidates) {
  EXPECT_TRUE(MakeTinyDataset().Validate().ok());
}

TEST(EbsnDatasetTest, UnsortedGroupTagsRejected) {
  EbsnDataset ds = MakeTinyDataset();
  ds.groups()[0].tags = {1, 0};
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(EbsnDatasetTest, DuplicateUserTagsRejected) {
  EbsnDataset ds = MakeTinyDataset();
  ds.users()[0].tags = {0, 0};
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(EbsnDatasetTest, OutOfRangeTagRejected) {
  EbsnDataset ds = MakeTinyDataset();
  ds.events()[0].tags = {99};
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(EbsnDatasetTest, OutOfRangeOrganizerRejected) {
  EbsnDataset ds = MakeTinyDataset();
  ds.events()[0].organizer = 42;
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(EbsnDatasetTest, MembershipConsistencyEnforced) {
  EbsnDataset ds = MakeTinyDataset();
  // User 2 claims membership in group 0 but group 0 has no user 2.
  ds.users()[2].groups = {0, 1};
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(EbsnDatasetTest, OutOfRangeCheckinRejected) {
  EbsnDataset ds = MakeTinyDataset();
  ds.checkins().push_back({77, 0});
  EXPECT_FALSE(ds.Validate().ok());
  ds = MakeTinyDataset();
  ds.checkins().push_back({0, 99});
  EXPECT_FALSE(ds.Validate().ok());
}

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ses_ds_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(DatasetIoTest, SaveLoadRoundTrip) {
  EbsnDataset original = MakeTinyDataset();
  ASSERT_TRUE(original.Save(dir_.string()).ok());

  auto loaded = EbsnDataset::Load(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const EbsnDataset& ds = loaded.value();

  EXPECT_EQ(ds.tags().size(), original.tags().size());
  EXPECT_EQ(ds.tags().name(0), "pop");
  ASSERT_EQ(ds.groups().size(), original.groups().size());
  EXPECT_EQ(ds.groups()[0].name, "g-music");
  EXPECT_EQ(ds.groups()[0].tags, original.groups()[0].tags);
  EXPECT_EQ(ds.groups()[1].members, original.groups()[1].members);
  ASSERT_EQ(ds.users().size(), original.users().size());
  EXPECT_EQ(ds.users()[1].groups, original.users()[1].groups);
  EXPECT_EQ(ds.users()[1].tags, original.users()[1].tags);
  ASSERT_EQ(ds.events().size(), original.events().size());
  EXPECT_EQ(ds.events()[1].organizer, original.events()[1].organizer);
  EXPECT_EQ(ds.events()[1].tags, original.events()[1].tags);
  EXPECT_EQ(ds.num_slots(), 4u);
  ASSERT_EQ(ds.checkins().size(), 2u);
  EXPECT_EQ(ds.checkins()[1].user, 1u);
  EXPECT_EQ(ds.checkins()[1].slot, 3u);
}

TEST_F(DatasetIoTest, LoadFromMissingDirFails) {
  auto loaded = EbsnDataset::Load((dir_ / "missing").string());
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace ses::ebsn
