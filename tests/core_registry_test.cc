#include "core/registry.h"

#include <gtest/gtest.h>

#include "core/validate.h"
#include "tests/test_util.h"

namespace ses::core {
namespace {

TEST(RegistryTest, AllListedSolversConstruct) {
  for (const std::string& name : ListSolvers()) {
    auto solver = MakeSolver(name);
    ASSERT_TRUE(solver.ok()) << name;
    EXPECT_EQ(solver.value()->name(), name);
  }
}

TEST(RegistryTest, UnknownNameFails) {
  auto solver = MakeSolver("definitely-not-a-solver");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), util::StatusCode::kNotFound);
}

TEST(RegistryTest, ListContainsThePaperMethods) {
  const auto names = ListSolvers();
  auto contains = [&names](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(contains("grd"));
  EXPECT_TRUE(contains("top"));
  EXPECT_TRUE(contains("rand"));
}

TEST(RegistryTest, ConstructedSolversActuallySolve) {
  test::RandomInstanceConfig config;
  config.num_events = 6;
  config.num_intervals = 3;
  const SesInstance instance = test::MakeRandomInstance(config);
  SolverOptions options;
  options.k = 2;
  options.max_iterations = 200;
  for (const std::string& name : ListSolvers()) {
    auto solver = MakeSolver(name);
    ASSERT_TRUE(solver.ok());
    auto result = solver.value()->Solve(instance, options);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_TRUE(ValidateAssignments(instance, result->assignments).ok())
        << name;
  }
}

}  // namespace
}  // namespace ses::core
