#include "core/instance_io.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/objective.h"
#include "tests/test_util.h"
#include "util/csv.h"

namespace ses::core {
namespace {

class InstanceIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ses_inst_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(InstanceIoTest, RoundTripPreservesStructure) {
  test::RandomInstanceConfig config;
  config.seed = 77;
  config.num_users = 20;
  config.num_events = 6;
  config.num_intervals = 4;
  const SesInstance original = test::MakeRandomInstance(config);

  SigmaSpec spec;
  spec.kind = SigmaSpec::Kind::kHash;
  spec.seed = config.seed;  // matches MakeRandomInstance's sigma
  ASSERT_TRUE(SaveInstance(original, spec, dir_.string()).ok());

  auto loaded = LoadInstance(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SesInstance& copy = loaded.value();

  EXPECT_EQ(copy.num_users(), original.num_users());
  EXPECT_EQ(copy.num_events(), original.num_events());
  EXPECT_EQ(copy.num_intervals(), original.num_intervals());
  EXPECT_EQ(copy.num_competing(), original.num_competing());
  EXPECT_DOUBLE_EQ(copy.theta(), original.theta());

  for (EventIndex e = 0; e < original.num_events(); ++e) {
    EXPECT_EQ(copy.event(e).location, original.event(e).location);
    EXPECT_DOUBLE_EQ(copy.event(e).required_resources,
                     original.event(e).required_resources);
    auto users_a = original.EventUsers(e);
    auto users_b = copy.EventUsers(e);
    ASSERT_EQ(users_a.size(), users_b.size());
    for (size_t i = 0; i < users_a.size(); ++i) {
      EXPECT_EQ(users_a[i], users_b[i]);
      EXPECT_FLOAT_EQ(original.EventValues(e)[i], copy.EventValues(e)[i]);
    }
  }
  for (CompetingIndex c = 0; c < original.num_competing(); ++c) {
    EXPECT_EQ(copy.competing(c).interval, original.competing(c).interval);
    EXPECT_EQ(copy.CompetingUsers(c).size(),
              original.CompetingUsers(c).size());
  }
}

TEST_F(InstanceIoTest, RoundTripPreservesSolverBehavior) {
  test::RandomInstanceConfig config;
  config.seed = 99;
  const SesInstance original = test::MakeRandomInstance(config);
  SigmaSpec spec;
  spec.kind = SigmaSpec::Kind::kHash;
  spec.seed = config.seed;
  ASSERT_TRUE(SaveInstance(original, spec, dir_.string()).ok());
  auto loaded = LoadInstance(dir_.string());
  ASSERT_TRUE(loaded.ok());

  GreedySolver grd;
  SolverOptions options;
  options.k = 3;
  auto a = grd.Solve(original, options);
  auto b = grd.Solve(*loaded, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_NEAR(a->utility, b->utility, 1e-9);
}

TEST_F(InstanceIoTest, ConstSigmaRoundTrip) {
  InstanceBuilder builder;
  builder.SetNumUsers(3).SetNumIntervals(2).SetTheta(4.0).SetSigma(
      std::make_shared<ConstSigma>(0.25));
  builder.AddEvent(0, 1.0, {{0, 0.5f}, {2, 0.75f}});
  builder.AddCompetingEvent(1, {{1, 0.4f}});
  auto instance = builder.Build();
  ASSERT_TRUE(instance.ok());

  SigmaSpec spec;
  spec.kind = SigmaSpec::Kind::kConst;
  spec.const_value = 0.25;
  ASSERT_TRUE(SaveInstance(*instance, spec, dir_.string()).ok());
  auto loaded = LoadInstance(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_DOUBLE_EQ(loaded->sigma().At(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(loaded->sigma().At(2, 1), 0.25);

  // Utility computed on the copy matches the original exactly.
  Schedule s1(*instance);
  ASSERT_TRUE(s1.Assign(0, 1).ok());
  Schedule s2(*loaded);
  ASSERT_TRUE(s2.Assign(0, 1).ok());
  EXPECT_NEAR(TotalUtility(*instance, s1), TotalUtility(*loaded, s2), 1e-12);
}

TEST_F(InstanceIoTest, LoadFromEmptyDirFails) {
  auto loaded = LoadInstance((dir_ / "missing").string());
  EXPECT_FALSE(loaded.ok());
}

TEST_F(InstanceIoTest, CorruptMetaFails) {
  test::RandomInstanceConfig config;
  const SesInstance original = test::MakeRandomInstance(config);
  SigmaSpec spec;
  ASSERT_TRUE(SaveInstance(original, spec, dir_.string()).ok());
  // Truncate meta.csv to just its header.
  ASSERT_TRUE(
      util::WriteCsvFile((dir_ / "meta.csv").string(), {"key", "value"}, {})
          .ok());
  auto loaded = LoadInstance(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kParseError);
}

TEST_F(InstanceIoTest, OutOfRangeTripletFails) {
  test::RandomInstanceConfig config;
  config.num_events = 3;
  const SesInstance original = test::MakeRandomInstance(config);
  SigmaSpec spec;
  ASSERT_TRUE(SaveInstance(original, spec, dir_.string()).ok());
  // Append an interest row for a non-existent event id.
  std::vector<util::CsvRow> rows{{"99", "0", "0.5"}};
  ASSERT_TRUE(util::WriteCsvFile((dir_ / "event_interests.csv").string(),
                                 {"event_id", "user_id", "mu"}, rows)
                  .ok());
  auto loaded = LoadInstance(dir_.string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kOutOfRange);
}

TEST(SigmaSpecTest, InstantiateMatchesKind) {
  SigmaSpec const_spec;
  const_spec.kind = SigmaSpec::Kind::kConst;
  const_spec.const_value = 0.6;
  auto const_sigma = const_spec.Instantiate();
  EXPECT_DOUBLE_EQ(const_sigma->At(5, 7), 0.6);

  SigmaSpec hash_spec;
  hash_spec.kind = SigmaSpec::Kind::kHash;
  hash_spec.seed = 42;
  auto hash_sigma = hash_spec.Instantiate();
  HashUniformSigma reference(42);
  EXPECT_DOUBLE_EQ(hash_sigma->At(5, 7), reference.At(5, 7));
}

}  // namespace
}  // namespace ses::core
