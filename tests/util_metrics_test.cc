/// util::MetricRegistry semantics: counter/gauge/histogram behavior,
/// bucket-edge placement, snapshot consistency under concurrent
/// increments, renderer output — and the docs-lockstep pin that every
/// metric name an api::Scheduler registers appears verbatim in
/// docs/METRICS.md (the operator reference must never drift from the
/// code).

#include "util/metrics.h"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/scheduler.h"

namespace ses::util {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  MetricRegistry registry;
  Counter& counter = registry.GetCounter("c");
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), 42u);
  // Same name returns the same metric.
  registry.GetCounter("c").Increment();
  EXPECT_EQ(counter.value(), 43u);
}

TEST(GaugeTest, SetIncrementDecrement) {
  MetricRegistry registry;
  Gauge& gauge = registry.GetGauge("g");
  EXPECT_EQ(gauge.value(), 0);
  gauge.Set(10);
  gauge.Increment(5);
  gauge.Decrement(3);
  EXPECT_EQ(gauge.value(), 12);
  gauge.Decrement(20);
  EXPECT_EQ(gauge.value(), -8);  // gauges are signed levels
}

TEST(HistogramTest, UpperInclusiveBucketsAndOverflow) {
  MetricRegistry registry;
  Histogram& histogram = registry.GetHistogram("h", {1.0, 2.0, 4.0});
  // Exactly on a bound lands in that bound's bucket (Prometheus "le").
  histogram.Observe(1.0);
  histogram.Observe(0.5);
  histogram.Observe(2.0);
  histogram.Observe(3.0);
  histogram.Observe(4.0);
  histogram.Observe(100.0);  // overflow
  EXPECT_EQ(histogram.bucket_count(0), 2u);  // 1.0, 0.5
  EXPECT_EQ(histogram.bucket_count(1), 1u);  // 2.0
  EXPECT_EQ(histogram.bucket_count(2), 2u);  // 3.0, 4.0
  EXPECT_EQ(histogram.bucket_count(3), 1u);  // 100.0
  EXPECT_EQ(histogram.count(), 6u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 110.5);
}

TEST(MetricRegistryTest, KindCollisionAborts) {
  MetricRegistry registry;
  registry.GetCounter("name");
  EXPECT_DEATH(registry.GetGauge("name"), "another kind");
  EXPECT_DEATH(registry.GetHistogram("name", {1.0}), "another kind");
}

TEST(MetricRegistryTest, SnapshotIsNameSortedAndComplete) {
  MetricRegistry registry;
  registry.GetCounter("b.counter").Increment(2);
  registry.GetCounter("a.counter").Increment(1);
  registry.GetGauge("z.gauge").Set(-7);
  registry.GetHistogram("m.histogram", {0.5}).Observe(0.1);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.counter");
  EXPECT_EQ(snapshot.counters[1].name, "b.counter");
  EXPECT_EQ(snapshot.CounterValue("b.counter"), 2u);
  EXPECT_EQ(snapshot.GaugeValue("z.gauge"), -7);
  ASSERT_NE(snapshot.FindHistogram("m.histogram"), nullptr);
  EXPECT_EQ(snapshot.FindHistogram("m.histogram")->count, 1u);
  EXPECT_EQ(snapshot.FindCounter("missing"), nullptr);
  EXPECT_EQ(snapshot.CounterValue("missing"), 0u);
  const std::vector<std::string> names = snapshot.Names();
  EXPECT_EQ(names, (std::vector<std::string>{"a.counter", "b.counter",
                                             "m.histogram", "z.gauge"}));
}

// The concurrency pin: exact totals after a many-thread hammer, and
// every mid-flight snapshot internally consistent (count never exceeds
// the bucket sum — Observe increments the bucket first).
TEST(MetricRegistryTest, ConcurrentIncrementsAreExactAndSnapshotsConsistent) {
  MetricRegistry registry;
  Counter& counter = registry.GetCounter("hammered.counter");
  Histogram& histogram =
      registry.GetHistogram("hammered.histogram", {0.25, 0.5, 0.75});

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        counter.Increment();
        // Deterministic spread across all four buckets.
        histogram.Observe(static_cast<double>((t + i) % 4) / 4.0);
      }
    });
  }
  // A reader snapshots while writers run; every snapshot must satisfy
  // the documented invariant.
  std::thread reader([&] {
    for (int i = 0; i < 200; ++i) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      const HistogramSample* sample =
          snapshot.FindHistogram("hammered.histogram");
      ASSERT_NE(sample, nullptr);
      uint64_t bucket_sum = 0;
      for (uint64_t bucket : sample->buckets) bucket_sum += bucket;
      EXPECT_LE(sample->count, bucket_sum);
      EXPECT_LE(snapshot.CounterValue("hammered.counter"),
                kThreads * kPerThread);
    }
  });
  for (std::thread& writer : writers) writer.join();
  reader.join();

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  uint64_t bucket_sum = 0;
  for (size_t i = 0; i <= histogram.bounds().size(); ++i) {
    bucket_sum += histogram.bucket_count(i);
  }
  EXPECT_EQ(bucket_sum, kThreads * kPerThread);
}

TEST(MetricRegistryTest, ConcurrentRegistrationReturnsOneInstance) {
  MetricRegistry registry;
  constexpr size_t kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counter& counter = registry.GetCounter("raced");
      counter.Increment();
      seen[t] = &counter;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(registry.Snapshot().CounterValue("raced"), kThreads);
}

TEST(RenderTest, TextAndCsvContainEveryMetric) {
  MetricRegistry registry;
  registry.GetCounter("render.counter").Increment(3);
  registry.GetGauge("render.gauge").Set(5);
  registry.GetHistogram("render.histogram", {0.001, 1.0}).Observe(0.01);
  const MetricsSnapshot snapshot = registry.Snapshot();

  const std::string text = RenderMetricsText(snapshot);
  EXPECT_NE(text.find("counter   render.counter"), std::string::npos);
  EXPECT_NE(text.find("gauge     render.gauge"), std::string::npos);
  EXPECT_NE(text.find("histogram render.histogram"), std::string::npos);
  EXPECT_NE(text.find("le_0.001=0"), std::string::npos);
  EXPECT_NE(text.find("le_1=1"), std::string::npos);
  EXPECT_NE(text.find("inf=0"), std::string::npos);

  const std::string csv = RenderMetricsCsv(snapshot);
  EXPECT_NE(csv.find("kind,name,field,value\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,render.counter,value,3\n"),
            std::string::npos);
  EXPECT_NE(csv.find("gauge,render.gauge,value,5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,render.histogram,le_1,1\n"),
            std::string::npos);
  EXPECT_NE(csv.find("histogram,render.histogram,count,1\n"),
            std::string::npos);
}

TEST(HistogramQuantileTest, EmptyHistogramYieldsNaN) {
  HistogramSample sample;
  sample.name = "empty";
  sample.bounds = {1.0, 2.0};
  sample.buckets = {0, 0, 0};
  sample.count = 0;
  EXPECT_TRUE(std::isnan(sample.Quantile(0.5)));
}

TEST(HistogramQuantileTest, InterpolatesWithinBucket) {
  MetricRegistry registry;
  Histogram& histogram = registry.GetHistogram("q", {1.0, 2.0, 4.0});
  // 10 observations uniformly in (1, 2]: every quantile lands in the
  // second bucket, interpolated between its edges.
  for (int i = 1; i <= 10; ++i) {
    histogram.Observe(1.0 + static_cast<double>(i) / 10.0);
  }
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSample* sample = snapshot.FindHistogram("q");
  ASSERT_NE(sample, nullptr);
  EXPECT_DOUBLE_EQ(sample->Quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(sample->Quantile(1.0), 2.0);
  EXPECT_NEAR(sample->Quantile(0.99), 1.99, 1e-12);
  // q = 0 sits at the bucket's lower edge.
  EXPECT_DOUBLE_EQ(sample->Quantile(0.0), 1.0);
}

TEST(HistogramQuantileTest, FirstBucketInterpolatesFromZero) {
  MetricRegistry registry;
  Histogram& histogram = registry.GetHistogram("q0", {2.0, 4.0});
  histogram.Observe(1.0);
  histogram.Observe(1.5);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSample* sample = snapshot.FindHistogram("q0");
  ASSERT_NE(sample, nullptr);
  EXPECT_DOUBLE_EQ(sample->Quantile(0.5), 1.0);  // halfway from 0 to 2
}

TEST(HistogramQuantileTest, OverflowSaturatesAtLastBound) {
  MetricRegistry registry;
  Histogram& histogram = registry.GetHistogram("qo", {1.0, 2.0});
  histogram.Observe(50.0);
  histogram.Observe(90.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramSample* sample = snapshot.FindHistogram("qo");
  ASSERT_NE(sample, nullptr);
  EXPECT_DOUBLE_EQ(sample->Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(sample->Quantile(0.99), 2.0);
}

TEST(DiffSnapshotsTest, SubtractsCountersAndHistogramsKeepsEndGauges) {
  MetricRegistry registry;
  Counter& counter = registry.GetCounter("d.counter");
  Gauge& gauge = registry.GetGauge("d.gauge");
  Histogram& histogram = registry.GetHistogram("d.histogram", {1.0, 2.0});
  counter.Increment(5);
  gauge.Set(3);
  histogram.Observe(0.5);
  histogram.Observe(1.5);
  const MetricsSnapshot start = registry.Snapshot();

  counter.Increment(7);
  gauge.Set(-2);
  histogram.Observe(1.5);
  histogram.Observe(9.0);
  const MetricsSnapshot end = registry.Snapshot();

  const MetricsSnapshot delta = DiffSnapshots(start, end);
  EXPECT_EQ(delta.CounterValue("d.counter"), 7u);
  EXPECT_EQ(delta.GaugeValue("d.gauge"), -2);
  const HistogramSample* sample = delta.FindHistogram("d.histogram");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 2u);
  EXPECT_DOUBLE_EQ(sample->sum, 10.5);
  ASSERT_EQ(sample->buckets.size(), 3u);
  EXPECT_EQ(sample->buckets[0], 0u);  // nothing new <= 1.0
  EXPECT_EQ(sample->buckets[1], 1u);  // the second 1.5
  EXPECT_EQ(sample->buckets[2], 1u);  // 9.0 overflow
}

TEST(DiffSnapshotsTest, MetricsAbsentFromStartCountFromZero) {
  MetricRegistry registry;
  registry.GetCounter("pre").Increment(2);
  const MetricsSnapshot start = registry.Snapshot();
  registry.GetCounter("post").Increment(4);
  const MetricsSnapshot end = registry.Snapshot();
  const MetricsSnapshot delta = DiffSnapshots(start, end);
  EXPECT_EQ(delta.CounterValue("pre"), 0u);
  EXPECT_EQ(delta.CounterValue("post"), 4u);
}

// --- Docs lockstep --------------------------------------------------------

// docs/METRICS.md must list every metric name an api::Scheduler
// registers, verbatim. A fresh scheduler already exposes the full
// catalog (fixed names plus one solve-latency histogram per registered
// solver), so the doc can never silently lag a new metric.
TEST(MetricsDocsTest, EveryRegisteredNameAppearsInMetricsDoc) {
  const std::string doc_path =
      std::string(SES_SOURCE_DIR) + "/docs/METRICS.md";
  std::ifstream doc_file(doc_path);
  ASSERT_TRUE(doc_file.good()) << "cannot open " << doc_path;
  std::stringstream buffer;
  buffer << doc_file.rdbuf();
  const std::string doc = buffer.str();

  const api::Scheduler scheduler;
  const std::vector<std::string> names =
      scheduler.metric_registry().Snapshot().Names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "metric '" << name
        << "' is registered by api::Scheduler but not documented in "
           "docs/METRICS.md";
  }
}

}  // namespace
}  // namespace ses::util
