/// Unit tests for the thread-local allocation counter
/// (src/util/alloc_guard.{h,cc}). Every counting assertion is gated on
/// AllocGuardEnabled(): in a default build the interposer is compiled
/// out and the suite degrades to checking the compiled-out contract
/// (constant zero) instead of vacuously passing.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/alloc_guard.h"

namespace ses::util {
namespace {

TEST(AllocGuardTest, DisabledBuildReportsZeroForever) {
  if (AllocGuardEnabled()) {
    GTEST_SKIP() << "counting build; the remaining tests cover it";
  }
  ScopedAllocCheck check;
  auto p = std::make_unique<uint64_t>(7);
  EXPECT_EQ(*p, 7u);
  EXPECT_EQ(check.allocations(), 0u);
}

TEST(AllocGuardTest, CountsHeapAllocations) {
  if (!AllocGuardEnabled()) {
    GTEST_SKIP() << "build with -DSES_ALLOC_GUARD=ON to count";
  }
  ScopedAllocCheck check;
  EXPECT_EQ(check.allocations(), 0u);
  auto p = std::make_unique<uint64_t>(41);
  EXPECT_EQ(*p + 1, 42u);
  // make_unique<uint64_t> is exactly one operator new.
  EXPECT_EQ(check.allocations(), 1u);
}

TEST(AllocGuardTest, NestedChecksMeasureFromTheirOwnStart) {
  if (!AllocGuardEnabled()) {
    GTEST_SKIP() << "build with -DSES_ALLOC_GUARD=ON to count";
  }
  ScopedAllocCheck outer;
  auto a = std::make_unique<int>(1);
  ScopedAllocCheck inner;
  auto b = std::make_unique<int>(2);
  EXPECT_EQ(*a + *b, 3);
  EXPECT_EQ(inner.allocations(), 1u);
  EXPECT_EQ(outer.allocations(), 2u);
}

TEST(AllocGuardTest, ArrayAndAlignedFormsAreCounted) {
  if (!AllocGuardEnabled()) {
    GTEST_SKIP() << "build with -DSES_ALLOC_GUARD=ON to count";
  }
  ScopedAllocCheck check;
  auto arr = std::make_unique<int[]>(16);  // operator new[]
  arr[0] = 1;
  struct alignas(64) Wide {
    double lanes[8];
  };
  auto wide = std::make_unique<Wide>();  // aligned operator new
  wide->lanes[0] = 1.0;
  EXPECT_EQ(check.allocations(), 2u);
}

TEST(AllocGuardTest, CounterIsThreadLocal) {
  if (!AllocGuardEnabled()) {
    GTEST_SKIP() << "build with -DSES_ALLOC_GUARD=ON to count";
  }
  // The worker is constructed (std::thread allocates its state) before
  // the check window opens, then released into its allocation burst by
  // the handshake — so every one of its allocations lands inside the
  // window, on the other thread.
  std::atomic<int> stage{0};
  std::atomic<uint64_t> worker_count{0};
  std::thread worker([&stage, &worker_count] {
    while (stage.load(std::memory_order_acquire) != 1) {
      std::this_thread::yield();
    }
    ScopedAllocCheck worker_check;
    // The pointers must escape the loop or the optimizer may elide the
    // paired new/delete entirely ([expr.new] allocation elision applies
    // to replaced operator new too): reserve is one allocation, then
    // exactly one per element.
    std::vector<std::unique_ptr<int>> keep;
    keep.reserve(64);
    for (int i = 0; i < 64; ++i) {
      keep.push_back(std::make_unique<int>(i));
    }
    worker_count.store(worker_check.allocations(),
                       std::memory_order_release);
    stage.store(2, std::memory_order_release);
  });
  {
    ScopedAllocCheck check;
    stage.store(1, std::memory_order_release);
    while (stage.load(std::memory_order_acquire) != 2) {
      std::this_thread::yield();
    }
    // The worker's 64 allocations must not leak into this thread's
    // window...
    EXPECT_EQ(check.allocations(), 0u);
  }
  worker.join();
  // ...and must all have been visible in the worker's own window: the
  // vector's reserve plus one make_unique per element.
  EXPECT_EQ(worker_count.load(), 65u);
}

}  // namespace
}  // namespace ses::util
