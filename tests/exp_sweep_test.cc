#include "exp/sweep.h"

#include <gtest/gtest.h>

#include "ebsn/generator.h"

namespace ses::exp {
namespace {

const ebsn::EbsnDataset& SweepDataset() {
  static const ebsn::EbsnDataset* dataset = [] {
    ebsn::SyntheticMeetupConfig config;
    config.num_users = 600;
    config.num_events = 300;
    config.num_groups = 40;
    config.num_tags = 60;
    config.seed = 31;
    return new ebsn::EbsnDataset(ebsn::GenerateSyntheticMeetup(config));
  }();
  return *dataset;
}

ConfigFactory KSweepConfig() {
  return [](int64_t x, uint64_t seed) {
    PaperWorkloadConfig config;
    config.k = x;
    config.competing_mean = 2.0;
    config.competing_spread = 1.0;
    config.seed = seed;
    return config;
  };
}

TEST(SweepTest, AggregatesAcrossRepetitions) {
  WorkloadFactory factory(SweepDataset());
  auto cells = RunRepeatedSweep(factory, {5, 10}, KSweepConfig(),
                                {"grd", "rand"}, 3, 17);
  ASSERT_TRUE(cells.ok()) << cells.status().ToString();
  // 2 xs * 2 solvers = 4 cells, 3 samples each.
  ASSERT_EQ(cells->size(), 4u);
  for (const SweepCell& cell : *cells) {
    EXPECT_EQ(cell.utility.count, 3u);
    EXPECT_EQ(cell.seconds.count, 3u);
    EXPECT_GT(cell.utility.mean, 0.0);
    EXPECT_GE(cell.utility.max, cell.utility.min);
  }
}

TEST(SweepTest, GreedyDominatesRandInAggregate) {
  WorkloadFactory factory(SweepDataset());
  auto cells = RunRepeatedSweep(factory, {10}, KSweepConfig(),
                                {"grd", "rand"}, 3, 29);
  ASSERT_TRUE(cells.ok());
  double grd_mean = 0.0;
  double rand_mean = 0.0;
  for (const SweepCell& cell : *cells) {
    if (cell.solver == "grd") grd_mean = cell.utility.mean;
    if (cell.solver == "rand") rand_mean = cell.utility.mean;
  }
  EXPECT_GT(grd_mean, rand_mean);
}

TEST(SweepTest, RejectsZeroRepetitions) {
  WorkloadFactory factory(SweepDataset());
  auto cells =
      RunRepeatedSweep(factory, {5}, KSweepConfig(), {"grd"}, 0, 1);
  EXPECT_FALSE(cells.ok());
}

TEST(SweepTest, UnknownSolverPropagates) {
  WorkloadFactory factory(SweepDataset());
  auto cells =
      RunRepeatedSweep(factory, {5}, KSweepConfig(), {"bogus"}, 1, 1);
  EXPECT_FALSE(cells.ok());
}

TEST(SweepTest, RenderShowsMeanAndDeviation) {
  std::vector<SweepCell> cells;
  SweepCell cell;
  cell.x = 10;
  cell.solver = "grd";
  cell.utility = util::Summarize({100.0, 110.0, 120.0});
  cell.seconds = util::Summarize({1.0, 1.0, 1.0});
  cells.push_back(cell);

  const std::string utility_table =
      RenderSweepTable("title", "k", {"grd"}, cells, false);
  EXPECT_NE(utility_table.find("110.00"), std::string::npos);
  EXPECT_NE(utility_table.find("10.00"), std::string::npos);  // stddev

  const std::string seconds_table =
      RenderSweepTable("title", "k", {"grd"}, cells, true);
  EXPECT_NE(seconds_table.find("1.00"), std::string::npos);

  const std::string missing =
      RenderSweepTable("title", "k", {"grd", "other"}, cells, false);
  EXPECT_NE(missing.find("-"), std::string::npos);
}

}  // namespace
}  // namespace ses::exp
