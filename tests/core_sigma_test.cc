#include "core/sigma.h"

#include <vector>

#include <gtest/gtest.h>

namespace ses::core {
namespace {

TEST(ConstSigmaTest, ReturnsConstant) {
  ConstSigma sigma(0.7);
  EXPECT_DOUBLE_EQ(sigma.At(0, 0), 0.7);
  EXPECT_DOUBLE_EQ(sigma.At(99, 5), 0.7);
  std::vector<float> row(8);
  sigma.FillInterval(3, row);
  for (float v : row) EXPECT_FLOAT_EQ(v, 0.7f);
}

TEST(DenseSigmaTest, MatrixLookup) {
  DenseSigma sigma({{0.1f, 0.2f}, {0.3f, 0.4f}});
  EXPECT_DOUBLE_EQ(sigma.At(0, 0), 0.10000000149011612);
  EXPECT_FLOAT_EQ(static_cast<float>(sigma.At(1, 0)), 0.2f);
  EXPECT_FLOAT_EQ(static_cast<float>(sigma.At(0, 1)), 0.3f);
  std::vector<float> row(2);
  sigma.FillInterval(1, row);
  EXPECT_FLOAT_EQ(row[0], 0.3f);
  EXPECT_FLOAT_EQ(row[1], 0.4f);
}

TEST(HashUniformSigmaTest, DeterministicAndInRange) {
  HashUniformSigma a(123);
  HashUniformSigma b(123);
  for (UserIndex u = 0; u < 50; ++u) {
    for (IntervalIndex t = 0; t < 5; ++t) {
      const double v = a.At(u, t);
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
      EXPECT_DOUBLE_EQ(v, b.At(u, t));
    }
  }
}

TEST(HashUniformSigmaTest, SeedChangesValues) {
  HashUniformSigma a(1);
  HashUniformSigma b(2);
  int differences = 0;
  for (UserIndex u = 0; u < 64; ++u) {
    if (a.At(u, 0) != b.At(u, 0)) ++differences;
  }
  EXPECT_GT(differences, 56);
}

TEST(HashUniformSigmaTest, RoughlyUniformMean) {
  HashUniformSigma sigma(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += sigma.At(static_cast<UserIndex>(i % 2000),
                    static_cast<IntervalIndex>(i / 2000));
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(HashUniformSigmaTest, FillIntervalMatchesAt) {
  HashUniformSigma sigma(99);
  std::vector<float> row(128);
  sigma.FillInterval(4, row);
  for (UserIndex u = 0; u < row.size(); ++u) {
    EXPECT_FLOAT_EQ(row[u], static_cast<float>(sigma.At(u, 4)));
  }
}

// Bulk-fill / per-element equivalence: every provider's FillInterval
// must produce exactly the float At would have produced, bit for bit —
// AttendanceModel only ever sees rows through the bulk path, so any
// drift here silently changes every solver result. The kernel-level
// counterpart (bulk kernels vs scalar loops) lives in
// tests/core_kernel_diff_test.cc.
void ExpectFillMatchesAt(const SigmaProvider& provider, size_t num_users,
                         IntervalIndex num_intervals) {
  std::vector<float> row(num_users);
  for (IntervalIndex t = 0; t < num_intervals; ++t) {
    provider.FillInterval(t, row);
    for (UserIndex u = 0; u < num_users; ++u) {
      const float bulk = row[u];
      const float scalar = static_cast<float>(provider.At(u, t));
      // EXPECT_EQ, not EXPECT_FLOAT_EQ: exact equality, no ULP slack.
      EXPECT_EQ(bulk, scalar) << "u=" << u << " t=" << t;
    }
  }
}

TEST(ConstSigmaTest, FillIntervalBitMatchesAt) {
  ConstSigma sigma(0.37);
  ExpectFillMatchesAt(sigma, 100, 3);
}

TEST(DenseSigmaTest, FillIntervalBitMatchesAt) {
  std::vector<std::vector<float>> rows(3, std::vector<float>(64));
  uint32_t state = 12345;
  for (auto& row : rows) {
    for (float& v : row) {
      state = state * 1664525u + 1013904223u;
      v = static_cast<float>(state >> 8) /
          static_cast<float>(1u << 24);  // [0, 1)
    }
  }
  DenseSigma sigma(rows);
  ExpectFillMatchesAt(sigma, 64, 3);
}

TEST(HashUniformSigmaTest, FillIntervalBitMatchesAt) {
  HashUniformSigma sigma(0xFEEDULL);
  ExpectFillMatchesAt(sigma, 257, 4);  // not a SIMD-width multiple
}

TEST(SigmaProviderTest, BaseFallbackFillBitMatchesAt) {
  // A provider without its own FillInterval gets the base-class At
  // loop; the equivalence must hold there too.
  class Ramp final : public SigmaProvider {
   public:
    double At(UserIndex u, IntervalIndex t) const override {
      return (static_cast<double>(u) + t) / 1000.0;
    }
  };
  Ramp ramp;
  ExpectFillMatchesAt(ramp, 33, 2);
}

TEST(SigmaProviderTest, DefaultFillIntervalUsesAt) {
  // Exercise the base-class FillInterval through a minimal provider.
  class Ramp final : public SigmaProvider {
   public:
    double At(UserIndex u, IntervalIndex t) const override {
      return (static_cast<double>(u) + t) / 1000.0;
    }
  };
  Ramp ramp;
  std::vector<float> row(5);
  ramp.FillInterval(2, row);
  for (UserIndex u = 0; u < 5; ++u) {
    EXPECT_FLOAT_EQ(row[u], static_cast<float>((u + 2) / 1000.0));
  }
}

}  // namespace
}  // namespace ses::core
