#include "core/mkpi.h"

#include <gtest/gtest.h>

namespace ses::core {
namespace {

TEST(MkpiValidateTest, RejectsBadInstances) {
  MkpiInstance bad;
  bad.capacity = 10.0;
  bad.num_bins = 0;
  bad.weights = {1.0};
  bad.profits = {1.0};
  EXPECT_FALSE(bad.Validate().ok());

  bad.num_bins = 1;
  bad.weights = {1.0, 2.0};  // mismatch
  EXPECT_FALSE(bad.Validate().ok());

  bad.weights = {-1.0};
  bad.profits = {1.0};
  EXPECT_FALSE(bad.Validate().ok());

  bad.weights = {1.0};
  bad.profits = {0.0};
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(MkpiExactTest, SingleBinKnapsack) {
  // Classic 0/1 knapsack: capacity 10, best is {w8,p10} + nothing else
  // vs {6,4} packing profits 8+6=14.
  MkpiInstance mkpi;
  mkpi.capacity = 10.0;
  mkpi.num_bins = 1;
  mkpi.weights = {8.0, 6.0, 4.0, 3.0};
  mkpi.profits = {10.0, 8.0, 6.0, 4.0};
  auto solution = SolveMkpiExact(mkpi);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->profit, 14.0);
}

TEST(MkpiExactTest, TwoBinsPackMore) {
  MkpiInstance mkpi;
  mkpi.capacity = 10.0;
  mkpi.num_bins = 2;
  mkpi.weights = {8.0, 6.0, 4.0, 3.0};
  mkpi.profits = {10.0, 8.0, 6.0, 4.0};
  // Bin A: 8 (p10); bin B: 6+4 (p14) -> 24. Adding 3 anywhere overflows.
  auto solution = SolveMkpiExact(mkpi);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->profit, 24.0);
}

TEST(MkpiExactTest, EnoughBinsPackEverything) {
  MkpiInstance mkpi;
  mkpi.capacity = 10.0;
  mkpi.num_bins = 4;
  mkpi.weights = {8.0, 6.0, 4.0, 3.0};
  mkpi.profits = {10.0, 8.0, 6.0, 4.0};
  auto solution = SolveMkpiExact(mkpi);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->profit, 28.0);
  for (int bin : solution->bin_of_item) EXPECT_GE(bin, 0);
}

TEST(MkpiExactTest, SolutionRespectsCapacity) {
  MkpiInstance mkpi;
  mkpi.capacity = 7.0;
  mkpi.num_bins = 2;
  mkpi.weights = {5.0, 4.0, 3.0, 2.0, 2.0};
  mkpi.profits = {5.0, 4.5, 3.0, 2.5, 2.0};
  auto solution = SolveMkpiExact(mkpi);
  ASSERT_TRUE(solution.ok());
  std::vector<double> load(2, 0.0);
  double profit = 0.0;
  for (size_t i = 0; i < mkpi.weights.size(); ++i) {
    const int bin = solution->bin_of_item[i];
    if (bin < 0) continue;
    load[static_cast<size_t>(bin)] += mkpi.weights[i];
    profit += mkpi.profits[i];
  }
  EXPECT_LE(load[0], 7.0 + 1e-9);
  EXPECT_LE(load[1], 7.0 + 1e-9);
  EXPECT_DOUBLE_EQ(profit, solution->profit);
}

TEST(MkpiExactTest, ExactlyKItemsConstraint) {
  MkpiInstance mkpi;
  mkpi.capacity = 10.0;
  mkpi.num_bins = 2;
  mkpi.weights = {8.0, 6.0, 4.0, 3.0};
  mkpi.profits = {10.0, 8.0, 6.0, 4.0};

  // k=2: best pair fitting two bins: {8 (10), 6 (8)} = 18.
  auto two = SolveMkpiExact(mkpi, 2);
  ASSERT_TRUE(two.ok());
  EXPECT_DOUBLE_EQ(two->profit, 18.0);
  int packed = 0;
  for (int bin : two->bin_of_item) packed += bin >= 0 ? 1 : 0;
  EXPECT_EQ(packed, 2);

  // k=4: impossible (total weight 21 > 20).
  auto four = SolveMkpiExact(mkpi, 4);
  EXPECT_FALSE(four.ok());
  EXPECT_EQ(four.status().code(), util::StatusCode::kInfeasible);
}

TEST(MkpiExactTest, ZeroCapacityOnlyZeroWeightItems) {
  MkpiInstance mkpi;
  mkpi.capacity = 0.0;
  mkpi.num_bins = 2;
  mkpi.weights = {0.0, 1.0};
  mkpi.profits = {3.0, 5.0};
  auto solution = SolveMkpiExact(mkpi);
  ASSERT_TRUE(solution.ok());
  EXPECT_DOUBLE_EQ(solution->profit, 3.0);
  EXPECT_GE(solution->bin_of_item[0], 0);
  EXPECT_EQ(solution->bin_of_item[1], -1);
}

}  // namespace
}  // namespace ses::core
