/// Lifecycle tests of api::Scheduler's multi-instance session cache:
/// LoadInstance (owning and shared/borrowed), id-keyed Solve / Submit /
/// SolveBatch, LoadedInstances, Drop — including the contract the
/// serving layer leans on: Drop while a solve against that instance is
/// in flight neither crashes nor invalidates that solve's response.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "api/scheduler.h"
#include "core/validate.h"
#include "tests/test_util.h"

namespace ses::api {
namespace {

SolveRequest RequestFor(const std::string& solver, int64_t k = 5,
                        uint64_t seed = 1) {
  SolveRequest request;
  request.solver = solver;
  request.options.k = k;
  request.options.seed = seed;
  return request;
}

TEST(SessionCacheTest, LoadSolveByIdMatchesSolveByReference) {
  const core::SesInstance reference = test::MakeMediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  // Owning load: an identically-built copy moves into the scheduler.
  ASSERT_TRUE(
      scheduler.LoadInstance("meetup", test::MakeMediumInstance()).ok());
  EXPECT_EQ(scheduler.LoadedInstances(),
            std::vector<std::string>{"meetup"});

  for (const char* solver : {"grd", "lazy", "rand"}) {
    SCOPED_TRACE(solver);
    const SolveResponse by_id =
        scheduler.Solve("meetup", RequestFor(solver));
    const SolveResponse by_ref =
        scheduler.Solve(reference, RequestFor(solver));
    ASSERT_TRUE(by_id.status.ok()) << by_id.status.ToString();
    EXPECT_EQ(by_id.schedule, by_ref.schedule);
    EXPECT_EQ(by_id.utility, by_ref.utility);
  }
}

TEST(SessionCacheTest, DoubleLoadIsAlreadyExists) {
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  ASSERT_TRUE(scheduler.LoadInstance("a", test::MakeMediumInstance()).ok());
  const util::Status again =
      scheduler.LoadInstance("a", test::MakeMediumInstance(7));
  EXPECT_EQ(again.code(), util::StatusCode::kAlreadyExists);
  EXPECT_NE(again.message().find("'a'"), std::string::npos)
      << again.message();
  // The original stays loaded and usable.
  EXPECT_TRUE(scheduler.Solve("a", RequestFor("rand")).status.ok());
  // Drop + reload is the sanctioned replacement path.
  ASSERT_TRUE(scheduler.Drop("a").ok());
  EXPECT_TRUE(scheduler.LoadInstance("a", test::MakeMediumInstance(7)).ok());
}

TEST(SessionCacheTest, UnknownIdIsNotFoundOnEveryEntryPoint) {
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});

  const SolveResponse solve =
      scheduler.Solve("ghost", RequestFor("grd"));
  EXPECT_EQ(solve.status.code(), util::StatusCode::kNotFound);
  EXPECT_NE(solve.status.message().find("'ghost'"), std::string::npos);

  PendingSolve pending = scheduler.Submit("ghost", RequestFor("grd"));
  EXPECT_TRUE(pending.Ready());  // resolves without queueing work
  EXPECT_EQ(pending.Get().status.code(), util::StatusCode::kNotFound);

  const std::vector<SolveResponse> batch = scheduler.SolveBatch(
      "ghost", {RequestFor("grd"), RequestFor("rand")});
  ASSERT_EQ(batch.size(), 2u);
  for (const SolveResponse& response : batch) {
    EXPECT_EQ(response.status.code(), util::StatusCode::kNotFound);
    // The response still echoes which solver the slot asked for.
    EXPECT_FALSE(response.solver.empty());
  }

  EXPECT_EQ(scheduler.Drop("ghost").code(), util::StatusCode::kNotFound);
}

TEST(SessionCacheTest, DropDuringInFlightSolveIsSafe) {
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  ASSERT_TRUE(
      scheduler.LoadInstance("live", test::MakeMediumInstance()).ok());

  // A long cancellable run against the loaded instance; the work
  // counter proves the solver is actually executing before the Drop.
  SolveRequest request = RequestFor("anneal");
  request.options.max_iterations = 4'000'000'000LL;
  request.options.cooling = 0.9999999;
  std::atomic<uint64_t> progress{0};
  request.work_counter = &progress;
  PendingSolve pending = scheduler.Submit("live", std::move(request));
  while (progress.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Drop while the solve runs: the map entry goes away immediately...
  ASSERT_TRUE(scheduler.Drop("live").ok());
  EXPECT_TRUE(scheduler.LoadedInstances().empty());
  EXPECT_EQ(scheduler.Solve("live", RequestFor("grd")).status.code(),
            util::StatusCode::kNotFound);

  // ...but the in-flight solve pinned the instance and must finish with
  // a valid response against it.
  pending.Cancel();
  const SolveResponse response = pending.Get();
  EXPECT_EQ(response.status.code(), util::StatusCode::kCancelled);
  EXPECT_TRUE(response.has_schedule());
  const core::SesInstance reference = test::MakeMediumInstance();
  EXPECT_TRUE(
      core::ValidateAssignments(reference, response.schedule).ok());
}

TEST(SessionCacheTest, BorrowedSharedPtrLoadSolvesWithoutCopy) {
  const core::SesInstance owned = test::MakeMediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  // Non-owning alias: the test owns the instance; the scheduler only
  // references it (the caller guarantees lifetime — see LoadInstance).
  ASSERT_TRUE(
      scheduler.LoadInstance("borrowed", BorrowInstance(owned)).ok());
  const SolveResponse by_id =
      scheduler.Solve("borrowed", RequestFor("grd"));
  const SolveResponse by_ref = scheduler.Solve(owned, RequestFor("grd"));
  ASSERT_TRUE(by_id.status.ok());
  EXPECT_EQ(by_id.schedule, by_ref.schedule);
  EXPECT_EQ(by_id.utility, by_ref.utility);
  ASSERT_TRUE(scheduler.Drop("borrowed").ok());
}

TEST(SessionCacheTest, NullSharedPtrLoadIsInvalidArgument) {
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  EXPECT_EQ(scheduler
                .LoadInstance("null",
                              std::shared_ptr<const core::SesInstance>())
                .code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(scheduler.LoadedInstances().empty());
}

TEST(SessionCacheTest, ManyInstancesSolveAgainstTheRightOne) {
  Scheduler scheduler(SchedulerOptions{.num_threads = 2});
  // Distinct seeds produce distinct instances; the id-keyed responses
  // must match per-seed references, proving no cross-instance mixups.
  const std::vector<uint64_t> seeds{3, 11, 29};
  for (uint64_t seed : seeds) {
    ASSERT_TRUE(scheduler
                    .LoadInstance("seed-" + std::to_string(seed),
                                  test::MakeMediumInstance(seed))
                    .ok());
  }
  EXPECT_EQ(scheduler.LoadedInstances().size(), seeds.size());
  for (uint64_t seed : seeds) {
    SCOPED_TRACE(seed);
    const core::SesInstance reference = test::MakeMediumInstance(seed);
    const SolveResponse by_id =
        scheduler.Solve("seed-" + std::to_string(seed), RequestFor("grd"));
    const SolveResponse by_ref =
        scheduler.Solve(reference, RequestFor("grd"));
    ASSERT_TRUE(by_id.status.ok());
    EXPECT_EQ(by_id.schedule, by_ref.schedule);
    EXPECT_EQ(by_id.utility, by_ref.utility);
  }
}

}  // namespace
}  // namespace ses::api
