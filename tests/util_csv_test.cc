#include "util/csv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace ses::util {
namespace {

TEST(ParseCsvLineTest, PlainFields) {
  auto row = ParseCsvLine("a,b,c");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, EmptyFields) {
  auto row = ParseCsvLine("a,,c,");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"a", "", "c", ""}));
}

TEST(ParseCsvLineTest, QuotedFieldWithComma) {
  auto row = ParseCsvLine("x,\"a,b\",y");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"x", "a,b", "y"}));
}

TEST(ParseCsvLineTest, EscapedQuote) {
  auto row = ParseCsvLine("\"he said \"\"hi\"\"\"");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), (CsvRow{"he said \"hi\""}));
}

TEST(ParseCsvLineTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsvLine("\"oops").ok());
}

TEST(ParseCsvLineTest, QuoteInUnquotedFieldFails) {
  EXPECT_FALSE(ParseCsvLine("ab\"c").ok());
}

TEST(FormatCsvRowTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(FormatCsvRow({"a", "b"}), "a,b");
  EXPECT_EQ(FormatCsvRow({"a,b"}), "\"a,b\"");
  EXPECT_EQ(FormatCsvRow({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(FormatCsvRow({""}), "");
}

TEST(FormatParseRoundTrip, ArbitraryContent) {
  const CsvRow original{"plain", "with,comma", "with\"quote", "multi\nline",
                        ""};
  auto parsed = ParseCsvLine(FormatCsvRow(original));
  ASSERT_TRUE(parsed.ok());
  // Note: embedded newline survives quoting within a single line here
  // because ParseCsvLine treats the payload as one logical line.
  EXPECT_EQ(parsed.value(), original);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("ses_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvFileTest, WriteReadRoundTrip) {
  const CsvRow header{"id", "name"};
  const std::vector<CsvRow> rows{{"1", "alpha"}, {"2", "beta,comma"}};
  ASSERT_TRUE(WriteCsvFile(path_.string(), header, rows).ok());

  CsvRow read_header;
  auto read = ReadCsvFile(path_.string(), true, &read_header);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read_header, header);
  EXPECT_EQ(read.value(), rows);
}

TEST_F(CsvFileTest, ReadWithoutHeader) {
  ASSERT_TRUE(WriteCsvFile(path_.string(), {}, {{"x", "y"}}).ok());
  auto read = ReadCsvFile(path_.string(), false, nullptr);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), 1u);
  EXPECT_EQ(read.value()[0], (CsvRow{"x", "y"}));
}

TEST_F(CsvFileTest, MissingFileFails) {
  auto read = ReadCsvFile("/nonexistent/dir/file.csv", false, nullptr);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST_F(CsvFileTest, WriteToBadPathFails) {
  EXPECT_FALSE(WriteCsvFile("/nonexistent/dir/file.csv", {}, {}).ok());
}

}  // namespace
}  // namespace ses::util
