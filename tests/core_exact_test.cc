#include "core/exact.h"

#include <functional>

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/objective.h"
#include "core/validate.h"
#include "tests/test_util.h"

namespace ses::core {
namespace {

/// Brute-force optimum by enumerating all size-k assignment sets through
/// recursion over events — the independent oracle the solver must match.
double BruteForceOptimum(const SesInstance& instance, size_t k) {
  double best = -1.0;
  Schedule schedule(instance);
  std::function<void(EventIndex, size_t)> recurse =
      [&](EventIndex next, size_t chosen) {
        if (chosen == k) {
          best = std::max(best, TotalUtility(instance, schedule));
          return;
        }
        if (next >= instance.num_events()) return;
        for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
          if (!schedule.CanAssign(next, t)) continue;
          ASSERT_TRUE(schedule.Assign(next, t).ok());
          recurse(next + 1, chosen + 1);
          ASSERT_TRUE(schedule.Unassign(next).ok());
        }
        recurse(next + 1, chosen);
      };
  recurse(0, 0);
  return best;
}

class ExactSolverTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactSolverTest, MatchesBruteForceOnSmallInstances) {
  test::RandomInstanceConfig config;
  config.seed = GetParam();
  config.num_users = 12;
  config.num_events = 5;
  config.num_intervals = 3;
  config.theta = 8.0;
  const SesInstance instance = test::MakeRandomInstance(config);

  for (int64_t k = 1; k <= 3; ++k) {
    SolverOptions options;
    options.k = k;
    ExactSolver exact;
    auto result = exact.Solve(instance, options);
    const double brute = BruteForceOptimum(instance, static_cast<size_t>(k));
    if (brute < 0.0) {
      EXPECT_FALSE(result.ok());
      continue;
    }
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NEAR(result->utility, brute, 1e-7) << "k=" << k;
    EXPECT_TRUE(ValidateAssignments(instance, result->assignments, k).ok());
  }
}

TEST_P(ExactSolverTest, GreedyNeverBeatsExact) {
  test::RandomInstanceConfig config;
  config.seed = GetParam() + 1000;
  config.num_users = 15;
  config.num_events = 6;
  config.num_intervals = 3;
  const SesInstance instance = test::MakeRandomInstance(config);

  SolverOptions options;
  options.k = 3;
  ExactSolver exact;
  GreedySolver grd;
  auto optimal = exact.Solve(instance, options);
  auto greedy = grd.Solve(instance, options);
  ASSERT_TRUE(optimal.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_LE(greedy->utility, optimal->utility + 1e-9);
  // Greedy should stay within a reasonable factor on these instances.
  EXPECT_GE(greedy->utility, 0.5 * optimal->utility);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactSolverTest,
                         ::testing::Values(4, 9, 16, 25, 36, 49));

TEST(ExactSolverLimitsTest, NodeBudgetExhaustionReported) {
  test::RandomInstanceConfig config;
  config.num_events = 10;
  config.num_intervals = 6;
  const SesInstance instance = test::MakeRandomInstance(config);
  SolverOptions options;
  options.k = 5;
  options.max_nodes = 10;  // absurdly small
  ExactSolver exact;
  auto result = exact.Solve(instance, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(ExactSolverLimitsTest, InfeasibleKReported) {
  // Two events sharing one location, a single interval: k=2 impossible.
  InstanceBuilder builder;
  builder.SetNumUsers(1).SetNumIntervals(1).SetTheta(10.0).SetSigma(
      std::make_shared<ConstSigma>(1.0));
  builder.AddEvent(0, 1.0, {{0, 0.9f}});
  builder.AddEvent(0, 1.0, {{0, 0.8f}});
  auto instance = builder.Build();
  ASSERT_TRUE(instance.ok());
  SolverOptions options;
  options.k = 2;
  ExactSolver exact;
  auto result = exact.Solve(*instance, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInfeasible);
}

TEST(ExactSolverLimitsTest, PicksTheObviouslyBetterEvent) {
  // e0 has twice the interest of e1 with identical competition: the
  // optimum for k=1 must schedule e0 alone at the competition-free
  // interval.
  InstanceBuilder builder;
  builder.SetNumUsers(2).SetNumIntervals(2).SetTheta(10.0).SetSigma(
      std::make_shared<ConstSigma>(1.0));
  builder.AddEvent(0, 1.0, {{0, 0.8f}, {1, 0.8f}});
  builder.AddEvent(1, 1.0, {{0, 0.4f}});
  builder.AddCompetingEvent(0, {{0, 0.5f}, {1, 0.5f}});
  auto instance = builder.Build();
  ASSERT_TRUE(instance.ok());
  SolverOptions options;
  options.k = 1;
  ExactSolver exact;
  auto result = exact.Solve(*instance, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignments.size(), 1u);
  EXPECT_EQ(result->assignments[0].event, 0u);
  EXPECT_EQ(result->assignments[0].interval, 1u);  // no competition there
  EXPECT_NEAR(result->utility, 2.0, 1e-9);
}

}  // namespace
}  // namespace ses::core
