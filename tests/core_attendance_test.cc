#include "core/attendance.h"

#include <gtest/gtest.h>

#include "core/objective.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace ses::core {
namespace {

constexpr double kTol = 1e-9;

/// Parameterized over seeds: every property below must hold on random
/// instances of varied shape.
class AttendancePropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SesInstance MakeInstance() const {
    test::RandomInstanceConfig config;
    config.seed = GetParam();
    config.num_users = 25 + GetParam() % 17;
    config.num_events = 6 + GetParam() % 5;
    config.num_intervals = 3 + GetParam() % 3;
    return test::MakeRandomInstance(config);
  }
};

TEST_P(AttendancePropertyTest, MarginalGainMatchesReferenceScore) {
  const SesInstance instance = MakeInstance();
  AttendanceModel model(instance);
  util::Rng rng(GetParam() * 31 + 1);

  // Check gains against the slow reference both on the empty schedule and
  // as the schedule grows.
  for (int step = 0; step < 4; ++step) {
    for (EventIndex e = 0; e < instance.num_events(); ++e) {
      if (model.schedule().IsAssigned(e)) continue;
      for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
        const double fast = model.MarginalGain(e, t);
        const double slow =
            AssignmentScore(instance, model.schedule(), e, t);
        ASSERT_NEAR(fast, slow, 1e-6)
            << "step " << step << " event " << e << " interval " << t;
      }
    }
    // Grow the schedule by one random valid assignment.
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      const EventIndex e = static_cast<EventIndex>(
          rng.NextBounded(instance.num_events()));
      const IntervalIndex t = static_cast<IntervalIndex>(
          rng.NextBounded(instance.num_intervals()));
      if (model.CanAssign(e, t)) {
        model.Apply(e, t);
        placed = true;
      }
    }
    if (!placed) break;
  }
}

TEST_P(AttendancePropertyTest, TrackedUtilityMatchesReference) {
  const SesInstance instance = MakeInstance();
  AttendanceModel model(instance);
  util::Rng rng(GetParam() * 17 + 3);

  for (int step = 0; step < 6; ++step) {
    const EventIndex e =
        static_cast<EventIndex>(rng.NextBounded(instance.num_events()));
    const IntervalIndex t = static_cast<IntervalIndex>(
        rng.NextBounded(instance.num_intervals()));
    if (!model.CanAssign(e, t)) continue;
    model.Apply(e, t);
    ASSERT_NEAR(model.total_utility(),
                TotalUtility(instance, model.schedule()), 1e-6);
  }
}

TEST_P(AttendancePropertyTest, GainsAreNonNegative) {
  const SesInstance instance = MakeInstance();
  AttendanceModel model(instance);
  for (EventIndex e = 0; e < instance.num_events(); ++e) {
    for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
      ASSERT_GE(model.MarginalGain(e, t), -kTol);
    }
  }
}

TEST_P(AttendancePropertyTest, GainsShrinkAsIntervalFills) {
  const SesInstance instance = MakeInstance();
  AttendanceModel model(instance);

  // Record empty-schedule gains at interval 0, then fill interval 0 and
  // verify no gain increased (the submodularity-style property that
  // justifies GRD's update rule and lazy greedy).
  std::vector<double> before(instance.num_events());
  for (EventIndex e = 0; e < instance.num_events(); ++e) {
    before[e] = model.MarginalGain(e, 0);
  }
  EventIndex placed = kInvalidIndex;
  for (EventIndex e = 0; e < instance.num_events(); ++e) {
    if (model.CanAssign(e, 0)) {
      model.Apply(e, 0);
      placed = e;
      break;
    }
  }
  ASSERT_NE(placed, kInvalidIndex);
  for (EventIndex e = 0; e < instance.num_events(); ++e) {
    if (model.schedule().IsAssigned(e)) continue;
    ASSERT_LE(model.MarginalGain(e, 0), before[e] + 1e-9)
        << "gain increased for event " << e;
  }
}

TEST_P(AttendancePropertyTest, UnapplyRestoresUtility) {
  const SesInstance instance = MakeInstance();
  AttendanceModel model(instance);
  util::Rng rng(GetParam() * 13 + 7);

  // Build a small schedule.
  for (int step = 0; step < 3; ++step) {
    const EventIndex e =
        static_cast<EventIndex>(rng.NextBounded(instance.num_events()));
    const IntervalIndex t = static_cast<IntervalIndex>(
        rng.NextBounded(instance.num_intervals()));
    if (model.CanAssign(e, t)) model.Apply(e, t);
  }
  const double baseline = model.total_utility();
  const auto assignments = model.schedule().Assignments();
  if (assignments.empty()) return;

  // Apply + unapply a new event: utility must return to baseline.
  for (EventIndex e = 0; e < instance.num_events(); ++e) {
    if (model.schedule().IsAssigned(e)) continue;
    for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
      if (!model.CanAssign(e, t)) continue;
      model.Apply(e, t);
      model.Unapply(e);
      ASSERT_NEAR(model.total_utility(), baseline, 1e-6);
      ASSERT_NEAR(model.total_utility(),
                  TotalUtility(instance, model.schedule()), 1e-6);
    }
  }
}

TEST_P(AttendancePropertyTest, UnapplyAcrossIntervalsIsConsistent) {
  const SesInstance instance = MakeInstance();
  AttendanceModel model(instance);
  // Assign events to different intervals, then remove them all; utility
  // must return to zero.
  size_t applied = 0;
  for (EventIndex e = 0;
       e < instance.num_events() && applied < instance.num_intervals();
       ++e) {
    const IntervalIndex t = static_cast<IntervalIndex>(applied);
    if (model.CanAssign(e, t)) {
      model.Apply(e, t);
      ++applied;
    }
  }
  for (const Assignment& a : model.schedule().Assignments()) {
    model.Unapply(a.event);
  }
  EXPECT_NEAR(model.total_utility(), 0.0, 1e-7);
  EXPECT_EQ(model.schedule().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttendancePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(AttendanceModelTest, GainEvaluationCounter) {
  test::RandomInstanceConfig config;
  const SesInstance instance = test::MakeRandomInstance(config);
  AttendanceModel model(instance);
  EXPECT_EQ(model.gain_evaluations(), 0u);
  model.MarginalGain(0, 0);
  model.MarginalGain(1, 0);
  EXPECT_EQ(model.gain_evaluations(), 2u);
}

TEST(AttendanceModelTest, ZeroDenominatorUserContributesSigma) {
  // A user interested in exactly one event with no competition attends
  // with probability sigma regardless of mu.
  InstanceBuilder builder;
  builder.SetNumUsers(1).SetNumIntervals(1).SetTheta(10.0).SetSigma(
      std::make_shared<ConstSigma>(0.37));
  builder.AddEvent(0, 1.0, {{0, 0.123f}});
  auto instance = builder.Build();
  ASSERT_TRUE(instance.ok());
  AttendanceModel model(*instance);
  EXPECT_NEAR(model.MarginalGain(0, 0), 0.37, 1e-6);
}

}  // namespace
}  // namespace ses::core
