#include "api/scheduler.h"

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/validate.h"
#include "tests/test_util.h"

namespace ses::api {
namespace {

core::SesInstance MediumInstance(uint64_t seed = 42) {
  // Shared fixture preset (tests/test_util.h) — also used by the
  // session-cache and stress suites.
  return test::MakeMediumInstance(seed);
}

SolveRequest RequestFor(const std::string& solver, int64_t k = 5,
                        uint64_t seed = 1) {
  SolveRequest request;
  request.solver = solver;
  request.options.k = k;
  request.options.seed = seed;
  return request;
}

// --- Up-front validation -------------------------------------------------

TEST(SchedulerValidateTest, UnknownSolverIsNotFoundAndListsCatalog) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  const util::Status status =
      scheduler.Validate(instance, RequestFor("no-such-solver"));
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
  // The message must name the valid choices.
  for (const std::string& name : ListSolvers()) {
    EXPECT_NE(status.message().find(name), std::string::npos) << name;
  }
}

TEST(SchedulerValidateTest, RejectsInfeasibleK) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  EXPECT_EQ(scheduler.Validate(instance, RequestFor("grd", 0)).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(scheduler.Validate(instance, RequestFor("grd", 10000)).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(SchedulerValidateTest, RejectsBadWarmStart) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  SolveRequest request = RequestFor("grd", 3);
  // Out-of-range event index can never be part of a feasible schedule.
  request.options.warm_start.push_back(
      {/*event=*/instance.num_events() + 7, /*interval=*/0});
  EXPECT_FALSE(scheduler.Validate(instance, request).ok());
}

TEST(SchedulerSolveTest, UnknownSolverResponseCarriesError) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  const SolveResponse response =
      scheduler.Solve(instance, RequestFor("bogus"));
  EXPECT_EQ(response.status.code(), util::StatusCode::kNotFound);
  EXPECT_FALSE(response.has_schedule());
  EXPECT_TRUE(response.schedule.empty());
}

// --- Synchronous solve ---------------------------------------------------

TEST(SchedulerSolveTest, SolvesAndReportsUtility) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  const SolveResponse response =
      scheduler.Solve(instance, RequestFor("grd"));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.has_schedule());
  EXPECT_EQ(response.schedule.size(), 5u);
  EXPECT_GT(response.utility, 0.0);
  EXPECT_EQ(response.solver, "grd");
  EXPECT_TRUE(
      core::ValidateAssignments(instance, response.schedule, 5).ok());
}

// --- Deadlines -----------------------------------------------------------

TEST(SchedulerDeadlineTest, ZeroBudgetReturnsFeasiblePartialEverySolver) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  for (const std::string& name : ListSolvers()) {
    SCOPED_TRACE(name);
    SolveRequest request = RequestFor(name);
    request.deadline = core::Deadline::After(0.0);
    const SolveResponse response = scheduler.Solve(instance, request);
    EXPECT_EQ(response.status.code(),
              util::StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(response.has_schedule());
    // Whatever was assembled before the deadline must be feasible (an
    // empty schedule is fine).
    EXPECT_TRUE(
        core::ValidateAssignments(instance, response.schedule).ok());
    EXPECT_LE(response.schedule.size(), 5u);
  }
}

TEST(SchedulerDeadlineTest, UnlimitedDeadlineNeverExpires) {
  EXPECT_FALSE(core::Deadline().Expired());
  EXPECT_FALSE(core::Deadline::Unlimited().Expired());
  EXPECT_TRUE(core::Deadline::After(0.0).Expired());
  EXPECT_TRUE(core::Deadline::After(-1.0).Expired());
}

// --- Cancellation --------------------------------------------------------

TEST(SchedulerCancelTest, PreCancelledTokenReturnsCancelled) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  for (const std::string& name : ListSolvers()) {
    SCOPED_TRACE(name);
    SolveRequest request = RequestFor(name);
    request.cancel = std::make_shared<core::CancelToken>();
    request.cancel->Cancel();
    const SolveResponse response = scheduler.Solve(instance, request);
    EXPECT_EQ(response.status.code(), util::StatusCode::kCancelled);
    EXPECT_TRUE(response.has_schedule());
    EXPECT_TRUE(
        core::ValidateAssignments(instance, response.schedule).ok());
  }
}

TEST(SchedulerCancelTest, CancelMidSolveThroughPendingSolve) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  // An annealing run sized to take minutes unless cancelled: the test
  // passes quickly precisely because cancellation interrupts it.
  SolveRequest request = RequestFor("anneal");
  request.options.max_iterations = 4'000'000'000LL;
  request.options.cooling = 0.9999999;
  PendingSolve pending = scheduler.Submit(instance, std::move(request));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  pending.Cancel();
  const SolveResponse response = pending.Get();
  EXPECT_EQ(response.status.code(), util::StatusCode::kCancelled);
  EXPECT_TRUE(response.has_schedule());
  EXPECT_TRUE(
      core::ValidateAssignments(instance, response.schedule).ok());
}

// --- Async submission ----------------------------------------------------

TEST(SchedulerSubmitTest, InvalidRequestResolvesImmediately) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  PendingSolve pending =
      scheduler.Submit(instance, RequestFor("not-a-solver"));
  const SolveResponse response = pending.Get();
  EXPECT_EQ(response.status.code(), util::StatusCode::kNotFound);
}

TEST(SchedulerSubmitTest, ResolvesWithSameResultAsSyncSolve) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 2});
  const SolveResponse sync =
      scheduler.Solve(instance, RequestFor("lazy"));
  PendingSolve pending = scheduler.Submit(instance, RequestFor("lazy"));
  const SolveResponse async = pending.Get();
  ASSERT_TRUE(sync.status.ok());
  ASSERT_TRUE(async.status.ok());
  EXPECT_EQ(sync.schedule, async.schedule);
  EXPECT_EQ(sync.utility, async.utility);
}

// --- Batch submission ----------------------------------------------------

TEST(SchedulerBatchTest, DeterministicOrderUnderManyWorkers) {
  const core::SesInstance instance = MediumInstance();
  // jobs > 1: completion order is up to the pool, result order is not.
  Scheduler scheduler(SchedulerOptions{.num_threads = 4});

  std::vector<SolveRequest> requests;
  const std::vector<std::string> names{"grd", "lazy", "bestfit", "top",
                                       "rand"};
  for (uint64_t seed : {1ull, 2ull}) {
    for (const std::string& name : names) {
      requests.push_back(RequestFor(name, 5, seed));
    }
  }

  const std::vector<SolveResponse> batch =
      scheduler.SolveBatch(instance, requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_TRUE(batch[i].status.ok()) << batch[i].status.ToString();
    // Responses come back in request order...
    EXPECT_EQ(batch[i].solver, requests[i].solver);
    // ...and match a synchronous run of the same request bitwise.
    const SolveResponse solo = scheduler.Solve(instance, requests[i]);
    EXPECT_EQ(batch[i].schedule, solo.schedule);
    EXPECT_EQ(batch[i].utility, solo.utility);
  }

  // A rerun of the same batch is reproducible.
  const std::vector<SolveResponse> again =
      scheduler.SolveBatch(instance, requests);
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(batch[i].schedule, again[i].schedule);
    EXPECT_EQ(batch[i].utility, again[i].utility);
  }
}

TEST(SchedulerBatchTest, InvalidRequestFailsOnlyItsSlot) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 2});
  const std::vector<SolveResponse> responses = scheduler.SolveBatch(
      instance, {RequestFor("grd"), RequestFor("bogus"), RequestFor("rand")});
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].status.ok());
  EXPECT_EQ(responses[1].status.code(), util::StatusCode::kNotFound);
  EXPECT_TRUE(responses[2].status.ok());
}

// --- Admission control ---------------------------------------------------

/// A request sized to run for minutes unless cancelled: the tool for
/// keeping a worker provably busy while the queue is inspected.
SolveRequest BlockerRequest() {
  SolveRequest request = RequestFor("anneal");
  request.options.max_iterations = 4'000'000'000LL;
  request.options.cooling = 0.9999999;
  request.cancel = std::make_shared<core::CancelToken>();
  return request;
}

/// Spins until the scheduler's dispatch queue is empty (every admitted
/// request has been picked up by a worker).
void WaitForDrainedQueue(const Scheduler& scheduler) {
  while (scheduler.queued_requests() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(SchedulerAdmissionTest, OverflowFailsFastWithResourceExhausted) {
  const core::SesInstance instance = MediumInstance();
  SchedulerOptions options;
  options.num_threads = 1;
  options.max_queued_requests = 2;
  Scheduler scheduler(options);
  EXPECT_EQ(scheduler.max_queued_requests(), 2u);

  // Occupy the only worker, then wait until the blocker has actually
  // been dequeued so the two admissions below are exactly the capacity.
  SolveRequest blocker = BlockerRequest();
  auto blocker_cancel = blocker.cancel;
  PendingSolve running = scheduler.Submit(instance, std::move(blocker));
  WaitForDrainedQueue(scheduler);

  PendingSolve queued_a = scheduler.Submit(instance, RequestFor("rand"));
  PendingSolve queued_b = scheduler.Submit(instance, RequestFor("rand"));
  EXPECT_EQ(scheduler.queued_requests(), 2u);

  // The queue is full: the refusal must resolve immediately (fail-fast,
  // no blocking) with a message reporting depth and limit.
  PendingSolve refused = scheduler.Submit(instance, RequestFor("grd"));
  EXPECT_TRUE(refused.Ready());
  const SolveResponse refusal = refused.Get();
  EXPECT_EQ(refusal.status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_NE(refusal.status.message().find("2 of 2"), std::string::npos)
      << refusal.status.message();
  EXPECT_FALSE(refusal.has_schedule());

  // A refusal loses nothing that was admitted: unblock and collect.
  blocker_cancel->Cancel();
  EXPECT_EQ(running.Get().status.code(), util::StatusCode::kCancelled);
  EXPECT_TRUE(queued_a.Get().status.ok());
  EXPECT_TRUE(queued_b.Get().status.ok());
  EXPECT_EQ(scheduler.queued_requests(), 0u);
}

TEST(SchedulerAdmissionTest, BatchOverflowFailsOnlyTheOverflowedSlots) {
  const core::SesInstance instance = MediumInstance();
  SchedulerOptions options;
  options.num_threads = 1;
  options.max_queued_requests = 3;
  Scheduler scheduler(options);

  SolveRequest blocker = BlockerRequest();
  auto blocker_cancel = blocker.cancel;
  PendingSolve running = scheduler.Submit(instance, std::move(blocker));
  WaitForDrainedQueue(scheduler);

  // Six requests against three slots: the first three are admitted, the
  // rest resolve as per-slot kResourceExhausted responses in order.
  std::vector<SolveRequest> requests;
  for (int i = 0; i < 6; ++i) requests.push_back(RequestFor("rand"));
  std::thread unblock([&] {
    // SolveBatch blocks collecting responses; release the worker once
    // the batch has had time to stage its submissions.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    blocker_cancel->Cancel();
  });
  const std::vector<SolveResponse> responses =
      scheduler.SolveBatch(instance, requests);
  unblock.join();
  ASSERT_EQ(responses.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(responses[i].status.ok()) << i;
  }
  for (int i = 3; i < 6; ++i) {
    EXPECT_EQ(responses[i].status.code(),
              util::StatusCode::kResourceExhausted)
        << i;
  }
  EXPECT_EQ(running.Get().status.code(), util::StatusCode::kCancelled);
}

TEST(SchedulerAdmissionTest, UnboundedByDefault) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  EXPECT_EQ(scheduler.max_queued_requests(), 0u);
  // Way more requests than workers: all admitted, none refused.
  std::vector<SolveRequest> requests;
  for (int i = 0; i < 32; ++i) requests.push_back(RequestFor("rand"));
  for (const SolveResponse& response :
       scheduler.SolveBatch(instance, requests)) {
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
}

TEST(SchedulerAdmissionTest, ValidationFailuresDoNotConsumeQueueSlots) {
  const core::SesInstance instance = MediumInstance();
  SchedulerOptions options;
  options.num_threads = 1;
  options.max_queued_requests = 1;
  Scheduler scheduler(options);

  SolveRequest blocker = BlockerRequest();
  auto blocker_cancel = blocker.cancel;
  PendingSolve running = scheduler.Submit(instance, std::move(blocker));
  WaitForDrainedQueue(scheduler);

  // Invalid requests resolve up front; the single queue slot stays free.
  for (int i = 0; i < 4; ++i) {
    PendingSolve invalid = scheduler.Submit(instance, RequestFor("bogus"));
    EXPECT_EQ(invalid.Get().status.code(), util::StatusCode::kNotFound);
  }
  PendingSolve admitted = scheduler.Submit(instance, RequestFor("rand"));
  EXPECT_EQ(scheduler.queued_requests(), 1u);

  blocker_cancel->Cancel();
  EXPECT_EQ(running.Get().status.code(), util::StatusCode::kCancelled);
  EXPECT_TRUE(admitted.Get().status.ok());
}

// --- Work-counter hook ---------------------------------------------------

TEST(SolveContextTest, WorkCounterHookTicks) {
  const core::SesInstance instance = MediumInstance();
  std::atomic<uint64_t> counter{0};

  core::GreedySolver grd;
  core::SolverOptions options;
  options.k = 5;
  core::SolveContext context;
  context.work_counter = &counter;
  auto result = grd.Solve(instance, options, context);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->termination.ok());
  // One unit per selection iteration at minimum.
  EXPECT_GE(counter.load(), 5u);
}

TEST(SolveContextTest, ApiRequestForwardsWorkCounter) {
  const core::SesInstance instance = MediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});
  std::atomic<uint64_t> counter{0};
  SolveRequest request = RequestFor("rand");
  request.work_counter = &counter;
  const SolveResponse response = scheduler.Solve(instance, request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_GT(counter.load(), 0u);
}

}  // namespace
}  // namespace ses::api
