#!/usr/bin/env python3
"""Fixture suite for tools/run_benchmarks.py, registered with ctest.

Exercises the pure helpers — median aggregation over report trees,
canonical BENCH file writing, leaderboard/compare rendering, trace
discovery — against synthetic reports in temp directories. No build or
ses_cli binary is needed, so the suite stays fast enough for tier-1.
"""

import importlib.util
import json
import os
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RUNNER = os.path.join(REPO_ROOT, "tools", "run_benchmarks.py")

_spec = importlib.util.spec_from_file_location("run_benchmarks", RUNNER)
rb = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(rb)


def make_report(completed=6, refused=0, expired=0, p50=0.002, p99=0.010,
                rps=40.0):
    """A minimal report in the ses_cli bench schema."""
    return {
        "trace": "unit",
        "seed": 7,
        "requests": {
            "submitted": completed + refused + expired,
            "completed": completed,
            "refused": refused,
            "deadline_expired": expired,
            "expired_in_queue": 0,
            "failed": 0,
        },
        "total_utility": 12.5,
        "lanes": {
            "high": {"submitted": 0, "started": 0, "expired_in_queue": 0},
            "normal": {
                "submitted": completed + refused + expired,
                "started": completed,
                "expired_in_queue": 0,
                "queue_wait_seconds": {"p50": p50, "p99": p99, "mean": p50},
            },
            "batch": {"submitted": 0, "started": 0, "expired_in_queue": 0},
        },
        "solvers": {
            "grd": {"submitted": completed, "runs": completed,
                    "utility": 12.5},
        },
        "timing": {"duration_seconds": 0.25, "throughput_rps": rps},
    }


class MedianTest(unittest.TestCase):
    def test_odd_and_even(self):
        self.assertEqual(rb.median([3, 1, 2]), 2)
        self.assertEqual(rb.median([4, 1, 2, 3]), 2.5)

    def test_single(self):
        self.assertEqual(rb.median([7.5]), 7.5)


class MedianTreeTest(unittest.TestCase):
    def test_numbers_take_elementwise_median(self):
        trees = [make_report(rps=30.0), make_report(rps=50.0),
                 make_report(rps=40.0)]
        merged = rb.median_tree(trees)
        self.assertEqual(merged["timing"]["throughput_rps"], 40.0)
        # Identical strings pass through untouched.
        self.assertEqual(merged["trace"], "unit")

    def test_integer_fields_stay_integers(self):
        trees = [make_report(completed=5), make_report(completed=7),
                 make_report(completed=6)]
        merged = rb.median_tree(trees)
        self.assertEqual(merged["requests"]["completed"], 6)
        self.assertIsInstance(merged["requests"]["completed"], int)

    def test_schema_drift_raises(self):
        good = make_report()
        bad = make_report()
        del bad["timing"]
        with self.assertRaises(ValueError):
            rb.median_tree([good, bad])

    def test_string_disagreement_raises(self):
        a = make_report()
        b = make_report()
        b["trace"] = "other"
        with self.assertRaises(ValueError):
            rb.median_tree([a, b])

    def test_empty_raises(self):
        with self.assertRaises(ValueError):
            rb.median_tree([])


class CanonicalFileTest(unittest.TestCase):
    def test_write_canonical_roundtrips_and_sorts_keys(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = rb.write_canonical(
                "unit", "S", [make_report(), make_report()], out_dir=tmp)
            self.assertEqual(os.path.basename(path), "BENCH_unit.json")
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
            tree = json.loads(text)
            self.assertEqual(tree["scenario"], "unit")
            self.assertEqual(tree["size"], "S")
            self.assertEqual(tree["repeats"], 2)
            self.assertEqual(tree["report"]["requests"]["completed"], 6)
            # Canonical formatting: sorted keys, trailing newline.
            self.assertEqual(
                text, json.dumps(tree, indent=2, sort_keys=True) + "\n")


class SummaryAndLeaderboardTest(unittest.TestCase):
    def canonical(self, **kwargs):
        return {"scenario": "unit", "size": "S", "repeats": 1,
                "report": make_report(**kwargs)}

    def test_summary_row_picks_busiest_lane(self):
        row = rb.summary_row(self.canonical(p50=0.004, p99=0.02))
        self.assertEqual(row["completed"], 6)
        self.assertAlmostEqual(row["wait_p50_ms"], 4.0)
        self.assertAlmostEqual(row["wait_p99_ms"], 20.0)

    def test_summary_row_tolerates_missing_wait_stats(self):
        canonical = self.canonical()
        del canonical["report"]["lanes"]["normal"]["queue_wait_seconds"]
        row = rb.summary_row(canonical)
        self.assertIsNone(row["wait_p50_ms"])

    def test_leaderboard_lists_every_scenario(self):
        a = self.canonical()
        b = self.canonical()
        b["scenario"] = "zeta"
        board = rb.render_leaderboard([b, a])
        lines = board.splitlines()
        self.assertIn("scenario", lines[0])
        # Sorted by scenario name.
        self.assertTrue(lines[2].startswith("unit"))
        self.assertTrue(lines[3].startswith("zeta"))


class CompareTest(unittest.TestCase):
    def test_compare_rows_report_ratio(self):
        old = {"scenario": "unit", "size": "S",
               "report": make_report(rps=40.0)}
        new = {"scenario": "unit", "size": "S",
               "report": make_report(rps=50.0)}
        rows = {key: (o, n, ratio)
                for key, o, n, ratio in rb.compare_rows(old, new)}
        o, n, ratio = rows["throughput_rps"]
        self.assertEqual((o, n), (40.0, 50.0))
        self.assertAlmostEqual(ratio, 0.25)
        # Zero baseline: ratio is None, rendered as n/a.
        self.assertIsNone(rows["refused"][2])
        text = rb.render_compare("unit", rb.compare_rows(old, new))
        self.assertIn("throughput_rps", text)
        self.assertIn("+25.0%", text)


def make_micro_dump(gain_ns=120.0, fill_ns=90.0, items=3.0e10,
                    time_unit="ns"):
    """A minimal google-benchmark JSON dump with one aggregate entry."""
    return {
        "context": {"executable": "micro_attendance"},
        "benchmarks": [
            {"name": "BM_KernelLuceGain", "run_type": "iteration",
             "iterations": 1000, "real_time": gain_ns, "cpu_time": gain_ns,
             "time_unit": time_unit, "items_per_second": items},
            {"name": "BM_KernelFillSigmaHash", "run_type": "iteration",
             "iterations": 1000, "real_time": fill_ns, "cpu_time": fill_ns,
             "time_unit": time_unit},
            {"name": "BM_KernelLuceGain_mean", "run_type": "aggregate",
             "iterations": 3, "real_time": gain_ns, "cpu_time": gain_ns,
             "time_unit": time_unit},
        ],
    }


class MicroReportTest(unittest.TestCase):
    def test_normalizes_and_drops_aggregates(self):
        report = rb.micro_report(make_micro_dump())
        self.assertEqual(set(report["benchmarks"]),
                         {"BM_KernelLuceGain", "BM_KernelFillSigmaHash"})
        gain = report["benchmarks"]["BM_KernelLuceGain"]
        self.assertEqual(gain["real_time_ns"], 120.0)
        self.assertEqual(gain["items_per_second"], 3.0e10)
        # items_per_second is optional per benchmark.
        fill = report["benchmarks"]["BM_KernelFillSigmaHash"]
        self.assertIsNone(fill["items_per_second"])

    def test_time_unit_converted_to_ns(self):
        report = rb.micro_report(make_micro_dump(gain_ns=2.5,
                                                 time_unit="us"))
        gain = report["benchmarks"]["BM_KernelLuceGain"]
        self.assertEqual(gain["real_time_ns"], 2500.0)

    def test_empty_dump_raises(self):
        with self.assertRaises(ValueError):
            rb.micro_report({"benchmarks": []})

    def test_reports_fold_through_median_tree(self):
        reports = [rb.micro_report(make_micro_dump(gain_ns=ns))
                   for ns in (100.0, 140.0, 120.0)]
        merged = rb.median_tree(reports)
        self.assertEqual(
            merged["benchmarks"]["BM_KernelLuceGain"]["real_time_ns"],
            120.0)


class MicroLeaderboardAndCompareTest(unittest.TestCase):
    def canonical(self, gain_ns):
        return {"scenario": rb.MICRO_SCENARIO, "size": "micro",
                "repeats": 1,
                "report": rb.micro_report(make_micro_dump(gain_ns=gain_ns))}

    def test_leaderboard_lists_every_benchmark(self):
        board = rb.render_micro_leaderboard(self.canonical(120.0))
        self.assertIn("BM_KernelLuceGain", board)
        self.assertIn("BM_KernelFillSigmaHash", board)
        self.assertIn("120.0", board)

    def test_compare_rows_report_real_time_ratio(self):
        rows = {key: (o, n, ratio) for key, o, n, ratio
                in rb.micro_compare_rows(self.canonical(100.0),
                                         self.canonical(80.0))}
        o, n, ratio = rows["BM_KernelLuceGain ns"]
        self.assertEqual((o, n), (100.0, 80.0))
        self.assertAlmostEqual(ratio, -0.2)
        text = rb.render_compare(rb.MICRO_SCENARIO,
                                 rb.micro_compare_rows(self.canonical(100.0),
                                                       self.canonical(80.0)))
        self.assertIn("-20.0%", text)

    def test_compare_skips_benchmarks_missing_on_one_side(self):
        old = self.canonical(100.0)
        del old["report"]["benchmarks"]["BM_KernelFillSigmaHash"]
        keys = {key for key, _, _, _
                in rb.micro_compare_rows(old, self.canonical(90.0))}
        self.assertEqual(keys, {"BM_KernelLuceGain ns"})


class TraceDiscoveryTest(unittest.TestCase):
    def test_list_traces_sorted_json_only(self):
        with tempfile.TemporaryDirectory() as tmp:
            for name in ("b.json", "a.json", "notes.txt"):
                with open(os.path.join(tmp, name), "w",
                          encoding="utf-8") as fh:
                    fh.write("{}")
            traces = rb.list_traces(tmp)
        self.assertEqual([scenario for scenario, _ in traces], ["a", "b"])

    def test_repo_traces_cover_acceptance_scenarios(self):
        scenarios = {scenario for scenario, _ in rb.list_traces()}
        # The acceptance floor: >= 3 scenarios including a bursty-arrival
        # and a deadline-heavy one.
        self.assertGreaterEqual(len(scenarios), 3)
        self.assertIn("bursty_arrivals", scenarios)
        self.assertIn("deadline_heavy", scenarios)


if __name__ == "__main__":
    unittest.main()
