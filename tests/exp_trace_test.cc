/// exp::TraceSpec + exp::LoadGenerator: descriptor validation (typed
/// errors naming the offending key), deterministic arrival generation,
/// the in-repo trace files staying loadable, and an end-to-end smoke
/// replay whose report is byte-stable modulo timing fields.

#include "exp/trace.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/load_generator.h"

namespace ses::exp {
namespace {

std::string ValidDescriptor() {
  return R"({
    "name": "unit",
    "seed": 5,
    "requests": 40,
    "arrival": {
      "rate_hz": 20.0,
      "bursts": [{"at_fraction": 0.5, "duration_fraction": 0.2,
                  "multiplier": 3.0}]
    },
    "priority_mix": {"high": 1, "normal": 2, "batch": 1},
    "solver_mix": {"grd": 0.7, "rand": 0.3},
    "deadline": {"fraction": 0.5, "min_seconds": 0.1, "max_seconds": 0.4},
    "instance": {"k": 10, "users": 300, "events": 200, "groups": 30,
                 "tags": 40, "seed": 9},
    "scheduler": {"threads": 2, "max_queued": 64,
                  "sweep_period_seconds": 0.05}
  })";
}

TEST(TraceSpecTest, ParsesFullDescriptor) {
  auto spec = TraceSpec::FromJsonText(ValidDescriptor());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->name, "unit");
  EXPECT_EQ(spec->seed, 5u);
  EXPECT_EQ(spec->num_requests, 40);
  EXPECT_DOUBLE_EQ(spec->rate_hz, 20.0);
  ASSERT_EQ(spec->bursts.size(), 1u);
  EXPECT_DOUBLE_EQ(spec->bursts[0].multiplier, 3.0);
  EXPECT_DOUBLE_EQ(spec->priority_weights[0], 1.0);  // high
  EXPECT_DOUBLE_EQ(spec->priority_weights[1], 2.0);  // normal
  EXPECT_DOUBLE_EQ(spec->priority_weights[2], 1.0);  // batch
  ASSERT_EQ(spec->solver_mix.size(), 2u);
  EXPECT_DOUBLE_EQ(spec->solver_mix.at("grd"), 0.7);
  EXPECT_DOUBLE_EQ(spec->deadline.fraction, 0.5);
  EXPECT_EQ(spec->workload.k, 10);
  EXPECT_EQ(spec->workload.seed, 9u);
  EXPECT_EQ(spec->dataset.num_users, 300u);
  EXPECT_EQ(spec->scheduler_threads, 2);
  EXPECT_EQ(spec->max_queued_requests, 64);
}

TEST(TraceSpecTest, DefaultsWithoutOptionalSections) {
  auto spec = TraceSpec::FromJsonText(R"({
    "name": "bare",
    "seed": 1,
    "requests": 5,
    "arrival": {"rate_hz": 10},
    "solver_mix": {"grd": 1}
  })");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  // No priority_mix: everything lands on the normal lane.
  EXPECT_DOUBLE_EQ(spec->priority_weights[0], 0.0);
  EXPECT_DOUBLE_EQ(spec->priority_weights[1], 1.0);
  EXPECT_DOUBLE_EQ(spec->priority_weights[2], 0.0);
  EXPECT_DOUBLE_EQ(spec->deadline.fraction, 0.0);
  // The trace seed flows into the default instance.
  EXPECT_EQ(spec->workload.seed, 1u);
}

// The malformed-descriptor contract: kInvalidArgument, message naming
// the offending key. A descriptor typo must die loudly, never run the
// default scenario.
TEST(TraceSpecTest, UnknownSolverNamesTheKey) {
  std::string text = ValidDescriptor();
  const size_t at = text.find("\"grd\"");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 5, "\"warp\"");
  auto spec = TraceSpec::FromJsonText(text);
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(spec.status().message().find("solver_mix.warp"),
            std::string::npos)
      << spec.status().ToString();
}

TEST(TraceSpecTest, NegativeRateNamesTheKey) {
  std::string text = ValidDescriptor();
  const size_t at = text.find("20.0");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 4, "-3.5");
  auto spec = TraceSpec::FromJsonText(text);
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(spec.status().message().find("arrival.rate_hz"),
            std::string::npos)
      << spec.status().ToString();
}

TEST(TraceSpecTest, MissingSeedNamesTheKey) {
  auto spec = TraceSpec::FromJsonText(R"({
    "name": "noseed",
    "requests": 5,
    "arrival": {"rate_hz": 10},
    "solver_mix": {"grd": 1}
  })");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(spec.status().message().find("'seed'"), std::string::npos)
      << spec.status().ToString();
}

TEST(TraceSpecTest, UnknownKeysAreRejectedEverywhere) {
  auto top = TraceSpec::FromJsonText(R"({
    "name": "x", "seed": 1, "requests": 5,
    "arrival": {"rate_hz": 10}, "solver_mix": {"grd": 1},
    "ratezz": 3
  })");
  ASSERT_FALSE(top.ok());
  EXPECT_EQ(top.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(top.status().message().find("ratezz"), std::string::npos);

  auto nested = TraceSpec::FromJsonText(R"({
    "name": "x", "seed": 1, "requests": 5,
    "arrival": {"rate_hz": 10, "burstz": []}, "solver_mix": {"grd": 1}
  })");
  ASSERT_FALSE(nested.ok());
  EXPECT_NE(nested.status().message().find("arrival.burstz"),
            std::string::npos)
      << nested.status().ToString();
}

TEST(TraceSpecTest, SyntaxErrorsStayParseErrors) {
  auto spec = TraceSpec::FromJsonText("{\"name\": ");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), util::StatusCode::kParseError);
}

TEST(TraceSpecTest, ScaleRequestsFloorsAtOne) {
  auto spec = TraceSpec::FromJsonText(ValidDescriptor());
  ASSERT_TRUE(spec.ok());
  spec->ScaleRequests(0.25);
  EXPECT_EQ(spec->num_requests, 10);
  spec->ScaleRequests(0.001);
  EXPECT_EQ(spec->num_requests, 1);
}

TEST(TraceSpecTest, InRepoTraceFilesStayLoadable) {
  const std::string dir = std::string(SES_SOURCE_DIR) + "/bench/traces/";
  for (const char* file :
       {"steady_mix.json", "bursty_arrivals.json", "deadline_heavy.json",
        "smoke.json"}) {
    auto spec = TraceSpec::Load(dir + file);
    EXPECT_TRUE(spec.ok()) << file << ": " << spec.status().ToString();
  }
  // The acceptance scenarios: one bursty-arrival and one deadline-heavy.
  auto bursty = TraceSpec::Load(dir + "bursty_arrivals.json");
  ASSERT_TRUE(bursty.ok());
  EXPECT_FALSE(bursty->bursts.empty());
  auto deadline = TraceSpec::Load(dir + "deadline_heavy.json");
  ASSERT_TRUE(deadline.ok());
  EXPECT_GT(deadline->deadline.fraction, 0.5);
}

TEST(ArrivalOffsetsTest, DeterministicNonDecreasingAndComplete) {
  auto spec = TraceSpec::FromJsonText(ValidDescriptor());
  ASSERT_TRUE(spec.ok());
  util::Rng rng_a(spec->seed);
  util::Rng rng_b(spec->seed);
  const std::vector<double> a = ArrivalOffsets(*spec, rng_a);
  const std::vector<double> b = ArrivalOffsets(*spec, rng_b);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 40u);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  EXPECT_GT(a.front(), 0.0);
}

TEST(ArrivalOffsetsTest, BurstWindowCompressesArrivals) {
  auto spec = TraceSpec::FromJsonText(R"({
    "name": "b", "seed": 3, "requests": 4000,
    "arrival": {"rate_hz": 100,
                "bursts": [{"at_fraction": 0.0, "duration_fraction": 0.5,
                            "multiplier": 8.0}]},
    "solver_mix": {"grd": 1}
  })");
  ASSERT_TRUE(spec.ok());
  util::Rng rng(spec->seed);
  const std::vector<double> offsets = ArrivalOffsets(*spec, rng);
  // Nominal duration is 40s; the burst covers [0, 20) at 8x rate. Most
  // arrivals must land inside the burst window: 20s * 800/s = 16000
  // capacity vs 4000 requests, so the window should swallow nearly all
  // of them.
  const size_t in_window = static_cast<size_t>(
      std::count_if(offsets.begin(), offsets.end(),
                    [](double t) { return t < 20.0; }));
  EXPECT_GT(in_window, offsets.size() * 9 / 10);
}

// End-to-end: replay the in-repo smoke trace twice and require the
// timing-stripped reports to be byte-identical — the determinism
// contract canonical BENCH_*.json files build on.
TEST(LoadGeneratorTest, SmokeTraceReportIsByteStableModuloTiming) {
  auto spec = TraceSpec::Load(std::string(SES_SOURCE_DIR) +
                              "/bench/traces/smoke.json");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  // Shrink further: unit tests should not spend the full smoke second.
  spec->ScaleRequests(0.5);

  LoadGenerator generator_a(*spec);
  auto report_a = generator_a.Run();
  ASSERT_TRUE(report_a.ok()) << report_a.status().ToString();
  LoadGenerator generator_b(*spec);
  auto report_b = generator_b.Run();
  ASSERT_TRUE(report_b.ok()) << report_b.status().ToString();

  // Drop-free by construction (no deadlines, unbounded queue): every
  // request completes and the two runs agree exactly.
  EXPECT_EQ(report_a->submitted, 6);
  EXPECT_EQ(report_a->completed, 6u);
  EXPECT_EQ(report_a->refused, 0u);
  EXPECT_EQ(report_a->deadline_expired, 0u);
  EXPECT_EQ(report_a->failed, 0u);
  EXPECT_GT(report_a->total_utility, 0.0);

  const std::string stable_a = RenderBenchReportJson(*report_a, false);
  const std::string stable_b = RenderBenchReportJson(*report_b, false);
  EXPECT_EQ(stable_a, stable_b);
  // Timing fields exist only in the full rendering.
  EXPECT_EQ(stable_a.find("queue_wait_seconds"), std::string::npos);
  EXPECT_EQ(stable_a.find("\"timing\""), std::string::npos);
  const std::string timed = RenderBenchReportJson(*report_a, true);
  EXPECT_NE(timed.find("queue_wait_seconds"), std::string::npos);
  EXPECT_NE(timed.find("throughput_rps"), std::string::npos);

  // Healthy-only lane accounting: every started request is a healthy
  // dequeue and the lanes sum to the trace.
  uint64_t started = 0;
  int64_t lane_submitted = 0;
  for (const BenchLaneReport& lane : report_a->lanes) {
    started += lane.started;
    lane_submitted += lane.submitted;
    EXPECT_EQ(lane.expired_in_queue, 0u);
  }
  EXPECT_EQ(started, 6u);
  EXPECT_EQ(lane_submitted, 6);
}

}  // namespace
}  // namespace ses::exp
