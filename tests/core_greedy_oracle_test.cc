/// Algorithm 1 conformance: GRD must pick, at every step, a valid
/// assignment whose Eq. 4 score (under the current schedule) is maximal
/// among all remaining valid assignments — verified against a slow
/// oracle that rescans the full pair space with the reference scorer.

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/objective.h"
#include "core/schedule.h"
#include "tests/test_util.h"

namespace ses::core {
namespace {

class GreedyOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GreedyOracleTest, EverySelectionIsAMaxScoreValidAssignment) {
  test::RandomInstanceConfig config;
  config.seed = GetParam();
  config.num_users = 25;
  config.num_events = 9;
  config.num_intervals = 4;
  const SesInstance instance = test::MakeRandomInstance(config);

  GreedySolver grd;
  SolverOptions options;
  options.k = 5;
  auto result = grd.Solve(instance, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignments.size(), 5u);

  // GRD reports assignments sorted by (interval, event), not in
  // selection order; recover the selection order by replaying greedy
  // decisions: at each step the chosen one must be the argmax among the
  // result's remaining assignments AND no unchosen valid pair may beat
  // it.
  Schedule schedule(instance);
  std::vector<Assignment> remaining = result->assignments;
  while (!remaining.empty()) {
    // Oracle: global max score over all valid assignments.
    double best_score = -1.0;
    for (EventIndex e = 0; e < instance.num_events(); ++e) {
      for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
        if (!schedule.CanAssign(e, t)) continue;
        best_score =
            std::max(best_score, AssignmentScore(instance, schedule, e, t));
      }
    }
    // One of the remaining chosen assignments must achieve it.
    size_t chosen = remaining.size();
    for (size_t i = 0; i < remaining.size(); ++i) {
      const Assignment& a = remaining[i];
      if (!schedule.CanAssign(a.event, a.interval)) continue;
      const double score =
          AssignmentScore(instance, schedule, a.event, a.interval);
      if (score >= best_score - 1e-7) {
        chosen = i;
        break;
      }
    }
    ASSERT_LT(chosen, remaining.size())
        << "no remaining greedy pick achieves the oracle max "
        << best_score;
    ASSERT_TRUE(
        schedule.Assign(remaining[chosen].event, remaining[chosen].interval)
            .ok());
    remaining.erase(remaining.begin() + static_cast<long>(chosen));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyOracleTest,
                         ::testing::Values(3, 14, 15, 92, 65, 35));

}  // namespace
}  // namespace ses::core
