#include <gtest/gtest.h>

#include "core/annealing.h"
#include "core/greedy.h"
#include "core/local_search.h"
#include "core/random_schedule.h"
#include "core/validate.h"
#include "tests/test_util.h"

namespace ses::core {
namespace {

class ImprovementTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SesInstance MakeInstance() const {
    test::RandomInstanceConfig config;
    config.seed = GetParam();
    config.num_users = 30;
    config.num_events = 10;
    config.num_intervals = 5;
    return test::MakeRandomInstance(config);
  }

  SolverOptions Options() const {
    SolverOptions options;
    options.k = 4;
    options.seed = GetParam();
    options.max_iterations = 3000;
    return options;
  }
};

TEST_P(ImprovementTest, LocalSearchReturnsFeasibleK) {
  const SesInstance instance = MakeInstance();
  LocalSearchSolver ls;
  auto result = ls.Solve(instance, Options());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ValidateAssignments(instance, result->assignments, 4).ok());
}

TEST_P(ImprovementTest, LocalSearchImprovesOnRandomSeedSchedule) {
  const SesInstance instance = MakeInstance();
  const SolverOptions options = Options();

  RandomSolver rand;
  auto base = rand.Solve(instance, options);
  ASSERT_TRUE(base.ok());

  LocalSearchSolver ls;
  auto improved = ls.Solve(instance, options);
  ASSERT_TRUE(improved.ok());
  // LS starts from the identical RAND schedule (same seed) and only
  // accepts improving moves.
  EXPECT_GE(improved->utility, base->utility - 1e-9);
}

TEST_P(ImprovementTest, LocalSearchOnGreedyNeverRegresses) {
  const SesInstance instance = MakeInstance();
  SolverOptions options = Options();
  options.base_solver = BaseSolver::kGreedy;

  GreedySolver grd;
  auto base = grd.Solve(instance, options);
  ASSERT_TRUE(base.ok());

  LocalSearchSolver ls;
  auto improved = ls.Solve(instance, options);
  ASSERT_TRUE(improved.ok());
  EXPECT_GE(improved->utility, base->utility - 1e-9);
}

TEST_P(ImprovementTest, AnnealingReturnsFeasibleK) {
  const SesInstance instance = MakeInstance();
  SolverOptions options = Options();
  options.initial_temperature = 0.5;
  SimulatedAnnealingSolver anneal;
  auto result = anneal.Solve(instance, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ValidateAssignments(instance, result->assignments, 4).ok());
}

TEST_P(ImprovementTest, AnnealingTracksBestNotLast) {
  const SesInstance instance = MakeInstance();
  SolverOptions options = Options();
  options.initial_temperature = 0.8;

  RandomSolver rand;
  auto base = rand.Solve(instance, options);
  ASSERT_TRUE(base.ok());

  SimulatedAnnealingSolver anneal;
  auto result = anneal.Solve(instance, options);
  ASSERT_TRUE(result.ok());
  // The reported schedule is the best visited, which includes the seed.
  EXPECT_GE(result->utility, base->utility - 1e-9);
}

TEST_P(ImprovementTest, MoveCountersPopulated) {
  const SesInstance instance = MakeInstance();
  LocalSearchSolver ls;
  auto result = ls.Solve(instance, Options());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.moves_tried, 0u);
  EXPECT_GE(result->stats.moves_tried, result->stats.moves_accepted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImprovementTest,
                         ::testing::Values(3, 6, 9, 12, 15));

TEST(AnnealingOptionsTest, RejectsBadTemperatureAndCooling) {
  test::RandomInstanceConfig config;
  const SesInstance instance = test::MakeRandomInstance(config);
  SimulatedAnnealingSolver anneal;
  SolverOptions options;
  options.k = 2;
  options.initial_temperature = 0.0;
  EXPECT_FALSE(anneal.Solve(instance, options).ok());
  options.initial_temperature = 1.0;
  options.cooling = 1.5;
  EXPECT_FALSE(anneal.Solve(instance, options).ok());
}

}  // namespace
}  // namespace ses::core
