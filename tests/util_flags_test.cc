#include "util/flags.h"

#include <gtest/gtest.h>

namespace ses::util {
namespace {

struct Bound {
  int64_t k = 100;
  double rate = 0.5;
  std::string name = "default";
  bool verbose = false;
};

FlagSet MakeFlags(Bound& bound) {
  FlagSet flags("tool");
  flags.AddInt("k", &bound.k, "count");
  flags.AddDouble("rate", &bound.rate, "a rate");
  flags.AddString("name", &bound.name, "a name");
  flags.AddBool("verbose", &bound.verbose, "chatty");
  return flags;
}

TEST(FlagsTest, EqualsSyntax) {
  Bound bound;
  FlagSet flags = MakeFlags(bound);
  const char* argv[] = {"tool", "--k=7", "--rate=0.25", "--name=abc",
                        "--verbose=true"};
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_EQ(bound.k, 7);
  EXPECT_DOUBLE_EQ(bound.rate, 0.25);
  EXPECT_EQ(bound.name, "abc");
  EXPECT_TRUE(bound.verbose);
}

TEST(FlagsTest, SpaceSyntax) {
  Bound bound;
  FlagSet flags = MakeFlags(bound);
  const char* argv[] = {"tool", "--k", "9", "--name", "xyz"};
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_EQ(bound.k, 9);
  EXPECT_EQ(bound.name, "xyz");
}

TEST(FlagsTest, BareBoolSetsTrue) {
  Bound bound;
  FlagSet flags = MakeFlags(bound);
  const char* argv[] = {"tool", "--verbose"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(bound.verbose);
}

TEST(FlagsTest, DefaultsPreservedWhenAbsent) {
  Bound bound;
  FlagSet flags = MakeFlags(bound);
  const char* argv[] = {"tool"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(bound.k, 100);
  EXPECT_DOUBLE_EQ(bound.rate, 0.5);
  EXPECT_EQ(bound.name, "default");
  EXPECT_FALSE(bound.verbose);
}

TEST(FlagsTest, PositionalCollected) {
  Bound bound;
  FlagSet flags = MakeFlags(bound);
  const char* argv[] = {"tool", "pos1", "--k=2", "pos2"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(FlagsTest, UnknownFlagFails) {
  Bound bound;
  FlagSet flags = MakeFlags(bound);
  const char* argv[] = {"tool", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, MissingValueFails) {
  Bound bound;
  FlagSet flags = MakeFlags(bound);
  const char* argv[] = {"tool", "--k"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, BadTypeFails) {
  Bound bound;
  FlagSet flags = MakeFlags(bound);
  const char* argv[] = {"tool", "--k=notanint"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsDeathTest, DuplicateRegistrationAborts) {
  Bound bound;
  FlagSet flags = MakeFlags(bound);
  int64_t other = 0;
  EXPECT_DEATH(flags.AddInt("k", &other, "shadows the first k"),
               "duplicate flag --k");
}

TEST(FlagsDeathTest, DuplicateAcrossTypesAborts) {
  Bound bound;
  FlagSet flags = MakeFlags(bound);
  std::string other;
  EXPECT_DEATH(flags.AddString("verbose", &other, "was a bool"),
               "duplicate flag --verbose");
}

TEST(FlagsTest, UsageMentionsFlagsAndDefaults) {
  Bound bound;
  FlagSet flags = MakeFlags(bound);
  const std::string usage = flags.Usage();
  EXPECT_NE(usage.find("--k"), std::string::npos);
  EXPECT_NE(usage.find("100"), std::string::npos);
  EXPECT_NE(usage.find("chatty"), std::string::npos);
}

}  // namespace
}  // namespace ses::util
