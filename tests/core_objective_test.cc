#include "core/objective.h"

#include <memory>

#include <gtest/gtest.h>

namespace ses::core {
namespace {

/// The worked example used throughout:
///   users u0, u1; intervals t0, t1; sigma = 1;
///   e0: mu(u0)=0.8, mu(u1)=0.4; e1: mu(u0)=0.6;
///   competing c0 at t0 with mu(u0)=0.5.
SesInstance MakeWorkedExample(double sigma = 1.0) {
  InstanceBuilder builder;
  builder.SetNumUsers(2).SetNumIntervals(2).SetTheta(100.0).SetSigma(
      std::make_shared<ConstSigma>(sigma));
  builder.AddEvent(/*location=*/0, /*xi=*/1.0, {{0, 0.8f}, {1, 0.4f}});
  builder.AddEvent(/*location=*/1, /*xi=*/1.0, {{0, 0.6f}});
  builder.AddCompetingEvent(0, {{0, 0.5f}});
  auto instance = builder.Build();
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

constexpr double kTol = 2e-7;

TEST(ObjectiveTest, SingleEventWithCompetition) {
  const SesInstance instance = MakeWorkedExample();
  Schedule schedule(instance);
  ASSERT_TRUE(schedule.Assign(0, 0).ok());

  // u0: denominator = 0.5 (competing) + 0.8 (e0) = 1.3.
  EXPECT_NEAR(AttendanceProbability(instance, schedule, 0, 0), 0.8 / 1.3,
              kTol);
  // u1: no competing interest; denominator = 0.4 -> probability 1.
  EXPECT_NEAR(AttendanceProbability(instance, schedule, 1, 0), 1.0, kTol);
  EXPECT_NEAR(ExpectedAttendance(instance, schedule, 0), 0.8 / 1.3 + 1.0,
              kTol);
  EXPECT_NEAR(TotalUtility(instance, schedule), 0.8 / 1.3 + 1.0, kTol);
}

TEST(ObjectiveTest, TwoEventsShareOneInterval) {
  const SesInstance instance = MakeWorkedExample();
  Schedule schedule(instance);
  ASSERT_TRUE(schedule.Assign(0, 0).ok());
  ASSERT_TRUE(schedule.Assign(1, 0).ok());

  // u0's denominator at t0: 0.5 + 0.8 + 0.6 = 1.9.
  EXPECT_NEAR(AttendanceProbability(instance, schedule, 0, 0), 0.8 / 1.9,
              kTol);
  EXPECT_NEAR(AttendanceProbability(instance, schedule, 0, 1), 0.6 / 1.9,
              kTol);
  EXPECT_NEAR(ExpectedAttendance(instance, schedule, 0), 0.8 / 1.9 + 1.0,
              kTol);
  EXPECT_NEAR(ExpectedAttendance(instance, schedule, 1), 0.6 / 1.9, kTol);
  EXPECT_NEAR(TotalUtility(instance, schedule),
              0.8 / 1.9 + 1.0 + 0.6 / 1.9, kTol);
}

TEST(ObjectiveTest, NoCompetitionMeansProbabilityOne) {
  const SesInstance instance = MakeWorkedExample();
  Schedule schedule(instance);
  // t1 has no competing events; e1 alone there -> u0 attends surely.
  ASSERT_TRUE(schedule.Assign(1, 1).ok());
  EXPECT_NEAR(AttendanceProbability(instance, schedule, 0, 1), 1.0, kTol);
  EXPECT_NEAR(TotalUtility(instance, schedule), 1.0, kTol);
}

TEST(ObjectiveTest, SigmaScalesEverything) {
  const SesInstance half = MakeWorkedExample(0.5);
  Schedule schedule(half);
  ASSERT_TRUE(schedule.Assign(0, 0).ok());
  EXPECT_NEAR(TotalUtility(half, schedule), 0.5 * (0.8 / 1.3 + 1.0), kTol);
}

TEST(ObjectiveTest, UninterestedUserHasZeroProbability) {
  const SesInstance instance = MakeWorkedExample();
  Schedule schedule(instance);
  ASSERT_TRUE(schedule.Assign(1, 0).ok());
  // u1 has no interest in e1.
  EXPECT_DOUBLE_EQ(AttendanceProbability(instance, schedule, 1, 1), 0.0);
}

TEST(ObjectiveTest, EmptyScheduleHasZeroUtility) {
  const SesInstance instance = MakeWorkedExample();
  Schedule schedule(instance);
  EXPECT_DOUBLE_EQ(TotalUtility(instance, schedule), 0.0);
}

TEST(AssignmentScoreTest, FirstAssignmentScoreEqualsItsUtility) {
  const SesInstance instance = MakeWorkedExample();
  Schedule empty(instance);
  const double score = AssignmentScore(instance, empty, 0, 0);
  Schedule with(instance);
  ASSERT_TRUE(with.Assign(0, 0).ok());
  EXPECT_NEAR(score, TotalUtility(instance, with), kTol);
}

TEST(AssignmentScoreTest, SecondAssignmentScoreIsUtilityDelta) {
  const SesInstance instance = MakeWorkedExample();
  Schedule schedule(instance);
  ASSERT_TRUE(schedule.Assign(0, 0).ok());
  const double before = TotalUtility(instance, schedule);
  const double score = AssignmentScore(instance, schedule, 1, 0);

  Schedule with = schedule;
  ASSERT_TRUE(with.Assign(1, 0).ok());
  EXPECT_NEAR(score, TotalUtility(instance, with) - before, kTol);
  // Hand value: (0.8/1.9 + 1 + 0.6/1.9) - (0.8/1.3 + 1).
  EXPECT_NEAR(score, (1.4 / 1.9) - (0.8 / 1.3), kTol);
}

TEST(AssignmentScoreTest, EmptyIntervalBeatsCrowdedInterval) {
  const SesInstance instance = MakeWorkedExample();
  Schedule schedule(instance);
  ASSERT_TRUE(schedule.Assign(0, 0).ok());
  // Placing e1 at the empty, competition-free t1 dominates t0.
  EXPECT_GT(AssignmentScore(instance, schedule, 1, 1),
            AssignmentScore(instance, schedule, 1, 0));
}

}  // namespace
}  // namespace ses::core
