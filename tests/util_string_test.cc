#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ses::util {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, RemovesWhitespace) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("inner space kept"), "inner space kept");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(ParseInt64Test, Valid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("  13 ").value(), 13);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(ParseInt64Test, Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("abc").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(ParseDoubleTest, Valid) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble(" 7 ").value(), 7.0);
}

TEST(ParseDoubleTest, Invalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(ParseBoolTest, AcceptedForms) {
  EXPECT_TRUE(ParseBool("true").value());
  EXPECT_TRUE(ParseBool("TRUE").value());
  EXPECT_TRUE(ParseBool("1").value());
  EXPECT_TRUE(ParseBool("Yes").value());
  EXPECT_FALSE(ParseBool("false").value());
  EXPECT_FALSE(ParseBool("0").value());
  EXPECT_FALSE(ParseBool("no").value());
  EXPECT_FALSE(ParseBool("maybe").ok());
}

TEST(WithThousandsSepTest, Basic) {
  EXPECT_EQ(WithThousandsSep(0), "0");
  EXPECT_EQ(WithThousandsSep(999), "999");
  EXPECT_EQ(WithThousandsSep(1000), "1,000");
  EXPECT_EQ(WithThousandsSep(1234567), "1,234,567");
  EXPECT_EQ(WithThousandsSep(-42444), "-42,444");
}

}  // namespace
}  // namespace ses::util
