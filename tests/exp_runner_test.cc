#include "exp/runner.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "exp/figures.h"
#include "tests/test_util.h"
#include "util/csv.h"

namespace ses::exp {
namespace {

TEST(RunnerTest, ProducesOneRecordPerSolver) {
  test::RandomInstanceConfig config;
  config.num_events = 8;
  config.num_intervals = 4;
  const core::SesInstance instance = test::MakeRandomInstance(config);

  core::SolverOptions options;
  options.k = 3;
  auto records = RunSolvers(instance, {"grd", "top", "rand"}, options, 3);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].solver, "grd");
  EXPECT_EQ((*records)[1].solver, "top");
  EXPECT_EQ((*records)[2].solver, "rand");
  for (const RunRecord& record : *records) {
    EXPECT_EQ(record.x, 3);
    EXPECT_GE(record.utility, 0.0);
    EXPECT_GE(record.measurement.seconds, 0.0);
    EXPECT_EQ(record.assignments, 3u);
  }
}

TEST(RunnerTest, UnknownSolverFails) {
  test::RandomInstanceConfig config;
  const core::SesInstance instance = test::MakeRandomInstance(config);
  core::SolverOptions options;
  options.k = 2;
  EXPECT_FALSE(RunSolvers(instance, {"nope"}, options, 0).ok());
}

TEST(FiguresTest, RenderContainsSolversAndValues) {
  std::vector<RunRecord> records;
  records.push_back({"grd", 100, 123.45, 10, 100, {0.5}});
  records.push_back({"top", 100, 67.89, 5, 100, {0.1}});
  records.push_back({"grd", 200, 222.22, 20, 200, {1.5}});

  const std::string table = RenderFigure(
      "Fig 1a", "k", {"grd", "top"}, records, Metric::kUtility);
  EXPECT_NE(table.find("Fig 1a"), std::string::npos);
  EXPECT_NE(table.find("grd"), std::string::npos);
  EXPECT_NE(table.find("123.45"), std::string::npos);
  EXPECT_NE(table.find("100"), std::string::npos);
  EXPECT_NE(table.find("200"), std::string::npos);
  // Missing (200, top) cell renders as "-".
  EXPECT_NE(table.find("-"), std::string::npos);
}

TEST(FiguresTest, RenderSecondsMetric) {
  std::vector<RunRecord> records;
  records.push_back({"grd", 100, 123.45, 10, 100, {0.5}});
  const std::string table =
      RenderFigure("Fig 1b", "k", {"grd"}, records, Metric::kSeconds);
  EXPECT_NE(table.find("0.5000"), std::string::npos);
}

TEST(FiguresTest, CsvRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("ses_records_" + std::to_string(::getpid()) + ".csv");
  std::vector<RunRecord> records;
  records.push_back({"grd", 100, 1.5, 42, 100, {0.25}});
  ASSERT_TRUE(WriteRecordsCsv(path.string(), records).ok());

  util::CsvRow header;
  auto rows = util::ReadCsvFile(path.string(), true, &header);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(header[0], "x");
  EXPECT_EQ((*rows)[0][0], "100");
  EXPECT_EQ((*rows)[0][1], "grd");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ses::exp
