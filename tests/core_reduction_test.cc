#include "core/reduction.h"

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/greedy.h"
#include "core/objective.h"

namespace ses::core {
namespace {

MkpiInstance SmallMkpi() {
  MkpiInstance mkpi;
  mkpi.capacity = 10.0;
  mkpi.num_bins = 2;
  mkpi.weights = {8.0, 6.0, 4.0, 3.0};
  mkpi.profits = {0.5, 0.4, 0.3, 0.2};  // already in (0,1)
  return mkpi;
}

TEST(ReductionTest, BuildsTheRestrictedInstance) {
  const MkpiInstance mkpi = SmallMkpi();
  ReductionParams params;
  auto instance = ReduceMkpiToSes(mkpi, params);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_EQ(instance->num_users(), 4u);       // one user per item
  EXPECT_EQ(instance->num_events(), 4u);      // one event per item
  EXPECT_EQ(instance->num_intervals(), 2u);   // one interval per bin
  EXPECT_EQ(instance->num_competing(), 2u);   // one per interval
  EXPECT_DOUBLE_EQ(instance->theta(), 10.0);
  // Each user likes exactly their own event.
  for (EventIndex e = 0; e < 4; ++e) {
    auto users = instance->EventUsers(e);
    ASSERT_EQ(users.size(), 1u);
    EXPECT_EQ(users[0], e);
    EXPECT_DOUBLE_EQ(instance->event(e).required_resources,
                     mkpi.weights[e]);
  }
  // All users share interest K in every competing event.
  for (CompetingIndex c = 0; c < 2; ++c) {
    auto users = instance->CompetingUsers(c);
    EXPECT_EQ(users.size(), 4u);
    for (float v : instance->CompetingValues(c)) {
      EXPECT_FLOAT_EQ(v, 0.2f);
    }
  }
}

TEST(ReductionTest, ScheduledItemContributesSigmaTimesProfit) {
  const MkpiInstance mkpi = SmallMkpi();
  ReductionParams params;
  params.sigma = 0.75;
  auto instance = ReduceMkpiToSes(mkpi, params);
  ASSERT_TRUE(instance.ok());

  Schedule schedule(*instance);
  ASSERT_TRUE(schedule.Assign(0, 0).ok());
  // rho = sigma * mu / (K + mu) with mu = pK/(1-p) gives sigma * p.
  EXPECT_NEAR(TotalUtility(*instance, schedule), 0.75 * 0.5, 1e-6);

  // A second item contributes additively (disjoint users). Item 2 does
  // not fit next to item 0 (8 + 4 > 10), so it goes to the other bin;
  // placement does not change the utility in the reduced instance.
  ASSERT_TRUE(schedule.Assign(2, 1).ok());
  EXPECT_NEAR(TotalUtility(*instance, schedule), 0.75 * (0.5 + 0.3), 1e-6);
}

TEST(ReductionTest, SesOptimumEqualsMkpiOptimumForEachK) {
  const MkpiInstance mkpi = SmallMkpi();
  ReductionParams params;
  auto instance = ReduceMkpiToSes(mkpi, params);
  ASSERT_TRUE(instance.ok());

  for (int k = 1; k <= 4; ++k) {
    auto mkpi_best = SolveMkpiExact(mkpi, k);
    SolverOptions options;
    options.k = k;
    ExactSolver exact;
    auto ses_best = exact.Solve(*instance, options);

    if (!mkpi_best.ok()) {
      EXPECT_FALSE(ses_best.ok()) << "k=" << k;
      continue;
    }
    ASSERT_TRUE(ses_best.ok()) << "k=" << k;
    EXPECT_NEAR(ses_best->utility,
                ExpectedSesUtility(params, mkpi_best->profit), 1e-6)
        << "k=" << k;
  }
}

TEST(ReductionTest, GreedySolvesTheSeparableCaseOptimally) {
  // With disjoint users the objective is additive across events, so GRD's
  // one-step-optimal choices are globally optimal here.
  const MkpiInstance mkpi = SmallMkpi();
  ReductionParams params;
  auto instance = ReduceMkpiToSes(mkpi, params);
  ASSERT_TRUE(instance.ok());

  SolverOptions options;
  options.k = 2;
  GreedySolver grd;
  ExactSolver exact;
  auto greedy = grd.Solve(*instance, options);
  auto optimal = exact.Solve(*instance, options);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(optimal.ok());
  EXPECT_NEAR(greedy->utility, optimal->utility, 1e-6);
}

TEST(ReductionTest, NormalizeBringsProfitsBelowOne) {
  MkpiInstance mkpi;
  mkpi.capacity = 5.0;
  mkpi.num_bins = 1;
  mkpi.weights = {1.0, 2.0};
  mkpi.profits = {10.0, 30.0};
  const MkpiInstance normalized = NormalizeMkpiProfits(mkpi, 1.25);
  EXPECT_NEAR(normalized.profits[1], 0.8, 1e-12);
  EXPECT_NEAR(normalized.profits[0], 0.8 / 3.0, 1e-12);
  for (double p : normalized.profits) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(ReductionTest, RejectsUnnormalizedProfits) {
  MkpiInstance mkpi;
  mkpi.capacity = 5.0;
  mkpi.num_bins = 1;
  mkpi.weights = {1.0};
  mkpi.profits = {2.0};  // >= 1
  ReductionParams params;
  EXPECT_FALSE(ReduceMkpiToSes(mkpi, params).ok());
}

TEST(ReductionTest, RejectsInterestOverflow) {
  MkpiInstance mkpi;
  mkpi.capacity = 5.0;
  mkpi.num_bins = 1;
  mkpi.weights = {1.0};
  mkpi.profits = {0.99};  // mu = 0.99*K/0.01 = 99K > 1 for K=0.2
  ReductionParams params;
  EXPECT_FALSE(ReduceMkpiToSes(mkpi, params).ok());
}

TEST(ReductionTest, EndToEndWithNormalization) {
  MkpiInstance raw;
  raw.capacity = 12.0;
  raw.num_bins = 2;
  raw.weights = {7.0, 5.0, 5.0, 4.0, 3.0};
  raw.profits = {9.0, 7.0, 6.0, 5.0, 3.0};
  const MkpiInstance normalized = NormalizeMkpiProfits(raw, 2.0);

  ReductionParams params;
  params.competing_interest = 0.15;
  auto instance = ReduceMkpiToSes(normalized, params);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  auto mkpi_best = SolveMkpiExact(normalized, 3);
  ASSERT_TRUE(mkpi_best.ok());
  SolverOptions options;
  options.k = 3;
  ExactSolver exact;
  auto ses_best = exact.Solve(*instance, options);
  ASSERT_TRUE(ses_best.ok());
  EXPECT_NEAR(ses_best->utility,
              ExpectedSesUtility(params, mkpi_best->profit), 1e-6);
}

}  // namespace
}  // namespace ses::core
