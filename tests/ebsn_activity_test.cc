#include "ebsn/activity.h"

#include <gtest/gtest.h>

#include "ebsn/generator.h"

namespace ses::ebsn {
namespace {

EbsnDataset MakeCheckinDataset() {
  EbsnDataset ds;
  ds.tags().Intern("t");
  ds.groups().push_back({"g", {0}, {0, 1, 2}});
  ds.users().resize(3);
  ds.users()[0] = {{0}, {0}};
  ds.users()[1] = {{0}, {0}};
  ds.users()[2] = {{0}, {0}};
  ds.set_num_slots(3);
  // User 0: very active (4 check-ins); user 1: one; user 2: none.
  ds.checkins().push_back({0, 0});
  ds.checkins().push_back({0, 1});
  ds.checkins().push_back({0, 1});
  ds.checkins().push_back({0, 2});
  ds.checkins().push_back({1, 1});
  return ds;
}

TEST(ActivityModelTest, ProbabilitiesWithinUnitInterval) {
  const EbsnDataset ds = MakeCheckinDataset();
  ActivityModel model(ds);
  for (EbsnUserId u = 0; u < 3; ++u) {
    for (uint32_t s = 0; s < 3; ++s) {
      const double p = model.Probability(u, s);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(ActivityModelTest, MoreActiveUserHasHigherRate) {
  const EbsnDataset ds = MakeCheckinDataset();
  ActivityModel model(ds);
  EXPECT_GT(model.UserRate(0), model.UserRate(1));
  EXPECT_GT(model.UserRate(1), model.UserRate(2));
}

TEST(ActivityModelTest, SmoothingKeepsInactiveUsersPositive) {
  const EbsnDataset ds = MakeCheckinDataset();
  ActivityModel model(ds, /*smoothing=*/1.0);
  EXPECT_GT(model.UserRate(2), 0.0);
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_GT(model.Probability(2, s), 0.0);
  }
}

TEST(ActivityModelTest, MostActiveUserHasRateOne) {
  const EbsnDataset ds = MakeCheckinDataset();
  ActivityModel model(ds);
  EXPECT_DOUBLE_EQ(model.UserRate(0), 1.0);
}

TEST(ActivityModelTest, BusiestSlotHasWeightOne) {
  const EbsnDataset ds = MakeCheckinDataset();
  ActivityModel model(ds);
  // Slot 1 has 3 of the 5 check-ins.
  EXPECT_DOUBLE_EQ(model.SlotWeight(1), 1.0);
  EXPECT_LT(model.SlotWeight(0), 1.0);
  EXPECT_GT(model.SlotWeight(0), model.SlotWeight(2) - 1e-12);
}

TEST(ActivityModelTest, NoCheckinsDegradesGracefully) {
  EbsnDataset ds = MakeCheckinDataset();
  ds.checkins().clear();
  ActivityModel model(ds);
  for (EbsnUserId u = 0; u < 3; ++u) {
    EXPECT_DOUBLE_EQ(model.UserRate(u), 1.0);  // all equal after smoothing
  }
}

TEST(ActivityModelTest, WorksOnSyntheticData) {
  SyntheticMeetupConfig config;
  config.num_users = 400;
  config.num_events = 50;
  config.num_groups = 20;
  config.num_tags = 30;
  config.num_slots = 12;
  const EbsnDataset ds = GenerateSyntheticMeetup(config);
  ActivityModel model(ds);
  EXPECT_EQ(model.num_slots(), 12u);
  double mean = 0.0;
  for (EbsnUserId u = 0; u < 400; ++u) mean += model.UserRate(u);
  mean /= 400;
  EXPECT_GT(mean, 0.0);
  EXPECT_LT(mean, 1.0);
}

}  // namespace
}  // namespace ses::ebsn
