#include "core/instance.h"

#include <memory>

#include <gtest/gtest.h>

namespace ses::core {
namespace {

InstanceBuilder ValidBuilder() {
  InstanceBuilder builder;
  builder.SetNumUsers(4).SetNumIntervals(2).SetTheta(10.0).SetSigma(
      std::make_shared<ConstSigma>(0.5));
  return builder;
}

TEST(InstanceBuilderTest, MinimalInstanceBuilds) {
  auto instance = ValidBuilder().Build();
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  EXPECT_EQ(instance->num_users(), 4u);
  EXPECT_EQ(instance->num_intervals(), 2u);
  EXPECT_EQ(instance->num_events(), 0u);
  EXPECT_EQ(instance->num_competing(), 0u);
  EXPECT_DOUBLE_EQ(instance->theta(), 10.0);
}

TEST(InstanceBuilderTest, RejectsZeroUsers) {
  InstanceBuilder builder;
  builder.SetNumIntervals(2).SetTheta(1.0).SetSigma(
      std::make_shared<ConstSigma>(0.5));
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceBuilderTest, RejectsZeroIntervals) {
  InstanceBuilder builder;
  builder.SetNumUsers(2).SetTheta(1.0).SetSigma(
      std::make_shared<ConstSigma>(0.5));
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceBuilderTest, RejectsMissingSigma) {
  InstanceBuilder builder;
  builder.SetNumUsers(2).SetNumIntervals(1).SetTheta(1.0);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceBuilderTest, RejectsNegativeTheta) {
  auto builder = ValidBuilder();
  builder.SetTheta(-1.0);
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceBuilderTest, RejectsOutOfRangeUserInInterest) {
  auto builder = ValidBuilder();
  builder.AddEvent(0, 1.0, {{9, 0.5f}});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceBuilderTest, RejectsZeroInterest) {
  auto builder = ValidBuilder();
  builder.AddEvent(0, 1.0, {{0, 0.0f}});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceBuilderTest, RejectsInterestAboveOne) {
  auto builder = ValidBuilder();
  builder.AddEvent(0, 1.0, {{0, 1.5f}});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceBuilderTest, RejectsUnsortedInterestRow) {
  auto builder = ValidBuilder();
  builder.AddEvent(0, 1.0, {{2, 0.5f}, {1, 0.5f}});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceBuilderTest, RejectsDuplicateUserInRow) {
  auto builder = ValidBuilder();
  builder.AddEvent(0, 1.0, {{1, 0.5f}, {1, 0.7f}});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceBuilderTest, RejectsNegativeResources) {
  auto builder = ValidBuilder();
  builder.AddEvent(0, -2.0, {});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceBuilderTest, RejectsCompetingWithBadInterval) {
  auto builder = ValidBuilder();
  builder.AddCompetingEvent(7, {{0, 0.5f}});
  EXPECT_FALSE(builder.Build().ok());
}

TEST(InstanceTest, EventAccessorsAndInterestLookup) {
  auto builder = ValidBuilder();
  const EventIndex e0 = builder.AddEvent(3, 2.5, {{0, 0.8f}, {2, 0.3f}});
  const EventIndex e1 = builder.AddEvent(1, 1.0, {});
  auto instance = builder.Build();
  ASSERT_TRUE(instance.ok());

  EXPECT_EQ(e0, 0u);
  EXPECT_EQ(e1, 1u);
  EXPECT_EQ(instance->event(e0).location, 3u);
  EXPECT_DOUBLE_EQ(instance->event(e0).required_resources, 2.5);

  auto users = instance->EventUsers(e0);
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0], 0u);
  EXPECT_EQ(users[1], 2u);
  EXPECT_FLOAT_EQ(instance->EventValues(e0)[0], 0.8f);

  EXPECT_FLOAT_EQ(instance->EventInterest(e0, 0), 0.8f);
  EXPECT_FLOAT_EQ(instance->EventInterest(e0, 1), 0.0f);
  EXPECT_FLOAT_EQ(instance->EventInterest(e0, 2), 0.3f);
  EXPECT_EQ(instance->EventUsers(e1).size(), 0u);
  EXPECT_EQ(instance->num_interest_entries(), 2u);
}

TEST(InstanceTest, CompetingEventsGroupedByInterval) {
  auto builder = ValidBuilder();
  builder.AddCompetingEvent(1, {{0, 0.4f}});
  builder.AddCompetingEvent(0, {{1, 0.6f}});
  builder.AddCompetingEvent(1, {{2, 0.2f}});
  auto instance = builder.Build();
  ASSERT_TRUE(instance.ok());

  EXPECT_EQ(instance->num_competing(), 3u);
  auto at0 = instance->CompetingAt(0);
  ASSERT_EQ(at0.size(), 1u);
  EXPECT_EQ(at0[0], 1u);
  auto at1 = instance->CompetingAt(1);
  ASSERT_EQ(at1.size(), 2u);
  EXPECT_EQ(at1[0], 0u);
  EXPECT_EQ(at1[1], 2u);
  EXPECT_FLOAT_EQ(instance->CompetingInterest(0, 0), 0.4f);
  EXPECT_FLOAT_EQ(instance->CompetingInterest(0, 3), 0.0f);
}

}  // namespace
}  // namespace ses::core
