#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace ses::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(1);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, hits.size(), [&hits](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForSmallRangeFewerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(0, 3, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, StressManyMoreTasksThanWorkers) {
  ThreadPool pool(3);
  constexpr int kTasks = 10000;
  std::atomic<int64_t> sum{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kTasks) * (kTasks - 1) / 2);

  // The pool must be reusable after a full drain.
  std::atomic<int> second_wave{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&second_wave] { second_wave.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(second_wave.load(), 100);
}

TEST(ThreadPoolTest, ParallelForManyMoreItemsThanWorkers) {
  ThreadPool pool(2);
  std::vector<int> hits(20000, 0);
  pool.ParallelFor(0, hits.size(), [&hits](size_t i) { hits[i] += 1; });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

// Regression: ParallelFor issued from inside a pool task used to wait on
// the pool-wide in-flight count — which includes the waiting task itself
// — and deadlocked. The per-call latch plus caller participation makes
// nested calls complete even when every worker is inside one.
TEST(ThreadPoolTest, ParallelForFromInsideAPoolTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int task = 0; task < 4; ++task) {
    pool.Submit([&pool, &total] {
      pool.ParallelFor(0, 100, [&total](size_t) { total.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(total.load(), 400);
}

TEST(ThreadPoolTest, DeeplyNestedParallelForCompletes) {
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  pool.Submit([&pool, &leaves] {
    pool.ParallelFor(0, 4, [&pool, &leaves](size_t) {
      pool.ParallelFor(0, 8, [&leaves](size_t) { leaves.fetch_add(1); });
    });
  });
  pool.Wait();
  EXPECT_EQ(leaves.load(), 32);
}

// ParallelFor must not wait on unrelated Submit() work: with the only
// worker parked on a gate, the caller runs every shard itself and
// returns while the unrelated task is still blocked.
TEST(ThreadPoolTest, ParallelForDoesNotWaitForUnrelatedTasks) {
  ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  pool.Submit([gate] { gate.wait(); });

  std::atomic<int> count{0};
  pool.ParallelFor(0, 8, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);

  release.set_value();
  pool.Wait();
}

// Shard math: sizes differ by at most one and the shards partition the
// range exactly (the old ceil-based split could leave a tiny trailing
// shard while early shards were oversized).
TEST(ThreadPoolTest, ParallelForShardsAreBalanced) {
  ThreadPool pool(3);
  for (size_t total : {4u, 7u, 10u, 11u, 97u}) {
    std::mutex mutex;
    std::vector<std::pair<size_t, size_t>> shards;
    pool.ParallelForShards(5, 5 + total, /*max_shards=*/0,
                           [&](size_t lo, size_t hi) {
                             std::lock_guard<std::mutex> lock(mutex);
                             shards.push_back({lo, hi});
                           });
    std::sort(shards.begin(), shards.end());
    size_t covered = 0;
    size_t min_size = total;
    size_t max_size = 0;
    size_t expect_lo = 5;
    for (const auto& [lo, hi] : shards) {
      EXPECT_EQ(lo, expect_lo) << "total=" << total;
      EXPECT_GT(hi, lo);
      covered += hi - lo;
      min_size = std::min(min_size, hi - lo);
      max_size = std::max(max_size, hi - lo);
      expect_lo = hi;
    }
    EXPECT_EQ(covered, total);
    EXPECT_LE(max_size - min_size, 1u) << "total=" << total;
    EXPECT_LE(shards.size(), pool.num_threads() + 1);
  }
}

TEST(ThreadPoolTest, ParallelForShardsHonorsMaxShards) {
  ThreadPool pool(4);
  std::atomic<size_t> shard_count{0};
  std::vector<int> hits(100, 0);
  pool.ParallelForShards(0, hits.size(), /*max_shards=*/2,
                         [&](size_t lo, size_t hi) {
                           shard_count.fetch_add(1);
                           for (size_t i = lo; i < hi; ++i) hits[i] += 1;
                         });
  EXPECT_LE(shard_count.load(), 2u);
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
}  // namespace ses::util
