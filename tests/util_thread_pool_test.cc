#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace ses::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(1);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, hits.size(), [&hits](size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(5, 5, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ParallelForSmallRangeFewerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  pool.ParallelFor(0, 3, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, StressManyMoreTasksThanWorkers) {
  ThreadPool pool(3);
  constexpr int kTasks = 10000;
  std::atomic<int64_t> sum{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), static_cast<int64_t>(kTasks) * (kTasks - 1) / 2);

  // The pool must be reusable after a full drain.
  std::atomic<int> second_wave{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&second_wave] { second_wave.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(second_wave.load(), 100);
}

TEST(ThreadPoolTest, ParallelForManyMoreItemsThanWorkers) {
  ThreadPool pool(2);
  std::vector<int> hits(20000, 0);
  pool.ParallelFor(0, hits.size(), [&hits](size_t i) { hits[i] += 1; });
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ThreadPoolTest, TasksCanSubmitMoreWork) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    pool.Submit([&counter] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

}  // namespace
}  // namespace ses::util
