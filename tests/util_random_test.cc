#include "util/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace ses::util {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 12);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedWithinBound) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t x = rng.UniformInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(14);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformDoubleRangeAndMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.UniformDouble(2.0, 6.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 6.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(ZipfSamplerTest, UniformWhenExponentZero) {
  Rng rng(23);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(5, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (size_t v = 1; v <= 4; ++v) {
    EXPECT_NEAR(counts[v] / static_cast<double>(n), 0.25, 0.02);
  }
}

TEST(ZipfSamplerTest, HeadHeavierThanTail) {
  Rng rng(29);
  ZipfSampler zipf(100, 1.2);
  int head = 0;
  int tail = 0;
  for (int i = 0; i < 20000; ++i) {
    const size_t v = zipf.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
    if (v <= 5) ++head;
    if (v > 50) ++tail;
  }
  EXPECT_GT(head, tail * 2);
}

TEST(ZipfSamplerTest, SupportSizeOne) {
  Rng rng(31);
  ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 1u);
}

TEST(DiscreteSamplerTest, RespectsWeights) {
  Rng rng(37);
  DiscreteSampler sampler({1.0, 0.0, 3.0});
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.02);
}

TEST(PoissonTest, ZeroLambda) {
  Rng rng(41);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(PoissonSample(rng, 0.0), 0);
}

TEST(PoissonTest, SmallLambdaMean) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += PoissonSample(rng, 3.5);
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(PoissonTest, LargeLambdaMean) {
  Rng rng(47);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += PoissonSample(rng, 100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(ShuffleTest, ProducesPermutation) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  Shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ShuffleTest, EmptyAndSingleton) {
  Rng rng(59);
  std::vector<int> empty;
  Shuffle(empty, rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{7};
  Shuffle(one, rng);
  EXPECT_EQ(one[0], 7);
}

TEST(SampleWithoutReplacementTest, DistinctAndInRange) {
  Rng rng(61);
  for (uint32_t k : {1u, 5u, 50u, 90u}) {
    auto sample = SampleWithoutReplacement(rng, 100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (uint32_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(SampleWithoutReplacementTest, KAboveNReturnsAll) {
  Rng rng(67);
  auto sample = SampleWithoutReplacement(rng, 10, 20);
  EXPECT_EQ(sample.size(), 10u);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SampleWithoutReplacementTest, ZeroUniverse) {
  Rng rng(71);
  EXPECT_TRUE(SampleWithoutReplacement(rng, 0, 3).empty());
}

}  // namespace
}  // namespace ses::util
