#include "ebsn/tag_catalog.h"

#include <gtest/gtest.h>

namespace ses::ebsn {
namespace {

TEST(TagCatalogTest, InternAssignsSequentialIds) {
  TagCatalog catalog;
  EXPECT_TRUE(catalog.empty());
  EXPECT_EQ(catalog.Intern("rock"), 0u);
  EXPECT_EQ(catalog.Intern("pop"), 1u);
  EXPECT_EQ(catalog.Intern("jazz"), 2u);
  EXPECT_EQ(catalog.size(), 3u);
}

TEST(TagCatalogTest, InternIsIdempotent) {
  TagCatalog catalog;
  const TagId a = catalog.Intern("fashion");
  const TagId b = catalog.Intern("fashion");
  EXPECT_EQ(a, b);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(TagCatalogTest, NameRoundTrip) {
  TagCatalog catalog;
  const TagId id = catalog.Intern("theater");
  EXPECT_EQ(catalog.name(id), "theater");
}

TEST(TagCatalogTest, FindExisting) {
  TagCatalog catalog;
  catalog.Intern("food");
  auto found = catalog.Find("food");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 0u);
}

TEST(TagCatalogTest, FindMissingFails) {
  TagCatalog catalog;
  EXPECT_FALSE(catalog.Find("absent").ok());
  EXPECT_EQ(catalog.Find("absent").status().code(),
            util::StatusCode::kNotFound);
}

TEST(TagCatalogTest, CaseSensitive) {
  TagCatalog catalog;
  const TagId lower = catalog.Intern("music");
  const TagId upper = catalog.Intern("Music");
  EXPECT_NE(lower, upper);
}

}  // namespace
}  // namespace ses::ebsn
