#include "core/validate.h"

#include <memory>

#include <gtest/gtest.h>

namespace ses::core {
namespace {

SesInstance MakeInstance() {
  InstanceBuilder builder;
  builder.SetNumUsers(2).SetNumIntervals(2).SetTheta(5.0).SetSigma(
      std::make_shared<ConstSigma>(1.0));
  builder.AddEvent(/*location=*/0, /*xi=*/3.0, {{0, 0.5f}});
  builder.AddEvent(/*location=*/0, /*xi=*/3.0, {{1, 0.5f}});
  builder.AddEvent(/*location=*/1, /*xi=*/1.0, {});
  auto instance = builder.Build();
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

TEST(ValidateAssignmentsTest, AcceptsEmpty) {
  const SesInstance instance = MakeInstance();
  EXPECT_TRUE(ValidateAssignments(instance, {}).ok());
}

TEST(ValidateAssignmentsTest, AcceptsFeasibleSchedule) {
  const SesInstance instance = MakeInstance();
  const std::vector<Assignment> assignments{{0, 0}, {2, 0}, {1, 1}};
  EXPECT_TRUE(ValidateAssignments(instance, assignments).ok());
}

TEST(ValidateAssignmentsTest, EnforcesExpectedK) {
  const SesInstance instance = MakeInstance();
  const std::vector<Assignment> assignments{{0, 0}};
  EXPECT_TRUE(ValidateAssignments(instance, assignments, 1).ok());
  EXPECT_FALSE(ValidateAssignments(instance, assignments, 2).ok());
}

TEST(ValidateAssignmentsTest, RejectsOutOfRange) {
  const SesInstance instance = MakeInstance();
  EXPECT_FALSE(
      ValidateAssignments(instance, {{Assignment{9, 0}}}).ok());
  EXPECT_FALSE(
      ValidateAssignments(instance, {{Assignment{0, 9}}}).ok());
}

TEST(ValidateAssignmentsTest, RejectsDuplicateEvent) {
  const SesInstance instance = MakeInstance();
  const std::vector<Assignment> assignments{{0, 0}, {0, 1}};
  auto status = ValidateAssignments(instance, assignments);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

TEST(ValidateAssignmentsTest, RejectsLocationConflict) {
  const SesInstance instance = MakeInstance();
  // Events 0 and 1 share location 0.
  const std::vector<Assignment> assignments{{0, 0}, {1, 0}};
  auto status = ValidateAssignments(instance, assignments);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInfeasible);
}

TEST(ValidateAssignmentsTest, RejectsResourceOverflow) {
  InstanceBuilder builder;
  builder.SetNumUsers(1).SetNumIntervals(1).SetTheta(5.0).SetSigma(
      std::make_shared<ConstSigma>(1.0));
  builder.AddEvent(/*location=*/0, /*xi=*/3.0, {});
  builder.AddEvent(/*location=*/1, /*xi=*/3.0, {});
  auto instance = builder.Build();
  ASSERT_TRUE(instance.ok());
  // Distinct locations, but 3 + 3 > theta = 5.
  const std::vector<Assignment> assignments{{0, 0}, {1, 0}};
  auto status = ValidateAssignments(*instance, assignments);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kInfeasible);
}

}  // namespace
}  // namespace ses::core
