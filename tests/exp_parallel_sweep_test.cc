#include "exp/parallel_sweep.h"

#include <gtest/gtest.h>

#include "ebsn/generator.h"
#include "exp/sweep.h"

namespace ses::exp {
namespace {

const ebsn::EbsnDataset& SweepDataset() {
  static const ebsn::EbsnDataset* dataset = [] {
    ebsn::SyntheticMeetupConfig config;
    config.num_users = 600;
    config.num_events = 300;
    config.num_groups = 40;
    config.num_tags = 60;
    config.seed = 31;
    return new ebsn::EbsnDataset(ebsn::GenerateSyntheticMeetup(config));
  }();
  return *dataset;
}

std::vector<SweepPoint> MakePoints(const std::vector<int64_t>& ks) {
  std::vector<SweepPoint> points;
  for (int64_t k : ks) {
    SweepPoint point;
    point.config.k = k;
    point.config.competing_mean = 2.0;
    point.config.competing_spread = 1.0;
    point.config.seed = 100 + static_cast<uint64_t>(k);
    point.options.k = k;
    point.options.seed = 7;
    point.x = k;
    points.push_back(std::move(point));
  }
  return points;
}

/// Everything but the wall-clock `seconds` measurement must match
/// bitwise between the serial and parallel paths.
void ExpectSameRecords(const std::vector<RunRecord>& serial,
                       const std::vector<RunRecord>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(serial[i].solver, parallel[i].solver);
    EXPECT_EQ(serial[i].x, parallel[i].x);
    EXPECT_EQ(serial[i].utility, parallel[i].utility);
    EXPECT_EQ(serial[i].gain_evaluations, parallel[i].gain_evaluations);
    EXPECT_EQ(serial[i].assignments, parallel[i].assignments);
  }
}

TEST(ParallelSweepTest, MatchesSerialPathMultiSolver) {
  WorkloadFactory factory(SweepDataset());
  const std::vector<std::string> solvers{"grd", "top", "rand", "bestfit"};
  const auto points = MakePoints({4, 6, 8, 10, 12, 14});

  auto serial = RunSweepSerial(factory, points, solvers);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(serial->size(), points.size() * solvers.size());

  ParallelSweepRunner runner(4);
  auto parallel = runner.Run(factory, points, solvers);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectSameRecords(*serial, *parallel);
}

TEST(ParallelSweepTest, RepeatedParallelRunsAreStable) {
  WorkloadFactory factory(SweepDataset());
  const std::vector<std::string> solvers{"grd", "rand"};
  const auto points = MakePoints({5, 9, 13});

  ParallelSweepRunner runner(3);
  auto first = runner.Run(factory, points, solvers);
  ASSERT_TRUE(first.ok());
  // Same runner, same points: the pool must be reusable and the records
  // reproducible run over run.
  auto second = runner.Run(factory, points, solvers);
  ASSERT_TRUE(second.ok());
  ExpectSameRecords(*first, *second);
}

TEST(ParallelSweepTest, MorePointsThanWorkers) {
  WorkloadFactory factory(SweepDataset());
  const std::vector<std::string> solvers{"rand"};
  std::vector<int64_t> ks;
  for (int64_t k = 2; k < 34; ++k) ks.push_back(k);
  const auto points = MakePoints(ks);

  ParallelSweepRunner runner(2);
  auto parallel = runner.Run(factory, points, solvers);
  ASSERT_TRUE(parallel.ok());
  auto serial = RunSweepSerial(factory, points, solvers);
  ASSERT_TRUE(serial.ok());
  ExpectSameRecords(*serial, *parallel);
}

TEST(ParallelSweepTest, ErrorPropagatesDeterministically) {
  WorkloadFactory factory(SweepDataset());
  auto points = MakePoints({4, 6});
  ParallelSweepRunner runner(2);
  auto result = runner.Run(factory, points, {"grd", "bogus"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

TEST(ParallelSweepTest, SingleWorkerPoolWorks) {
  WorkloadFactory factory(SweepDataset());
  const auto points = MakePoints({4, 8});
  ParallelSweepRunner runner(1);
  auto result = runner.Run(factory, points, {"grd"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 2u);
}

TEST(ParallelSweepTest, RepeatedSweepAggregatesMatchSerial) {
  WorkloadFactory factory(SweepDataset());
  auto make_config = [](int64_t x, uint64_t seed) {
    PaperWorkloadConfig config;
    config.k = x;
    config.competing_mean = 2.0;
    config.competing_spread = 1.0;
    config.seed = seed;
    return config;
  };
  auto serial = RunRepeatedSweep(factory, {5, 10}, make_config,
                                 {"grd", "rand"}, 3, 17,
                                 /*num_threads=*/1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = RunRepeatedSweep(factory, {5, 10}, make_config,
                                   {"grd", "rand"}, 3, 17,
                                   /*num_threads=*/4);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ((*serial)[i].x, (*parallel)[i].x);
    EXPECT_EQ((*serial)[i].solver, (*parallel)[i].solver);
    // Utility aggregates accumulate in the same order on both paths, so
    // the floating-point results are bitwise identical.
    EXPECT_EQ((*serial)[i].utility.mean, (*parallel)[i].utility.mean);
    EXPECT_EQ((*serial)[i].utility.stddev, (*parallel)[i].utility.stddev);
    EXPECT_EQ((*serial)[i].utility.count, (*parallel)[i].utility.count);
  }
}

}  // namespace
}  // namespace ses::exp
