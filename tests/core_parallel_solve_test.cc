/// Serial-vs-parallel determinism of the constructive solvers: GRD and
/// lazy greedy must return bit-identical SolverResults at 1 and N
/// score-generation threads (SolverOptions::threads), with or without a
/// shared pool, and when fanned out through api::Scheduler — the
/// nested-ParallelFor scenario the thread-pool re-entrancy fix enables.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/scheduler.h"
#include "core/registry.h"
#include "core/score_gen.h"
#include "core/solver.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace ses::core {
namespace {

SesInstance MakeInstance(uint64_t seed) {
  test::RandomInstanceConfig config;
  config.seed = seed;
  config.num_users = 60;
  config.num_events = 24;
  config.num_intervals = 9;
  config.num_locations = 4;
  return test::MakeRandomInstance(config);
}

void ExpectIdentical(const SolverResult& a, const SolverResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.assignments, b.assignments) << label;
  // Bitwise equality, not near-equality: the parallel pass must assemble
  // the exact doubles the serial pass does.
  EXPECT_EQ(a.utility, b.utility) << label;
  EXPECT_EQ(a.stats.gain_evaluations, b.stats.gain_evaluations) << label;
  EXPECT_EQ(a.stats.pops, b.stats.pops) << label;
  EXPECT_EQ(a.stats.updates, b.stats.updates) << label;
  EXPECT_TRUE(b.termination.ok()) << label;
}

class ParallelSolveTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelSolveTest, GenerationIsBitIdenticalAcrossShardCounts) {
  const SesInstance instance = MakeInstance(GetParam());
  SolverOptions options;
  options.k = 6;

  const size_t cells = static_cast<size_t>(instance.num_intervals()) *
                       instance.num_events();
  std::vector<double> serial(cells, 0.0);
  const ScoreGenResult serial_gen =
      GenerateAssignmentScores(instance, options, SolveContext(), serial);
  ASSERT_TRUE(serial_gen.termination.ok());

  util::ThreadPool pool(3);
  for (int64_t threads : {0, 2, 4, 16}) {
    SolverOptions parallel_options = options;
    parallel_options.threads = threads;
    parallel_options.pool = &pool;
    std::vector<double> parallel(cells, 0.0);
    const ScoreGenResult gen = GenerateAssignmentScores(
        instance, parallel_options, SolveContext(), parallel);
    ASSERT_TRUE(gen.termination.ok());
    EXPECT_EQ(gen.gain_evaluations, serial_gen.gain_evaluations);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST_P(ParallelSolveTest, GreedyAndLazyMatchSerialAtAnyThreadCount) {
  const SesInstance instance = MakeInstance(GetParam());
  util::ThreadPool pool(3);

  for (const char* name : {"grd", "lazy"}) {
    auto solver = MakeSolver(name);
    ASSERT_TRUE(solver.ok());

    SolverOptions serial_options;
    serial_options.k = 8;
    auto serial = solver.value()->Solve(instance, serial_options);
    ASSERT_TRUE(serial.ok()) << name;

    // Shared pool, explicit shard counts.
    for (int64_t threads : {2, 4}) {
      SolverOptions options = serial_options;
      options.threads = threads;
      options.pool = &pool;
      auto parallel = solver.value()->Solve(instance, options);
      ASSERT_TRUE(parallel.ok()) << name;
      ExpectIdentical(*serial, *parallel,
                      std::string(name) + " threads=" +
                          std::to_string(threads));
    }

    // No pool handed in: the solver spins up a transient one.
    SolverOptions transient = serial_options;
    transient.threads = 3;
    auto parallel = solver.value()->Solve(instance, transient);
    ASSERT_TRUE(parallel.ok()) << name;
    ExpectIdentical(*serial, *parallel,
                    std::string(name) + " transient pool");
  }
}

TEST_P(ParallelSolveTest, WarmStartedParallelRunsMatchSerial) {
  const SesInstance instance = MakeInstance(GetParam());

  auto grd = MakeSolver("grd");
  ASSERT_TRUE(grd.ok());
  SolverOptions prefix_options;
  prefix_options.k = 3;
  auto prefix = grd.value()->Solve(instance, prefix_options);
  ASSERT_TRUE(prefix.ok());

  util::ThreadPool pool(3);
  for (const char* name : {"grd", "lazy"}) {
    auto solver = MakeSolver(name);
    ASSERT_TRUE(solver.ok());
    SolverOptions options;
    options.k = 7;
    options.warm_start = prefix->assignments;
    auto serial = solver.value()->Solve(instance, options);
    ASSERT_TRUE(serial.ok()) << name;

    options.threads = 4;
    options.pool = &pool;
    auto parallel = solver.value()->Solve(instance, options);
    ASSERT_TRUE(parallel.ok()) << name;
    ExpectIdentical(*serial, *parallel,
                    std::string(name) + " warm-started");
  }
}

// Solvers fanned out by SolveBatch run *on* the scheduler pool and shard
// their generation across the same pool — the exact configuration that
// deadlocked before ParallelFor became worker-re-entrant.
TEST_P(ParallelSolveTest, SchedulerBatchWithIntraSolverShardsMatchesSerial) {
  const SesInstance instance = MakeInstance(GetParam());

  api::Scheduler serial_scheduler(api::SchedulerOptions{.num_threads = 1});
  api::Scheduler scheduler(api::SchedulerOptions{.num_threads = 3});

  std::vector<api::SolveRequest> requests;
  for (const char* name : {"grd", "lazy", "grd", "lazy"}) {
    api::SolveRequest request;
    request.solver = name;
    request.options.k = 8;
    request.options.threads = 4;  // scheduler injects its own pool
    requests.push_back(std::move(request));
  }
  const auto parallel = scheduler.SolveBatch(instance, requests);
  ASSERT_EQ(parallel.size(), requests.size());

  for (size_t i = 0; i < requests.size(); ++i) {
    api::SolveRequest serial_request;
    serial_request.solver = requests[i].solver;
    serial_request.options.k = 8;
    const api::SolveResponse serial =
        serial_scheduler.Solve(instance, serial_request);
    ASSERT_TRUE(serial.status.ok());
    ASSERT_TRUE(parallel[i].status.ok()) << requests[i].solver;
    EXPECT_EQ(parallel[i].schedule, serial.schedule) << requests[i].solver;
    EXPECT_EQ(parallel[i].utility, serial.utility) << requests[i].solver;
    EXPECT_EQ(parallel[i].stats.gain_evaluations,
              serial.stats.gain_evaluations)
        << requests[i].solver;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelSolveTest,
                         ::testing::Values(3, 11, 29, 57));

}  // namespace
}  // namespace ses::core
