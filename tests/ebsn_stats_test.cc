#include "ebsn/dataset_stats.h"

#include <gtest/gtest.h>

#include "ebsn/generator.h"

namespace ses::ebsn {
namespace {

TEST(OverlapEstimateTest, MatchesOccupancyFormula) {
  // 16200 events over 100 days with 20 slots/day -> 8.1 per slot, the
  // statistic the paper measured on Meetup data.
  EXPECT_NEAR(EstimateOverlappingEvents(16200, 100, 20), 8.1, 1e-12);
  EXPECT_DOUBLE_EQ(EstimateOverlappingEvents(0, 10, 10), 0.0);
  EXPECT_DOUBLE_EQ(EstimateOverlappingEvents(100, 1, 1), 100.0);
}

TEST(DatasetStatsTest, CountsMatch) {
  SyntheticMeetupConfig config;
  config.num_users = 250;
  config.num_events = 120;
  config.num_groups = 15;
  config.num_tags = 25;
  const EbsnDataset ds = GenerateSyntheticMeetup(config);
  const DatasetStats stats = ComputeDatasetStats(ds);
  EXPECT_EQ(stats.num_users, 250u);
  EXPECT_EQ(stats.num_events, 120u);
  EXPECT_EQ(stats.num_groups, 15u);
  EXPECT_EQ(stats.num_tags, 25u);
  EXPECT_EQ(stats.num_checkins, ds.checkins().size());
}

TEST(DatasetStatsTest, DistributionsAreConsistent) {
  SyntheticMeetupConfig config;
  config.num_users = 250;
  config.num_events = 120;
  config.num_groups = 15;
  config.num_tags = 25;
  const EbsnDataset ds = GenerateSyntheticMeetup(config);
  const DatasetStats stats = ComputeDatasetStats(ds);

  // Sum of group sizes equals sum of per-user group memberships.
  double membership_total = 0;
  for (const UserProfile& user : ds.users()) {
    membership_total += static_cast<double>(user.groups.size());
  }
  EXPECT_NEAR(stats.group_size.mean * static_cast<double>(stats.num_groups),
              membership_total, 1e-6);

  EXPECT_GE(stats.tags_per_user.min, 1.0);
  EXPECT_GE(stats.groups_per_user.min, 1.0);
  EXPECT_LE(stats.tags_per_event.max,
            static_cast<double>(stats.num_tags));
}

TEST(DatasetStatsTest, EmptyDataset) {
  EbsnDataset ds;
  const DatasetStats stats = ComputeDatasetStats(ds);
  EXPECT_EQ(stats.num_users, 0u);
  EXPECT_EQ(stats.group_size.count, 0u);
  EXPECT_FALSE(stats.ToString().empty());
}

}  // namespace
}  // namespace ses::ebsn
