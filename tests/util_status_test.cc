#include "util/status.h"

#include <gtest/gtest.h>

namespace ses::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "INVALID_ARGUMENT"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NOT_FOUND"},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange, "OUT_OF_RANGE"},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition,
       "FAILED_PRECONDITION"},
      {Status::AlreadyExists("e"), StatusCode::kAlreadyExists,
       "ALREADY_EXISTS"},
      {Status::ResourceExhausted("f"), StatusCode::kResourceExhausted,
       "RESOURCE_EXHAUSTED"},
      {Status::Internal("g"), StatusCode::kInternal, "INTERNAL"},
      {Status::Unimplemented("h"), StatusCode::kUnimplemented,
       "UNIMPLEMENTED"},
      {Status::IoError("i"), StatusCode::kIoError, "IO_ERROR"},
      {Status::ParseError("j"), StatusCode::kParseError, "PARSE_ERROR"},
      {Status::Infeasible("k"), StatusCode::kInfeasible, "INFEASIBLE"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(41);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 41);
  EXPECT_EQ(*r, 41);
  EXPECT_EQ(r.value_or(0), 41);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chained(int x) {
  SES_RETURN_IF_ERROR(FailWhenNegative(x));
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubledOrError(int x) {
  SES_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  return value * 2;
}

TEST(StatusMacrosTest, AssignOrReturn) {
  auto ok = DoubledOrError(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_FALSE(DoubledOrError(-5).ok());
}

}  // namespace
}  // namespace ses::util
