#include "core/schedule.h"

#include <memory>

#include <gtest/gtest.h>

namespace ses::core {
namespace {

/// 4 events: e0/e1 share location 0; e2 location 1; e3 location 2 but
/// needs 8 resources. theta = 10.
SesInstance MakeInstance() {
  InstanceBuilder builder;
  builder.SetNumUsers(2).SetNumIntervals(3).SetTheta(10.0).SetSigma(
      std::make_shared<ConstSigma>(1.0));
  builder.AddEvent(/*location=*/0, /*required_resources=*/3.0, {{0, 0.5f}});
  builder.AddEvent(/*location=*/0, /*required_resources=*/3.0, {{1, 0.5f}});
  builder.AddEvent(/*location=*/1, /*required_resources=*/3.0, {});
  builder.AddEvent(/*location=*/2, /*required_resources=*/8.0, {});
  auto instance = builder.Build();
  EXPECT_TRUE(instance.ok());
  return std::move(instance).value();
}

TEST(ScheduleTest, StartsEmpty) {
  const SesInstance instance = MakeInstance();
  Schedule schedule(instance);
  EXPECT_EQ(schedule.size(), 0u);
  EXPECT_FALSE(schedule.IsAssigned(0));
  EXPECT_EQ(schedule.IntervalOf(0), kInvalidIndex);
  EXPECT_TRUE(schedule.Assignments().empty());
}

TEST(ScheduleTest, AssignAndQuery) {
  const SesInstance instance = MakeInstance();
  Schedule schedule(instance);
  ASSERT_TRUE(schedule.Assign(0, 1).ok());
  EXPECT_TRUE(schedule.IsAssigned(0));
  EXPECT_EQ(schedule.IntervalOf(0), 1u);
  EXPECT_EQ(schedule.size(), 1u);
  EXPECT_EQ(schedule.EventsAt(1), (std::vector<EventIndex>{0}));
  EXPECT_DOUBLE_EQ(schedule.UsedResources(1), 3.0);
}

TEST(ScheduleTest, DoubleAssignRejected) {
  const SesInstance instance = MakeInstance();
  Schedule schedule(instance);
  ASSERT_TRUE(schedule.Assign(0, 0).ok());
  EXPECT_FALSE(schedule.Assign(0, 1).ok());
  EXPECT_FALSE(schedule.CanAssign(0, 1));
}

TEST(ScheduleTest, LocationConflictRejected) {
  const SesInstance instance = MakeInstance();
  Schedule schedule(instance);
  ASSERT_TRUE(schedule.Assign(0, 0).ok());
  // e1 shares location 0 with e0.
  EXPECT_FALSE(schedule.CanAssign(1, 0));
  EXPECT_FALSE(schedule.Assign(1, 0).ok());
  // Different interval is fine.
  EXPECT_TRUE(schedule.CanAssign(1, 1));
  // Different location in the same interval is fine.
  EXPECT_TRUE(schedule.CanAssign(2, 0));
}

TEST(ScheduleTest, ResourceConstraintRejected) {
  const SesInstance instance = MakeInstance();
  Schedule schedule(instance);
  ASSERT_TRUE(schedule.Assign(0, 0).ok());  // 3 used
  ASSERT_TRUE(schedule.Assign(2, 0).ok());  // 6 used
  // e3 needs 8; 6 + 8 > 10.
  EXPECT_FALSE(schedule.CanAssign(3, 0));
  EXPECT_FALSE(schedule.Assign(3, 0).ok());
  // Fits in an empty interval.
  EXPECT_TRUE(schedule.Assign(3, 1).ok());
}

TEST(ScheduleTest, UnassignRestoresCapacityAndLocation) {
  const SesInstance instance = MakeInstance();
  Schedule schedule(instance);
  ASSERT_TRUE(schedule.Assign(0, 0).ok());
  ASSERT_TRUE(schedule.Unassign(0).ok());
  EXPECT_EQ(schedule.size(), 0u);
  EXPECT_FALSE(schedule.IsAssigned(0));
  EXPECT_DOUBLE_EQ(schedule.UsedResources(0), 0.0);
  // Location 0 is free again.
  EXPECT_TRUE(schedule.Assign(1, 0).ok());
}

TEST(ScheduleTest, UnassignUnassignedFails) {
  const SesInstance instance = MakeInstance();
  Schedule schedule(instance);
  EXPECT_FALSE(schedule.Unassign(2).ok());
}

TEST(ScheduleTest, OutOfRangeIndicesRejected) {
  const SesInstance instance = MakeInstance();
  Schedule schedule(instance);
  EXPECT_FALSE(schedule.CanAssign(99, 0));
  EXPECT_FALSE(schedule.CanAssign(0, 99));
  EXPECT_FALSE(schedule.Assign(99, 0).ok());
  EXPECT_FALSE(schedule.Assign(0, 99).ok());
  EXPECT_FALSE(schedule.Unassign(99).ok());
}

TEST(ScheduleTest, AssignmentsSortedByIntervalThenEvent) {
  const SesInstance instance = MakeInstance();
  Schedule schedule(instance);
  ASSERT_TRUE(schedule.Assign(3, 2).ok());
  ASSERT_TRUE(schedule.Assign(0, 1).ok());
  ASSERT_TRUE(schedule.Assign(2, 1).ok());
  const auto assignments = schedule.Assignments();
  ASSERT_EQ(assignments.size(), 3u);
  EXPECT_EQ(assignments[0], (Assignment{0, 1}));
  EXPECT_EQ(assignments[1], (Assignment{2, 1}));
  EXPECT_EQ(assignments[2], (Assignment{3, 2}));
}

TEST(ScheduleTest, ClearResetsEverything) {
  const SesInstance instance = MakeInstance();
  Schedule schedule(instance);
  ASSERT_TRUE(schedule.Assign(0, 0).ok());
  ASSERT_TRUE(schedule.Assign(2, 0).ok());
  schedule.Clear();
  EXPECT_EQ(schedule.size(), 0u);
  EXPECT_TRUE(schedule.EventsAt(0).empty());
  EXPECT_DOUBLE_EQ(schedule.UsedResources(0), 0.0);
  EXPECT_TRUE(schedule.Assign(1, 0).ok());
}

TEST(ScheduleTest, CopyIsIndependent) {
  const SesInstance instance = MakeInstance();
  Schedule a(instance);
  ASSERT_TRUE(a.Assign(0, 0).ok());
  Schedule b = a;
  ASSERT_TRUE(b.Assign(2, 0).ok());
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
}

}  // namespace
}  // namespace ses::core
