#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/lazy_greedy.h"
#include "core/objective.h"
#include "core/random_schedule.h"
#include "core/top_k.h"
#include "core/validate.h"
#include "tests/test_util.h"

namespace ses::core {
namespace {

SolverOptions OptionsWithK(int64_t k, uint64_t seed = 1) {
  SolverOptions options;
  options.k = k;
  options.seed = seed;
  return options;
}

/// Seed-parameterized battery shared by the three paper methods plus the
/// lazy variant.
class SolverPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  SesInstance MakeInstance() const {
    test::RandomInstanceConfig config;
    config.seed = GetParam();
    config.num_users = 40;
    config.num_events = 10;
    config.num_intervals = 5;
    config.theta = 12.0;
    return test::MakeRandomInstance(config);
  }
};

TEST_P(SolverPropertyTest, AllSolversProduceFeasibleKSchedules) {
  const SesInstance instance = MakeInstance();
  const SolverOptions options = OptionsWithK(4, GetParam());

  GreedySolver grd;
  LazyGreedySolver lazy;
  TopKSolver top;
  RandomSolver rand;
  for (Solver* solver :
       std::initializer_list<Solver*>{&grd, &lazy, &top, &rand}) {
    auto result = solver->Solve(instance, options);
    ASSERT_TRUE(result.ok()) << solver->name() << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->assignments.size(), 4u) << solver->name();
    EXPECT_TRUE(
        ValidateAssignments(instance, result->assignments, 4).ok())
        << solver->name();
    EXPECT_GE(result->utility, 0.0);
    EXPECT_EQ(result->solver, solver->name());
  }
}

TEST_P(SolverPropertyTest, ReportedUtilityMatchesReferenceObjective) {
  const SesInstance instance = MakeInstance();
  const SolverOptions options = OptionsWithK(3, GetParam());
  GreedySolver grd;
  auto result = grd.Solve(instance, options);
  ASSERT_TRUE(result.ok());

  Schedule schedule(instance);
  for (const Assignment& a : result->assignments) {
    ASSERT_TRUE(schedule.Assign(a.event, a.interval).ok());
  }
  EXPECT_NEAR(result->utility, TotalUtility(instance, schedule), 1e-9);
}

TEST_P(SolverPropertyTest, GreedyIsDeterministic) {
  const SesInstance instance = MakeInstance();
  const SolverOptions options = OptionsWithK(4, GetParam());
  GreedySolver grd;
  auto a = grd.Solve(instance, options);
  auto b = grd.Solve(instance, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  EXPECT_DOUBLE_EQ(a->utility, b->utility);
}

TEST_P(SolverPropertyTest, LazyGreedyMatchesGreedyUtility) {
  const SesInstance instance = MakeInstance();
  const SolverOptions options = OptionsWithK(5, GetParam());
  GreedySolver grd;
  LazyGreedySolver lazy;
  auto a = grd.Solve(instance, options);
  auto b = lazy.Solve(instance, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Identical selections up to score ties; utilities agree tightly.
  EXPECT_NEAR(a->utility, b->utility, 1e-6 + 1e-6 * a->utility);
}

TEST_P(SolverPropertyTest, LazyGreedyDoesFewerEvaluationsThanGreedy) {
  const SesInstance instance = MakeInstance();
  const SolverOptions options = OptionsWithK(5, GetParam());
  GreedySolver grd;
  LazyGreedySolver lazy;
  auto a = grd.Solve(instance, options);
  auto b = lazy.Solve(instance, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->stats.gain_evaluations, a->stats.gain_evaluations);
}

TEST_P(SolverPropertyTest, GreedyBeatsOrTiesRandomAndTop) {
  const SesInstance instance = MakeInstance();
  const SolverOptions options = OptionsWithK(5, GetParam());
  GreedySolver grd;
  TopKSolver top;
  RandomSolver rand;
  auto g = grd.Solve(instance, options);
  auto t = top.Solve(instance, options);
  auto r = rand.Solve(instance, options);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(r.ok());
  // Greedy is not a guaranteed upper bound per-instance for TOP/RAND,
  // but with its one-step-optimal selections it must win on these small
  // random instances by a comfortable margin in aggregate; check at
  // least no catastrophic loss per seed...
  EXPECT_GE(g->utility, t->utility * 0.95);
  EXPECT_GE(g->utility, r->utility * 0.95);
}

TEST_P(SolverPropertyTest, RandomSolverDeterministicPerSeed) {
  const SesInstance instance = MakeInstance();
  RandomSolver rand;
  auto a = rand.Solve(instance, OptionsWithK(4, 77));
  auto b = rand.Solve(instance, OptionsWithK(4, 77));
  auto c = rand.Solve(instance, OptionsWithK(4, 78));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->assignments, b->assignments);
  // A different seed should usually give a different schedule.
  // (Not guaranteed; tolerated as a soft expectation across the suite.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 17, 19));

TEST(SolverOptionsTest, RejectsNonPositiveK) {
  test::RandomInstanceConfig config;
  const SesInstance instance = test::MakeRandomInstance(config);
  GreedySolver grd;
  EXPECT_FALSE(grd.Solve(instance, OptionsWithK(0)).ok());
  EXPECT_FALSE(grd.Solve(instance, OptionsWithK(-3)).ok());
}

TEST(SolverOptionsTest, RejectsKAboveEventCount) {
  test::RandomInstanceConfig config;
  config.num_events = 4;
  const SesInstance instance = test::MakeRandomInstance(config);
  GreedySolver grd;
  EXPECT_FALSE(grd.Solve(instance, OptionsWithK(5)).ok());
}

TEST(GreedySolverTest, FirstPickIsGloballyBestAssignment) {
  test::RandomInstanceConfig config;
  config.seed = 123;
  const SesInstance instance = test::MakeRandomInstance(config);
  GreedySolver grd;
  auto result = grd.Solve(instance, OptionsWithK(1));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->assignments.size(), 1u);

  // Brute-force the best single assignment.
  Schedule empty(instance);
  double best = -1.0;
  for (EventIndex e = 0; e < instance.num_events(); ++e) {
    for (IntervalIndex t = 0; t < instance.num_intervals(); ++t) {
      if (!empty.CanAssign(e, t)) continue;
      best = std::max(best, AssignmentScore(instance, empty, e, t));
    }
  }
  EXPECT_NEAR(result->utility, best, 1e-9);
}

TEST(GreedySolverTest, StatsArepopulated) {
  test::RandomInstanceConfig config;
  const SesInstance instance = test::MakeRandomInstance(config);
  GreedySolver grd;
  auto result = grd.Solve(instance, OptionsWithK(3));
  ASSERT_TRUE(result.ok());
  // Initial generation = |E| * |T| evaluations at minimum.
  EXPECT_GE(result->stats.gain_evaluations,
            static_cast<uint64_t>(instance.num_events()) *
                instance.num_intervals());
  EXPECT_GE(result->stats.pops, 3u);
  EXPECT_GT(result->wall_seconds, 0.0);
}

TEST(TopKSolverTest, NeverUpdatesScores) {
  test::RandomInstanceConfig config;
  const SesInstance instance = test::MakeRandomInstance(config);
  TopKSolver top;
  auto result = top.Solve(instance, OptionsWithK(3));
  ASSERT_TRUE(result.ok());
  // TOP performs exactly the initial |E| x |T| evaluations.
  EXPECT_EQ(result->stats.gain_evaluations,
            static_cast<uint64_t>(instance.num_events()) *
                instance.num_intervals());
  EXPECT_EQ(result->stats.updates, 0u);
}

TEST(RandomSolverTest, FillsKEvenWhenPairSpaceTight) {
  // 3 events, 1 interval, distinct locations, ample resources: the only
  // feasible 3-schedule packs all events into the single interval.
  InstanceBuilder builder;
  builder.SetNumUsers(2).SetNumIntervals(1).SetTheta(10.0).SetSigma(
      std::make_shared<ConstSigma>(1.0));
  builder.AddEvent(0, 1.0, {{0, 0.5f}});
  builder.AddEvent(1, 1.0, {{1, 0.5f}});
  builder.AddEvent(2, 1.0, {});
  auto instance = builder.Build();
  ASSERT_TRUE(instance.ok());
  RandomSolver rand;
  auto result = rand.Solve(*instance, OptionsWithK(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->assignments.size(), 3u);
}

}  // namespace
}  // namespace ses::core
