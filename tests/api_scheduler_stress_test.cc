/// Concurrency stress / property suite for the api::Scheduler service
/// shell: admission control, priority lanes, and the multi-instance
/// session cache under many client threads. Runs under ASan and TSan in
/// CI with the fixed seed list below (INSTANTIATE_TEST_SUITE_P), so a
/// failure reproduces with `--gtest_filter` alone — no random state.
///
/// Pinned properties:
///  - no deadlock (the suite terminates) and every submitted request
///    gets exactly one response;
///  - kResourceExhausted appears only when the queue was configured
///    small, never on an unbounded scheduler;
///  - under a saturated 1-worker pool, a High request admitted after a
///    wall of Batch requests completes before (at least 6 of 8 of)
///    them, and High median queue wait <= Batch median queue wait;
///  - a queued request whose deadline already expired is dropped at
///    dequeue (or swept) without ever reaching a solver, answered
///    kDeadlineExceeded, and never delays a live High request;
///  - scheduler metrics agree with observed behavior: the refusal
///    counter equals the observed kResourceExhausted responses, the
///    in-queue expiry counter equals the observed dequeue drops, and
///    per-status counters match the response tallies exactly;
///  - SolveBatch responses stay request-ordered and bit-identical
///    across worker counts and priority shuffles — and identical to a
///    direct core-solver run, so the (always-on) metrics
///    instrumentation provably never perturbs solver output;
///  - concurrent LoadInstance / solve-by-id / Drop churn is safe.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/scheduler.h"
#include "core/registry.h"
#include "core/validate.h"
#include "tests/test_util.h"

namespace ses::api {
namespace {

using Clock = std::chrono::steady_clock;

SolveRequest RequestFor(const std::string& solver, int64_t k = 5,
                        uint64_t seed = 1) {
  SolveRequest request;
  request.solver = solver;
  request.options.k = k;
  request.options.seed = seed;
  return request;
}

/// A request sized to run for minutes unless cancelled — pins the
/// worker so everything submitted behind it queues deterministically.
SolveRequest BlockerRequest() {
  SolveRequest request = RequestFor("anneal");
  request.options.max_iterations = 4'000'000'000LL;
  request.options.cooling = 0.9999999;
  request.cancel = std::make_shared<core::CancelToken>();
  return request;
}

/// A bounded but non-trivial request (annealing for a fixed move
/// budget): long enough that completion-order measurements dwarf thread
/// wake-up jitter, short enough for sanitizer CI.
SolveRequest ChunkyRequest(Priority priority, uint64_t seed) {
  SolveRequest request = RequestFor("anneal", 5, seed);
  request.options.max_iterations = 6000;
  request.priority = priority;
  return request;
}

/// Spins until every admitted request has been picked up by a worker.
void WaitForDrainedQueue(const Scheduler& scheduler) {
  while (scheduler.queued_requests() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --- Priority ordering under saturation ----------------------------------

// The acceptance pin: on a saturated 1-worker pool, a High-priority
// request admitted *after* 8 Batch requests completes before at least 6
// of them (the two-slop absorbs collector-thread wake-up jitter; the
// dispatch order itself is strict).
TEST(SchedulerPriorityTest, HighOvertakesBatchWallUnderSaturation) {
  const core::SesInstance instance = test::MakeMediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});

  SolveRequest blocker = BlockerRequest();
  auto blocker_cancel = blocker.cancel;
  PendingSolve running = scheduler.Submit(instance, std::move(blocker));
  WaitForDrainedQueue(scheduler);

  constexpr size_t kBatchCount = 8;
  std::vector<PendingSolve> batch;
  for (size_t i = 0; i < kBatchCount; ++i) {
    batch.push_back(scheduler.Submit(
        instance, ChunkyRequest(Priority::kBatch, /*seed=*/i + 1)));
  }
  PendingSolve high = scheduler.Submit(
      instance, ChunkyRequest(Priority::kHigh, /*seed=*/99));

  // One collector thread per handle records when its response arrived.
  std::vector<Clock::time_point> batch_done(kBatchCount);
  std::vector<SolveResponse> batch_responses(kBatchCount);
  Clock::time_point high_done;
  SolveResponse high_response;
  std::vector<std::thread> collectors;
  collectors.reserve(kBatchCount + 1);
  for (size_t i = 0; i < kBatchCount; ++i) {
    collectors.emplace_back([&, i] {
      batch_responses[i] = batch[i].Get();
      batch_done[i] = Clock::now();
    });
  }
  collectors.emplace_back([&] {
    high_response = high.Get();
    high_done = Clock::now();
  });

  blocker_cancel->Cancel();
  for (std::thread& t : collectors) t.join();
  EXPECT_EQ(running.Get().status.code(), util::StatusCode::kCancelled);

  ASSERT_TRUE(high_response.status.ok());
  size_t finished_after_high = 0;
  for (size_t i = 0; i < kBatchCount; ++i) {
    ASSERT_TRUE(batch_responses[i].status.ok()) << i;
    if (batch_done[i] > high_done) ++finished_after_high;
    // The queue wait the responses report must agree with the ordering:
    // High was admitted last but started first.
    EXPECT_LT(high_response.queue_seconds,
              batch_responses[i].queue_seconds)
        << i;
  }
  EXPECT_GE(finished_after_high, 6u);
}

TEST(SchedulerPriorityTest, HighMedianQueueWaitAtMostBatchMedian) {
  const core::SesInstance instance = test::MakeMediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});

  SolveRequest blocker = BlockerRequest();
  auto blocker_cancel = blocker.cancel;
  PendingSolve running = scheduler.Submit(instance, std::move(blocker));
  WaitForDrainedQueue(scheduler);

  // Saturation: Batch requests admitted first, High requests after —
  // yet every High must start (and therefore wait) ahead of every
  // Batch, which the per-response queue_seconds medians pin.
  constexpr size_t kPerLane = 6;
  std::vector<PendingSolve> batch;
  std::vector<PendingSolve> high;
  for (size_t i = 0; i < kPerLane; ++i) {
    batch.push_back(scheduler.Submit(
        instance, ChunkyRequest(Priority::kBatch, /*seed=*/i + 1)));
  }
  for (size_t i = 0; i < kPerLane; ++i) {
    high.push_back(scheduler.Submit(
        instance, ChunkyRequest(Priority::kHigh, /*seed=*/100 + i)));
  }
  blocker_cancel->Cancel();
  EXPECT_EQ(running.Get().status.code(), util::StatusCode::kCancelled);

  auto median_wait = [](std::vector<PendingSolve>& handles) {
    std::vector<double> waits;
    for (PendingSolve& handle : handles) {
      const SolveResponse response = handle.Get();
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      waits.push_back(response.queue_seconds);
    }
    std::sort(waits.begin(), waits.end());
    return waits[waits.size() / 2];
  };
  const double high_median = median_wait(high);
  const double batch_median = median_wait(batch);
  EXPECT_LE(high_median, batch_median);
}

// --- Deadline-aware admission ---------------------------------------------

// The acceptance pin for expired-at-dequeue: already-expired Batch
// requests on a saturated 1-worker pool never reach a solver, are
// answered kDeadlineExceeded, and do not delay a live High request
// submitted after them. The metrics must agree: every drop is counted
// as deadline_expired_in_queue, not as a solver-run expiry.
TEST(SchedulerDeadlineQueueTest, ExpiredAtDequeueNeverReachesSolver) {
  const core::SesInstance instance = test::MakeMediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});

  SolveRequest blocker = BlockerRequest();
  auto blocker_cancel = blocker.cancel;
  PendingSolve running = scheduler.Submit(instance, std::move(blocker));
  WaitForDrainedQueue(scheduler);

  // Dead on arrival: expired deadlines, queued behind the blocker. The
  // shared work counter proves no solver iteration ever ran for them.
  constexpr size_t kDead = 8;
  std::atomic<uint64_t> dead_work{0};
  std::vector<PendingSolve> dead;
  for (size_t i = 0; i < kDead; ++i) {
    SolveRequest request = ChunkyRequest(Priority::kBatch, /*seed=*/i + 1);
    request.deadline = core::Deadline::After(0.0);
    request.work_counter = &dead_work;
    dead.push_back(scheduler.Submit(instance, std::move(request)));
  }
  // A live High request submitted after the dead wall.
  PendingSolve high = scheduler.Submit(
      instance, ChunkyRequest(Priority::kHigh, /*seed=*/99));

  blocker_cancel->Cancel();
  EXPECT_EQ(running.Get().status.code(), util::StatusCode::kCancelled);

  const SolveResponse high_response = high.Get();
  ASSERT_TRUE(high_response.status.ok())
      << high_response.status.ToString();
  EXPECT_GT(high_response.utility, 0.0);

  for (size_t i = 0; i < kDead; ++i) {
    const SolveResponse response = dead[i].Get();
    EXPECT_EQ(response.status.code(),
              util::StatusCode::kDeadlineExceeded)
        << i;
    // Dropped at dequeue: no schedule, no solver wall-clock, no gain
    // evaluations, and the message names the queue as the place the
    // deadline died.
    EXPECT_TRUE(response.schedule.empty()) << i;
    EXPECT_EQ(response.wall_seconds, 0.0) << i;
    EXPECT_EQ(response.stats.gain_evaluations, 0u) << i;
    EXPECT_NE(response.status.message().find("queue"), std::string::npos)
        << response.status.ToString();
    // The dead Batch request cannot have delayed the High request: High
    // left the queue first.
    EXPECT_LE(high_response.queue_seconds, response.queue_seconds) << i;
  }
  EXPECT_EQ(dead_work.load(), 0u);

  const SchedulerMetrics metrics = scheduler.Metrics();
  EXPECT_EQ(metrics.deadline_expired_in_queue, kDead);
  EXPECT_EQ(metrics.deadline_expired, 0u);
  EXPECT_EQ(metrics.admitted, kDead + 2);  // blocker + dead wall + High
  EXPECT_EQ(metrics.completed, 1u);        // High
  EXPECT_EQ(metrics.cancelled, 1u);        // the blocker
  EXPECT_EQ(metrics.refused, 0u);

  // The histogram split: expired Batch waits land in
  // expired_queue_wait_seconds, never in the healthy queue_wait
  // histogram — the batch-lane p50/p99 stay untainted by the dead wall.
  const util::MetricsSnapshot snapshot =
      scheduler.metric_registry().Snapshot();
  const util::HistogramSample* batch_wait =
      snapshot.FindHistogram("scheduler.queue_wait_seconds.batch");
  const util::HistogramSample* batch_expired = snapshot.FindHistogram(
      "scheduler.expired_queue_wait_seconds.batch");
  ASSERT_NE(batch_wait, nullptr);
  ASSERT_NE(batch_expired, nullptr);
  EXPECT_EQ(batch_wait->count, 0u);
  EXPECT_EQ(batch_expired->count, kDead);
  // Requests that ran still observe into the healthy histogram: the
  // High request and the Normal blocker, one each.
  const util::HistogramSample* high_wait =
      snapshot.FindHistogram("scheduler.queue_wait_seconds.high");
  const util::HistogramSample* normal_wait =
      snapshot.FindHistogram("scheduler.queue_wait_seconds.normal");
  ASSERT_NE(high_wait, nullptr);
  ASSERT_NE(normal_wait, nullptr);
  EXPECT_EQ(high_wait->count, 1u);
  EXPECT_EQ(normal_wait->count, 1u);
  EXPECT_EQ(snapshot
                .FindHistogram("scheduler.expired_queue_wait_seconds.high")
                ->count,
            0u);
}

// SweepExpiredQueued drops dead entries while they are still queued —
// their handles resolve before any worker frees up — and leaves live
// entries untouched.
TEST(SchedulerDeadlineQueueTest, ManualSweepDropsOnlyExpiredEntries) {
  const core::SesInstance instance = test::MakeMediumInstance();
  Scheduler scheduler(SchedulerOptions{.num_threads = 1});

  SolveRequest blocker = BlockerRequest();
  auto blocker_cancel = blocker.cancel;
  PendingSolve running = scheduler.Submit(instance, std::move(blocker));
  WaitForDrainedQueue(scheduler);

  constexpr size_t kDead = 4;
  constexpr size_t kLive = 2;
  std::vector<PendingSolve> dead;
  for (size_t i = 0; i < kDead; ++i) {
    SolveRequest request = ChunkyRequest(Priority::kBatch, /*seed=*/i + 1);
    request.deadline = core::Deadline::After(0.0);
    dead.push_back(scheduler.Submit(instance, std::move(request)));
  }
  std::vector<PendingSolve> live;
  for (size_t i = 0; i < kLive; ++i) {
    live.push_back(scheduler.Submit(
        instance, ChunkyRequest(Priority::kNormal, /*seed=*/50 + i)));
  }
  ASSERT_EQ(scheduler.queued_requests(), kDead + kLive);

  // The worker is still pinned by the blocker, yet the dead entries
  // resolve right now, on the sweeping thread.
  EXPECT_EQ(scheduler.SweepExpiredQueued(), kDead);
  EXPECT_EQ(scheduler.queued_requests(), kLive);
  for (PendingSolve& handle : dead) {
    ASSERT_TRUE(handle.Ready());
    EXPECT_EQ(handle.Get().status.code(),
              util::StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(scheduler.Metrics().deadline_expired_in_queue, kDead);

  blocker_cancel->Cancel();
  EXPECT_EQ(running.Get().status.code(), util::StatusCode::kCancelled);
  for (PendingSolve& handle : live) {
    EXPECT_TRUE(handle.Get().status.ok());
  }
}

// The optional background sweeper does the same without any manual
// call: dead queued entries resolve while the only worker is busy.
TEST(SchedulerDeadlineQueueTest, BackgroundSweeperDropsDeadEntries) {
  const core::SesInstance instance = test::MakeMediumInstance();
  SchedulerOptions options;
  options.num_threads = 1;
  options.expired_sweep_period_seconds = 0.005;
  Scheduler scheduler(options);

  SolveRequest blocker = BlockerRequest();
  auto blocker_cancel = blocker.cancel;
  PendingSolve running = scheduler.Submit(instance, std::move(blocker));
  WaitForDrainedQueue(scheduler);

  constexpr size_t kDead = 3;
  std::vector<PendingSolve> dead;
  for (size_t i = 0; i < kDead; ++i) {
    SolveRequest request = ChunkyRequest(Priority::kBatch, /*seed=*/i + 1);
    request.deadline = core::Deadline::After(0.0);
    dead.push_back(scheduler.Submit(instance, std::move(request)));
  }
  // Get() blocks only until the next sweep tick (~5ms), not until the
  // blocker yields the worker — that is the whole point.
  for (PendingSolve& handle : dead) {
    EXPECT_EQ(handle.Get().status.code(),
              util::StatusCode::kDeadlineExceeded);
  }
  EXPECT_EQ(scheduler.Metrics().deadline_expired_in_queue, kDead);

  blocker_cancel->Cancel();
  EXPECT_EQ(running.Get().status.code(), util::StatusCode::kCancelled);
}

// --- Determinism regression ----------------------------------------------

// SolveBatch responses stay request-ordered and bit-identical across
// worker counts and priority shuffles: priorities and parallelism may
// only move *when* a request runs, never what it computes.
TEST(SchedulerDeterminismTest, BatchBitIdenticalAcrossThreadsAndPriorities) {
  const core::SesInstance instance = test::MakeMediumInstance();

  std::vector<SolveRequest> base;
  for (uint64_t seed : {1ull, 2ull}) {
    for (const char* name : {"grd", "lazy", "bestfit", "top", "rand"}) {
      base.push_back(RequestFor(name, 5, seed));
    }
  }

  Scheduler reference_scheduler(SchedulerOptions{.num_threads = 1});
  const std::vector<SolveResponse> reference =
      reference_scheduler.SolveBatch(instance, base);
  ASSERT_EQ(reference.size(), base.size());

  // Priority patterns: uniform lanes plus two index-keyed shuffles.
  const std::vector<std::function<Priority(size_t)>> patterns = {
      [](size_t) { return Priority::kNormal; },
      [](size_t i) { return static_cast<Priority>(i % 3); },
      [](size_t i) { return static_cast<Priority>(2 - i % 3); },
  };
  for (size_t num_threads : {1u, 4u}) {
    for (size_t p = 0; p < patterns.size(); ++p) {
      SCOPED_TRACE("threads=" + std::to_string(num_threads) +
                   " pattern=" + std::to_string(p));
      Scheduler scheduler(SchedulerOptions{.num_threads = num_threads});
      std::vector<SolveRequest> requests = base;
      for (size_t i = 0; i < requests.size(); ++i) {
        requests[i].priority = patterns[p](i);
      }
      const std::vector<SolveResponse> responses =
          scheduler.SolveBatch(instance, requests);
      ASSERT_EQ(responses.size(), reference.size());
      for (size_t i = 0; i < responses.size(); ++i) {
        ASSERT_TRUE(responses[i].status.ok()) << i;
        EXPECT_EQ(responses[i].solver, base[i].solver) << i;
        EXPECT_EQ(responses[i].schedule, reference[i].schedule) << i;
        EXPECT_EQ(responses[i].utility, reference[i].utility) << i;
      }
    }
  }

  // The id-keyed path computes the same bits as the by-reference path.
  Scheduler session_scheduler(SchedulerOptions{.num_threads = 4});
  ASSERT_TRUE(
      session_scheduler.LoadInstance("det", test::MakeMediumInstance())
          .ok());
  const std::vector<SolveResponse> by_id =
      session_scheduler.SolveBatch("det", base);
  ASSERT_EQ(by_id.size(), reference.size());
  for (size_t i = 0; i < by_id.size(); ++i) {
    ASSERT_TRUE(by_id[i].status.ok()) << i;
    EXPECT_EQ(by_id[i].schedule, reference[i].schedule) << i;
    EXPECT_EQ(by_id[i].utility, reference[i].utility) << i;
  }

  // Metrics instrumentation never perturbs solver output: the fully
  // instrumented api path matches a direct core-solver run (no
  // scheduler, no registry anywhere near it) bit for bit.
  for (size_t i = 0; i < base.size(); ++i) {
    SCOPED_TRACE("direct " + base[i].solver);
    auto solver = core::MakeSolver(base[i].solver);
    ASSERT_TRUE(solver.ok());
    auto direct = (*solver)->Solve(instance, base[i].options);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    EXPECT_EQ(direct->assignments, reference[i].schedule);
    EXPECT_EQ(direct->utility, reference[i].utility);
  }
}

// --- Multi-client churn ---------------------------------------------------

struct ChurnTally {
  std::atomic<size_t> submitted{0};
  std::atomic<size_t> responded{0};
  std::atomic<size_t> ok{0};
  std::atomic<size_t> deadline{0};
  std::atomic<size_t> cancelled{0};
  std::atomic<size_t> exhausted{0};
  std::atomic<size_t> unexpected{0};
};

/// N client threads hammer one scheduler with mixed priorities, random
/// deadlines, and random cancellations; every handle is collected
/// exactly once and every status must come from the allowed set.
void RunMixedChurn(Scheduler& scheduler, const core::SesInstance& instance,
                   uint64_t seed, ChurnTally& tally) {
  constexpr size_t kClients = 6;
  constexpr size_t kRequestsPerClient = 15;
  const std::vector<std::string> solvers{"grd", "lazy", "bestfit", "top",
                                         "rand"};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937_64 rng(seed * 1000003 + c);
      for (size_t r = 0; r < kRequestsPerClient; ++r) {
        SolveRequest request =
            RequestFor(solvers[rng() % solvers.size()],
                       /*k=*/3 + static_cast<int64_t>(rng() % 5),
                       /*seed=*/rng());
        request.priority = static_cast<Priority>(rng() % 3);
        const uint64_t fate = rng() % 100;
        if (fate < 20) {
          request.deadline = core::Deadline::After(0.0);
        } else if (fate < 40) {
          request.deadline = core::Deadline::After(0.002);
        }
        const bool cancel_it = rng() % 100 < 20;
        PendingSolve pending = scheduler.Submit(instance, std::move(request));
        tally.submitted.fetch_add(1);
        if (cancel_it) pending.Cancel();

        const SolveResponse response = pending.Get();
        tally.responded.fetch_add(1);
        switch (response.status.code()) {
          case util::StatusCode::kOk:
            tally.ok.fetch_add(1);
            break;
          case util::StatusCode::kDeadlineExceeded:
            tally.deadline.fetch_add(1);
            break;
          case util::StatusCode::kCancelled:
            tally.cancelled.fetch_add(1);
            break;
          case util::StatusCode::kResourceExhausted:
            tally.exhausted.fetch_add(1);
            break;
          default:
            tally.unexpected.fetch_add(1);
            ADD_FAILURE() << "unexpected status: "
                          << response.status.ToString();
        }
        if (response.has_schedule()) {
          EXPECT_TRUE(
              core::ValidateAssignments(instance, response.schedule).ok());
        } else {
          EXPECT_TRUE(response.schedule.empty());
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
}

class SchedulerStressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SchedulerStressTest, BoundedQueueChurnYieldsExactlyOneResponseEach) {
  const core::SesInstance instance = test::MakeMediumInstance(GetParam());
  SchedulerOptions options;
  options.num_threads = 3;
  options.max_queued_requests = 8;  // small on purpose: refusals allowed
  Scheduler scheduler(options);

  ChurnTally tally;
  RunMixedChurn(scheduler, instance, GetParam(), tally);

  // Exactly one response per submission — no lost work, no duplicates.
  EXPECT_EQ(tally.submitted.load(), tally.responded.load());
  EXPECT_EQ(tally.submitted.load(),
            tally.ok.load() + tally.deadline.load() +
                tally.cancelled.load() + tally.exhausted.load());
  EXPECT_EQ(tally.unexpected.load(), 0u);
  // Everything admitted has drained (also: the destructor below would
  // deadlock, not pass, if a request were stuck).
  WaitForDrainedQueue(scheduler);

  // The metrics must agree with the observed behavior, exactly: the
  // refusal counter is the number of kResourceExhausted responses the
  // clients saw, per-status counters match the response tallies, and a
  // deadline response came from either a solver-run expiry or an
  // in-queue drop — nothing double-counted, nothing lost.
  const SchedulerMetrics metrics = scheduler.Metrics();
  EXPECT_EQ(metrics.refused, tally.exhausted.load());
  EXPECT_EQ(metrics.admitted,
            tally.submitted.load() - tally.exhausted.load());
  EXPECT_EQ(metrics.completed, tally.ok.load());
  EXPECT_EQ(metrics.cancelled, tally.cancelled.load());
  EXPECT_EQ(metrics.deadline_expired + metrics.deadline_expired_in_queue,
            tally.deadline.load());
  EXPECT_EQ(metrics.validation_failed, 0u);
  for (size_t lane = 0; lane < kNumPriorityLanes; ++lane) {
    EXPECT_EQ(metrics.queue_depth[lane], 0) << lane;
  }
}

TEST_P(SchedulerStressTest, UnboundedQueueNeverRefuses) {
  const core::SesInstance instance = test::MakeMediumInstance(GetParam());
  Scheduler scheduler(SchedulerOptions{.num_threads = 3});  // no bound

  ChurnTally tally;
  RunMixedChurn(scheduler, instance, GetParam(), tally);

  EXPECT_EQ(tally.submitted.load(), tally.responded.load());
  // kResourceExhausted may only appear when a bound was configured.
  EXPECT_EQ(tally.exhausted.load(), 0u);
  EXPECT_EQ(tally.unexpected.load(), 0u);
  // ...and the refusal counter agrees: an unbounded queue never refuses.
  const SchedulerMetrics metrics = scheduler.Metrics();
  EXPECT_EQ(metrics.refused, 0u);
  EXPECT_EQ(metrics.admitted, tally.submitted.load());
  EXPECT_EQ(metrics.completed, tally.ok.load());
}

TEST_P(SchedulerStressTest, ConcurrentSessionCacheChurnIsSafe) {
  Scheduler scheduler(SchedulerOptions{.num_threads = 2});
  constexpr size_t kLoaders = 4;
  constexpr size_t kRounds = 8;

  std::vector<std::thread> loaders;
  loaders.reserve(kLoaders);
  for (size_t t = 0; t < kLoaders; ++t) {
    loaders.emplace_back([&, t] {
      std::mt19937_64 rng(GetParam() * 7919 + t);
      for (size_t round = 0; round < kRounds; ++round) {
        const std::string name =
            "t" + std::to_string(t) + "-r" + std::to_string(round);
        ASSERT_TRUE(
            scheduler
                .LoadInstance(name, test::MakeMediumInstance(
                                        GetParam() + t * 100 + round))
                .ok());
        PendingSolve pending =
            scheduler.Submit(name, RequestFor("rand", 4, rng()));
        if (rng() % 2 == 0) {
          // Drop before collecting: the in-flight solve pinned it.
          ASSERT_TRUE(scheduler.Drop(name).ok());
          EXPECT_TRUE(pending.Get().status.ok());
        } else {
          EXPECT_TRUE(pending.Get().status.ok());
          ASSERT_TRUE(scheduler.Drop(name).ok());
        }
      }
    });
  }
  // A reader races the loaders: listing and solving against names that
  // may vanish at any moment must yield OK or NotFound, nothing else.
  std::thread reader([&] {
    std::mt19937_64 rng(GetParam());
    for (size_t i = 0; i < 2 * kLoaders * kRounds; ++i) {
      const std::string name = "t" + std::to_string(rng() % kLoaders) +
                               "-r" + std::to_string(rng() % kRounds);
      const SolveResponse response =
          scheduler.Solve(name, RequestFor("rand", 3, rng()));
      EXPECT_TRUE(response.status.ok() ||
                  response.status.code() == util::StatusCode::kNotFound)
          << response.status.ToString();
      (void)scheduler.LoadedInstances();
    }
  });
  for (std::thread& loader : loaders) loader.join();
  reader.join();
  EXPECT_TRUE(scheduler.LoadedInstances().empty());
}

// Fixed seed list (also what CI runs): failures reproduce with
// --gtest_filter=*Seeds/SchedulerStressTest.*/<index> and nothing else.
INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerStressTest,
                         ::testing::Values(7ull, 19ull, 33ull));

}  // namespace
}  // namespace ses::api
